#![forbid(unsafe_code)]
//! # xt4-repro — reproduction of "Cray XT4: An Early Evaluation for
//! Petascale Scientific Simulation" (SC'07)
//!
//! This crate is the workspace root: it re-exports the [`xtsim`] facade and
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). See README.md for the tour and DESIGN.md
//! for the substitution strategy (the paper is a hardware measurement
//! study; this repository rebuilds the platform as a discrete-event
//! simulation and regenerates every table and figure on it).

#![warn(missing_docs)]

pub use xtsim;
