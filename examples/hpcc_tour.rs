//! A tour of the HPCC micro-benchmark suite on the simulated XT3/XT4 —
//! the paper's §5 in one binary, at a reduced scale.
//!
//! ```text
//! cargo run --release --example hpcc_tour
//! ```

use xt4_repro::xtsim::hpcc::{global, local, netbench};
use xt4_repro::xtsim::machine::{presets, ExecMode};

fn main() {
    let systems = [
        ("XT3   ", presets::xt3_single(), ExecMode::SN),
        ("XT4-SN", presets::xt4(), ExecMode::SN),
        ("XT4-VN", presets::xt4(), ExecMode::VN),
    ];

    println!("== node-local kernels, SP / EP per-core rates (Figures 4-7) ==");
    for kernel in [
        local::LocalKernel::Fft,
        local::LocalKernel::Dgemm,
        local::LocalKernel::RandomAccess,
        local::LocalKernel::StreamTriad,
    ] {
        println!("{}:", kernel.label());
        for (name, m, mode) in &systems {
            let r = local::local_bench(m, *mode, kernel);
            println!("  {name}  SP {:>8.4}   EP {:>8.4}", r.sp, r.ep);
        }
    }

    println!("\n== network latency / bandwidth at 32 sockets (Figures 2-3) ==");
    for (name, m, mode) in &systems {
        let r = netbench::network_bench(m, *mode, 32);
        println!(
            "  {name}  PP {:>5.2}/{:>5.2}/{:>5.2} us   rings {:>5.2}/{:>5.2} us   PP bw {:>5.2} GB/s",
            r.pp_min_us, r.pp_avg_us, r.pp_max_us, r.nat_ring_us, r.rand_ring_us, r.pp_min_bw
        );
    }

    println!("\n== global benchmarks at 64 sockets (Figures 8-11) ==");
    for (name, m, mode) in &systems {
        let hpl = global::hpl(m, *mode, 64);
        let fft = global::mpi_fft(m, *mode, 64);
        let ptrans = global::ptrans(m, *mode, 64);
        let ra = global::mpi_ra(m, *mode, 64);
        println!(
            "  {name}  HPL {hpl:>6.3} TF   MPI-FFT {fft:>6.1} GF   PTRANS {ptrans:>6.1} GB/s   MPI-RA {ra:>7.4} GUPS"
        );
    }
    println!("\nthe paper's signatures to look for:");
    println!("  * FFT/DGEMM: EP ~ SP (temporal locality survives the second core)");
    println!("  * RA/STREAM: EP per-core = SP/2 (socket-level resources saturate)");
    println!("  * VN-mode latency above SN; MPI-RA VN below even the XT3");
    println!("  * PTRANS flat XT3->XT4 (link bandwidth unchanged)");
}
