//! Quickstart: build a simulated Cray XT4, run an MPI program on it, and
//! reproduce one headline observation of the paper — ping-pong bandwidth
//! roughly doubling from XT3 to XT4 (Figure 3).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xt4_repro::xtsim::machine::{presets, ExecMode};
use xt4_repro::xtsim::mpi::{simulate, Message, ReduceOp, WorldConfig};
use xt4_repro::xtsim::net::PlatformConfig;

fn pingpong_bandwidth(machine: xt4_repro::xtsim::machine::MachineSpec) -> f64 {
    let bytes = 2_000_000u64;
    let reps = 5u64;
    let mut spec = machine;
    spec.torus_dims = [2, 2, 2];
    let cfg = WorldConfig::new(PlatformConfig::new(spec, ExecMode::SN, 2));
    let out = simulate(1, cfg, move |mpi| async move {
        for i in 0..reps {
            if mpi.rank() == 0 {
                mpi.send(1, i, Message::of_bytes(bytes)).await;
                mpi.recv(Some(1), Some(i)).await;
            } else {
                mpi.recv(Some(0), Some(i)).await;
                mpi.send(0, i, Message::of_bytes(bytes)).await;
            }
        }
    });
    // One-way bandwidth: each rep moves the payload twice.
    (2 * reps * bytes) as f64 / out.end_time.as_secs_f64() / 1e9
}

fn main() {
    println!("== simulated machines ==");
    let xt3 = presets::xt3_single();
    let xt4 = presets::xt4();
    print!(
        "{}",
        xt4_repro::xtsim::machine::table::system_comparison(&[&xt3, &xt4])
    );

    println!("\n== MPI ping-pong bandwidth (2 MB messages) ==");
    let bw3 = pingpong_bandwidth(xt3);
    let bw4 = pingpong_bandwidth(xt4);
    println!("XT3: {bw3:.2} GB/s   (paper: ~1.15 GB/s)");
    println!("XT4: {bw4:.2} GB/s   (paper: ~2.1 GB/s)");
    println!("ratio: {:.2}x (SeaStar2 doubled injection bandwidth)", bw4 / bw3);

    println!("\n== a collective, for flavour ==");
    let mut spec = presets::xt4();
    spec.torus_dims = [2, 2, 2];
    let cfg = WorldConfig::new(PlatformConfig::new(spec, ExecMode::VN, 16));
    let out = simulate(2, cfg, |mpi| async move {
        let rank = mpi.rank() as f64;
        let sum = mpi.comm().allreduce(vec![rank], ReduceOp::Sum).await;
        if mpi.rank() == 0 {
            println!(
                "allreduce over 16 VN ranks: sum of ranks = {} (expect 120)",
                sum[0]
            );
        }
    });
    println!(
        "16-rank allreduce completed at t = {:.1} us (simulated)",
        out.end_time.as_secs_f64() * 1e6
    );
}
