//! Fusion full-wave solve: the AORSA proxy (§6.5) plus the *real* complex
//! LU solver it models.
//!
//! ```text
//! cargo run --release --example fusion_aorsa
//! ```

use rand::{Rng, SeedableRng};
use xt4_repro::xtsim::apps::aorsa;
use xt4_repro::xtsim::kernels::complex::C64;
use xt4_repro::xtsim::kernels::zlu::{zlu_factor, zresidual};
use xt4_repro::xtsim::machine::{presets, ExecMode};

fn main() {
    println!("== the real kernel: dense complex LU with partial pivoting ==");
    let n = 200;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let a: Vec<C64> = (0..n * n)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let b: Vec<C64> = (0..n)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let t0 = std::time::Instant::now();
    let f = zlu_factor(n, &a).expect("nonsingular");
    let x = f.solve(&b);
    let dt = t0.elapsed();
    println!(
        "  solved a {n}x{n} complex system in {dt:.1?}, relative residual {:.2e}",
        zresidual(n, &a, &x, &b)
    );

    println!("\n== AORSA strong scaling on the simulated machines (Figure 23) ==");
    let grid = 300;
    println!(
        "  mode-conversion mesh {grid}x{grid} -> complex system of order {}",
        aorsa::matrix_order(grid)
    );
    println!(
        "{:>16} {:>10} {:>10} {:>10} {:>12}",
        "configuration", "Ax=b min", "QL min", "total min", "solver TF"
    );
    let configs = [
        ("4k XT3", presets::xt3_dual(), 4096usize),
        ("4k XT4", presets::xt4(), 4096),
        ("8k XT4", presets::xt4(), 8192),
        ("16k XT3/4", presets::xt3_xt4_combined(), 16384),
        ("22.5k XT3/4", presets::xt3_xt4_combined(), 22500),
    ];
    for (name, m, cores) in configs {
        let r = aorsa::aorsa(&m, ExecMode::VN, cores, grid);
        println!(
            "{:>16} {:>10.1} {:>10.1} {:>10.1} {:>12.1}",
            name, r.axb_minutes, r.ql_minutes, r.total_minutes, r.solver_tflops
        );
    }
    println!("\n== the larger 500x500 mesh (paper: needs >= 16k cores) ==");
    for (name, m, cores) in [
        ("16k XT3/4", presets::xt3_xt4_combined(), 16384usize),
        ("22.5k XT3/4", presets::xt3_xt4_combined(), 22500),
    ] {
        let r = aorsa::aorsa(&m, ExecMode::VN, cores, 500);
        let peak = cores as f64 * m.processor.core_peak_flops() / 1e12;
        println!(
            "{:>16}: total {:>6.1} min, solver {:>6.1} TFLOPS ({:.1}% of peak)",
            name,
            r.total_minutes,
            r.solver_tflops,
            100.0 * r.solver_tflops / peak
        );
    }
    println!("(larger problems recover efficiency at scale — the paper's closing point)");
}
