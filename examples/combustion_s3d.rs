//! Turbulent-combustion DNS: the S3D proxy (§6.4) plus the *real*
//! high-order stencil kernel it is built from.
//!
//! First verifies the numerics (eighth-order convergence of the derivative,
//! advection of a wave by the 6-stage Runge–Kutta integrator), then runs the
//! weak-scaling study of Figure 22 and the SN/VN contention experiment.
//!
//! ```text
//! cargo run --release --example combustion_s3d
//! ```

use std::f64::consts::TAU;

use xt4_repro::xtsim::apps::s3d;
use xt4_repro::xtsim::kernels::stencil::{rk_advect_step, Grid3};
use xt4_repro::xtsim::machine::{presets, ExecMode};

fn main() {
    println!("== the real kernel: 8th-order derivatives, 6-stage RK ==");
    for n in [16usize, 32] {
        let h = 1.0 / n as f64;
        let mut g = Grid3::new(n, 4, 4);
        g.fill(|i, _, _| (TAU * 2.0 * i as f64 * h).sin());
        g.fill_ghosts_periodic();
        let mut d = Grid3::new(n, 4, 4);
        g.ddx(h, &mut d);
        let mut err: f64 = 0.0;
        for i in 0..n {
            let exact = TAU * 2.0 * (TAU * 2.0 * i as f64 * h).cos();
            err = err.max((d.get(i as isize, 0, 0) - exact).abs());
        }
        println!("  N={n:>3}: max derivative error {err:.3e}");
    }
    println!("  (halving h cuts the error ~2^8: the scheme really is 8th order)");

    let n = 64;
    let h = 1.0 / n as f64;
    let mut u = Grid3::new(n, 4, 4);
    u.fill(|i, _, _| (TAU * i as f64 * h).sin());
    let steps = 40;
    let dt = 0.2 * h;
    let mut cur = u;
    for _ in 0..steps {
        cur = rk_advect_step(&cur, 1.0, h, dt);
    }
    let shift = dt * steps as f64;
    let mut err: f64 = 0.0;
    for i in 0..n {
        let exact = (TAU * (i as f64 * h - shift)).sin();
        err = err.max((cur.get(i as isize, 0, 0) - exact).abs());
    }
    println!("  advected a sine wave {steps} RK steps: max error {err:.2e}\n");

    println!("== S3D weak scaling on the simulated machines (Figure 22) ==");
    println!("{:>8} {:>14} {:>14}", "cores", "XT3-DC us/pt", "XT4 us/pt");
    for cores in [1usize, 8, 64, 512] {
        let xt3 = s3d::s3d(&presets::xt3_dual(), ExecMode::VN, cores);
        let xt4 = s3d::s3d(&presets::xt4(), ExecMode::VN, cores);
        println!(
            "{:>8} {:>14.2} {:>14.2}",
            cores, xt3.cost_us_per_point, xt4.cost_us_per_point
        );
    }

    println!("\n== the paper's SN/VN experiment (§6.4) ==");
    let sn1 = s3d::s3d(&presets::xt4(), ExecMode::SN, 1);
    let sn2 = s3d::s3d(&presets::xt4(), ExecMode::SN, 2);
    let vn2 = s3d::s3d(&presets::xt4(), ExecMode::VN, 2);
    println!("  1 task  (SN): {:.3} s/step", sn1.secs_per_step);
    println!(
        "  2 tasks (SN): {:.3} s/step  (same: MPI overhead ruled out)",
        sn2.secs_per_step
    );
    println!(
        "  2 tasks (VN): {:.3} s/step  (+{:.0}%: memory-bandwidth contention)",
        vn2.secs_per_step,
        (vn2.secs_per_step / sn1.secs_per_step - 1.0) * 100.0
    );
}
