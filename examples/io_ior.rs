//! Parallel I/O: the Lustre model of Figure 1 driven by the IOR benchmark.
//!
//! Shows the three regimes the model captures: the single-OST bound of
//! narrow striping, the client-link bound of wide striping, and the
//! single-MDS metadata bottleneck under a file-per-process open storm.
//!
//! ```text
//! cargo run --release --example io_ior
//! ```

use xt4_repro::xtsim::lustre::{run_ior, IorConfig, LustreConfig};

fn main() {
    let fs = LustreConfig::default();
    println!(
        "filesystem: 1 MDS, {} OSS x {} OST, OSS port {} GB/s, OST disk {} GB/s",
        fs.oss_count, fs.osts_per_oss, fs.oss_bw_gbs, fs.ost_bw_gbs
    );

    println!("\n== stripe-count sweep, 16 clients (per-file striping policy) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "stripes", "write GB/s", "read GB/s", "mds ops"
    );
    for stripes in [1usize, 2, 4, 8, 16, 36] {
        let r = run_ior(
            3,
            fs.clone(),
            IorConfig {
                clients: 16,
                block_size: 64 << 20,
                transfer_size: 4 << 20,
                stripe_count: stripes,
                file_per_process: true,
            },
        );
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>10}",
            stripes, r.write_gbs, r.read_gbs, r.mds_ops
        );
    }

    println!("\n== file-per-process vs shared file (metadata pressure) ==");
    for fpp in [true, false] {
        let r = run_ior(
            4,
            fs.clone(),
            IorConfig {
                clients: 128,
                block_size: 8 << 20,
                transfer_size: 4 << 20,
                stripe_count: 4,
                file_per_process: fpp,
            },
        );
        println!(
            "  {}: open phase {:>7.1} ms, {} MDS ops, write {:.2} GB/s",
            if fpp { "file-per-process" } else { "shared file     " },
            r.open_secs * 1e3,
            r.mds_ops,
            r.write_gbs
        );
    }
    println!("\n(the paper, §2: \"Lustre supports having just one MDS, which can cause a");
    println!(" bottleneck in metadata operations at large scales\" — visible above.)");
}
