//! Climate workloads: the CAM atmosphere and POP ocean proxies (§6.1–6.2).
//!
//! Sweeps task counts on the simulated XT4 in both execution modes and
//! demonstrates the Chronopoulos–Gear reduction-halving win the paper
//! reports for POP — including the cross-check against the *real* CG
//! solvers in `xtsim-kernels`.
//!
//! ```text
//! cargo run --release --example climate_pop
//! ```

use xt4_repro::xtsim::apps::{cam, pop};
use xt4_repro::xtsim::kernels::cg::{cg, cg_chronopoulos_gear, laplacian_2d};
use xt4_repro::xtsim::machine::{presets, ExecMode};

fn main() {
    println!("== CAM D-grid throughput on the simulated XT4 (Figure 14) ==");
    println!("{:>8} {:>12} {:>12}", "tasks", "SN yrs/day", "VN yrs/day");
    for tasks in [64usize, 120, 240, 480] {
        let sn = cam::cam(&presets::xt4(), ExecMode::SN, tasks, 1);
        let vn = cam::cam(&presets::xt4(), ExecMode::VN, tasks, 1);
        println!(
            "{:>8} {:>12.3} {:>12.3}",
            tasks,
            sn.map(|r| r.years_per_day).unwrap_or(f64::NAN),
            vn.map(|r| r.years_per_day).unwrap_or(f64::NAN),
        );
    }
    println!("(the 2-D decomposition caps at 120 x 8 = 960 tasks — paper §6.1)");

    println!("\n== the real solvers behind POP's barotropic phase ==");
    let a = laplacian_2d(120, 80);
    let b: Vec<f64> = (0..a.n).map(|i| ((i % 13) as f64) - 6.0).collect();
    let std = cg(&a, &b, 1e-9, 10_000);
    let cgv = cg_chronopoulos_gear(&a, &b, 1e-9, 10_000);
    println!(
        "standard CG       : {} iters, {} reductions ({:.2}/iter)",
        std.iterations,
        std.reductions,
        std.reductions as f64 / std.iterations as f64
    );
    println!(
        "Chronopoulos-Gear : {} iters, {} reductions ({:.2}/iter)",
        cgv.iterations,
        cgv.reductions,
        cgv.reductions as f64 / cgv.iterations as f64
    );
    let dx: f64 = std
        .x
        .iter()
        .zip(&cgv.x)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0, f64::max);
    println!("max |x_std - x_cg| = {dx:.2e} (same answer, half the allreduces)");

    println!("\n== POP 0.1-degree throughput (Figures 17-19) ==");
    println!(
        "{:>8} {:>10} {:>10} {:>12}",
        "tasks", "SN", "VN", "VN + C-G"
    );
    for tasks in [512usize, 1024, 2048, 4096] {
        let sn = pop::pop(&presets::xt4(), ExecMode::SN, tasks, pop::Solver::StandardCg);
        let vn = pop::pop(&presets::xt4(), ExecMode::VN, tasks, pop::Solver::StandardCg);
        let cgv = pop::pop(
            &presets::xt4(),
            ExecMode::VN,
            tasks,
            pop::Solver::ChronopoulosGear,
        );
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>12.3}",
            tasks,
            sn.map(|r| r.years_per_day).unwrap_or(f64::NAN),
            vn.map(|r| r.years_per_day).unwrap_or(f64::NAN),
            cgv.map(|r| r.years_per_day).unwrap_or(f64::NAN),
        );
    }
    let r = pop::pop(&presets::xt4(), ExecMode::VN, 4096, pop::Solver::StandardCg).unwrap();
    println!(
        "\nphase split at 4096 VN tasks: baroclinic {:.1} s/simday, barotropic {:.1} s/simday",
        r.baroclinic_secs_per_day, r.barotropic_secs_per_day
    );
    println!("(the latency-bound barotropic solve is why reductions matter — paper §6.2)");
}
