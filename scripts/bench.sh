#!/usr/bin/env bash
# Run the simulator stress benches and record the median wall-clock per bench
# as JSON (default: results/bench.json — an untracked scratch path; pass
# --out BENCH_PRn.json explicitly when recording a committed baseline).
#
# Usage:
#   scripts/bench.sh [--quick] [--oneshot] [--out FILE] [--before FILE]
#                    [--check FILE[:TOL]]
#
#   --quick    shrink the stress benches (XTSIM_BENCH_QUICK=1) so the whole
#              suite finishes in seconds; used by the CI smoke.
#   --oneshot  one timed iteration per bench, no warmup (XTSIM_BENCH_ONESHOT=1);
#              for capturing baselines of very slow configurations.
#   --out      output JSON path (default results/bench.json; a bare run must
#              never overwrite a committed BENCH_* baseline in place).
#   --before   a previous --out file; the new run is recorded as "after_ms"
#              next to the old file's numbers ("before_ms") with a "speedup"
#              ratio per bench.
#   --check    regression threshold gate: after the run, compare each bench
#              that also appears in FILE and exit 1 if any current median is
#              more than TOL (fraction, default 0.5) slower than the recorded
#              number. Benches present on only one side are ignored, so the
#              gate survives adding or retiring benches.
#
# Output shape (validated by scripts/ci.sh):
#   {"schema": "xtsim-bench-v1", "quick": false, "benches":
#     {"fluid_pool/flows_10k": {"median_ms": 12.3, "iters": 5}, ...}}
# or, with --before:
#   {... "benches": {"name": {"before_ms": 98.0, "after_ms": 12.3,
#                             "speedup": 7.9}, ...}}
set -euo pipefail
cd "$(dirname "$0")/.."

out="results/bench.json"
before=""
check=""
quick=0
oneshot=0
while [ $# -gt 0 ]; do
    case "$1" in
        --quick) quick=1 ;;
        --oneshot) oneshot=1 ;;
        --out) out="$2"; shift ;;
        --before) before="$2"; shift ;;
        --check) check="$2"; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

env_vars=()
[ "$quick" = 1 ] && env_vars+=(XTSIM_BENCH_QUICK=1)
[ "$oneshot" = 1 ] && env_vars+=(XTSIM_BENCH_ONESHOT=1)

mkdir -p "$(dirname "$out")"

log="$(mktemp)"
trap 'rm -f "$log"' EXIT
echo "== cargo bench (simulator) ==" >&2
env "${env_vars[@]}" cargo bench -p xtsim-bench --bench simulator | tee "$log" >&2

python3 - "$log" "$out" "$quick" "$before" <<'EOF'
import json, re, sys

log_path, out_path, quick, before_path = sys.argv[1:5]
pat = re.compile(
    r"^([A-Za-z0-9_]+/[A-Za-z0-9_./-]+): ([0-9.eE+-]+) ms/iter \(median of (\d+) iters\)"
)
benches = {}
for line in open(log_path):
    m = pat.match(line.strip())
    if m:
        benches[m.group(1)] = {
            "median_ms": float(m.group(2)),
            "iters": int(m.group(3)),
        }
if not benches:
    sys.exit("bench.sh: no bench results parsed from cargo bench output")

record = {"schema": "xtsim-bench-v1", "quick": quick == "1"}
if before_path:
    before = json.load(open(before_path))["benches"]
    merged = {}
    for name, b in benches.items():
        entry = {"after_ms": b["median_ms"]}
        prev = before.get(name)
        if prev is not None:
            prev_ms = prev.get("median_ms", prev.get("after_ms"))
            entry["before_ms"] = prev_ms
            if b["median_ms"] > 0:
                entry["speedup"] = round(prev_ms / b["median_ms"], 2)
        merged[name] = entry
    record["benches"] = merged
else:
    record["benches"] = benches
with open(out_path, "w") as f:
    json.dump(record, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(benches)} benches)")
EOF

if [ -n "$check" ]; then
    python3 - "$out" "$check" <<'EOF'
import json, sys

out_path, check_spec = sys.argv[1:3]
check_path, _, tol = check_spec.partition(":")
tol = float(tol) if tol else 0.5

def median_of(entry):
    # Plain runs record median_ms; --before runs record after_ms.
    return entry.get("median_ms", entry.get("after_ms"))

current = json.load(open(out_path))["benches"]
recorded = json.load(open(check_path))["benches"]
regressions = []
for name in sorted(set(current) & set(recorded)):
    now, then = median_of(current[name]), median_of(recorded[name])
    if now is None or then is None or then <= 0:
        continue
    if now > then * (1.0 + tol):
        regressions.append(f"  {name}: {now:.3f} ms vs recorded {then:.3f} ms "
                           f"({now / then:.2f}x, tolerance {1.0 + tol:.2f}x)")
if regressions:
    print(f"bench.sh: regression beyond threshold vs {check_path}:", file=sys.stderr)
    print("\n".join(regressions), file=sys.stderr)
    sys.exit(1)
print(f"bench check vs {check_path} passed "
      f"(tolerance {1.0 + tol:.2f}x, {len(set(current) & set(recorded))} compared)")
EOF
fi
