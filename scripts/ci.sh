#!/usr/bin/env bash
# CI gate: build, full test suite (includes the golden-figure regression
# harness, the sweep-engine determinism/cache tests, and the cache-key
# property tests), then a cache-disabled quick-scale smoke run of the
# figures binary itself.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
# Root-package tests carry the golden gate; --workspace adds every crate's
# unit/integration tests (sweep engine, cache keys, simulator layers).
cargo test --workspace -q

echo "== figures smoke (quick scale, cache off) =="
out="$(mktemp -d)"
cargo run --release -p xtsim-bench --bin figures -- \
    --all --quick --no-cache --jobs 4 --out "$out" >/dev/null
for id in table1 fig01 fig12 fig23; do
    test -s "$out/$id.json" || { echo "missing $id.json"; exit 1; }
done
rm -rf "$out"

echo "CI gate passed."
