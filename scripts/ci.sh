#!/usr/bin/env bash
# CI gate: lint, build, full test suite (includes the golden-figure
# regression harness, the sweep-engine determinism/cache tests, the
# two-tier cache interleaving property tests, the observability
# trace/metrics consistency tests, and the cache-key and JSON-string
# property tests), then a cache-disabled quick-scale smoke run of the
# figures binary itself, a trace/metrics export smoke, CLI validation
# checks, a serve smoke with a parallel-clients phase over the shared
# memory tier, and the bench gate (including the >=2x memory-vs-disk
# cache acceptance check).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== xtsim-lint (determinism & DES-safety, deny warnings, time budget) =="
out="$(mktemp -d)"
cargo build --release -p xtsim-lint
# Wall-time budget: the structural pass (item parse + call graph + four
# interprocedural rules) must stay interactive. 10s is ~20x the observed
# cost on this container — the gate catches accidental quadratic blowups,
# not load jitter.
lint_start_ns="$(date +%s%N)"
target/release/xtsim-lint \
    --workspace --deny warnings --json "$out/lint.json" \
    --call-graph "$out/callgraph.json"
lint_ms=$(( ($(date +%s%N) - lint_start_ns) / 1000000 ))
echo "lint wall time: ${lint_ms} ms"
if [ "$lint_ms" -gt 10000 ]; then
    echo "xtsim-lint exceeded its 10s wall-time budget (${lint_ms} ms)"; exit 1
fi
# The machine outputs must keep the documented shapes and agree with the
# committed baseline: no errors, no un-baselined warnings, no stale
# entries; interprocedural findings carry witness chains; the call-graph
# artifact is internally consistent.
python3 - "$out/lint.json" "$out/callgraph.json" <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
assert rec["schema"] == "xtsim-lint-v2", f"bad schema: {rec.get('schema')}"
assert rec["files_scanned"] > 50, "scanned suspiciously few files"
s = rec["summary"]
assert s["errors"] == 0, f"lint errors: {s['errors']}"
assert s["warnings"] == 0, f"un-baselined lint warnings: {s['warnings']}"
assert s["stale_baseline"] == 0, f"stale baseline entries: {s['stale_baseline']}"
interproc = {"transitive-taint", "lock-order-cycle", "panic-propagation", "blocking-in-poll"}
for f in rec["findings"]:
    assert {"file", "line", "col", "rule", "severity", "chain"} <= f.keys(), f"finding missing keys: {f}"
    if f["rule"] in interproc:
        assert f["chain"], f"interprocedural finding without a witness chain: {f}"
    for hop in f["chain"]:
        assert {"function", "file", "line"} <= hop.keys(), f"bad chain hop: {hop}"
assert isinstance(rec["unsafe_inventory"], dict)
assert set(rec["unsafe_inventory"]) == {"crates/des"}, (
    f"unsafe crept into a new crate: {sorted(rec['unsafe_inventory'])}"
)

g = json.load(open(sys.argv[2]))
assert g["schema"] == "xtsim-callgraph-v1", f"bad callgraph schema: {g.get('schema')}"
st = g["stats"]
assert st["functions"] == len(g["functions"]) > 100, st
assert st["unresolved"] == len(g["unresolved"]), st
assert st["edges"] == sum(len(f["calls"]) for f in g["functions"]), st
assert st["edges"] > 50, "call graph resolved suspiciously few edges"
ids = {f["id"] for f in g["functions"]}
for f in g["functions"]:
    assert {"id", "function", "module", "file", "line", "calls"} <= f.keys(), f
    for c in f["calls"]:
        assert c["to"] in ids, f"dangling edge {f['function']} -> {c['to']}"
for u in g["unresolved"]:
    assert {"from", "name", "line", "reason"} <= u.keys(), u
EOF
# The v2 reader must keep accepting v1 baselines end-to-end: run against a
# committed v1 sample whose two entries match nothing, so both must come
# back stale (proving they were parsed), without --deny so stale entries
# don't fail this probe run.
target/release/xtsim-lint --workspace \
    --baseline crates/lint/tests/data/baseline-v1-sample.json \
    --json "$out/lint-v1.json" >/dev/null
python3 - "$out/lint-v1.json" <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
s = rec["summary"]
assert s["stale_baseline"] == 2, f"v1 sample: expected both entries stale, got {s['stale_baseline']}"
EOF
rm -rf "$out"

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
# Root-package tests carry the golden gate; --workspace adds every crate's
# unit/integration tests (sweep engine, cache keys, simulator layers, the
# offline compat shims).
cargo test --workspace -q

echo "== golden figures with DES_THREADS=4 (parallel engine, same goldens) =="
# The golden gate runs serially as part of the workspace tests above; this
# second pass proves the committed goldens are also what the conservative
# parallel DES engine produces.
DES_THREADS=4 cargo test -q --test golden_figures

echo "== figures smoke (quick scale, cache off, serial vs --des-threads 4) =="
out="$(mktemp -d)"
cargo run --release -p xtsim-bench --bin figures -- \
    --all --quick --no-cache --jobs 4 --out "$out/serial" >/dev/null
for id in table1 fig01 fig12 fig23 fig24; do
    test -s "$out/serial/$id.json" || { echo "missing $id.json"; exit 1; }
done
cargo run --release -p xtsim-bench --bin figures -- \
    --all --quick --no-cache --jobs 4 --des-threads 4 --out "$out/pdes" >/dev/null
# Byte-identity of every artifact: the DES thread count must never show up
# in a published number (tests/pdes_equivalence.rs holds the same line at
# event-log granularity).
diff -r "$out/serial" "$out/pdes" || {
    echo "figures output differs between serial and --des-threads 4"; exit 1;
}
rm -rf "$out"

echo "== trace/metrics export smoke =="
out="$(mktemp -d)"
cargo run --release -p xtsim-bench --bin figures -- \
    --quick --no-cache --only fig02 --jobs 2 --out "$out" \
    --trace "$out/traces" --metrics "$out/metrics.json" >/dev/null
test -s "$out/metrics.json" || { echo "missing metrics.json"; exit 1; }
ls "$out"/traces/*.trace.json >/dev/null || { echo "no trace files"; exit 1; }
# Every exported artifact must be well-formed JSON with the expected shape.
python3 - "$out" <<'EOF'
import glob, json, sys
out = sys.argv[1]
metrics = json.load(open(f"{out}/metrics.json"))
assert metrics["figures"], "metrics record lists no figures"
fig = metrics["figures"][0]
assert fig["computed"] == len(fig["trace_files"]), "one trace per computed job"
assert fig["sim_total_secs"] > 0, "no simulated time attributed"
for path in glob.glob(f"{out}/traces/*.trace.json"):
    trace = json.load(open(path))
    assert trace["traceEvents"], f"{path}: empty traceEvents"
    assert all(ev["ph"] == "X" for ev in trace["traceEvents"])
EOF
rm -rf "$out"

echo "== figures --only validation (unknown ids must fail, exit 2) =="
if cargo run --release -p xtsim-bench --bin figures -- \
    --quick --no-cache --only figZZ --out "$(mktemp -d)" >/dev/null 2>&1; then
    echo "figures --only figZZ must exit nonzero"; exit 1
fi

echo "== CLI numeric validation (bad tokens exit 2 and name the token) =="
# Both binaries share xtsim::cli parsing: an unparsable count or byte size
# must exit 2 and quote the offending token, never panic or silently
# default.
check_bad_token() {
    local desc="$1"; shift
    local token="$1"; shift
    local rc=0 err
    err="$("$@" 2>&1 >/dev/null)" || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "$desc: expected exit 2, got $rc"; echo "$err"; exit 1
    fi
    case "$err" in
        *"$token"*) ;;
        *) echo "$desc: stderr does not name the token $token:"; echo "$err"; exit 1;;
    esac
}
cargo build --release -p xtsim-serve -p xtsim-bench
check_bad_token "figures --jobs abc" "abc" \
    target/release/figures --quick --no-cache --jobs abc --out "$(mktemp -d)"
check_bad_token "figures --cache-mem-cap 12parsecs" "12parsecs" \
    target/release/figures --quick --cache-mem-cap 12parsecs --out "$(mktemp -d)"
check_bad_token "xtsim-serve --jobs abc" "abc" \
    target/release/xtsim-serve --port 0 --jobs abc
check_bad_token "xtsim-serve --cache-mem-cap 12parsecs" "12parsecs" \
    target/release/xtsim-serve --port 0 --cache-mem-cap 12parsecs

echo "== xtsim-serve smoke (submit, poll, byte-diff vs CLI, stats, /metrics) =="
out="$(mktemp -d)"
# CLI artifact first (its own cache), then the service computes the same
# figure cold in a separate cache and again warm — all three byte-identical.
cargo run --release -p xtsim-bench --bin figures -- \
    --quick --only fig02 --jobs 2 --cache-dir "$out/cli-cache" --out "$out/cli" >/dev/null
cargo build --release -p xtsim-serve
target/release/xtsim-serve --port 0 --cache-dir "$out/serve-cache" \
    --cache-mem-cap 64m \
    --registry-dir "$out/registry" --max-concurrent 1 --jobs 2 \
    --bench-root . --events "$out/events.jsonl" >"$out/serve.log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
port=""
for _ in $(seq 1 100); do
    port="$(sed -n 's#.*listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' "$out/serve.log")"
    [ -n "$port" ] && break
    sleep 0.1
done
[ -n "$port" ] || { echo "xtsim-serve did not come up"; cat "$out/serve.log"; exit 1; }
python3 - "$port" "$out" <<'EOF'
import json, sys, time, urllib.error, urllib.request

port, out = sys.argv[1:3]
base = f"http://127.0.0.1:{port}"

def req(method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    try:
        with urllib.request.urlopen(
            urllib.request.Request(base + path, method=method, data=data), timeout=60
        ) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as e:
        return e.code, e.read()

def run_to_completion(body):
    code, resp = req("POST", "/runs", body)
    assert code == 202, f"submit: {code} {resp}"
    rid = json.loads(resp)["id"]
    deadline = time.time() + 300
    while time.time() < deadline:
        env = json.loads(req("GET", f"/runs/{rid}")[1])
        if env["status"] in ("done", "failed"):
            break
        time.sleep(0.2)
    assert env["status"] == "done", f"run {rid}: {env}"
    code, body_bytes = req("GET", f"/runs/{rid}/result")
    assert code == 200
    return env, body_bytes

# Unknown figure ids 404 with the ids listed (same validation as --only).
code, resp = req("POST", "/runs", {"figure": "figZZ"})
assert code == 404 and b"figZZ" in resp, f"unknown id: {code} {resp}"

# Cold service run (fresh cache), then warm rerun from the same cache.
env, cold = run_to_completion({"figure": "fig02", "scale": "quick", "jobs": 2})
open(f"{out}/serve_cold.json", "wb").write(cold)
env, warm = run_to_completion({"figure": "fig02", "scale": "quick", "jobs": 2})
assert env["cached"] > 0, f"second run did not hit the cache: {env}"
open(f"{out}/serve_warm.json", "wb").write(warm)

# Parallel-clients phase: four clients hammer the same figure at once.
# Every response must be byte-identical (diffed against the CLI artifact
# below) and the shared memory tier must serve at least some of them.
from concurrent.futures import ThreadPoolExecutor
with ThreadPoolExecutor(max_workers=4) as pool:
    par = list(pool.map(
        lambda _: run_to_completion({"figure": "fig02", "scale": "quick", "jobs": 2}),
        range(4),
    ))
for i, (penv, pbody) in enumerate(par):
    open(f"{out}/serve_par_{i}.json", "wb").write(pbody)
    assert penv["cached"] > 0, f"parallel client {i} missed the warm cache: {penv}"

# A PDES-aware figure (fig24 shards its worlds even at one DES thread)
# exercises the partitioned engine so the epoch counter shows up in the
# /metrics scrape below.
env, _ = run_to_completion({"figure": "fig24", "scale": "quick", "jobs": 2, "des_threads": 2})

# /stats keeps the documented shape.
stats = json.loads(req("GET", "/stats")[1])
assert stats["schema"] == "xtsim-serve-stats-v1", stats
assert stats["engine_version"] >= 1
for k in ("queued", "running", "done", "failed", "rejected", "capacity", "workers"):
    assert k in stats["queue"], f"queue stats missing {k}"
assert stats["queue"]["done"] >= 7
assert stats["cache"]["entries"] > 0
# Two-tier cache stats: the hot tier holds promoted entries, stays under
# its configured cap, and reports the cap the server was started with.
assert stats["cache"]["mem_entries"] > 0, stats["cache"]
assert 0 < stats["cache"]["mem_bytes"] <= stats["cache"]["mem_cap_bytes"], stats["cache"]
assert stats["cache"]["mem_cap_bytes"] == 64 * 1024 * 1024, stats["cache"]
assert stats["registry"]["records"] >= 7
assert stats["registry"]["skipped"] == 0

# The registry replays every completed run; the dashboard renders SVG.
reg = json.loads(req("GET", "/registry")[1])
assert len(reg["records"]) >= 7
rec = reg["records"][-1]
assert rec["schema"] == "xtsim-registry-v1" and rec["figure"] == "fig24"
assert rec["outcome"] == "done" and rec["wall_secs"] > 0
assert rec["params"]["scale"] == "quick"
# Queue timing rides along on every new record and the run envelope.
assert rec["wait_secs"] >= 0 and rec["exec_secs"] > 0, rec
assert env["wait_secs"] >= 0 and env["exec_secs"] > 0, env
code, dash = req("GET", "/dashboard")
assert code == 200 and b"<svg" in dash, "dashboard missing inline SVG"
assert b"Telemetry" in dash, "dashboard missing telemetry panel"

# /metrics serves valid Prometheus text exposition after the cold+warm
# runs: every sample line parses, each series has TYPE metadata, the
# cache-hit counter reflects the warm run, and the queue-wait histogram
# observed both runs.
code, body = req("GET", "/metrics")
assert code == 200, f"/metrics: {code}"
text = body.decode()
types, samples = {}, {}
for line in text.splitlines():
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split(" ", 3)
        types[name] = kind
        continue
    if line.startswith("#") or not line.strip():
        continue
    name_part, _, value = line.rpartition(" ")
    name = name_part.split("{", 1)[0]
    float(value)  # every sample value must parse
    base = name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
    assert base in types, f"sample {name} has no # TYPE metadata"
    samples[name_part] = float(value)
assert types.get("xtsim_cache_lookups_total") == "counter", types
assert types.get("xtsim_queue_wait_seconds") == "histogram", types
assert types.get("xtsim_http_requests_total") == "counter", types
assert types.get("xtsim_pdes_epochs_total") == "counter", types
assert samples.get("xtsim_pdes_epochs_total", 0) > 0, "no PDES epochs recorded"
hits = sum(v for k, v in samples.items()
           if k.startswith("xtsim_cache_lookups_total") and 'result="hit"' in k)
assert hits > 0, "warm run did not register a cache hit in /metrics"
# Two-tier instrumentation: hits are split by tier, the warm/parallel runs
# must land some in the memory tier, and the eviction counter + residency
# gauges keep their documented names and types even when idle at zero.
mem_hits = sum(v for k, v in samples.items()
               if k.startswith("xtsim_cache_lookups_total")
               and 'result="hit"' in k and 'tier="memory"' in k)
assert mem_hits > 0, "no memory-tier cache hits in /metrics"
assert types.get("xtsim_cache_mem_evictions_total") == "counter", types
assert "xtsim_cache_mem_evictions_total" in samples, "eviction counter not exported"
assert types.get("xtsim_cache_mem_bytes") == "gauge", types
assert types.get("xtsim_cache_mem_entries") == "gauge", types
assert types.get("xtsim_cache_lookup_seconds") == "histogram", types
assert samples.get("xtsim_cache_mem_bytes", 0) > 0, "memory tier reports no residency"
assert samples.get("xtsim_cache_mem_bytes", 0) <= 64 * 1024 * 1024, "residency above cap"
waits = samples.get("xtsim_queue_wait_seconds_count", 0)
assert waits >= 7, f"queue wait histogram saw {waits} runs, expected >= 7"
infs = [v for k, v in samples.items()
        if k.startswith("xtsim_queue_wait_seconds_bucket") and 'le="+Inf"' in k]
assert infs and infs[0] == waits, "queue wait +Inf bucket != _count"
EOF
# Byte-identity with the CLI artifact, cold and warm.
diff "$out/cli/fig02.json" "$out/serve_cold.json" || {
    echo "service result (cold) differs from figures CLI output"; exit 1;
}
diff "$out/cli/fig02.json" "$out/serve_warm.json" || {
    echo "service result (warm) differs from figures CLI output"; exit 1;
}
for i in 0 1 2 3; do
    diff "$out/cli/fig02.json" "$out/serve_par_$i.json" || {
        echo "parallel client $i result differs from figures CLI output"; exit 1;
    }
done
kill "$serve_pid" 2>/dev/null || true
trap - EXIT
# The --events JSONL sink exists and every line is a schema-tagged record
# (a clean smoke may legitimately log nothing; format still must hold).
test -e "$out/events.jsonl" || { echo "--events did not create the sink"; exit 1; }
python3 - "$out/events.jsonl" <<'EOF'
import json, sys
for line in open(sys.argv[1]):
    rec = json.loads(line)
    assert rec["schema"] == "xtsim-events-v1", rec
    assert {"ts_unix", "level", "target", "message"} <= rec.keys(), rec
EOF
# One-shot dashboard mode renders from the registry alone.
target/release/xtsim-serve --registry-dir "$out/registry" --bench-root . \
    --dashboard "$out/dash" >/dev/null
grep -q "<svg" "$out/dash/index.html" || { echo "one-shot dashboard has no SVG"; exit 1; }
rm -rf "$out"

echo "== bench smoke (quick stress benches + threshold gate + JSON shape) =="
out="$(mktemp -d)"
# --check compares against the committed quick-scale baseline and fails on
# a >2x regression; tolerance is deliberately loose because the quick
# schedule takes few samples (see BENCH_QUICK.json for the recorded floor).
# cache/concurrent_mixed_8t is deliberately absent from that baseline: 8
# threads timesliced onto this single-core container make its median pure
# scheduling noise (2x run-to-run swings observed). It must still run and
# report (asserted below); the tier speed gate is the within-run memory-
# vs-disk ratio, which machine load cancels out of.
scripts/bench.sh --quick --out "$out/bench.json" --check BENCH_QUICK.json:1.0 >/dev/null
python3 - "$out/bench.json" <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
assert rec["schema"] == "xtsim-bench-v1", f"bad schema: {rec.get('schema')}"
assert rec["quick"] is True, "quick run must record quick=true"
benches = rec["benches"]
for name in (
    "fluid_pool/flows_1k",
    "fluid_pool/flows_10k",
    "alltoall_fluid/ranks_256",
    "alltoall_fluid/ranks_1024",
    "pdes_alltoall/ranks_1024/threads_1",
    "pdes_alltoall/ranks_1024/threads_4",
    "cache/cold_miss",
    "cache/warm_disk_hit",
    "cache/warm_memory_hit",
    "cache/concurrent_mixed_8t",
):
    b = benches.get(name)
    assert b, f"missing bench {name}"
    ms = b.get("median_ms", b.get("after_ms"))
    assert ms and ms > 0, f"{name}: no positive timing"
    assert b.get("iters", 1) >= 1, f"{name}: no iterations"

# The hot tier must actually be hot: a warm memory-tier lookup has to beat
# a warm disk-tier lookup by at least 2x median, or the two-tier design is
# not paying for itself (ISSUE 9 acceptance gate).
def ms(name):
    b = benches[name]
    return b.get("median_ms", b.get("after_ms"))
assert ms("cache/warm_memory_hit") * 2 <= ms("cache/warm_disk_hit"), (
    f"memory tier not >=2x faster than disk tier: "
    f"{ms('cache/warm_memory_hit'):.3f} ms vs {ms('cache/warm_disk_hit'):.3f} ms"
)
# The committed before/after record must keep the same shape.
committed = json.load(open("BENCH_PR4.json"))
assert committed["schema"] == "xtsim-bench-v1"
for name, b in committed["benches"].items():
    assert "after_ms" in b or "median_ms" in b, f"BENCH_PR4.json {name}: no timing"
EOF
rm -rf "$out"

echo "CI gate passed."
