#!/usr/bin/env bash
# CI gate: lint, build, full test suite (includes the golden-figure
# regression harness, the sweep-engine determinism/cache tests, the
# observability trace/metrics consistency tests, and the cache-key and
# JSON-string property tests), then a cache-disabled quick-scale smoke run
# of the figures binary itself plus a trace/metrics export smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
# Root-package tests carry the golden gate; --workspace adds every crate's
# unit/integration tests (sweep engine, cache keys, simulator layers, the
# offline compat shims).
cargo test --workspace -q

echo "== figures smoke (quick scale, cache off) =="
out="$(mktemp -d)"
cargo run --release -p xtsim-bench --bin figures -- \
    --all --quick --no-cache --jobs 4 --out "$out" >/dev/null
for id in table1 fig01 fig12 fig23; do
    test -s "$out/$id.json" || { echo "missing $id.json"; exit 1; }
done
rm -rf "$out"

echo "== trace/metrics export smoke =="
out="$(mktemp -d)"
cargo run --release -p xtsim-bench --bin figures -- \
    --quick --no-cache --only fig02 --jobs 2 --out "$out" \
    --trace "$out/traces" --metrics "$out/metrics.json" >/dev/null
test -s "$out/metrics.json" || { echo "missing metrics.json"; exit 1; }
ls "$out"/traces/*.trace.json >/dev/null || { echo "no trace files"; exit 1; }
# Every exported artifact must be well-formed JSON with the expected shape.
python3 - "$out" <<'EOF'
import glob, json, sys
out = sys.argv[1]
metrics = json.load(open(f"{out}/metrics.json"))
assert metrics["figures"], "metrics record lists no figures"
fig = metrics["figures"][0]
assert fig["computed"] == len(fig["trace_files"]), "one trace per computed job"
assert fig["sim_total_secs"] > 0, "no simulated time attributed"
for path in glob.glob(f"{out}/traces/*.trace.json"):
    trace = json.load(open(path))
    assert trace["traceEvents"], f"{path}: empty traceEvents"
    assert all(ev["ph"] == "X" for ev in trace["traceEvents"])
EOF
rm -rf "$out"

echo "CI gate passed."
