//! End-to-end shape assertions: every headline qualitative claim of the
//! paper, checked against reduced-scale regenerations of its figures.
//! These are the repository's acceptance tests.

use xt4_repro::xtsim::apps::{cam, namd, pop, s3d};
use xt4_repro::xtsim::hpcc::{bidir, global, local, netbench};
use xt4_repro::xtsim::machine::{presets, ExecMode};

/// §5.1.1 / Figure 2: XT4 SN-mode latency beats XT3; VN mode is worst.
#[test]
fn latency_ordering_sn_xt4_best_vn_worst() {
    let xt3 = netbench::network_bench(&presets::xt3_single(), ExecMode::SN, 16);
    let sn = netbench::network_bench(&presets::xt4(), ExecMode::SN, 16);
    let vn = netbench::network_bench(&presets::xt4(), ExecMode::VN, 16);
    assert!(sn.pp_min_us < xt3.pp_min_us);
    assert!(vn.pp_min_us > xt3.pp_min_us);
    // "approaching 18us worst case": VN random ring is far above SN.
    assert!(vn.rand_ring_us > 1.5 * sn.rand_ring_us);
}

/// §5.1.1 / Figure 3: ping-pong bandwidth roughly doubles (injection bw).
#[test]
fn bandwidth_doubles_xt3_to_xt4() {
    let xt3 = netbench::network_bench(&presets::xt3_single(), ExecMode::SN, 16);
    let xt4 = netbench::network_bench(&presets::xt4(), ExecMode::SN, 16);
    let ratio = xt4.pp_min_bw / xt3.pp_min_bw;
    assert!(ratio > 1.6 && ratio < 2.1, "ratio {ratio}");
}

/// §5.1.2 / Figures 4-7: the temporal-locality dichotomy.
#[test]
fn temporal_locality_survives_second_core_spatial_does_not() {
    let m = presets::xt4();
    for k in [local::LocalKernel::Fft, local::LocalKernel::Dgemm] {
        let r = local::local_bench(&m, ExecMode::VN, k);
        assert!(r.ep / r.sp > 0.9, "{k:?} degraded: {r:?}");
    }
    for k in [
        local::LocalKernel::RandomAccess,
        local::LocalKernel::StreamTriad,
    ] {
        let r = local::local_bench(&m, ExecMode::VN, k);
        assert!((r.ep / r.sp - 0.5).abs() < 0.05, "{k:?}: {r:?}");
    }
}

/// §5.1.3 / Figure 8 vs Figure 10: HPL gains from the second core; PTRANS
/// does not gain from XT3→XT4 (link bandwidth unchanged).
#[test]
fn hpl_doubles_per_socket_ptrans_flat() {
    let sockets = 64;
    let hpl_sn = global::hpl(&presets::xt4(), ExecMode::SN, sockets);
    let hpl_vn = global::hpl(&presets::xt4(), ExecMode::VN, sockets);
    assert!(hpl_vn / hpl_sn > 1.6, "{hpl_vn} vs {hpl_sn}");
    let pt3 = global::ptrans(&presets::xt3_single(), ExecMode::SN, sockets);
    let pt4 = global::ptrans(&presets::xt4(), ExecMode::SN, sockets);
    assert!(
        (pt4 / pt3) < 1.6,
        "PTRANS should not scale with injection bw: {pt3} -> {pt4}"
    );
}

/// §5.1.3 / Figure 11: "VN mode XT4 is slower both per-core and per-socket
/// than XT3" for MPI-RandomAccess.
#[test]
fn mpi_ra_vn_collapse() {
    let sockets = 32;
    let xt3 = global::mpi_ra(&presets::xt3_single(), ExecMode::SN, sockets);
    let vn = global::mpi_ra(&presets::xt4(), ExecMode::VN, sockets);
    assert!(vn < xt3, "VN {vn} should fall below XT3 {xt3}");
}

/// §5.2 / Figures 12-13: the three quantitative claims of the text.
#[test]
fn bidirectional_bandwidth_claims() {
    // "at least 1.8 times that of the dual-core XT3" above 100 KB. The
    // simulated ratio converges to the 1.8x injection-bandwidth ratio as the
    // rendezvous handshake amortizes; allow the transition region at 128 KB.
    for (bytes, floor) in [(131_072u64, 1.55), (1 << 20, 1.7), (4 << 20, 1.75)] {
        let xt3 = bidir::bidir_point(&presets::xt3_dual(), ExecMode::VN, 1, bytes);
        let xt4 = bidir::bidir_point(&presets::xt4(), ExecMode::VN, 1, bytes);
        assert!(
            xt4.bandwidth_mbs / xt3.bandwidth_mbs >= floor,
            "{bytes}: {} vs {}",
            xt4.bandwidth_mbs,
            xt3.bandwidth_mbs
        );
    }
    // "exactly half the per pair bidirectional bandwidth" for two pairs.
    let one = bidir::bidir_point(&presets::xt4(), ExecMode::VN, 1, 4 << 20);
    let two = bidir::bidir_point(&presets::xt4(), ExecMode::VN, 2, 4 << 20);
    assert!((one.bandwidth_mbs / two.bandwidth_mbs - 2.0).abs() < 0.25);
    // "latency for the two-pair experiments is over twice the single-pair".
    let one_small = bidir::bidir_point(&presets::xt4(), ExecMode::VN, 1, 8);
    let two_small = bidir::bidir_point(&presets::xt4(), ExecMode::VN, 2, 8);
    assert!(two_small.latency_us > 1.5 * one_small.latency_us);
}

/// §6.1 / Figure 14: VN mode wins on a per-node basis for CAM ("~30% better
/// throughput using approximately the same number of compute nodes").
#[test]
fn cam_vn_wins_per_node() {
    let m = presets::xt4();
    // 120 SN tasks vs 240 VN tasks: same 120 nodes.
    let sn = cam::cam(&m, ExecMode::SN, 120, 1).unwrap();
    let vn = cam::cam(&m, ExecMode::VN, 240, 1).unwrap();
    let gain = vn.years_per_day / sn.years_per_day;
    assert!(gain > 1.15 && gain < 2.0, "per-node VN gain {gain}");
}

/// §6.2 / Figures 17-19: POP's solver sensitivity.
#[test]
fn pop_cg_variant_and_phase_structure() {
    let m = presets::xt4();
    let std = pop::pop(&m, ExecMode::VN, 2048, pop::Solver::StandardCg).unwrap();
    let cgv = pop::pop(&m, ExecMode::VN, 2048, pop::Solver::ChronopoulosGear).unwrap();
    // Halving the reductions helps, and specifically in the barotropic phase.
    assert!(cgv.years_per_day > std.years_per_day);
    assert!(cgv.barotropic_secs_per_day < std.barotropic_secs_per_day);
    assert!((cgv.baroclinic_secs_per_day - std.baroclinic_secs_per_day).abs() < 1.0);
}

/// §6.3 / Figures 20-21: NAMD sees only a small XT4 gain and a small VN
/// penalty (it is compute-bound).
#[test]
fn namd_insensitivity() {
    let t = 512;
    let xt3 = namd::namd(&presets::xt3_dual(), ExecMode::VN, t, namd::System::Atoms1M);
    let xt4 = namd::namd(&presets::xt4(), ExecMode::VN, t, namd::System::Atoms1M);
    let gain = xt3.secs_per_step / xt4.secs_per_step;
    assert!(gain > 1.0 && gain < 1.2, "XT4 gain {gain} (paper: ~5%)");
    let sn = namd::namd(&presets::xt4(), ExecMode::SN, t, namd::System::Atoms1M);
    let vn = namd::namd(&presets::xt4(), ExecMode::VN, t, namd::System::Atoms1M);
    let penalty = vn.secs_per_step / sn.secs_per_step;
    assert!(penalty < 1.35, "VN penalty {penalty} (paper: <=10%ish)");
}

/// §6.4 / Figure 22: S3D's 30% VN penalty is memory contention, not MPI.
#[test]
fn s3d_vn_penalty_is_memory_not_mpi() {
    let m = presets::xt4();
    let one_sn = s3d::s3d(&m, ExecMode::SN, 1);
    let two_sn = s3d::s3d(&m, ExecMode::SN, 2);
    let two_vn = s3d::s3d(&m, ExecMode::VN, 2);
    // SN 1 vs 2 tasks: same time (MPI exonerated).
    assert!((two_sn.secs_per_step / one_sn.secs_per_step) < 1.05);
    // VN: ~30% slower.
    let ratio = two_vn.secs_per_step / one_sn.secs_per_step;
    assert!(ratio > 1.2 && ratio < 1.45, "{ratio}");
}

/// §7: the summary trend — per-socket gain XT3→XT4 is large for
/// temporal-locality codes, small for spatial/latency-bound ones.
#[test]
fn summary_balance_trend() {
    // Temporal locality: HPL per socket (VN uses both cores).
    let hpl3 = global::hpl(&presets::xt3_single(), ExecMode::SN, 32);
    let hpl4 = global::hpl(&presets::xt4(), ExecMode::VN, 32);
    let temporal_gain = hpl4 / hpl3;
    // Low locality: MPI-RA per socket.
    let ra3 = global::mpi_ra(&presets::xt3_single(), ExecMode::SN, 32);
    let ra4 = global::mpi_ra(&presets::xt4(), ExecMode::VN, 32);
    let low_gain = ra4 / ra3;
    assert!(
        temporal_gain > 1.8 && low_gain < 1.1,
        "temporal {temporal_gain} vs low-locality {low_gain}"
    );
}
