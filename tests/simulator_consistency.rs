//! Cross-crate consistency checks on the simulation machinery itself:
//! modeled vs algorithmic collectives, contention models, determinism, and
//! calibration invariants that every figure depends on.

use std::cell::RefCell;
use std::rc::Rc;

use xt4_repro::xtsim::machine::{fit_dims, presets, ExecMode};
use xt4_repro::xtsim::mpi::{simulate, CollectiveMode, Message, ReduceOp, WorldConfig};
use xt4_repro::xtsim::net::{ContentionModel, PlatformConfig, Placement};

fn cfg(
    ranks: usize,
    mode: ExecMode,
    coll: CollectiveMode,
    contention: ContentionModel,
) -> WorldConfig {
    let mut spec = presets::xt4();
    spec.torus_dims = fit_dims(ranks.div_ceil(spec.ranks_per_node(mode)));
    let mut p = PlatformConfig::new(spec, mode, ranks);
    p.contention = contention;
    p.placement = Placement::Block;
    let mut w = WorldConfig::new(p);
    w.collectives = coll;
    w
}

/// Modeled and algorithmic allreduce must agree to first order — the POP
/// figures switch between them across the sweep.
#[test]
fn modeled_and_algorithmic_allreduce_agree() {
    let p = 128;
    let time = |coll| {
        simulate(
            9,
            cfg(p, ExecMode::SN, coll, ContentionModel::Fluid),
            |mpi| async move {
                for _ in 0..4 {
                    mpi.comm().allreduce(vec![1.0], ReduceOp::Sum).await;
                }
            },
        )
        .end_time
        .as_secs_f64()
    };
    let alg = time(CollectiveMode::Algorithmic);
    let modeled = time(CollectiveMode::Modeled);
    let ratio = modeled / alg;
    assert!(ratio > 0.4 && ratio < 2.5, "alg {alg} vs modeled {modeled}");
}

/// Counting and fluid contention agree on an uncongested transfer and rank
/// congested transfers in the same order.
#[test]
fn contention_models_agree_qualitatively() {
    let run = |contention, pairs: usize| {
        let ranks = 2 * pairs;
        let bytes = 4u64 << 20;
        simulate(
            9,
            cfg(ranks, ExecMode::SN, CollectiveMode::Algorithmic, contention),
            move |mpi| async move {
                let p = mpi.size() / 2;
                let me = mpi.rank();
                // Pairs (i, i+p) all transfer simultaneously.
                if me < p {
                    mpi.send(me + p, 0, Message::of_bytes(bytes)).await;
                } else {
                    mpi.recv(Some(me - p), Some(0)).await;
                }
            },
        )
        .end_time
        .as_secs_f64()
    };
    for pairs in [1usize, 4] {
        let fluid = run(ContentionModel::Fluid, pairs);
        let counting = run(ContentionModel::Counting, pairs);
        let ratio = counting / fluid;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "pairs={pairs}: fluid {fluid} counting {counting}"
        );
    }
}

/// The same program produces the identical schedule on repeated runs
/// (end-to-end determinism across the whole stack).
#[test]
fn end_to_end_determinism() {
    let run = || {
        simulate(
            1234,
            cfg(
                64,
                ExecMode::VN,
                CollectiveMode::Algorithmic,
                ContentionModel::Fluid,
            ),
            |mpi| async move {
                let r = mpi.rank();
                let peer = (r + 7) % mpi.size();
                mpi.sendrecv(peer, 3, Message::of_bytes(100_000), None, Some(3))
                    .await;
                mpi.comm().allreduce(vec![r as f64], ReduceOp::Max).await;
                mpi.comm().barrier().await;
            },
        )
        .end_time
        .as_ps()
    };
    let first = run();
    for _ in 0..3 {
        assert_eq!(run(), first);
    }
}

/// Serial and multi-worker sweeps of a fluid-model figure stay
/// byte-identical: the component-local rebalancer runs inside each job's
/// private single-threaded world, so `--jobs N` must not perturb a single
/// bit of the assembled output.
#[test]
fn serial_and_parallel_fluid_sweeps_are_byte_identical() {
    use xt4_repro::xtsim::figures::figure;
    use xt4_repro::xtsim::report::Scale;
    use xt4_repro::xtsim::sweep::{run_figure, SweepConfig};

    // fig12 (bidirectional bandwidth) is the heaviest fluid-pool user in
    // the golden set — many concurrent flows sharing torus links.
    let fig = figure("fig12").expect("fig12 registered");
    let serial = run_figure(fig.spec(Scale::Quick), &SweepConfig::serial()).0;
    let parallel = run_figure(fig.spec(Scale::Quick), &SweepConfig::threads(4)).0;
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "fig12 output depends on --jobs"
    );
}

/// Collectives preserve data across every mode the figures use.
#[test]
fn collective_data_integrity_across_modes() {
    for coll in [CollectiveMode::Algorithmic, CollectiveMode::Modeled] {
        let sum = Rc::new(RefCell::new(0.0));
        let s2 = Rc::clone(&sum);
        let p = 96;
        simulate(
            5,
            cfg(p, ExecMode::VN, coll, ContentionModel::Counting),
            move |mpi| {
                let sum = Rc::clone(&s2);
                async move {
                    let out = mpi
                        .comm()
                        .allreduce(vec![mpi.rank() as f64, 1.0], ReduceOp::Sum)
                        .await;
                    if mpi.rank() == 0 {
                        *sum.borrow_mut() = out[0] + out[1];
                    }
                }
            },
        );
        let expect = (p * (p - 1) / 2) as f64 + p as f64;
        assert_eq!(*sum.borrow(), expect, "{coll:?}");
    }
}

/// Placement affects locality: with block placement, rank i and i+1 in VN
/// mode share a node, so tiny messages between them are much faster than
/// between distant ranks.
#[test]
fn block_placement_gives_cheap_sibling_messages() {
    let time_between = |a: usize, b: usize| {
        simulate(
            2,
            cfg(
                32,
                ExecMode::VN,
                CollectiveMode::Algorithmic,
                ContentionModel::Fluid,
            ),
            move |mpi| async move {
                if mpi.rank() == a {
                    mpi.send(b, 0, Message::of_bytes(8)).await;
                } else if mpi.rank() == b {
                    mpi.recv(Some(a), Some(0)).await;
                }
            },
        )
        .end_time
        .as_secs_f64()
    };
    let sibling = time_between(0, 1); // same node
    let remote = time_between(0, 30); // different node
    assert!(
        sibling < 0.7 * remote,
        "sibling {sibling} vs remote {remote}"
    );
}

/// The calibration contract: simulated single-rank rates match the paper's
/// published XT3/XT4 values within tolerance (these are the anchors every
/// derived figure rests on).
#[test]
fn calibration_anchors() {
    use xt4_repro::xtsim::hpcc::local::{local_bench, LocalKernel};
    let checks = [
        (presets::xt3_single(), LocalKernel::StreamTriad, 5.1, 0.2),
        (presets::xt4(), LocalKernel::StreamTriad, 7.3, 0.2),
        (presets::xt3_single(), LocalKernel::RandomAccess, 0.014, 0.002),
        (presets::xt4(), LocalKernel::RandomAccess, 0.019, 0.002),
        (presets::xt3_single(), LocalKernel::Dgemm, 4.18, 0.2),
        (presets::xt4(), LocalKernel::Dgemm, 4.52, 0.2),
        (presets::xt3_single(), LocalKernel::Fft, 0.50, 0.07),
        (presets::xt4(), LocalKernel::Fft, 0.63, 0.08),
    ];
    for (m, k, expect, tol) in checks {
        let got = local_bench(&m, ExecMode::SN, k).sp;
        assert!(
            (got - expect).abs() < tol,
            "{} {:?}: {} (want {} +/- {})",
            m.name,
            k,
            got,
            expect,
            tol
        );
    }
}
