//! Differential gate for the conservative parallel DES mode.
//!
//! Three layers of evidence that `--des-threads N` can never change a
//! published number:
//!
//! 1. **Figure byte-identity** — a representative figure subset rendered
//!    serially and with the engine advertising 2/4/8 DES threads must
//!    produce identical bytes (render + JSON).
//! 2. **Full event-log diffs** — two small scenarios (pairwise alltoall,
//!    halo+allreduce) run with per-rank event logging; the merged logs,
//!    per-rank finish times, and checksums must match the serial reference
//!    entry-for-entry for every sharding.
//! 3. **Schedule perturbation** — proptest drives randomized node→shard
//!    partition maps, epoch-window caps, shard counts, and thread counts;
//!    final state must still match the serial run bit-for-bit.

use proptest::prelude::*;
use xt4_repro::xtsim::apps::pdes::{alltoall, halo_allreduce, PdesScenario};
use xt4_repro::xtsim::des::SimDuration;
use xt4_repro::xtsim::figures::figure;
use xt4_repro::xtsim::machine::{presets, ExecMode};
use xt4_repro::xtsim::report::Scale;
use xt4_repro::xtsim::sweep::{run_figure, SweepConfig};

/// Figures the CI gate diffs serial-vs-parallel. fig24 actually uses the
/// parallel engine; fig02/fig12 prove the knob is inert elsewhere.
const FIGURE_SUBSET: [&str; 3] = ["fig02", "fig12", "fig24"];

fn render_with_threads(id: &str, des_threads: usize) -> (String, String) {
    let cfg = SweepConfig::serial().with_des_threads(des_threads);
    let (result, _) = run_figure(figure(id).expect(id).spec(Scale::Quick), &cfg);
    let json = serde_json::to_string_pretty(&result).expect("serialize");
    (result.render(), json)
}

#[test]
fn figure_subset_is_byte_identical_across_des_threads() {
    for id in FIGURE_SUBSET {
        let base = render_with_threads(id, 1);
        for threads in [2, 4, 8] {
            let got = render_with_threads(id, threads);
            assert_eq!(got.0, base.0, "{id} render drifted at {threads} DES threads");
            assert_eq!(got.1, base.1, "{id} JSON drifted at {threads} DES threads");
        }
    }
}

fn scenario(ranks: usize) -> PdesScenario {
    let mut s = PdesScenario::new(presets::xt4(), ExecMode::VN, ranks);
    s.log_events = true;
    s
}

#[test]
fn alltoall_event_log_matches_serial_reference() {
    let base = alltoall(&scenario(12), 8192);
    assert!(!base.log.is_empty());
    for (shards, threads) in [(2, 2), (3, 4), (4, 4), (4, 8)] {
        let run = alltoall(&scenario(12).sharded(shards, threads), 8192);
        assert_eq!(
            run.log, base.log,
            "event log diverged at {shards} shards / {threads} threads"
        );
        assert_eq!(run.finish_times, base.finish_times);
        assert_eq!(run.time_s.to_bits(), base.time_s.to_bits());
    }
}

#[test]
fn halo_event_log_and_checksum_match_serial_reference() {
    let base = halo_allreduce(&scenario(10), 2048, 6);
    assert!(!base.log.is_empty());
    assert!(base.checksum.is_finite() && base.checksum != 0.0);
    for (shards, threads) in [(2, 2), (4, 4), (5, 8)] {
        let run = halo_allreduce(&scenario(10).sharded(shards, threads), 2048, 6);
        assert_eq!(
            run.log, base.log,
            "event log diverged at {shards} shards / {threads} threads"
        );
        assert_eq!(run.checksum.to_bits(), base.checksum.to_bits());
        assert_eq!(run.finish_times, base.finish_times);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized partition maps, epoch windows, shard and thread counts:
    /// the halo scenario's full final state must equal the serial run.
    /// 12 VN ranks on xt4 = 6 nodes, so maps have 6 entries.
    #[test]
    fn halo_state_survives_schedule_perturbation(
        map in proptest::collection::vec(0usize..4, 6),
        window_ps in 1u64..200_000,
        threads in 1usize..9,
        iters in 1usize..5,
    ) {
        let base = halo_allreduce(&scenario(12), 1024, iters);
        let shards = map.iter().copied().max().unwrap_or(0) + 1;
        let mut sc = scenario(12).sharded(shards, threads);
        sc.partition = Some(map);
        sc.window = Some(SimDuration::from_ps(window_ps));
        let run = halo_allreduce(&sc, 1024, iters);
        prop_assert_eq!(run.checksum.to_bits(), base.checksum.to_bits());
        prop_assert_eq!(run.finish_times, base.finish_times);
        prop_assert_eq!(run.log, base.log);
    }

    /// Same perturbation sweep for the alltoall pattern (pure p2p).
    #[test]
    fn alltoall_state_survives_schedule_perturbation(
        map in proptest::collection::vec(0usize..3, 6),
        window_ps in 1u64..200_000,
        threads in 1usize..9,
    ) {
        let base = alltoall(&scenario(12), 4096);
        let shards = map.iter().copied().max().unwrap_or(0) + 1;
        let mut sc = scenario(12).sharded(shards, threads);
        sc.partition = Some(map);
        sc.window = Some(SimDuration::from_ps(window_ps));
        let run = alltoall(&sc, 4096);
        prop_assert_eq!(run.finish_times, base.finish_times);
        prop_assert_eq!(run.log, base.log);
    }
}
