//! Golden-figure regression gate: five representative outputs (the system
//! table, a network microbenchmark, a global HPCC sweep, the bidirectional
//! bandwidth sweep, and an application figure) are pinned as JSON under
//! `tests/goldens/` and every regeneration must match them within a tight
//! numeric tolerance.
//!
//! When a *deliberate* model change shifts the numbers, regenerate with:
//!
//! ```text
//! cargo run --release -p xtsim-bench --bin figures -- \
//!     --quick --no-cache --only table1,fig02,fig08,fig12,fig23,fig24 --out tests/goldens
//! rm tests/goldens/*.csv
//! ```
//!
//! and bump `xtsim::sweep::ENGINE_VERSION` so stale cache entries stop
//! hitting. Unexplained drift here means simulator semantics changed.
//!
//! Parallel DES: the `DES_THREADS` env var reruns the same gate with the
//! conservative parallel engine under every PDES-aware figure (CI runs it
//! at 1 and 4). The goldens are shared — thread count must never move a
//! number.

use serde::Value;
use xt4_repro::xtsim::figures::figure;
use xt4_repro::xtsim::report::Scale;
use xt4_repro::xtsim::sweep::{run_figure, SweepConfig};

const GOLDEN_IDS: [&str; 6] = ["table1", "fig02", "fig08", "fig12", "fig23", "fig24"];

/// DES worker-thread budget for this gate run (`DES_THREADS` env, default
/// 1). Deliberately NOT part of the golden file names: every budget must
/// reproduce the same bytes.
fn des_threads() -> usize {
    std::env::var("DES_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(1)
}

/// Relative tolerance for numeric comparison. The engine is deterministic,
/// so goldens normally match exactly; the headroom only absorbs libm-level
/// differences across toolchains.
const RTOL: f64 = 1e-9;
const ATOL: f64 = 1e-12;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= ATOL + RTOL * a.abs().max(b.abs())
}

/// Structural comparison with numeric tolerance; returns the path of the
/// first mismatch.
fn compare(path: &str, got: &Value, want: &Value) -> Result<(), String> {
    match (got, want) {
        (Value::Object(g), Value::Object(w)) => {
            let gk: Vec<_> = g.keys().collect();
            let wk: Vec<_> = w.keys().collect();
            if gk != wk {
                return Err(format!("{path}: keys {gk:?} != {wk:?}"));
            }
            for (k, gv) in g {
                compare(&format!("{path}.{k}"), gv, &w[k])?;
            }
            Ok(())
        }
        (Value::Array(g), Value::Array(w)) => {
            if g.len() != w.len() {
                return Err(format!("{path}: length {} != {}", g.len(), w.len()));
            }
            for (i, (gv, wv)) in g.iter().zip(w).enumerate() {
                compare(&format!("{path}[{i}]"), gv, wv)?;
            }
            Ok(())
        }
        _ => match (got.as_f64(), want.as_f64()) {
            (Some(g), Some(w)) => {
                if close(g, w) {
                    Ok(())
                } else {
                    Err(format!("{path}: {g} != {w} (beyond tolerance)"))
                }
            }
            _ => {
                if got == want {
                    Ok(())
                } else {
                    Err(format!("{path}: {got:?} != {want:?}"))
                }
            }
        },
    }
}

#[test]
fn quick_figures_match_goldens() {
    let golden_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    for id in GOLDEN_IDS {
        let golden_text = std::fs::read_to_string(golden_dir.join(format!("{id}.json")))
            .unwrap_or_else(|e| panic!("missing golden for {id}: {e}"));
        let want: Value = serde_json::from_str(&golden_text)
            .unwrap_or_else(|e| panic!("unparseable golden for {id}: {e:?}"));
        let cfg = SweepConfig::serial().with_des_threads(des_threads());
        let got = serde_json::to_value(&run_figure(figure(id).expect(id).spec(Scale::Quick), &cfg).0)
            .unwrap();
        if let Err(diff) = compare(id, &got, &want) {
            panic!(
                "{id} drifted from its golden: {diff}\n\
                 If the change is intentional, regenerate tests/goldens/ (see file header) \
                 and bump ENGINE_VERSION."
            );
        }
    }
}

#[test]
fn tolerance_comparator_flags_real_differences() {
    let a: Value = serde_json::from_str(r#"{"x": [1.0, 2.0]}"#).unwrap();
    let b: Value = serde_json::from_str(r#"{"x": [1.0, 2.0000001]}"#).unwrap();
    assert!(compare("t", &a, &a.clone()).is_ok());
    assert!(compare("t", &a, &b).is_err());
    // Within tolerance passes.
    let c: Value = serde_json::from_str(r#"{"x": [1.0, 2.0000000000000004]}"#).unwrap();
    assert!(compare("t", &a, &c).is_ok());
}
