//! Smoke test: every registered figure and ablation regenerates at quick
//! scale with finite, non-empty output. This is the harness's CI gate.

use xt4_repro::xtsim::ablations::all_ablations;
use xt4_repro::xtsim::figures::all_figures;
use xt4_repro::xtsim::report::Scale;

#[test]
fn every_figure_regenerates_quick() {
    for fig in all_figures() {
        let out = fig.run(Scale::Quick);
        assert_eq!(out.id, fig.id);
        assert!(
            !out.series.is_empty() || !out.notes.is_empty(),
            "{} produced nothing",
            fig.id
        );
        for s in &out.series {
            assert!(!s.points.is_empty(), "{}::{} empty", fig.id, s.name);
            for &(x, y) in &s.points {
                assert!(x.is_finite() && y.is_finite(), "{}::{}", fig.id, s.name);
                assert!(y >= 0.0, "{}::{} negative y {}", fig.id, s.name, y);
            }
        }
        // Render and CSV never panic and carry the id.
        assert!(out.render().contains(fig.id));
        let _ = out.to_csv();
    }
}

#[test]
fn every_ablation_regenerates_quick() {
    for fig in all_ablations() {
        let out = fig.run(Scale::Quick);
        assert!(!out.series.is_empty(), "{} produced nothing", fig.id);
        for s in &out.series {
            for &(_, y) in &s.points {
                assert!(y.is_finite());
            }
        }
    }
}
