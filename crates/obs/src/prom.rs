//! Prometheus text-format (version 0.0.4) exposition.
//!
//! Renders a registry [`Snapshot`](crate::metrics::Snapshot) into the
//! line-oriented format Prometheus scrapes: `# HELP` / `# TYPE` headers per
//! family, one sample line per series, and for histograms the cumulative
//! `_bucket{le="..."}` ladder plus `_sum` / `_count`. Rendering is pure —
//! same snapshot in, same bytes out — so exposition is as deterministic as
//! the counters feeding it.

use crate::metrics::{MetricKind, SeriesValue, Snapshot, BUCKET_BOUNDS};
use std::fmt::Write as _;

/// Content-Type for the exposition, per the Prometheus text format spec.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Escape a label value: backslash, double-quote, and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape HELP text: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render `{k1="v1",k2="v2"}`, with `extra` (e.g. an `le` pair) appended
/// last. Returns the empty string when there are no labels at all.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Format an `f64` the way Prometheus expects finite sums: Rust's shortest
/// round-trip `Display`, which never produces exponents for our ladder
/// bounds ("0.0000001" .. "500").
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() }
    } else {
        format!("{v}")
    }
}

/// Render a snapshot as Prometheus text exposition.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for fam in &snap.families {
        let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
        let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
        for series in &fam.series {
            match (&series.value, fam.kind) {
                (SeriesValue::Counter(n), MetricKind::Counter)
                | (SeriesValue::Gauge(n), MetricKind::Gauge) => {
                    let _ =
                        writeln!(out, "{}{} {n}", fam.name, label_block(&series.labels, None));
                }
                (SeriesValue::Histogram(h), MetricKind::Histogram) => {
                    let mut cumulative = 0u64;
                    for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
                        cumulative += h.bucket_counts[i];
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            fam.name,
                            label_block(&series.labels, Some(("le", &fmt_f64(bound)))),
                        );
                    }
                    cumulative += h.bucket_counts[BUCKET_BOUNDS.len()];
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        fam.name,
                        label_block(&series.labels, Some(("le", "+Inf"))),
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        fam.name,
                        label_block(&series.labels, None),
                        fmt_f64(h.sum)
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        fam.name,
                        label_block(&series.labels, None),
                        h.count
                    );
                }
                // The registry enforces kind/handle agreement; this arm is
                // unreachable but keeps the match total.
                _ => {}
            }
        }
    }
    out
}

/// Render the process-global registry.
pub fn render_global() -> String {
    render(&crate::metrics::snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn counter_and_gauge_lines() {
        let reg = Registry::new();
        reg.counter("a_total", "things").add(3);
        reg.gauge_with("b_depth", "depth", &[("pool", "x")]).set(7);
        let text = render(&reg.snapshot());
        assert!(text.contains("# HELP a_total things\n"));
        assert!(text.contains("# TYPE a_total counter\n"));
        assert!(text.contains("\na_total 3\n"));
        assert!(text.contains("# TYPE b_depth gauge\n"));
        assert!(text.contains("b_depth{pool=\"x\"} 7\n"));
    }

    #[test]
    fn label_value_escaping() {
        let reg = Registry::new();
        reg.counter_with("esc_total", "h", &[("k", "a\\b\"c\nd")]).inc();
        let text = render(&reg.snapshot());
        assert!(
            text.contains(r#"esc_total{k="a\\b\"c\nd"} 1"#),
            "escaping wrong in: {text}"
        );
    }

    #[test]
    fn help_escaping() {
        let reg = Registry::new();
        reg.counter("h_total", "line1\nline2 \\ end").inc();
        let text = render(&reg.snapshot());
        assert!(text.contains("# HELP h_total line1\\nline2 \\\\ end\n"));
    }

    #[test]
    fn histogram_exposition_invariants() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", "latency");
        h.observe(0.0015);
        h.observe(0.003);
        h.observe(7000.0); // overflow
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        // Cumulative buckets must be monotone and end at _count.
        let mut prev = 0u64;
        let mut inf = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("lat_seconds_bucket{le=\"") {
                let (le, count) = rest.split_once("\"} ").unwrap();
                let count: u64 = count.parse().unwrap();
                assert!(count >= prev, "bucket counts must be cumulative: {line}");
                prev = count;
                if le == "+Inf" {
                    inf = Some(count);
                }
            }
        }
        let count_line = text
            .lines()
            .find(|l| l.starts_with("lat_seconds_count"))
            .unwrap();
        let total: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(inf, Some(total), "+Inf bucket must equal _count");
        assert_eq!(total, 3);
        let sum_line = text.lines().find(|l| l.starts_with("lat_seconds_sum")).unwrap();
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((sum - 7000.0045).abs() < 1e-9);
    }

    #[test]
    fn le_labels_are_plain_decimal() {
        let reg = Registry::new();
        reg.histogram("x_seconds", "h").observe(0.1);
        let text = render(&reg.snapshot());
        assert!(text.contains("le=\"0.0000001\""), "smallest bound must not be exponent-form");
        assert!(text.contains("le=\"500\""));
        assert!(!text.contains('e') || !text.contains("le=\"1e"), "no exponent le labels");
    }

    #[test]
    fn rendering_is_deterministic() {
        let reg = Registry::new();
        reg.counter_with("d_total", "h", &[("b", "2"), ("a", "1")]).inc();
        reg.histogram("d_seconds", "h").observe(0.5);
        let a = render(&reg.snapshot());
        let b = render(&reg.snapshot());
        assert_eq!(a, b);
    }
}
