//! Structured, leveled event log (`xtsim-events-v1`).
//!
//! Replaces the workspace's scattered `eprintln!` diagnostics with one
//! funnel: every event has a level, a target (the subsystem that emitted
//! it), a human message, and structured `key=value` fields. Two sinks:
//!
//! * **stderr** — events at WARN and above are mirrored as
//!   `warning: <message>` / `error: <message>` (the exact text the old
//!   `eprintln!` calls produced), followed by ` [k=v ...]` when fields are
//!   present, so humans lose nothing in the migration.
//! * **JSONL** — when a sink path is installed via [`set_json_path`],
//!   every event (all levels) is appended as one `xtsim-events-v1` JSON
//!   record per line: `schema`, `ts_unix` (wall-clock seconds since the
//!   epoch — harness-side only, never simulated time), `level`, `target`,
//!   `message`, and a `fields` object.
//!
//! Emission also bumps the `xtsim_events_total{level=...}` counter in the
//! global metrics registry, so event rates show up in `GET /metrics`.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema identifier written into every JSONL record.
pub const SCHEMA: &str = "xtsim-events-v1";

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose diagnostics.
    Debug,
    /// Routine progress.
    Info,
    /// Something degraded but handled (mirrored to stderr).
    Warn,
    /// Something failed (mirrored to stderr).
    Error,
}

impl Level {
    /// Lowercase name used in JSON records and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn stderr_prefix(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warning",
            Level::Error => "error",
        }
    }
}

struct Sink {
    json: Option<File>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink { json: None }))
}

/// Install (or replace) the JSONL sink. The file is opened in append mode
/// and created if missing. Returns an error string if it cannot be opened;
/// the previous sink (if any) is left installed in that case.
pub fn set_json_path(path: &std::path::Path) -> Result<(), String> {
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open event log {}: {e}", path.display()))?;
    sink().lock().expect("event sink lock").json = Some(file);
    Ok(())
}

/// Remove the JSONL sink (events still mirror to stderr at WARN+).
pub fn clear_json_sink() {
    sink().lock().expect("event sink lock").json = None;
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn render_record(ts_unix: f64, level: Level, target: &str, message: &str, fields: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(128 + message.len());
    out.push_str("{\"schema\":\"");
    out.push_str(SCHEMA);
    out.push_str("\",\"ts_unix\":");
    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{ts_unix:.6}"));
    out.push_str(",\"level\":\"");
    out.push_str(level.as_str());
    out.push_str("\",\"target\":\"");
    json_escape_into(&mut out, target);
    out.push_str("\",\"message\":\"");
    json_escape_into(&mut out, message);
    out.push_str("\",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(&mut out, k);
        out.push_str("\":\"");
        json_escape_into(&mut out, v);
        out.push('"');
    }
    out.push_str("}}");
    out
}

/// Emit one event. `target` names the emitting subsystem
/// (e.g. `"xtsim::sweep"`), `message` is the human-readable line, and
/// `fields` carry the structured payload for machines.
pub fn emit(level: Level, target: &str, message: &str, fields: &[(&str, &str)]) {
    crate::metrics::counter_with(
        "xtsim_events_total",
        "Structured log events emitted, by level.",
        &[("level", level.as_str())],
    )
    .inc();

    if level >= Level::Warn {
        let mut line = format!("{}: {}", level.stderr_prefix(), message);
        if !fields.is_empty() {
            line.push_str(" [");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{k}={v}"));
            }
            line.push(']');
        }
        eprintln!("{line}");
    }

    let mut guard = sink().lock().expect("event sink lock");
    if let Some(file) = guard.json.as_mut() {
        let ts_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let record = render_record(ts_unix, level, target, message, fields);
        // Best effort: a full disk must not take the harness down.
        let _ = writeln!(file, "{record}");
        let _ = file.flush();
    }
}

/// Emit at DEBUG (JSONL sink only; not mirrored to stderr).
pub fn debug(target: &str, message: &str, fields: &[(&str, &str)]) {
    emit(Level::Debug, target, message, fields);
}

/// Emit at INFO (JSONL sink only; not mirrored to stderr).
pub fn info(target: &str, message: &str, fields: &[(&str, &str)]) {
    emit(Level::Info, target, message, fields);
}

/// Emit at WARN (mirrored to stderr as `warning: <message>`).
pub fn warn(target: &str, message: &str, fields: &[(&str, &str)]) {
    emit(Level::Warn, target, message, fields);
}

/// Emit at ERROR (mirrored to stderr as `error: <message>`).
pub fn error(target: &str, message: &str, fields: &[(&str, &str)]) {
    emit(Level::Error, target, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(v: &'a serde_json::Value, k: &str) -> &'a serde_json::Value {
        v.as_object().expect("object").get(k).expect(k)
    }

    // One test fn on purpose: the JSONL sink is process-global, and
    // parallel test threads would interleave records.
    #[test]
    fn jsonl_sink_records_schema_and_escaping() {
        let dir = std::env::temp_dir().join(format!("xtsim-obs-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        set_json_path(&path).unwrap();

        info("xtsim::test", "plain message", &[("figure", "fig12"), ("scale", "0.1")]);
        warn("xtsim::test", "tricky \"quoted\" \\ back\nslash", &[("k", "v\twith\ttabs")]);
        debug("xtsim::test", "no fields", &[]);
        clear_json_sink();
        // After clearing, emission must not append.
        info("xtsim::test", "dropped", &[]);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "sink cleared but still appending: {text}");

        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert_eq!(get(&v, "schema").as_str(), Some(SCHEMA));
            assert!(get(&v, "ts_unix").as_f64().unwrap() > 0.0);
            assert!(get(&v, "fields").as_object().is_some());
        }
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(get(&first, "level").as_str(), Some("info"));
        assert_eq!(get(&first, "target").as_str(), Some("xtsim::test"));
        assert_eq!(get(&first, "message").as_str(), Some("plain message"));
        assert_eq!(get(get(&first, "fields"), "figure").as_str(), Some("fig12"));
        assert_eq!(get(get(&first, "fields"), "scale").as_str(), Some("0.1"));
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(get(&second, "level").as_str(), Some("warn"));
        assert_eq!(
            get(&second, "message").as_str(),
            Some("tricky \"quoted\" \\ back\nslash")
        );
        assert_eq!(get(get(&second, "fields"), "k").as_str(), Some("v\twith\ttabs"));

        // Level ordering backs the stderr-mirror threshold.
        assert!(Level::Warn >= Level::Warn && Level::Error > Level::Warn && Level::Info < Level::Warn);

        // Events bump the per-level counter in the global registry.
        let snap = crate::metrics::snapshot();
        assert!(snap.counter_sum("xtsim_events_total", &[("level", "info")]) >= 2);
        assert!(snap.counter_sum("xtsim_events_total", &[("level", "warn")]) >= 1);

        std::fs::remove_dir_all(&dir).ok();
    }
}
