//! Process-wide metrics registry: named counters, gauges, and log-linear
//! histograms behind cheap atomic handles.
//!
//! Registration returns an `Arc` handle; callers cache it (usually in a
//! `OnceLock`) and every subsequent update is a single atomic operation —
//! no locks, no allocation. Re-registering the same `(name, labels)` pair
//! returns the *same* underlying metric, so independent call sites
//! accumulate into one series. The registry itself is only locked during
//! registration and [`Registry::snapshot`].
//!
//! Histograms use a fixed log-linear bucket ladder — `{1, 2, 5} × 10^k`
//! seconds from 100 ns to 500 s (HDR-style: linear subdivision within each
//! decade, ≤ 2.5× relative error) — chosen so every latency this workspace
//! measures (cache lookups to full-scale figure runs) lands on a readable
//! boundary in the Prometheus exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ------------------------------------------------------------------ handles

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous (or high-water) value.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// Set the gauge to `n`.
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `n` if `n` is larger (high-water tracking).
    pub fn set_max(&self, n: u64) {
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Upper bounds (seconds) of the log-linear bucket ladder, excluding `+Inf`.
pub const BUCKET_BOUNDS: [f64; 30] = [
    1e-7, 2e-7, 5e-7, 1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
];

/// Log-linear latency histogram (seconds domain).
///
/// Bucket counts are stored per-bucket (not cumulative); the last slot is
/// the overflow (`+Inf`) bucket. The sum is an `f64` maintained with a CAS
/// loop over its bit pattern, so `observe` never takes a lock.
#[derive(Debug)]
pub struct Histogram {
    /// `BUCKET_BOUNDS.len() + 1` slots; the final slot is `+Inf`.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..=BUCKET_BOUNDS.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Histogram {
    /// Record one observation of `secs` (negative or NaN values count as 0).
    pub fn observe(&self, secs: f64) {
        let v = if secs.is_finite() && secs > 0.0 { secs } else { 0.0 };
        let idx = BUCKET_BOUNDS.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record the elapsed time of `sw` as one observation.
    pub fn observe_since(&self, sw: &Stopwatch) {
        self.observe(sw.elapsed_secs());
    }

    /// Start a guard that records the elapsed time when dropped.
    pub fn start_timer(self: &Arc<Histogram>) -> HistogramTimer {
        HistogramTimer { hist: Arc::clone(self), sw: Stopwatch::start() }
    }

    /// Point-in-time copy of this histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        // Count derived from the buckets, not kept separately: the
        // exposition invariant `+Inf cumulative == _count` then holds by
        // construction even under concurrent observers.
        let count = counts.iter().sum();
        HistogramSnapshot {
            bucket_counts: counts,
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Wall-clock stopwatch for harness-side latency measurement. Simulation
/// crates must not construct one — `xtsim-lint` flags `Stopwatch` tokens
/// outside the allowlisted harness paths.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { start: Instant::now() }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Drop guard from [`Histogram::start_timer`].
#[derive(Debug)]
pub struct HistogramTimer {
    hist: Arc<Histogram>,
    sw: Stopwatch,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.hist.observe_since(&self.sw);
    }
}

// ----------------------------------------------------------------- registry

/// What a metric family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Latency histogram.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` label.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the canonical (sorted) label set.
    series: BTreeMap<Vec<(String, String)>, Handle>,
}

/// A namespace of metric families. Most callers use the process-global one
/// via [`counter`]/[`gauge`]/[`histogram`]; tests construct private
/// registries to assert exposition without cross-test interference.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn canon_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> =
        labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
    v.sort();
    v
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T, F, G>(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)], make: F, cast: G) -> Arc<T>
    where
        F: FnOnce() -> Handle,
        G: Fn(&Handle) -> Option<Arc<T>>,
    {
        let mut fams = self.families.lock().expect("metrics registry lock");
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric {name:?} registered as {} but requested as {}",
            fam.kind.as_str(),
            kind.as_str()
        );
        let handle = fam.series.entry(canon_labels(labels)).or_insert_with(make);
        cast(handle).expect("family kind matches handle kind")
    }

    /// Counter handle for `(name, labels)`, registering on first use.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Handle::Counter(Arc::new(Counter::default())),
            |h| match h {
                Handle::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Unlabeled counter handle.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gauge handle for `(name, labels)`, registering on first use.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Handle::Gauge(Arc::new(Gauge::default())),
            |h| match h {
                Handle::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Unlabeled gauge handle.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Histogram handle for `(name, labels)`, registering on first use.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Handle::Histogram(Arc::new(Histogram::default())),
            |h| match h {
                Handle::Histogram(hh) => Some(Arc::clone(hh)),
                _ => None,
            },
        )
    }

    /// Unlabeled histogram handle.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Point-in-time copy of every registered series, families and series
    /// in lexicographic order (so renderings are deterministic for a given
    /// state).
    pub fn snapshot(&self) -> Snapshot {
        let fams = self.families.lock().expect("metrics registry lock");
        Snapshot {
            families: fams
                .iter()
                .map(|(name, fam)| FamilySnapshot {
                    name: name.clone(),
                    help: fam.help.clone(),
                    kind: fam.kind,
                    series: fam
                        .series
                        .iter()
                        .map(|(labels, handle)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: match handle {
                                Handle::Counter(c) => SeriesValue::Counter(c.get()),
                                Handle::Gauge(g) => SeriesValue::Gauge(g.get()),
                                Handle::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------- snapshots

/// Point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Families in name order.
    pub families: Vec<FamilySnapshot>,
}

impl Snapshot {
    /// Find a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of every counter series under `name` whose labels include all of
    /// `labels` (convenience for ratio panels).
    pub fn counter_sum(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let Some(fam) = self.family(name) else { return 0 };
        fam.series
            .iter()
            .filter(|s| {
                labels.iter().all(|(k, v)| {
                    s.labels.iter().any(|(sk, sv)| sk == k && sv == v)
                })
            })
            .map(|s| match s.value {
                SeriesValue::Counter(n) => n,
                _ => 0,
            })
            .sum()
    }

    /// Value of the first gauge series under `name` (gauge families used by
    /// the dashboard are single-series; convenience for residency tiles).
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.family(name)?.series.iter().find_map(|s| match s.value {
            SeriesValue::Gauge(n) => Some(n),
            _ => None,
        })
    }
}

/// One family (all series sharing a name) in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Series in canonical label order.
    pub series: Vec<SeriesSnapshot>,
}

/// One series (a label set) in a [`FamilySnapshot`].
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Sorted `(key, value)` labels.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SeriesValue,
}

/// Value of one series.
#[derive(Debug, Clone)]
pub enum SeriesValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; index `i` pairs with
    /// [`BUCKET_BOUNDS`]`[i]`, the final slot is the `+Inf` overflow.
    pub bucket_counts: Vec<u64>,
    /// Total observations (== sum of `bucket_counts`).
    pub count: u64,
    /// Sum of observed values (seconds).
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum / self.count as f64 }
    }
}

// ------------------------------------------------------------------- global

/// The process-global registry backing [`counter`]/[`gauge`]/[`histogram`]
/// and `GET /metrics`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Unlabeled counter in the global registry.
pub fn counter(name: &str, help: &str) -> Arc<Counter> {
    global().counter(name, help)
}

/// Labeled counter in the global registry.
pub fn counter_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter_with(name, help, labels)
}

/// Unlabeled gauge in the global registry.
pub fn gauge(name: &str, help: &str) -> Arc<Gauge> {
    global().gauge(name, help)
}

/// Labeled gauge in the global registry.
pub fn gauge_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge_with(name, help, labels)
}

/// Unlabeled histogram in the global registry.
pub fn histogram(name: &str, help: &str) -> Arc<Histogram> {
    global().histogram(name, help)
}

/// Labeled histogram in the global registry.
pub fn histogram_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram_with(name, help, labels)
}

/// Snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_metric() {
        let reg = Registry::new();
        let a = reg.counter_with("x_total", "help", &[("k", "v")]);
        let b = reg.counter_with("x_total", "other help ignored", &[("k", "v")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        // Different labels are a different series.
        let c = reg.counter_with("x_total", "help", &[("k", "w")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = Registry::new();
        let a = reg.counter_with("y_total", "h", &[("a", "1"), ("b", "2")]);
        let b = reg.counter_with("y_total", "h", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1, "label insertion order must not split series");
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("z", "h");
        let _ = reg.gauge("z", "h");
    }

    #[test]
    fn gauge_high_water() {
        let g = Gauge::default();
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::default();
        h.observe(1.5e-7); // second bucket (2e-7)
        h.observe(0.15); // le=0.2
        h.observe(1e9); // overflow -> +Inf
        h.observe(-3.0); // clamped to 0 -> first bucket
        h.observe(f64::NAN); // clamped to 0 -> first bucket
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.bucket_counts[0], 2, "0-clamped observations in first bucket");
        assert_eq!(s.bucket_counts[1], 1);
        assert_eq!(s.bucket_counts[BUCKET_BOUNDS.len()], 1, "overflow lands in +Inf");
        let le_02 = BUCKET_BOUNDS.iter().position(|&b| b == 0.2).unwrap();
        assert_eq!(s.bucket_counts[le_02], 1);
        assert!((s.sum - (1.5e-7 + 0.15 + 1e9)).abs() < 1e-6);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn boundary_value_lands_in_its_own_bucket() {
        // le is inclusive in Prometheus: observe(0.2) must count under
        // bucket le="0.2", not the next one up.
        let h = Histogram::default();
        h.observe(0.2);
        let s = h.snapshot();
        let le_02 = BUCKET_BOUNDS.iter().position(|&b| b == 0.2).unwrap();
        assert_eq!(s.bucket_counts[le_02], 1);
    }

    #[test]
    fn ladder_is_strictly_increasing() {
        for w in BUCKET_BOUNDS.windows(2) {
            assert!(w[0] < w[1], "ladder must be sorted: {} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn timer_guard_observes_on_drop() {
        let h = Arc::new(Histogram::default());
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn concurrent_histogram_observations_are_all_counted() {
        let h = Arc::new(Histogram::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.observe(0.003);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert!((snap.sum - 8000.0 * 0.003).abs() < 1e-6, "CAS sum lost updates: {}", snap.sum);
    }
}
