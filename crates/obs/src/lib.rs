#![forbid(unsafe_code)]
//! # xtsim-obs — workspace-wide telemetry substrate
//!
//! The paper's whole method is measuring where time goes; this crate is the
//! reproduction's own instrument rack. It provides three things, all
//! process-wide and dependency-free:
//!
//! * [`metrics`] — a registry of named [`Counter`]s, [`Gauge`]s, and
//!   log-linear [`Histogram`]s behind cheap atomic handles. Handles are
//!   `Arc`s; incrementing is one atomic op, so instrumentation is safe to
//!   leave on in hot harness paths.
//! * [`prom`] — Prometheus text-format exposition
//!   (`# HELP`/`# TYPE`, cumulative `_bucket{le=...}`/`_sum`/`_count`)
//!   rendered from a registry [`Snapshot`]; served by `xtsim-serve` as
//!   `GET /metrics`.
//! * [`events`] — a structured, leveled JSONL event log
//!   (`xtsim-events-v1`) replacing scattered `eprintln!` diagnostics.
//!   WARN and above are mirrored to stderr for humans; every record can
//!   also be appended to a JSONL sink for machines.
//!
//! ## Determinism contract
//!
//! Telemetry reads wall clocks ([`Stopwatch`], event timestamps) **only on
//! the harness side**: nothing in here may feed simulated time, cache keys,
//! or figure bytes. `xtsim-lint`'s `wallclock-in-sim` rule enforces the
//! boundary — simulation crates cannot call [`Stopwatch::start`],
//! `start_timer`, or `observe_since` (the rule flags those tokens), and
//! `crates/obs` itself is the allowlisted implementation.

#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod prom;

pub use metrics::{
    counter, counter_with, gauge, gauge_with, histogram, histogram_with, snapshot, Counter,
    FamilySnapshot, Gauge, Histogram, HistogramSnapshot, MetricKind, Registry, SeriesSnapshot,
    SeriesValue, Snapshot, Stopwatch,
};
