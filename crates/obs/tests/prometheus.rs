//! Exposition-correctness tests against a full parse of the rendered text:
//! every sample line must scan, histogram ladders must be cumulative and
//! self-consistent, and concurrent increments must all be visible.

use std::collections::BTreeMap;
use std::sync::Arc;
use xtsim_obs::metrics::Registry;
use xtsim_obs::prom;

/// Samples grouped by metric name: name -> Vec<(label-block, value)>.
type Samples = BTreeMap<String, Vec<(String, f64)>>;

/// Minimal parser for the subset of the text format we emit: returns
/// (type-by-family, samples).
fn parse(text: &str) -> (BTreeMap<String, String>, Samples) {
    let mut types = BTreeMap::new();
    let mut samples: Samples = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE line shape");
            types.insert(name.to_string(), kind.to_string());
        } else if line.starts_with("# HELP ") {
            continue;
        } else if !line.is_empty() {
            let (series, value) = line.rsplit_once(' ').expect("sample line shape");
            let value: f64 = value.parse().expect("sample value is a number");
            let (name, labels) = match series.find('{') {
                Some(i) => (&series[..i], &series[i..]),
                None => (series, ""),
            };
            samples
                .entry(name.to_string())
                .or_default()
                .push((labels.to_string(), value));
        }
    }
    (types, samples)
}

#[test]
fn every_line_parses_and_has_type_metadata() {
    let reg = Registry::new();
    reg.counter_with("p_requests_total", "req", &[("route", "/runs"), ("status", "2xx")])
        .add(4);
    reg.gauge("p_depth", "queue depth").set(2);
    reg.histogram("p_wait_seconds", "wait").observe(0.02);
    let text = prom::render(&reg.snapshot());
    let (types, samples) = parse(&text);

    assert_eq!(types.get("p_requests_total").map(String::as_str), Some("counter"));
    assert_eq!(types.get("p_depth").map(String::as_str), Some("gauge"));
    assert_eq!(types.get("p_wait_seconds").map(String::as_str), Some("histogram"));

    // Every sample belongs to a declared family (histogram samples via
    // their _bucket/_sum/_count suffixes).
    for name in samples.keys() {
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(
            types.contains_key(base),
            "sample {name} has no # TYPE metadata (base {base})"
        );
    }

    let req = &samples["p_requests_total"];
    assert_eq!(req.len(), 1);
    assert_eq!(req[0].0, "{route=\"/runs\",status=\"2xx\"}");
    assert_eq!(req[0].1, 4.0);
}

#[test]
fn histogram_ladder_is_cumulative_monotone_with_inf_equal_to_count() {
    let reg = Registry::new();
    let h = reg.histogram("lat_seconds", "latency");
    for v in [1e-6, 5e-4, 5e-4, 0.3, 42.0, 9999.0] {
        h.observe(v);
    }
    let text = prom::render(&reg.snapshot());
    let (_, samples) = parse(&text);

    let buckets = &samples["lat_seconds_bucket"];
    assert_eq!(
        buckets.len(),
        xtsim_obs::metrics::BUCKET_BOUNDS.len() + 1,
        "full ladder plus +Inf must always be rendered"
    );
    let mut prev = 0.0;
    let mut prev_le = f64::NEG_INFINITY;
    for (labels, count) in buckets {
        let le = labels
            .trim_start_matches("{le=\"")
            .trim_end_matches("\"}");
        let le_v = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
        assert!(le_v > prev_le, "le bounds must be strictly increasing: {labels}");
        assert!(*count >= prev, "cumulative counts must be monotone: {labels}");
        prev = *count;
        prev_le = le_v;
    }
    assert!(prev_le.is_infinite(), "ladder must end at +Inf");
    let count = samples["lat_seconds_count"][0].1;
    assert_eq!(prev, count, "+Inf cumulative bucket must equal _count");
    assert_eq!(count, 6.0);
    let sum = samples["lat_seconds_sum"][0].1;
    assert!((sum - (1e-6 + 5e-4 + 5e-4 + 0.3 + 42.0 + 9999.0)).abs() < 1e-6);
}

#[test]
fn concurrent_counter_increments_are_all_visible() {
    let reg = Arc::new(Registry::new());
    let threads = 8;
    let per_thread = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                // Half the threads re-register each time (exercising the
                // registry path), half hold the handle (the hot path).
                if t % 2 == 0 {
                    let c = reg.counter("conc_total", "concurrency test");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                } else {
                    for _ in 0..per_thread {
                        reg.counter("conc_total", "concurrency test").inc();
                    }
                }
            });
        }
    });
    let text = prom::render(&reg.snapshot());
    let (_, samples) = parse(&text);
    assert_eq!(samples["conc_total"][0].1, (threads as u64 * per_thread) as f64);
}

#[test]
fn global_registry_round_trips_through_render_global() {
    xtsim_obs::counter("g_smoke_total", "global smoke").add(2);
    let text = prom::render_global();
    let (types, samples) = parse(&text);
    assert_eq!(types.get("g_smoke_total").map(String::as_str), Some("counter"));
    assert!(samples["g_smoke_total"][0].1 >= 2.0);
}
