#![forbid(unsafe_code)]
//! # xtsim-hpcc — the HPC Challenge suite on the simulated XT platform
//!
//! Reproduces the paper's entire micro-benchmark section (§5):
//!
//! * [`netbench`] — ping-pong and ring latency/bandwidth (Figures 2–3);
//! * [`local`] — SP/EP FFT, DGEMM, RandomAccess, STREAM (Figures 4–7);
//! * [`global`] — HPL, MPI-FFT, PTRANS, MPI-RandomAccess sweeps
//!   (Figures 8–11);
//! * [`bidir`] — the bidirectional bandwidth/latency experiments of §5.2
//!   (Figures 12–13).

#![warn(missing_docs)]

pub mod bidir;
pub mod global;
pub mod local;
pub mod netbench;
pub mod summary;
pub mod util;
