//! Node-local HPCC kernels in SP and EP modes — the paper's Figures 4–7.
//!
//! SP ("single process") runs one rank on one socket; EP ("embarrassingly
//! parallel") runs one rank per core on every socket with no communication.
//! The interesting quantity is the *per-core* rate: temporal-locality
//! kernels keep it in EP mode, bandwidth/latency-bound kernels lose it.

use xtsim_machine::{ExecMode, MachineSpec, WorkPacket};
use xtsim_mpi::{simulate, CollectiveMode};

use crate::util::job;
use xtsim_kernels::workmodel;

/// Which local kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalKernel {
    /// 2^20-point complex FFT (Figure 4), GFLOPS.
    Fft,
    /// 2000×2000 matrix multiply (Figure 5), GFLOPS.
    Dgemm,
    /// RandomAccess over a 512 MiB table (Figure 6), GUPS.
    RandomAccess,
    /// STREAM triad over 8M elements (Figure 7), GB/s.
    StreamTriad,
}

impl LocalKernel {
    /// The work packet one repetition of this kernel prices to.
    pub fn packet(self, machine: &MachineSpec) -> WorkPacket {
        match self {
            LocalKernel::Fft => workmodel::fft_packet(1 << 20),
            LocalKernel::Dgemm => workmodel::dgemm_packet(2000, machine),
            LocalKernel::RandomAccess => workmodel::random_access_packet(1 << 22),
            LocalKernel::StreamTriad => workmodel::stream_triad_packet(8_000_000),
        }
    }

    /// Convert elapsed seconds per repetition into the figure's metric.
    pub fn metric(self, machine: &MachineSpec, secs: f64) -> f64 {
        let w = self.packet(machine);
        match self {
            LocalKernel::Fft | LocalKernel::Dgemm => w.flops / secs / 1e9,
            LocalKernel::RandomAccess => w.random_refs / secs / 1e9,
            LocalKernel::StreamTriad => w.shared_dram_bytes / secs / 1e9,
        }
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            LocalKernel::Fft => "FFT (GFLOPS)",
            LocalKernel::Dgemm => "DGEMM (GFLOPS)",
            LocalKernel::RandomAccess => "RandomAccess (GUPS)",
            LocalKernel::StreamTriad => "Stream Triad (GB/s)",
        }
    }
}

/// SP and EP per-core results.
#[derive(Debug, Clone, Copy)]
pub struct LocalResult {
    /// Single-process rate (one core active on the socket).
    pub sp: f64,
    /// Embarrassingly-parallel *per-core* rate (all cores active).
    pub ep: f64,
}

fn run_ranks(machine: &MachineSpec, mode: ExecMode, ranks: usize, kernel: LocalKernel) -> f64 {
    let cfg = job(machine, mode, ranks, CollectiveMode::Algorithmic);
    let packet = kernel.packet(machine);
    let out = simulate(3, cfg, move |mpi| async move {
        mpi.compute(packet).await;
    });
    out.end_time.as_secs_f64()
}

/// Run one kernel in SP and EP on `machine` in `mode`.
pub fn local_bench(machine: &MachineSpec, mode: ExecMode, kernel: LocalKernel) -> LocalResult {
    // SP: a single rank; the socket's other core (if any) idles.
    let sp_secs = run_ranks(machine, mode, 1, kernel);
    // EP: every core of one socket active (per-core rate is what Figures
    // 4-7 chart; sockets are independent so one socket suffices).
    let ep_ranks = machine.ranks_per_node(mode);
    let ep_secs = run_ranks(machine, mode, ep_ranks, kernel);
    LocalResult {
        sp: kernel.metric(machine, sp_secs),
        ep: kernel.metric(machine, ep_secs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn fft_ep_suffers_little_from_second_core() {
        // Paper Figure 4: high temporal locality -> EP ~ SP.
        let r = local_bench(&presets::xt4(), ExecMode::VN, LocalKernel::Fft);
        assert!(r.ep / r.sp > 0.9, "sp {} ep {}", r.sp, r.ep);
        assert!((r.sp - 0.63).abs() < 0.1, "XT4 FFT SP {}", r.sp);
    }

    #[test]
    fn dgemm_ep_close_to_sp() {
        let r = local_bench(&presets::xt4(), ExecMode::VN, LocalKernel::Dgemm);
        assert!(r.ep / r.sp > 0.9, "sp {} ep {}", r.sp, r.ep);
        assert!((r.sp - 4.5).abs() < 0.3, "XT4 DGEMM SP {}", r.sp);
    }

    #[test]
    fn random_access_ep_halves_per_core() {
        // Paper Figure 6: per-core EP GUPS is half SP (socket saturated).
        let r = local_bench(&presets::xt4(), ExecMode::VN, LocalKernel::RandomAccess);
        assert!((r.ep / r.sp - 0.5).abs() < 0.05, "sp {} ep {}", r.sp, r.ep);
    }

    #[test]
    fn stream_ep_halves_per_core() {
        // Paper Figure 7: one core saturates the controller.
        let r = local_bench(&presets::xt4(), ExecMode::VN, LocalKernel::StreamTriad);
        assert!((r.ep / r.sp - 0.5).abs() < 0.05, "sp {} ep {}", r.sp, r.ep);
        assert!((r.sp - 7.3).abs() < 0.3, "XT4 triad {}", r.sp);
    }

    #[test]
    fn xt3_single_core_ep_equals_sp() {
        // One core per socket: EP and SP are the same machine state.
        for k in [
            LocalKernel::Fft,
            LocalKernel::Dgemm,
            LocalKernel::RandomAccess,
            LocalKernel::StreamTriad,
        ] {
            let r = local_bench(&presets::xt3_single(), ExecMode::SN, k);
            assert!((r.ep - r.sp).abs() / r.sp < 1e-6, "{k:?}: {r:?}");
        }
    }

    #[test]
    fn xt4_improves_every_local_kernel_over_xt3() {
        for k in [
            LocalKernel::Fft,
            LocalKernel::Dgemm,
            LocalKernel::RandomAccess,
            LocalKernel::StreamTriad,
        ] {
            let xt3 = local_bench(&presets::xt3_single(), ExecMode::SN, k);
            let xt4 = local_bench(&presets::xt4(), ExecMode::SN, k);
            assert!(xt4.sp > xt3.sp, "{k:?}: {} !> {}", xt4.sp, xt3.sp);
        }
    }
}
