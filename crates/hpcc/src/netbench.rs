//! Network micro-benchmarks: ping-pong (min/avg/max) and the naturally- and
//! randomly-ordered ring patterns of HPCC — the paper's Figures 2 and 3.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

use xtsim_machine::{ExecMode, MachineSpec};
use xtsim_mpi::{simulate, CollectiveMode, Message, Mpi};

use crate::util::job;

/// Message size used for latency measurements (HPCC convention: 8 bytes).
pub const LAT_BYTES: u64 = 8;
/// Message size used for bandwidth measurements (HPCC: 2,000,000 bytes).
pub const BW_BYTES: u64 = 2_000_000;

/// Figure 2/3 row: one machine × mode.
#[derive(Debug, Clone, Copy)]
pub struct NetworkResults {
    /// Best-case one-way ping-pong latency, µs.
    pub pp_min_us: f64,
    /// Average one-way ping-pong latency, µs.
    pub pp_avg_us: f64,
    /// Worst-case one-way ping-pong latency, µs.
    pub pp_max_us: f64,
    /// Naturally-ordered ring per-message latency, µs.
    pub nat_ring_us: f64,
    /// Randomly-ordered ring per-message latency, µs.
    pub rand_ring_us: f64,
    /// Best / average / worst ping-pong bandwidth, GB/s.
    pub pp_min_bw: f64,
    /// Average ping-pong bandwidth, GB/s.
    pub pp_avg_bw: f64,
    /// Worst ping-pong bandwidth, GB/s.
    pub pp_max_bw: f64,
    /// Naturally-ordered ring per-rank outgoing bandwidth, GB/s.
    pub nat_ring_bw: f64,
    /// Randomly-ordered ring per-rank outgoing bandwidth, GB/s.
    pub rand_ring_bw: f64,
}

/// One ping-pong measurement between node pair `(0, peer_node)`; in VN mode
/// both cores of each node run pairs simultaneously (which is what exposes
/// the NIC-sharing latency penalty of the paper).
fn ping_pong(machine: &MachineSpec, mode: ExecMode, sockets: usize, peer_node: usize, bytes: u64) -> f64 {
    let rpn = machine.ranks_per_node(mode);
    let ranks = sockets * rpn;
    let reps = if bytes > 1000 { 4u64 } else { 16 };
    let cfg = job(machine, mode, ranks, CollectiveMode::Algorithmic);
    let active = Rc::new(RefCell::new(0.0f64));
    let active2 = Rc::clone(&active);
    let out = simulate(11, cfg, move |mpi| {
        let active = Rc::clone(&active2);
        async move {
            let r = mpi.rank();
            let node = r / rpn;
            let lane = r % rpn;
            // Pairs: every core of node 0 with the same core of peer_node.
            let (me_side, peer) = if node == 0 {
                (0, peer_node * rpn + lane)
            } else if node == peer_node {
                (1, lane)
            } else {
                return;
            };
            let t0 = mpi.now();
            for i in 0..reps {
                if me_side == 0 {
                    mpi.send(peer, i, Message::of_bytes(bytes)).await;
                    mpi.recv(Some(peer), Some(i)).await;
                } else {
                    mpi.recv(Some(peer), Some(i)).await;
                    mpi.send(peer, i, Message::of_bytes(bytes)).await;
                }
            }
            let dt = (mpi.now() - t0).as_secs_f64();
            let mut a = active.borrow_mut();
            *a = a.max(dt);
        }
    });
    let _ = out;
    let elapsed = *active.borrow();
    elapsed / (2.0 * reps as f64) // one-way time per message
}

/// Ring pattern: each rank exchanges with a left and right neighbour every
/// iteration. `order[i]` gives the rank at ring position `i`.
fn ring(machine: &MachineSpec, mode: ExecMode, sockets: usize, random: bool, bytes: u64) -> f64 {
    let rpn = machine.ranks_per_node(mode);
    let ranks = sockets * rpn;
    let reps = if bytes > 1000 { 3u64 } else { 8 };
    let cfg = job(machine, mode, ranks, CollectiveMode::Algorithmic);
    // Ring order: identity (natural) or a seeded shuffle (random).
    let mut order: Vec<usize> = (0..ranks).collect();
    if random {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
        order.shuffle(&mut rng);
    }
    // position of each rank in the ring
    let mut pos = vec![0usize; ranks];
    for (i, &r) in order.iter().enumerate() {
        pos[r] = i;
    }
    let order = Rc::new(order);
    let pos = Rc::new(pos);
    let out = simulate(12, cfg, move |mpi: Mpi| {
        let order = Rc::clone(&order);
        let pos = Rc::clone(&pos);
        async move {
            let p = mpi.size();
            let my_pos = pos[mpi.rank()];
            let right = order[(my_pos + 1) % p];
            let left = order[(my_pos + p - 1) % p];
            for i in 0..reps {
                let s1 = mpi.isend(right, 2 * i, Message::of_bytes(bytes));
                let s2 = mpi.isend(left, 2 * i + 1, Message::of_bytes(bytes));
                mpi.recv(Some(left), Some(2 * i)).await;
                mpi.recv(Some(right), Some(2 * i + 1)).await;
                s1.await;
                s2.await;
            }
        }
    });
    // Per-iteration each rank sends two messages; HPCC reports per-message time.
    out.end_time.as_secs_f64() / (2.0 * reps as f64)
}

/// Run the full Figure 2 + Figure 3 measurement for one machine × mode.
pub fn network_bench(machine: &MachineSpec, mode: ExecMode, sockets: usize) -> NetworkResults {
    assert!(sockets >= 4, "need a few sockets for distance sampling");
    let dims = xtsim_machine::fit_dims(sockets);
    // Near / typical / far peer nodes inside the allocated partition.
    let near = 1usize;
    let far = {
        let c = [dims[0] / 2, dims[1] / 2, dims[2] / 2];
        (c[0] + c[1] * dims[0] + c[2] * dims[0] * dims[1]).min(sockets - 1)
    };
    let mid = (sockets / 2).max(1).min(sockets - 1);
    let peers = [near, mid, far];

    let lat: Vec<f64> = peers
        .iter()
        .map(|&p| ping_pong(machine, mode, sockets, p, LAT_BYTES) * 1e6)
        .collect();
    let bw: Vec<f64> = peers
        .iter()
        .map(|&p| {
            let t = ping_pong(machine, mode, sockets, p, BW_BYTES);
            BW_BYTES as f64 / t / 1e9
        })
        .collect();
    let fmin = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let fmax = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    let favg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    NetworkResults {
        pp_min_us: fmin(&lat),
        pp_avg_us: favg(&lat),
        pp_max_us: fmax(&lat),
        nat_ring_us: ring(machine, mode, sockets, false, LAT_BYTES) * 1e6,
        rand_ring_us: ring(machine, mode, sockets, true, LAT_BYTES) * 1e6,
        pp_min_bw: fmax(&bw),
        pp_avg_bw: favg(&bw),
        pp_max_bw: fmin(&bw),
        nat_ring_bw: {
            let t = ring(machine, mode, sockets, false, BW_BYTES);
            BW_BYTES as f64 / t / 1e9
        },
        rand_ring_bw: {
            let t = ring(machine, mode, sockets, true, BW_BYTES);
            BW_BYTES as f64 / t / 1e9
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn xt4_sn_latency_near_paper_values() {
        // Paper Figure 2: XT4 best-case ~4.5us in SN mode.
        let r = network_bench(&presets::xt4(), ExecMode::SN, 32);
        assert!(r.pp_min_us > 3.5 && r.pp_min_us < 5.5, "{}", r.pp_min_us);
        assert!(r.pp_max_us >= r.pp_min_us);
        assert!(r.rand_ring_us >= r.nat_ring_us * 0.9);
    }

    #[test]
    fn xt4_pingpong_bandwidth_doubles_xt3() {
        // Paper Figure 3: ~2.1 GB/s vs 1.15 GB/s.
        let xt3 = network_bench(&presets::xt3_single(), ExecMode::SN, 16);
        let xt4 = network_bench(&presets::xt4(), ExecMode::SN, 16);
        assert!(xt3.pp_min_bw > 0.9 && xt3.pp_min_bw < 1.3, "{}", xt3.pp_min_bw);
        assert!(xt4.pp_min_bw > 1.7 && xt4.pp_min_bw < 2.3, "{}", xt4.pp_min_bw);
    }

    #[test]
    fn vn_mode_latency_worse_than_sn() {
        let sn = network_bench(&presets::xt4(), ExecMode::SN, 16);
        let vn = network_bench(&presets::xt4(), ExecMode::VN, 16);
        assert!(vn.pp_avg_us > sn.pp_avg_us, "{} !> {}", vn.pp_avg_us, sn.pp_avg_us);
        assert!(vn.rand_ring_us > sn.rand_ring_us);
    }
}
