//! Bidirectional MPI latency/bandwidth vs message size — the paper's §5.2
//! (Figures 12 and 13): one pair of tasks across two nodes ("0-1
//! internode"), and the worst case of two concurrent pairs between the same
//! two nodes in VN mode ("i-(i+2), i=0,1 (VN)").

use std::cell::RefCell;
use std::rc::Rc;

use xtsim_machine::{ExecMode, MachineSpec};
use xtsim_mpi::{simulate, CollectiveMode, Message};

use crate::util::job;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct BidirPoint {
    /// Message size, bytes.
    pub bytes: u64,
    /// Per-pair bidirectional bandwidth, MB/s.
    pub bandwidth_mbs: f64,
    /// Per-message one-way latency, µs.
    pub latency_us: f64,
}

/// Measure one message size. `pairs` is 1 (one pair across two nodes) or 2
/// (both cores of node 0 exchanging with both cores of node 1 — VN only).
pub fn bidir_point(machine: &MachineSpec, mode: ExecMode, pairs: usize, bytes: u64) -> BidirPoint {
    let rpn = machine.ranks_per_node(mode);
    assert!(
        pairs <= rpn,
        "two-pair experiment needs VN mode (2 ranks/node)"
    );
    let ranks = 2 * rpn; // two nodes
    let reps = if bytes >= 1 << 20 { 3u64 } else { 10 };
    let cfg = job(machine, mode, ranks, CollectiveMode::Algorithmic);
    let elapsed = Rc::new(RefCell::new(0.0f64));
    let e2 = Rc::clone(&elapsed);
    simulate(5, cfg, move |mpi| {
        let elapsed = Rc::clone(&e2);
        async move {
            let r = mpi.rank();
            let node = r / rpn;
            let lane = r % rpn;
            if lane >= pairs {
                return; // idle core (SN mode or 1-pair experiment)
            }
            // Pair: (node0, lane) <-> (node1, lane), i.e. ranks lane and rpn+lane.
            let peer = if node == 0 { rpn + lane } else { lane };
            let t0 = mpi.now();
            for i in 0..reps {
                // Both sides send simultaneously (bidirectional exchange).
                let s = mpi.isend(peer, i, Message::of_bytes(bytes));
                mpi.recv(Some(peer), Some(i)).await;
                s.await;
            }
            let dt = (mpi.now() - t0).as_secs_f64();
            let mut e = elapsed.borrow_mut();
            *e = e.max(dt);
        }
    });
    let t = *elapsed.borrow() / reps as f64; // one exchange (send+recv overlap)
    BidirPoint {
        bytes,
        // Each pair moves 2×bytes per exchange.
        bandwidth_mbs: 2.0 * bytes as f64 / t / 1e6,
        latency_us: t * 1e6,
    }
}

/// Standard sweep of message sizes (8 B … 8 MB), log-spaced like Figure 12/13.
pub fn sweep_sizes() -> Vec<u64> {
    let mut v = Vec::new();
    let mut b = 8u64;
    while b <= 8 << 20 {
        v.push(b);
        b *= 4;
    }
    v
}

/// Full sweep for one machine/mode/pair-count.
pub fn bidir_sweep(machine: &MachineSpec, mode: ExecMode, pairs: usize) -> Vec<BidirPoint> {
    sweep_sizes()
        .into_iter()
        .map(|b| bidir_point(machine, mode, pairs, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn xt4_large_message_bidir_beats_xt3_by_1_8x() {
        // The paper: "dual-core XT4 bidirectional bandwidth is at least 1.8
        // times that of the dual-core XT3 for message sizes over 100,000 B".
        let big = 1 << 20;
        let xt3 = bidir_point(&presets::xt3_dual(), ExecMode::VN, 1, big);
        let xt4 = bidir_point(&presets::xt4(), ExecMode::VN, 1, big);
        let ratio = xt4.bandwidth_mbs / xt3.bandwidth_mbs;
        assert!(ratio >= 1.7, "ratio {ratio}");
    }

    #[test]
    fn two_pairs_halve_per_pair_bandwidth() {
        // Paper: "the two-pair experiments achieve exactly half the per pair
        // bidirectional bandwidth as the single-pair experiments".
        let big = 4 << 20;
        let one = bidir_point(&presets::xt4(), ExecMode::VN, 1, big);
        let two = bidir_point(&presets::xt4(), ExecMode::VN, 2, big);
        let ratio = one.bandwidth_mbs / two.bandwidth_mbs;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn two_pair_small_message_latency_over_twice_single_pair() {
        // Paper: two-pair latency on dual-core systems is over twice the
        // single-pair latency (NIC serialization).
        let one = bidir_point(&presets::xt4(), ExecMode::VN, 1, 8);
        let two = bidir_point(&presets::xt4(), ExecMode::VN, 2, 8);
        assert!(
            two.latency_us > 1.5 * one.latency_us,
            "{} vs {}",
            two.latency_us,
            one.latency_us
        );
    }

    #[test]
    fn bandwidth_monotone_in_message_size() {
        let sweep = bidir_sweep(&presets::xt4(), ExecMode::SN, 1);
        for w in sweep.windows(2) {
            assert!(
                w[1].bandwidth_mbs > w[0].bandwidth_mbs * 0.8,
                "{:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn rendezvous_step_visible_in_latency() {
        // Crossing the eager threshold must not *reduce* latency.
        let below = bidir_point(&presets::xt4(), ExecMode::SN, 1, 60_000);
        let above = bidir_point(&presets::xt4(), ExecMode::SN, 1, 70_000);
        assert!(above.latency_us > below.latency_us);
    }
}
