//! Global HPCC benchmarks — the paper's Figures 8–11: HPL, MPI-FFT, PTRANS,
//! and MPI-RandomAccess, swept over socket counts in SN and VN modes.
//!
//! Problem sizes follow the HPCC rules (matrices sized to a fixed fraction
//! of total memory), communication volumes are exact, and the long-running
//! iterative structure is sampled: a fixed number of representative rounds
//! is simulated and the steady-state rate extrapolated (documented per
//! benchmark below).

use rand::Rng;
use xtsim_machine::{ExecMode, MachineSpec};
use xtsim_mpi::{simulate, CollectiveMode, Message, WorldConfig};
use xtsim_net::ContentionModel;

use crate::util::{job, ranks_for_sockets};
use xtsim_kernels::lu::hpl_flops;
use xtsim_kernels::workmodel;

fn global_job(machine: &MachineSpec, mode: ExecMode, ranks: usize) -> WorldConfig {
    let mut cfg = job(machine, mode, ranks, CollectiveMode::Modeled);
    // Fluid max-min sharing is exact but O(flows·links); the global
    // benchmarks put thousands of concurrent flows on the wire.
    if ranks > 256 {
        cfg.platform.contention = ContentionModel::Counting;
    }
    cfg
}

/// HPL (Figure 8): blocked right-looking LU over `sockets` sockets. The
/// factorization is sampled as `ROUNDS` panel steps carrying the full
/// communication volume (panel broadcasts) and the full compute volume.
/// Returns TFLOPS.
pub fn hpl(machine: &MachineSpec, mode: ExecMode, sockets: usize) -> f64 {
    const ROUNDS: usize = 32;
    let p = ranks_for_sockets(machine, mode, sockets);
    let mem_rank_bytes = machine.memory_per_rank_gb(mode) * 1e9;
    // HPCC sizing: the matrix fills ~80% of aggregate memory.
    let n = ((0.8 * p as f64 * mem_rank_bytes / 8.0).sqrt()) as usize;
    let per_round = {
        let mut w = workmodel::hpl_local_packet(n, p, machine);
        w.flops /= ROUNDS as f64;
        w.shared_dram_bytes /= ROUNDS as f64;
        w
    };
    // One panel step broadcasts N/ROUNDS columns of height N.
    let panel_bytes = ((n as f64 / ROUNDS as f64) * n as f64 * 8.0) as u64;
    let cfg = global_job(machine, mode, p);
    let out = simulate(21, cfg, move |mpi| async move {
        for r in 0..ROUNDS {
            let root = r % mpi.size();
            let payload = (mpi.comm().rank() == root).then(|| Message::of_bytes(panel_bytes));
            mpi.comm().bcast(root, payload).await;
            mpi.compute(per_round).await;
        }
    });
    hpl_flops(n) / out.end_time.as_secs_f64() / 1e12
}

/// MPI-FFT (Figure 9): a distributed 1-D FFT = three all-to-all transposes
/// interleaved with local FFT compute. Returns GFLOPS.
pub fn mpi_fft(machine: &MachineSpec, mode: ExecMode, sockets: usize) -> f64 {
    let p = ranks_for_sockets(machine, mode, sockets);
    // ~32 MB of complex data per rank, power-of-two total.
    let total: usize = p.next_power_of_two() * (1 << 21);
    let per_pair = (total as u64 * 16) / (p as u64 * p as u64);
    let phase = {
        let mut w = workmodel::mpi_fft_local_packet(total, p);
        w.flops /= 3.0;
        w.serial_dram_bytes /= 3.0;
        w
    };
    let cfg = global_job(machine, mode, p);
    let out = simulate(22, cfg, move |mpi| async move {
        for _ in 0..3 {
            let msgs = (0..mpi.size())
                .map(|_| Message::of_bytes(per_pair))
                .collect();
            mpi.comm().alltoall(msgs).await;
            mpi.compute(phase).await;
        }
    });
    xtsim_kernels::fft::fft_flops(total) / out.end_time.as_secs_f64() / 1e9
}

/// PTRANS (Figure 10): global transpose `A = A^T + A` on a ~square process
/// grid; every rank exchanges its tile with its transpose partner (real
/// point-to-point traffic across the torus). Returns GB/s.
pub fn ptrans(machine: &MachineSpec, mode: ExecMode, sockets: usize) -> f64 {
    let p = ranks_for_sockets(machine, mode, sockets);
    let q = (p as f64).sqrt().floor() as usize;
    let used = q * q;
    let mem_rank_bytes = machine.memory_per_rank_gb(mode) * 1e9;
    // HPCC sizing: the matrix fills ~20% of aggregate memory.
    let tile_bytes = (0.2 * mem_rank_bytes) as u64;
    let tile_elems = (tile_bytes / 8) as usize;
    let local = workmodel::ptrans_local_packet(tile_elems);
    let cfg = global_job(machine, mode, p);
    let out = simulate(23, cfg, move |mpi| async move {
        let me = mpi.rank();
        if me >= used {
            return;
        }
        let (i, j) = (me / q, me % q);
        let partner = j * q + i;
        if partner != me {
            mpi.sendrecv(partner, 7, Message::of_bytes(tile_bytes), Some(partner), Some(7))
                .await;
        }
        mpi.compute(local).await;
    });
    used as f64 * tile_bytes as f64 / out.end_time.as_secs_f64() / 1e9
}

/// Updates each rank pushes per sampled MPI-RA run (steady-state sample).
const RA_UPDATES_PER_RANK: usize = 192;

/// MPI-RandomAccess (Figure 11): every update is a tiny message to a random
/// owner, so the machine-wide rate is bounded by per-message NIC/software
/// overhead — the mechanism behind the paper's VN-mode collapse. A fixed
/// per-rank sample of the update stream is simulated and the steady-state
/// GUPS reported.
pub fn mpi_ra(machine: &MachineSpec, mode: ExecMode, sockets: usize) -> f64 {
    let p = ranks_for_sockets(machine, mode, sockets);
    let cfg = global_job(machine, mode, p);
    let out = simulate(24, cfg, move |mpi| async move {
        let mut rng = mpi.handle().rng(1000 + mpi.rank() as u64);
        let p = mpi.size();
        let me = mpi.rank();
        let mut sent = 0usize;
        while sent < RA_UPDATES_PER_RANK {
            // A burst of remote updates (16 B each: index + value)…
            let burst = 16.min(RA_UPDATES_PER_RANK - sent);
            for _ in 0..burst {
                let mut dst = rng.gen_range(0..p);
                if dst == me {
                    dst = (dst + 1) % p;
                }
                mpi.raw_transmit(dst, 16).await;
            }
            sent += burst;
            // …then the local table XORs for updates received meanwhile.
            mpi.compute(workmodel::random_access_packet(burst as u64))
                .await;
        }
    });
    let total_updates = (p * RA_UPDATES_PER_RANK) as f64;
    total_updates / out.end_time.as_secs_f64() / 1e9
}

/// A sweep row shared by all four global benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct GlobalPoint {
    /// Sockets in the job.
    pub sockets: usize,
    /// Cores in the job (= ranks).
    pub cores: usize,
    /// Benchmark value (TFLOPS / GFLOPS / GB/s / GUPS).
    pub value: f64,
}

/// Sweep a global benchmark over socket counts.
pub fn sweep(
    machine: &MachineSpec,
    mode: ExecMode,
    sockets: &[usize],
    bench: impl Fn(&MachineSpec, ExecMode, usize) -> f64,
) -> Vec<GlobalPoint> {
    sockets
        .iter()
        .map(|&s| GlobalPoint {
            sockets: s,
            cores: ranks_for_sockets(machine, mode, s),
            value: bench(machine, mode, s),
        })
        .collect()
}

/// The socket counts the figures sweep (bounded by sim cost; the paper runs
/// to ~1,150 sockets).
pub fn default_sweep_sockets() -> Vec<usize> {
    vec![64, 128, 256, 512, 1024, 1152]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn hpl_scales_and_xt4_beats_xt3() {
        let xt3 = hpl(&presets::xt3_single(), ExecMode::SN, 128);
        let xt4 = hpl(&presets::xt4(), ExecMode::SN, 128);
        assert!(xt4 > xt3, "{xt4} !> {xt3}");
        // ~4 GFLOPS/socket at 128 sockets -> ~0.5 TFLOPS.
        assert!(xt4 > 0.3 && xt4 < 0.7, "{xt4}");
        let big = hpl(&presets::xt4(), ExecMode::SN, 512);
        assert!(big > 3.0 * xt4, "poor scaling: {xt4} -> {big}");
    }

    #[test]
    fn hpl_vn_per_socket_beats_sn() {
        // Figure 8: VN mode nearly doubles per-socket HPL.
        let sn = hpl(&presets::xt4(), ExecMode::SN, 128);
        let vn = hpl(&presets::xt4(), ExecMode::VN, 128);
        assert!(vn > 1.5 * sn, "vn {vn} sn {sn}");
    }

    #[test]
    fn mpi_fft_vn_per_core_worse_than_sn() {
        // Figure 9: the NIC bottleneck makes VN per-core MPI-FFT much worse.
        let sn = mpi_fft(&presets::xt4(), ExecMode::SN, 128);
        let vn = mpi_fft(&presets::xt4(), ExecMode::VN, 128);
        // Per socket VN may still win or draw, but per *core* it must lose.
        let sn_per_core = sn / 128.0;
        let vn_per_core = vn / 256.0;
        assert!(vn_per_core < sn_per_core, "{vn_per_core} !< {sn_per_core}");
    }

    #[test]
    fn ptrans_per_socket_flat_xt3_to_xt4() {
        // Figure 10: PTRANS is bound by the unchanged link bandwidth.
        let xt3 = ptrans(&presets::xt3_single(), ExecMode::SN, 144);
        let xt4 = ptrans(&presets::xt4(), ExecMode::SN, 144);
        let ratio = xt4 / xt3;
        assert!(ratio > 0.75 && ratio < 1.6, "ratio {ratio}");
    }

    #[test]
    fn mpi_ra_vn_slower_than_xt3_and_sn() {
        // Figure 11: VN-mode MPI-RA falls below both SN mode and the XT3.
        let xt3 = mpi_ra(&presets::xt3_single(), ExecMode::SN, 64);
        let sn = mpi_ra(&presets::xt4(), ExecMode::SN, 64);
        let vn = mpi_ra(&presets::xt4(), ExecMode::VN, 64);
        assert!(sn > xt3, "sn {sn} xt3 {xt3}");
        assert!(vn < sn, "vn {vn} sn {sn}");
        assert!(vn < xt3, "vn {vn} xt3 {xt3}");
    }

    #[test]
    fn mpi_ra_scales_with_sockets() {
        let small = mpi_ra(&presets::xt4(), ExecMode::SN, 32);
        let large = mpi_ra(&presets::xt4(), ExecMode::SN, 128);
        assert!(large > 2.0 * small, "{small} -> {large}");
    }
}
