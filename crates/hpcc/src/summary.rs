//! An `hpccoutf.txt`-style summary: every HPCC metric for one machine and
//! mode, in one struct / one table — the way sites publish HPCC results.

use xtsim_machine::{ExecMode, MachineSpec};

use crate::global;
use crate::local::{local_bench, LocalKernel};
use crate::netbench::network_bench;

/// The full HPCC result sheet for one configuration.
#[derive(Debug, Clone)]
pub struct HpccSummary {
    /// Machine name.
    pub machine: String,
    /// Execution mode.
    pub mode: ExecMode,
    /// Sockets used for the global/network benchmarks.
    pub sockets: usize,
    /// Global HPL, TFLOPS.
    pub hpl_tflops: f64,
    /// Global MPI-FFT, GFLOPS.
    pub mpifft_gflops: f64,
    /// Global PTRANS, GB/s.
    pub ptrans_gbs: f64,
    /// Global MPI-RandomAccess, GUPS.
    pub mpira_gups: f64,
    /// Single-process / embarrassingly-parallel local kernels
    /// (value, per-core EP value).
    pub fft_sp_ep: (f64, f64),
    /// DGEMM SP/EP, GFLOPS.
    pub dgemm_sp_ep: (f64, f64),
    /// STREAM triad SP/EP, GB/s.
    pub stream_sp_ep: (f64, f64),
    /// RandomAccess SP/EP, GUPS.
    pub ra_sp_ep: (f64, f64),
    /// Ping-pong min/avg/max latency, µs.
    pub pp_latency_us: (f64, f64, f64),
    /// Ping-pong bandwidth (best), GB/s.
    pub pp_bandwidth_gbs: f64,
    /// Random-ring latency µs / bandwidth GB/s (the b_eff pair).
    pub random_ring: (f64, f64),
}

/// Run the whole suite for one configuration (reduced socket count).
pub fn hpcc_summary(machine: &MachineSpec, mode: ExecMode, sockets: usize) -> HpccSummary {
    let net = network_bench(machine, mode, sockets);
    let fft = local_bench(machine, mode, LocalKernel::Fft);
    let dgemm = local_bench(machine, mode, LocalKernel::Dgemm);
    let stream = local_bench(machine, mode, LocalKernel::StreamTriad);
    let ra = local_bench(machine, mode, LocalKernel::RandomAccess);
    HpccSummary {
        machine: machine.name.clone(),
        mode,
        sockets,
        hpl_tflops: global::hpl(machine, mode, sockets),
        mpifft_gflops: global::mpi_fft(machine, mode, sockets),
        ptrans_gbs: global::ptrans(machine, mode, sockets),
        mpira_gups: global::mpi_ra(machine, mode, sockets),
        fft_sp_ep: (fft.sp, fft.ep),
        dgemm_sp_ep: (dgemm.sp, dgemm.ep),
        stream_sp_ep: (stream.sp, stream.ep),
        ra_sp_ep: (ra.sp, ra.ep),
        pp_latency_us: (net.pp_min_us, net.pp_avg_us, net.pp_max_us),
        pp_bandwidth_gbs: net.pp_min_bw,
        random_ring: (net.rand_ring_us, net.rand_ring_bw),
    }
}

impl HpccSummary {
    /// Render like the classic `hpccoutf.txt` tail section.
    pub fn render(&self) -> String {
        let mut o = String::new();
        o.push_str(&format!(
            "HPCC summary — {} ({} mode, {} sockets)\n",
            self.machine, self.mode, self.sockets
        ));
        o.push_str(&format!("HPL_Tflops             = {:.4}\n", self.hpl_tflops));
        o.push_str(&format!("MPIFFT_Gflops          = {:.2}\n", self.mpifft_gflops));
        o.push_str(&format!("PTRANS_GBs             = {:.2}\n", self.ptrans_gbs));
        o.push_str(&format!("MPIRandomAccess_GUPs   = {:.5}\n", self.mpira_gups));
        o.push_str(&format!(
            "SingleFFT_Gflops       = {:.4}   StarFFT_Gflops   = {:.4}\n",
            self.fft_sp_ep.0, self.fft_sp_ep.1
        ));
        o.push_str(&format!(
            "SingleDGEMM_Gflops     = {:.3}    StarDGEMM_Gflops = {:.3}\n",
            self.dgemm_sp_ep.0, self.dgemm_sp_ep.1
        ));
        o.push_str(&format!(
            "SingleSTREAM_Triad     = {:.3}    StarSTREAM_Triad = {:.3}\n",
            self.stream_sp_ep.0, self.stream_sp_ep.1
        ));
        o.push_str(&format!(
            "SingleRandomAccess_GUP = {:.4}   StarRandomAccess = {:.4}\n",
            self.ra_sp_ep.0, self.ra_sp_ep.1
        ));
        o.push_str(&format!(
            "PingPongLatency_usec   = {:.2} / {:.2} / {:.2} (min/avg/max)\n",
            self.pp_latency_us.0, self.pp_latency_us.1, self.pp_latency_us.2
        ));
        o.push_str(&format!(
            "PingPongBandwidth_GBs  = {:.3}\n",
            self.pp_bandwidth_gbs
        ));
        o.push_str(&format!(
            "RandomRing latency/bw  = {:.2} usec / {:.3} GB/s\n",
            self.random_ring.0, self.random_ring.1
        ));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn summary_is_internally_consistent() {
        let s = hpcc_summary(&presets::xt4(), ExecMode::SN, 16);
        assert!(s.hpl_tflops > 0.0);
        assert!(s.pp_latency_us.0 <= s.pp_latency_us.1);
        assert!(s.pp_latency_us.1 <= s.pp_latency_us.2);
        assert!(s.fft_sp_ep.1 <= s.fft_sp_ep.0 * 1.001);
        let text = s.render();
        assert!(text.contains("HPL_Tflops"));
        assert!(text.contains("XT4"));
    }

    #[test]
    fn vn_summary_shows_star_degradation() {
        let s = hpcc_summary(&presets::xt4(), ExecMode::VN, 16);
        // Star (EP) STREAM and RA drop to half; FFT/DGEMM do not.
        assert!(s.stream_sp_ep.1 < 0.55 * s.stream_sp_ep.0);
        assert!(s.ra_sp_ep.1 < 0.55 * s.ra_sp_ep.0);
        assert!(s.dgemm_sp_ep.1 > 0.9 * s.dgemm_sp_ep.0);
    }
}
