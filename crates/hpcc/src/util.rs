//! Shared helpers for benchmark drivers.

use xtsim_machine::{fit_dims, ExecMode, MachineSpec};
use xtsim_mpi::{CollectiveMode, WorldConfig};
use xtsim_net::PlatformConfig;

/// Build a world for a `ranks`-rank job on `machine` in `mode`, allocated on
/// a compact torus partition (like a real scheduler would place it).
pub fn job(machine: &MachineSpec, mode: ExecMode, ranks: usize, coll: CollectiveMode) -> WorldConfig {
    let mut spec = machine.clone();
    let nodes = ranks.div_ceil(spec.ranks_per_node(mode));
    spec.torus_dims = fit_dims(nodes);
    let mut platform = PlatformConfig::new(spec, mode, ranks);
    // Exact fluid sharing up to ~128 ranks; the counting model beyond (a
    // 512-rank ring of 2 MB messages floods the fluid solver otherwise).
    if ranks > 128 {
        platform.contention = xtsim_net::ContentionModel::Counting;
    }
    let mut w = WorldConfig::new(platform);
    w.collectives = coll;
    w
}

/// Number of ranks a `sockets`-socket job runs in `mode`.
pub fn ranks_for_sockets(machine: &MachineSpec, mode: ExecMode, sockets: usize) -> usize {
    sockets * machine.ranks_per_node(mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn job_shrinks_torus_to_fit() {
        let cfg = job(&presets::xt4(), ExecMode::VN, 16, CollectiveMode::Auto);
        // 16 VN ranks = 8 nodes -> 2x2x2.
        assert_eq!(cfg.platform.spec.torus_dims, [2, 2, 2]);
    }

    #[test]
    fn ranks_scale_with_mode() {
        let m = presets::xt4();
        assert_eq!(ranks_for_sockets(&m, ExecMode::SN, 10), 10);
        assert_eq!(ranks_for_sockets(&m, ExecMode::VN, 10), 20);
    }
}
