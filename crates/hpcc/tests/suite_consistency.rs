//! Consistency checks across the HPCC drivers: metric algebra, mode
//! relationships, and sweep monotonicity at reduced scale.

use xtsim_hpcc::{bidir, global, local, netbench};
use xtsim_machine::{presets, ExecMode};

#[test]
fn sp_rate_never_below_ep_rate() {
    // A second active core can only hurt (or leave unchanged) per-core rates.
    for k in [
        local::LocalKernel::Fft,
        local::LocalKernel::Dgemm,
        local::LocalKernel::RandomAccess,
        local::LocalKernel::StreamTriad,
    ] {
        for m in [presets::xt3_dual(), presets::xt4()] {
            let r = local::local_bench(&m, ExecMode::VN, k);
            assert!(r.ep <= r.sp * 1.001, "{} {k:?}: {r:?}", m.name);
        }
    }
}

#[test]
fn ring_bandwidth_below_pingpong() {
    // Ring patterns contend (two messages in flight per rank); ping-pong
    // between an isolated pair does not.
    let r = netbench::network_bench(&presets::xt4(), ExecMode::SN, 16);
    assert!(r.nat_ring_bw <= r.pp_min_bw * 1.05, "{r:?}");
    assert!(r.rand_ring_bw <= r.nat_ring_bw * 1.05, "{r:?}");
}

#[test]
fn global_benchmarks_scale_up_with_sockets() {
    let m = presets::xt4();
    for bench in [global::hpl, global::mpi_fft, global::mpi_ra] {
        let small = bench(&m, ExecMode::SN, 16);
        let large = bench(&m, ExecMode::SN, 64);
        assert!(large > 1.5 * small, "{small} -> {large}");
    }
}

#[test]
fn bidir_latency_and_bandwidth_are_consistent() {
    // bandwidth = 2 * bytes / exchange-time by construction; check the two
    // reported numbers against each other.
    for bytes in [8u64, 65536, 1 << 21] {
        let p = bidir::bidir_point(&presets::xt4(), ExecMode::SN, 1, bytes);
        let implied_mbs = 2.0 * bytes as f64 / (p.latency_us * 1e-6) / 1e6;
        assert!(
            (implied_mbs - p.bandwidth_mbs).abs() < 0.01 * p.bandwidth_mbs.max(1.0),
            "{bytes}: {implied_mbs} vs {}",
            p.bandwidth_mbs
        );
    }
}

#[test]
fn sn_mode_global_values_independent_of_idle_second_core() {
    // XT4 SN-mode results should track the dual-core XT3's *network*, not
    // gain from the idle core: HPL-per-socket(SN) ~ one core's DGEMM rate.
    let hpl = global::hpl(&presets::xt4(), ExecMode::SN, 32);
    let per_socket_gf = hpl * 1e3 / 32.0;
    let core_dgemm = 4.52; // calibrated single-core DGEMM GFLOPS
    assert!(
        per_socket_gf < core_dgemm,
        "SN HPL cannot beat one core's DGEMM: {per_socket_gf}"
    );
    assert!(per_socket_gf > 0.55 * core_dgemm, "{per_socket_gf}");
}

#[test]
fn summary_matches_individual_benchmarks() {
    use xtsim_hpcc::summary::hpcc_summary;
    let m = presets::xt4();
    let s = hpcc_summary(&m, ExecMode::SN, 16);
    let hpl = global::hpl(&m, ExecMode::SN, 16);
    assert!((s.hpl_tflops - hpl).abs() < 1e-12, "deterministic re-run");
    let stream = local::local_bench(&m, ExecMode::SN, local::LocalKernel::StreamTriad);
    assert_eq!(s.stream_sp_ep.0, stream.sp);
}
