#![forbid(unsafe_code)]
//! # xtsim-lustre — object-based parallel filesystem model
//!
//! The paper's Figure 1 architecture: compute-node clients (`liblustre`)
//! talk to one **Metadata Server** (MDS — a single FIFO service station,
//! reproducing the single-MDS metadata bottleneck §2 calls out) and a set of
//! **Object Storage Servers** (OSS), each serving several **Object Storage
//! Targets** (OST). Files are striped round-robin across OSTs; reads and
//! writes stream through the owning OSS's network port and the OST's disk
//! channel, sharing bandwidth max-min fairly.
//!
//! An IOR-style benchmark driver lives in [`ior`].

#![warn(missing_docs)]

pub mod fs;
pub mod ior;

pub use fs::{Client, FileHandle, IoStats, Lustre, LustreConfig, OstId};
pub use ior::{run_ior, IorConfig, IorResult};
