//! IOR-style parallel I/O benchmark driver (reference [14] of the paper).
//!
//! Each client writes a `block_size` region in `transfer_size` chunks
//! (file-per-process or a single shared file at disjoint offsets), then
//! reads it back; the harness reports aggregate write/read bandwidth and the
//! metadata (open) phase cost.

use std::cell::RefCell;
use std::rc::Rc;

use xtsim_des::trace::{self, SpanCategory};
use xtsim_des::{Sim, SimBarrier};

use crate::fs::{Lustre, LustreConfig};

/// IOR run parameters.
#[derive(Debug, Clone)]
pub struct IorConfig {
    /// Number of client processes.
    pub clients: usize,
    /// Bytes each client writes/reads.
    pub block_size: u64,
    /// I/O request size.
    pub transfer_size: u64,
    /// Stripe count for created files.
    pub stripe_count: usize,
    /// One file per process (`true`) or a single shared file (`false`).
    pub file_per_process: bool,
}

impl Default for IorConfig {
    fn default() -> Self {
        IorConfig {
            clients: 16,
            block_size: 64 << 20,
            transfer_size: 4 << 20,
            stripe_count: 4,
            file_per_process: true,
        }
    }
}

/// IOR results.
#[derive(Debug, Clone, Copy)]
pub struct IorResult {
    /// Aggregate write bandwidth, GB/s.
    pub write_gbs: f64,
    /// Aggregate read bandwidth, GB/s.
    pub read_gbs: f64,
    /// Time spent in the open/create (metadata) phase, seconds.
    pub open_secs: f64,
    /// Metadata operations issued.
    pub mds_ops: u64,
}

/// Run IOR on a fresh filesystem.
pub fn run_ior(seed: u64, fs_cfg: LustreConfig, cfg: IorConfig) -> IorResult {
    let mut sim = Sim::new(seed);
    let fs = Lustre::new(sim.handle(), fs_cfg);
    let barrier = SimBarrier::new(cfg.clients);
    // Phase timestamps: (open_end, write_end, read_end) as maxima.
    let marks = Rc::new(RefCell::new((0.0f64, 0.0f64, 0.0f64)));

    // For the shared-file mode, client 0 creates; others open after a barrier.
    let shared_fid = Rc::new(RefCell::new(None::<u64>));

    for c in 0..cfg.clients {
        let client = fs.register_client();
        let barrier = barrier.clone();
        let marks = Rc::clone(&marks);
        let shared_fid = Rc::clone(&shared_fid);
        let cfg = cfg.clone();
        let h = sim.handle();
        sim.spawn(async move {
            // --- open phase ---
            let t0 = h.now();
            let fh = if cfg.file_per_process {
                client.create(cfg.stripe_count).await
            } else if c == 0 {
                let fh = client.create(cfg.stripe_count).await;
                *shared_fid.borrow_mut() = Some(fh.fid);
                fh
            } else {
                barrier.wait().await; // wait for creator
                let fid = shared_fid.borrow().expect("created");
                client.open(fid).await.expect("shared file exists")
            };
            if trace::capture_active() {
                trace::span(SpanCategory::Io, "open", Some(c as u32), None, t0, h.now(), Vec::new());
            }
            if !cfg.file_per_process && c == 0 {
                barrier.wait().await;
            }
            barrier.wait().await;
            {
                let mut m = marks.borrow_mut();
                m.0 = m.0.max(h.now().as_secs_f64());
            }
            // --- write phase ---
            let base = if cfg.file_per_process {
                0
            } else {
                c as u64 * cfg.block_size
            };
            let t0 = h.now();
            let mut off = 0;
            while off < cfg.block_size {
                let chunk = cfg.transfer_size.min(cfg.block_size - off);
                client.write(fh, base + off, chunk).await;
                off += chunk;
            }
            if trace::capture_active() {
                let args = vec![("bytes", cfg.block_size as f64)];
                trace::span(SpanCategory::Io, "write", Some(c as u32), None, t0, h.now(), args);
            }
            barrier.wait().await;
            {
                let mut m = marks.borrow_mut();
                m.1 = m.1.max(h.now().as_secs_f64());
            }
            // --- read phase ---
            let t0 = h.now();
            let mut off = 0;
            while off < cfg.block_size {
                let chunk = cfg.transfer_size.min(cfg.block_size - off);
                client.read(fh, base + off, chunk).await;
                off += chunk;
            }
            if trace::capture_active() {
                let args = vec![("bytes", cfg.block_size as f64)];
                trace::span(SpanCategory::Io, "read", Some(c as u32), None, t0, h.now(), args);
            }
            barrier.wait().await;
            {
                let mut m = marks.borrow_mut();
                m.2 = m.2.max(h.now().as_secs_f64());
            }
        });
    }
    sim.run();
    let (open_end, write_end, read_end) = *marks.borrow();
    let total = cfg.clients as u64 * cfg.block_size;
    IorResult {
        write_gbs: total as f64 / (write_end - open_end).max(1e-12) / 1e9,
        read_gbs: total as f64 / (read_end - write_end).max(1e-12) / 1e9,
        open_secs: open_end,
        mds_ops: fs.stats().mds_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> IorConfig {
        IorConfig {
            clients: 8,
            block_size: 16 << 20,
            transfer_size: 4 << 20,
            stripe_count: 4,
            file_per_process: true,
        }
    }

    #[test]
    fn ior_reports_positive_bandwidths() {
        let r = run_ior(1, LustreConfig::default(), small());
        assert!(r.write_gbs > 0.5, "{r:?}");
        assert!(r.read_gbs > 0.5, "{r:?}");
        assert_eq!(r.mds_ops, 8);
    }

    #[test]
    fn shared_file_uses_one_create_plus_opens() {
        let mut cfg = small();
        cfg.file_per_process = false;
        let r = run_ior(1, LustreConfig::default(), cfg);
        // 1 create + 7 opens.
        assert_eq!(r.mds_ops, 8);
        assert!(r.write_gbs > 0.5);
    }

    #[test]
    fn aggregate_bw_bounded_by_backend() {
        let fs_cfg = LustreConfig::default();
        let backend = (fs_cfg.oss_bw_gbs * fs_cfg.oss_count as f64)
            .min(fs_cfg.ost_bw_gbs * (fs_cfg.oss_count * fs_cfg.osts_per_oss) as f64);
        let mut cfg = small();
        cfg.clients = 32;
        let r = run_ior(1, fs_cfg, cfg);
        assert!(r.write_gbs <= backend * 1.05, "{} > {backend}", r.write_gbs);
    }

    #[test]
    fn more_clients_scale_until_saturation() {
        // 2 clients are bound by their own links (~2.2 GB/s aggregate);
        // 16 clients approach the OSS backend.
        let r2 = run_ior(1, LustreConfig::default(), IorConfig { clients: 2, ..small() });
        let r16 = run_ior(1, LustreConfig::default(), IorConfig { clients: 16, ..small() });
        assert!(r16.write_gbs > 2.0 * r2.write_gbs, "{} vs {}", r2.write_gbs, r16.write_gbs);
    }

    #[test]
    fn open_storm_cost_grows_with_clients() {
        let mut a = small();
        a.clients = 4;
        let mut b = small();
        b.clients = 64;
        let ra = run_ior(1, LustreConfig::default(), a);
        let rb = run_ior(1, LustreConfig::default(), b);
        assert!(rb.open_secs > ra.open_secs, "{} vs {}", ra.open_secs, rb.open_secs);
    }
}
