//! The Lustre-style filesystem model: one MDS, OSSes serving OSTs, striped
//! files, per-client links.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use xtsim_des::{FifoStation, FluidPool, LinkId, SimDuration, SimHandle};

/// Identifies an Object Storage Target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OstId(pub usize);

/// Filesystem deployment parameters.
#[derive(Debug, Clone)]
pub struct LustreConfig {
    /// Object Storage Servers.
    pub oss_count: usize,
    /// OSTs attached to each OSS.
    pub osts_per_oss: usize,
    /// Default stripe count for new files.
    pub default_stripe_count: usize,
    /// Stripe width, bytes (Lustre default: 1 MiB).
    pub stripe_size_bytes: u64,
    /// Metadata operation service time at the MDS, µs.
    pub mds_op_us: f64,
    /// Service bandwidth of one OSS network port, GB/s.
    pub oss_bw_gbs: f64,
    /// Disk bandwidth of one OST, GB/s.
    pub ost_bw_gbs: f64,
    /// Bandwidth of one compute-node client (liblustre over the SeaStar), GB/s.
    pub client_bw_gbs: f64,
    /// One-way RPC latency between client and servers, µs.
    pub rpc_latency_us: f64,
}

impl Default for LustreConfig {
    fn default() -> Self {
        // Roughly the NCCS XT4 I/O subsystem scale, reduced: 9 OSS × 4 OST.
        LustreConfig {
            oss_count: 9,
            osts_per_oss: 4,
            default_stripe_count: 4,
            stripe_size_bytes: 1 << 20,
            mds_op_us: 60.0,
            oss_bw_gbs: 1.2,
            ost_bw_gbs: 0.4,
            client_bw_gbs: 1.1,
            rpc_latency_us: 12.0,
        }
    }
}

struct FileMeta {
    stripe_count: usize,
    first_ost: usize,
    size: u64,
}

/// Cumulative I/O statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct IoStats {
    /// Bytes written through the filesystem.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Metadata operations served by the MDS.
    pub mds_ops: u64,
}

struct LustreInner {
    handle: SimHandle,
    cfg: LustreConfig,
    mds: FifoStation,
    pool: FluidPool,
    oss_links: Vec<LinkId>,
    ost_links: Vec<LinkId>,
    files: RefCell<BTreeMap<u64, FileMeta>>,
    next_fid: RefCell<u64>,
    next_client: RefCell<usize>,
    stats: RefCell<IoStats>,
}

/// A simulated Lustre filesystem instance.
#[derive(Clone)]
pub struct Lustre {
    inner: Rc<LustreInner>,
}

/// An open file as seen by one client.
#[derive(Debug, Clone, Copy)]
pub struct FileHandle {
    /// File identifier ("inode"/FID).
    pub fid: u64,
    client_link: LinkId,
}

impl Lustre {
    /// Deploy a filesystem inside simulation `handle`.
    pub fn new(handle: SimHandle, cfg: LustreConfig) -> Lustre {
        assert!(cfg.oss_count >= 1 && cfg.osts_per_oss >= 1);
        let pool = FluidPool::new(handle.clone());
        let oss_links: Vec<LinkId> = (0..cfg.oss_count)
            .map(|_| pool.add_link(cfg.oss_bw_gbs * 1e9))
            .collect();
        let ost_links: Vec<LinkId> = (0..cfg.oss_count * cfg.osts_per_oss)
            .map(|_| pool.add_link(cfg.ost_bw_gbs * 1e9))
            .collect();
        Lustre {
            inner: Rc::new(LustreInner {
                mds: FifoStation::new(handle.clone(), 1),
                cfg,
                handle,
                pool,
                oss_links,
                ost_links,
                files: RefCell::new(BTreeMap::new()),
                next_fid: RefCell::new(1),
                next_client: RefCell::new(0),
                stats: RefCell::new(IoStats::default()),
            }),
        }
    }

    /// Total number of OSTs.
    pub fn ost_count(&self) -> usize {
        self.inner.ost_links.len()
    }

    /// Register a compute-node client; returns its id (used to create its
    /// private network link into the I/O subsystem).
    pub fn register_client(&self) -> Client {
        let id = {
            let mut c = self.inner.next_client.borrow_mut();
            *c += 1;
            *c - 1
        };
        let link = self.inner.pool.add_link(self.inner.cfg.client_bw_gbs * 1e9);
        Client {
            fs: self.clone(),
            id,
            link,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> IoStats {
        *self.inner.stats.borrow()
    }

    /// The OSTs a file with `stripe_count` starting at `first_ost` touches
    /// for byte range `[offset, offset+len)`, with per-OST byte counts.
    pub fn layout(
        &self,
        stripe_count: usize,
        first_ost: usize,
        stripe_size: u64,
        offset: u64,
        len: u64,
    ) -> Vec<(OstId, u64)> {
        let nost = self.ost_count();
        let mut per_ost: BTreeMap<usize, u64> = BTreeMap::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let stripe_idx = pos / stripe_size;
            let in_stripe = pos % stripe_size;
            let chunk = (stripe_size - in_stripe).min(end - pos);
            let ost = (first_ost + (stripe_idx as usize % stripe_count)) % nost;
            *per_ost.entry(ost).or_insert(0) += chunk;
            pos += chunk;
        }
        // BTreeMap iterates in key order, so the result is already sorted by OST.
        per_ost.into_iter().map(|(o, b)| (OstId(o), b)).collect()
    }

    async fn mds_op(&self) {
        let inner = &self.inner;
        inner
            .handle
            .sleep(SimDuration::from_secs_f64(
                inner.cfg.rpc_latency_us * 1e-6,
            ))
            .await;
        inner
            .mds
            .serve(SimDuration::from_secs_f64(inner.cfg.mds_op_us * 1e-6))
            .await;
        inner.stats.borrow_mut().mds_ops += 1;
    }
}

/// A compute-node client of the filesystem (one per rank in IOR runs).
#[derive(Clone)]
pub struct Client {
    fs: Lustre,
    id: usize,
    link: LinkId,
}

impl Client {
    /// Client id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Create a file striped over `stripe_count` OSTs (capped at the OST
    /// count). One MDS round trip.
    pub async fn create(&self, stripe_count: usize) -> FileHandle {
        let fs = &self.fs;
        fs.mds_op().await;
        let inner = &fs.inner;
        let stripe_count = stripe_count.clamp(1, fs.ost_count());
        let fid = {
            let mut next = inner.next_fid.borrow_mut();
            let fid = *next;
            *next += 1;
            fid
        };
        let first_ost = (fid as usize * 7) % fs.ost_count();
        inner.files.borrow_mut().insert(
            fid,
            FileMeta {
                stripe_count,
                first_ost,
                size: 0,
            },
        );
        FileHandle {
            fid,
            client_link: self.link,
        }
    }

    /// Open an existing file. One MDS round trip.
    pub async fn open(&self, fid: u64) -> Option<FileHandle> {
        self.fs.mds_op().await;
        self.fs.inner.files.borrow().get(&fid)?;
        Some(FileHandle {
            fid,
            client_link: self.link,
        })
    }

    /// Write `len` bytes at `offset`: data streams through the client link,
    /// the owning OSS port, and the OST disk channel of every stripe touched.
    pub async fn write(&self, fh: FileHandle, offset: u64, len: u64) {
        self.transfer(fh, offset, len, true).await;
    }

    /// Read `len` bytes at `offset` (same path as write, opposite direction).
    pub async fn read(&self, fh: FileHandle, offset: u64, len: u64) {
        self.transfer(fh, offset, len, false).await;
    }

    async fn transfer(&self, fh: FileHandle, offset: u64, len: u64, is_write: bool) {
        if len == 0 {
            return;
        }
        let fs = &self.fs;
        let inner = &fs.inner;
        let (stripe_count, first_ost) = {
            let files = inner.files.borrow();
            let meta = files.get(&fh.fid).expect("file exists");
            (meta.stripe_count, meta.first_ost)
        };
        inner
            .handle
            .sleep(SimDuration::from_secs_f64(
                inner.cfg.rpc_latency_us * 1e-6,
            ))
            .await;
        let layout = fs.layout(
            stripe_count,
            first_ost,
            inner.cfg.stripe_size_bytes,
            offset,
            len,
        );
        let transfers: Vec<_> = layout
            .iter()
            .map(|&(OstId(ost), bytes)| {
                let oss = ost / inner.cfg.osts_per_oss;
                inner.pool.transfer(
                    &[fh.client_link, inner.oss_links[oss], inner.ost_links[ost]],
                    bytes as f64,
                    None,
                )
            })
            .collect();
        xtsim_des::join_all(transfers).await;
        let mut files = inner.files.borrow_mut();
        let meta = files.get_mut(&fh.fid).expect("file exists");
        if is_write {
            meta.size = meta.size.max(offset + len);
            inner.stats.borrow_mut().bytes_written += len;
        } else {
            inner.stats.borrow_mut().bytes_read += len;
        }
    }

    /// Current file size (metadata read; one MDS round trip).
    pub async fn stat(&self, fid: u64) -> Option<u64> {
        self.fs.mds_op().await;
        self.fs.inner.files.borrow().get(&fid).map(|m| m.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use xtsim_des::Sim;

    fn fs_with(cfg: LustreConfig) -> (Sim, Lustre) {
        let sim = Sim::new(0);
        let fs = Lustre::new(sim.handle(), cfg);
        (sim, fs)
    }

    #[test]
    fn layout_round_robins_stripes() {
        let (_sim, fs) = fs_with(LustreConfig::default());
        // 4 MiB at offset 0, stripe 1 MiB, count 4 starting at OST 2.
        let l = fs.layout(4, 2, 1 << 20, 0, 4 << 20);
        assert_eq!(l.len(), 4);
        for (_, bytes) in &l {
            assert_eq!(*bytes, 1 << 20);
        }
        let osts: Vec<usize> = l.iter().map(|(o, _)| o.0).collect();
        assert!(osts.contains(&2) && osts.contains(&3) && osts.contains(&4) && osts.contains(&5));
    }

    #[test]
    fn layout_handles_unaligned_ranges() {
        let (_sim, fs) = fs_with(LustreConfig::default());
        let l = fs.layout(2, 0, 1 << 20, (1 << 20) - 10, 20);
        // Straddles stripes 0 and 1 -> two OSTs, 10 bytes each.
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].1 + l[1].1, 20);
    }

    #[test]
    fn stripe_count_one_is_bound_by_single_ost() {
        let cfg = LustreConfig::default();
        let ost_bw = cfg.ost_bw_gbs;
        let (mut sim, fs) = fs_with(cfg);
        let client = fs.register_client();
        let bytes = 1u64 << 30;
        sim.spawn(async move {
            let fh = client.create(1).await;
            client.write(fh, 0, bytes).await;
        });
        let t = sim.run().as_secs_f64();
        let gbs = bytes as f64 / t / 1e9;
        assert!((gbs - ost_bw).abs() < 0.05, "{gbs} vs {ost_bw}");
    }

    #[test]
    fn wide_striping_is_client_bound() {
        // Striping across many OSTs: the client's own link binds (~1.1 GB/s).
        let cfg = LustreConfig::default();
        let client_bw = cfg.client_bw_gbs;
        let (mut sim, fs) = fs_with(cfg);
        let client = fs.register_client();
        let bytes = 1u64 << 30;
        sim.spawn(async move {
            let fh = client.create(36).await;
            client.write(fh, 0, bytes).await;
        });
        let t = sim.run().as_secs_f64();
        let gbs = bytes as f64 / t / 1e9;
        assert!((gbs - client_bw).abs() < 0.1, "{gbs} vs {client_bw}");
    }

    #[test]
    fn mds_serializes_metadata_storm() {
        // 100 clients creating files: makespan >= 100 * mds service time.
        let cfg = LustreConfig::default();
        let op_s = cfg.mds_op_us * 1e-6;
        let (mut sim, fs) = fs_with(cfg);
        for _ in 0..100 {
            let c = fs.register_client();
            sim.spawn(async move {
                c.create(4).await;
            });
        }
        let t = sim.run().as_secs_f64();
        assert!(t >= 100.0 * op_s, "{t}");
        assert_eq!(fs.stats().mds_ops, 100);
    }

    #[test]
    fn file_size_tracks_writes() {
        let (mut sim, fs) = fs_with(LustreConfig::default());
        let client = fs.register_client();
        let out = Rc::new(std::cell::RefCell::new(0u64));
        let o2 = Rc::clone(&out);
        sim.spawn(async move {
            let fh = client.create(2).await;
            client.write(fh, 0, 1000).await;
            client.write(fh, 5000, 500).await;
            *o2.borrow_mut() = client.stat(fh.fid).await.unwrap();
        });
        sim.run();
        assert_eq!(*out.borrow(), 5500);
    }

    #[test]
    fn open_missing_file_is_none() {
        let (mut sim, fs) = fs_with(LustreConfig::default());
        let client = fs.register_client();
        sim.spawn(async move {
            assert!(client.open(999).await.is_none());
        });
        sim.run();
    }

    #[test]
    fn aggregate_bandwidth_saturates_backend() {
        // Many clients writing to distinct files: bound by OST aggregate
        // (36 OST x 0.4 = 14.4 GB/s) vs OSS aggregate (9 x 1.2 = 10.8):
        // OSS ports bind.
        let cfg = LustreConfig::default();
        let oss_agg = cfg.oss_bw_gbs * cfg.oss_count as f64;
        let (mut sim, fs) = fs_with(cfg);
        let bytes = 256u64 << 20;
        for _ in 0..32 {
            let c = fs.register_client();
            sim.spawn(async move {
                let fh = c.create(4).await;
                c.write(fh, 0, bytes).await;
            });
        }
        let t = sim.run().as_secs_f64();
        let gbs = 32.0 * bytes as f64 / t / 1e9;
        assert!(gbs < oss_agg * 1.05, "{gbs} exceeds backend {oss_agg}");
        assert!(gbs > oss_agg * 0.6, "{gbs} far below backend {oss_agg}");
    }
}
