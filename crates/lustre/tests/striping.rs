//! Striping-layout and concurrency tests for the Lustre model.

use std::cell::RefCell;
use std::rc::Rc;
use xtsim_des::Sim;
use xtsim_lustre::{Lustre, LustreConfig, OstId};

#[test]
fn layout_covers_every_byte_exactly_once() {
    let sim = Sim::new(0);
    let fs = Lustre::new(sim.handle(), LustreConfig::default());
    for (offset, len) in [(0u64, 1u64), (1000, 1 << 22), (123_456, 7_654_321), ((1 << 20) - 1, 2)] {
        let layout = fs.layout(4, 3, 1 << 20, offset, len);
        let total: u64 = layout.iter().map(|(_, b)| b).sum();
        assert_eq!(total, len, "offset {offset} len {len}");
        for (OstId(o), _) in &layout {
            assert!(*o < fs.ost_count());
        }
    }
}

#[test]
fn stripe_count_clamps_to_ost_count() {
    let mut sim = Sim::new(0);
    let fs = Lustre::new(sim.handle(), LustreConfig::default());
    let client = fs.register_client();
    let bytes = 256u64 << 20;
    let t = Rc::new(RefCell::new(0.0f64));
    let t2 = Rc::clone(&t);
    let h = sim.handle();
    sim.spawn(async move {
        let fh = client.create(10_000).await; // absurd stripe request
        client.write(fh, 0, bytes).await;
        *t2.borrow_mut() = h.now().as_secs_f64();
    });
    sim.run();
    // Clamped to 36 OSTs; the client link (1.1 GB/s) binds.
    let gbs = bytes as f64 / *t.borrow() / 1e9;
    assert!(gbs > 1.0 && gbs < 1.2, "{gbs}");
}

#[test]
fn readers_and_writers_share_backend_fairly() {
    let mut sim = Sim::new(0);
    let fs = Lustre::new(sim.handle(), LustreConfig::default());
    let bytes = 64u64 << 20;
    let ends: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    for i in 0..4 {
        let c = fs.register_client();
        let ends = Rc::clone(&ends);
        let h = sim.handle();
        sim.spawn(async move {
            let fh = c.create(4).await;
            c.write(fh, 0, bytes).await;
            if i % 2 == 0 {
                c.read(fh, 0, bytes).await;
            }
            ends.borrow_mut().push(h.now().as_secs_f64());
        });
    }
    sim.run();
    let ends = ends.borrow();
    assert_eq!(ends.len(), 4);
    // Readers did twice the I/O; they must finish later than pure writers.
    let max = ends.iter().cloned().fold(0.0, f64::max);
    let min = ends.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max > 1.3 * min, "read-back invisible: {ends:?}");
}

#[test]
fn stats_track_read_and_write_separately() {
    let mut sim = Sim::new(0);
    let fs = Lustre::new(sim.handle(), LustreConfig::default());
    let c = fs.register_client();
    sim.spawn(async move {
        let fh = c.create(2).await;
        c.write(fh, 0, 1000).await;
        c.read(fh, 0, 400).await;
    });
    sim.run();
    let s = fs.stats();
    assert_eq!(s.bytes_written, 1000);
    assert_eq!(s.bytes_read, 400);
    assert_eq!(s.mds_ops, 1);
}
