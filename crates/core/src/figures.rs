//! The figure registry: one generator per table/figure of the paper.
//!
//! Every generator decomposes its experiment into independent sweep-point
//! jobs (see [`crate::sweep`]): `build` returns a [`FigureSpec`] whose jobs
//! each construct their own single-threaded simulation world, and whose
//! `assemble` step reattaches the outputs to the paper's series **in job
//! order** — so the rendered figure is identical whether the jobs ran
//! serially, on eight threads, or straight out of the result cache.
//! `Scale::Quick` shrinks the sweeps for CI; `Scale::Full` uses the paper's
//! ranges.

use serde::Value;
use xtsim_apps::{aorsa, cam, namd, pop, s3d};
use xtsim_hpcc::{bidir, global, local, netbench};
use xtsim_lustre::{run_ior, IorConfig, LustreConfig};
use xtsim_machine::{presets, ExecMode, MachineSpec};

use crate::report::{FigureResult, Scale, Series};
use crate::sweep::{num, obj, FigureSpec, JobKey};

/// A registered figure generator.
pub struct Figure {
    /// Identifier, e.g. "fig08".
    pub id: &'static str,
    /// Caption from the paper.
    pub title: &'static str,
    /// Decompose the figure into sweep-point jobs at `scale`.
    pub build: fn(Scale) -> FigureSpec,
}

impl Figure {
    /// Decompose into a job list without running anything.
    pub fn spec(&self, scale: Scale) -> FigureSpec {
        (self.build)(scale)
    }

    /// Regenerate the figure serially with no cache (the behaviour of the
    /// original harness; tests and doc examples use this).
    pub fn run(&self, scale: Scale) -> FigureResult {
        crate::sweep::run_figure(self.spec(scale), &crate::sweep::SweepConfig::serial()).0
    }
}

/// All tables and figures, in paper order.
pub fn all_figures() -> Vec<Figure> {
    vec![
        Figure { id: "table1", title: "Comparison of XT3, XT3 dual core, and XT4 systems", build: table1 },
        Figure { id: "fig01", title: "Lustre filesystem architecture (IOR demonstration)", build: fig01 },
        Figure { id: "fig02", title: "Network latency", build: fig02 },
        Figure { id: "fig03", title: "Network bandwidth", build: fig03 },
        Figure { id: "fig04", title: "SP/EP Fast Fourier Transform (FFT)", build: fig04 },
        Figure { id: "fig05", title: "SP/EP Matrix Multiply (DGEMM)", build: fig05 },
        Figure { id: "fig06", title: "SP/EP Random Access (RA)", build: fig06 },
        Figure { id: "fig07", title: "SP/EP Memory Bandwidth (Streams)", build: fig07 },
        Figure { id: "fig08", title: "Global High Performance LINPACK (HPL)", build: fig08 },
        Figure { id: "fig09", title: "Global Fast Fourier Transform (MPI-FFT)", build: fig09 },
        Figure { id: "fig10", title: "Global Matrix Transpose (PTRANS)", build: fig10 },
        Figure { id: "fig11", title: "Global Random Access (MPI-RA)", build: fig11 },
        Figure { id: "fig12", title: "Bidirectional MPI bandwidth (small-message emphasis)", build: fig12 },
        Figure { id: "fig13", title: "Bidirectional MPI bandwidth (large-message emphasis)", build: fig13 },
        Figure { id: "fig14", title: "CAM throughput on XT4 vs XT3", build: fig14 },
        Figure { id: "fig15", title: "CAM throughput on XT4 relative to previous results", build: fig15 },
        Figure { id: "fig16", title: "CAM performance by computational phase", build: fig16 },
        Figure { id: "fig17", title: "POP throughput on XT4 vs XT3", build: fig17 },
        Figure { id: "fig18", title: "POP throughput on XT4 relative to previous results", build: fig18 },
        Figure { id: "fig19", title: "POP performance by computational phase", build: fig19 },
        Figure { id: "fig20", title: "NAMD performance on XT4 vs XT3", build: fig20 },
        Figure { id: "fig21", title: "NAMD performance impact of SN vs VN", build: fig21 },
        Figure { id: "fig22", title: "S3D parallel performance", build: fig22 },
        Figure { id: "fig23", title: "AORSA parallel performance", build: fig23 },
        Figure { id: "fig24", title: "Parallel DES: sharded alltoall and halo step (extension)", build: fig24 },
    ]
}

/// Look up one figure by id.
pub fn figure(id: &str) -> Option<Figure> {
    all_figures().into_iter().find(|f| f.id == id)
}

// ------------------------------------------------------------ plan builder

/// One output series described as `(x, job index, field)` triples: point `k`
/// is `(x, outputs[job][field])`, skipped when the job returned `Null`
/// (infeasible configurations, e.g. a CAM decomposition that doesn't exist).
struct SeriesPlan {
    name: String,
    points: Vec<(f64, usize, &'static str)>,
}

/// Declarative figure assembly: jobs plus a plan mapping job outputs to
/// series points. Covers every figure whose notes don't depend on outputs.
struct PlanBuilder {
    id: &'static str,
    title: String,
    axes: (String, String),
    jobs: Vec<crate::sweep::Job>,
    plan: Vec<SeriesPlan>,
    notes: Vec<String>,
}

impl PlanBuilder {
    fn new(
        id: &'static str,
        title: impl Into<String>,
        x: impl Into<String>,
        y: impl Into<String>,
    ) -> PlanBuilder {
        PlanBuilder {
            id,
            title: title.into(),
            axes: (x.into(), y.into()),
            jobs: Vec::new(),
            plan: Vec::new(),
            notes: Vec::new(),
        }
    }

    fn job(&mut self, key: JobKey, run: impl Fn() -> Value + Send + Sync + 'static) -> usize {
        self.jobs.push(crate::sweep::Job::new(key, run));
        self.jobs.len() - 1
    }

    fn series(&mut self, name: impl Into<String>) -> usize {
        self.plan.push(SeriesPlan { name: name.into(), points: Vec::new() });
        self.plan.len() - 1
    }

    fn point(&mut self, series: usize, x: f64, job: usize, field: &'static str) {
        self.plan[series].points.push((x, job, field));
    }

    fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    fn build(self) -> FigureSpec {
        let PlanBuilder { id, title, axes, jobs, plan, notes } = self;
        let mut spec = FigureSpec::new(id, move |outputs: &[Value]| {
            let mut fig = FigureResult::new(id, title).axes(axes.0, axes.1);
            for sp in plan {
                let mut s = Series::new(sp.name);
                for (x, job, field) in sp.points {
                    if matches!(outputs[job], Value::Null) {
                        continue;
                    }
                    s.push(x, num(&outputs[job], field));
                }
                fig.series.push(s);
            }
            fig.notes = notes;
            fig
        });
        spec.jobs = jobs;
        spec
    }
}

// ------------------------------------------------------------- job closures

fn cam_job(m: &MachineSpec, mode: ExecMode, tasks: usize, threads: usize, scale: Scale) -> (JobKey, impl Fn() -> Value + Send + Sync) {
    let key = JobKey::new("cam", Some(m), Some(mode), scale)
        .with("tasks", tasks)
        .with("threads", threads);
    let m = m.clone();
    (key, move || match cam::cam(&m, mode, tasks, threads) {
        None => Value::Null,
        Some(r) => obj(vec![
            ("years_per_day", r.years_per_day.into()),
            ("dynamics_secs_per_day", r.dynamics_secs_per_day.into()),
            ("physics_secs_per_day", r.physics_secs_per_day.into()),
            ("mpi_fraction", r.mpi_fraction.into()),
        ]),
    })
}

fn pop_job(m: &MachineSpec, mode: ExecMode, tasks: usize, solver: pop::Solver, scale: Scale) -> (JobKey, impl Fn() -> Value + Send + Sync) {
    let key = JobKey::new("pop", Some(m), Some(mode), scale)
        .with("tasks", tasks)
        .with("solver", format!("{solver:?}"));
    let m = m.clone();
    (key, move || match pop::pop(&m, mode, tasks, solver) {
        None => Value::Null,
        Some(r) => obj(vec![
            ("years_per_day", r.years_per_day.into()),
            ("baroclinic_secs_per_day", r.baroclinic_secs_per_day.into()),
            ("barotropic_secs_per_day", r.barotropic_secs_per_day.into()),
        ]),
    })
}

fn local_job(m: &MachineSpec, mode: ExecMode, kernel: local::LocalKernel, scale: Scale) -> (JobKey, impl Fn() -> Value + Send + Sync) {
    let key = JobKey::new("local", Some(m), Some(mode), scale).with("kernel", kernel.label());
    let m = m.clone();
    (key, move || {
        let r = local::local_bench(&m, mode, kernel);
        obj(vec![("sp", r.sp.into()), ("ep", r.ep.into())])
    })
}

fn bidir_job(m: &MachineSpec, mode: ExecMode, pairs: usize, bytes: u64, scale: Scale) -> (JobKey, impl Fn() -> Value + Send + Sync) {
    let key = JobKey::new("bidir", Some(m), Some(mode), scale)
        .with("pairs", pairs)
        .with("bytes", bytes);
    let m = m.clone();
    (key, move || {
        let p = bidir::bidir_point(&m, mode, pairs, bytes);
        obj(vec![
            ("bytes", p.bytes.into()),
            ("bandwidth_mbs", p.bandwidth_mbs.into()),
            ("latency_us", p.latency_us.into()),
        ])
    })
}

fn global_job(
    m: &MachineSpec,
    mode: ExecMode,
    bench_name: &str,
    bench: fn(&MachineSpec, ExecMode, usize) -> f64,
    sockets: usize,
    scale: Scale,
) -> (JobKey, impl Fn() -> Value + Send + Sync) {
    let key = JobKey::new(format!("global/{bench_name}"), Some(m), Some(mode), scale)
        .with("sockets", sockets);
    let m = m.clone();
    (key, move || {
        let p = global::sweep(&m, mode, &[sockets], bench).remove(0);
        obj(vec![
            ("sockets", p.sockets.into()),
            ("cores", p.cores.into()),
            ("value", p.value.into()),
        ])
    })
}

// ------------------------------------------------------------------ figures

fn table1(scale: Scale) -> FigureSpec {
    // Pure spec formatting — nothing to simulate, so no jobs; assembly does
    // all the work. Still routed through the engine for uniformity.
    let _ = scale;
    FigureSpec::new("table1", |_outputs| {
        let xt3 = presets::xt3_single();
        let xt3d = presets::xt3_dual();
        let xt4 = presets::xt4();
        FigureResult::new("table1", "Comparison of XT3, XT3 dual core, and XT4 systems at ORNL")
            .note(xtsim_machine::table::system_comparison(&[&xt3, &xt3d, &xt4]))
            .note("\nDerived balance ratios (the quantities §1/§7 reason in):\n")
            .note(xtsim_machine::balance::balance_table(&[&xt3, &xt3d, &xt4]))
    })
}

fn fig01(scale: Scale) -> FigureSpec {
    let clients = match scale {
        Scale::Quick => 16,
        Scale::Full => 64,
    };
    let mut b = PlanBuilder::new(
        "fig01",
        "Lustre filesystem architecture — IOR on the model",
        "stripe count",
        "aggregate write GB/s",
    );
    let w = b.series("IOR write");
    let r = b.series("IOR read");
    for stripes in [1usize, 2, 4, 8, 16] {
        let key = JobKey::new("ior", None, None, scale)
            .with("seed", 7)
            .with("clients", clients)
            .with("block_size", 32u64 << 20)
            .with("transfer_size", 4u64 << 20)
            .with("stripe_count", stripes)
            .with("file_per_process", true);
        let job = b.job(key, move || {
            let out = run_ior(
                7,
                LustreConfig::default(),
                IorConfig {
                    clients,
                    block_size: 32 << 20,
                    transfer_size: 4 << 20,
                    stripe_count: stripes,
                    file_per_process: true,
                },
            );
            obj(vec![("write_gbs", out.write_gbs.into()), ("read_gbs", out.read_gbs.into())])
        });
        b.point(w, stripes as f64, job, "write_gbs");
        b.point(r, stripes as f64, job, "read_gbs");
    }
    b.note("One MDS (FIFO), 9 OSS × 4 OST; clients stripe files round-robin (paper Figure 1).");
    b.build()
}

/// The three system configurations of Figures 2–11.
fn micro_systems() -> Vec<(String, MachineSpec, ExecMode)> {
    vec![
        ("XT3".into(), presets::xt3_single(), ExecMode::SN),
        ("XT4-SN".into(), presets::xt4(), ExecMode::SN),
        ("XT4-VN".into(), presets::xt4(), ExecMode::VN),
    ]
}

fn net_sockets(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 32,
        Scale::Full => 256,
    }
}

const NETBENCH_LAT: [&str; 5] = ["pp_min_us", "pp_avg_us", "pp_max_us", "nat_ring_us", "rand_ring_us"];
const NETBENCH_BW: [&str; 5] = ["pp_min_bw", "pp_avg_bw", "pp_max_bw", "nat_ring_bw", "rand_ring_bw"];

/// Figures 2 and 3 share their jobs (one netbench run per system); only the
/// extracted fields differ, so with a warm cache the second figure is free.
fn netbench_fig(id: &'static str, title: &str, y: &str, fields: [&'static str; 5], scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new(
        id,
        title,
        "pattern (1=PPmin 2=PPavg 3=PPmax 4=Nat.Ring 5=Rand.Ring)",
        y,
    );
    let sockets = net_sockets(scale);
    for (name, m, mode) in micro_systems() {
        let key = JobKey::new("netbench", Some(&m), Some(mode), scale).with("sockets", sockets);
        let job = b.job(key, move || {
            let r = netbench::network_bench(&m, mode, sockets);
            obj(vec![
                ("pp_min_us", r.pp_min_us.into()),
                ("pp_avg_us", r.pp_avg_us.into()),
                ("pp_max_us", r.pp_max_us.into()),
                ("nat_ring_us", r.nat_ring_us.into()),
                ("rand_ring_us", r.rand_ring_us.into()),
                ("pp_min_bw", r.pp_min_bw.into()),
                ("pp_avg_bw", r.pp_avg_bw.into()),
                ("pp_max_bw", r.pp_max_bw.into()),
                ("nat_ring_bw", r.nat_ring_bw.into()),
                ("rand_ring_bw", r.rand_ring_bw.into()),
            ])
        });
        let s = b.series(name);
        for (i, field) in fields.into_iter().enumerate() {
            b.point(s, (i + 1) as f64, job, field);
        }
    }
    b.build()
}

fn fig02(scale: Scale) -> FigureSpec {
    netbench_fig("fig02", "Network latency", "latency (us)", NETBENCH_LAT, scale)
}

fn fig03(scale: Scale) -> FigureSpec {
    netbench_fig("fig03", "Network bandwidth", "bandwidth (GB/s)", NETBENCH_BW, scale)
}

fn local_fig(id: &'static str, title: &str, kernel: local::LocalKernel, scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new(id, title, "system (bar)", kernel.label());
    let sp = b.series("SP");
    let ep = b.series("EP");
    for (i, (_name, m, mode)) in micro_systems().into_iter().enumerate() {
        let (key, run) = local_job(&m, mode, kernel, scale);
        let job = b.job(key, run);
        b.point(sp, (i + 1) as f64, job, "sp");
        b.point(ep, (i + 1) as f64, job, "ep");
    }
    b.note("bars: 1=XT3, 2=XT4-SN, 3=XT4-VN");
    b.build()
}

fn fig04(s: Scale) -> FigureSpec {
    local_fig("fig04", "SP/EP Fast Fourier Transform", local::LocalKernel::Fft, s)
}
fn fig05(s: Scale) -> FigureSpec {
    local_fig("fig05", "SP/EP Matrix Multiply (DGEMM)", local::LocalKernel::Dgemm, s)
}
fn fig06(s: Scale) -> FigureSpec {
    local_fig("fig06", "SP/EP Random Access", local::LocalKernel::RandomAccess, s)
}
fn fig07(s: Scale) -> FigureSpec {
    local_fig("fig07", "SP/EP Memory Bandwidth (Streams)", local::LocalKernel::StreamTriad, s)
}

fn global_sockets(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![16, 32, 64, 128],
        Scale::Full => global::default_sweep_sockets(),
    }
}

fn global_fig(
    id: &'static str,
    title: &str,
    y: &str,
    scale: Scale,
    bench_name: &str,
    bench: fn(&MachineSpec, ExecMode, usize) -> f64,
) -> FigureSpec {
    let sockets = global_sockets(scale);
    let mut b = PlanBuilder::new(id, title, "cores/sockets", y);
    // Series exactly as in the paper: XT3 and XT4-SN against sockets (= cores),
    // XT4-VN against both cores and sockets.
    let xt3 = presets::xt3_single();
    let xt4 = presets::xt4();
    for (name, m, mode) in [("XT3", &xt3, ExecMode::SN), ("XT4-SN", &xt4, ExecMode::SN)] {
        let s = b.series(name);
        for &n in &sockets {
            let (key, run) = global_job(m, mode, bench_name, bench, n, scale);
            let job = b.job(key, run);
            b.point(s, n as f64, job, "value");
        }
    }
    let by_cores = b.series("XT4-VN (cores)");
    let by_sockets = b.series("XT4-VN (sockets)");
    for &n in &sockets {
        let (key, run) = global_job(&xt4, ExecMode::VN, bench_name, bench, n, scale);
        let job = b.job(key, run);
        // x = cores for the first series needs the job's own cores output;
        // GlobalPoint computes cores = ranks, which for a socket-count sweep
        // in VN mode is sockets × cores/socket — known at build time.
        let cores = n * xt4.processor.cores_per_socket as usize;
        b.point(by_cores, cores as f64, job, "value");
        b.point(by_sockets, n as f64, job, "value");
    }
    b.build()
}

fn fig08(scale: Scale) -> FigureSpec {
    global_fig("fig08", "Global HPL", "TFLOPS", scale, "hpl", global::hpl)
}
fn fig09(scale: Scale) -> FigureSpec {
    global_fig("fig09", "Global MPI-FFT", "GFLOPS", scale, "mpi_fft", global::mpi_fft)
}
fn fig10(scale: Scale) -> FigureSpec {
    global_fig("fig10", "Global PTRANS", "GB/s", scale, "ptrans", global::ptrans)
}
fn fig11(scale: Scale) -> FigureSpec {
    global_fig("fig11", "Global MPI-RandomAccess", "GUPS", scale, "mpi_ra", global::mpi_ra)
}

fn bidir_systems() -> Vec<(String, MachineSpec, ExecMode, usize)> {
    // The paper's single-core XT3 curves were measured two years before the
    // rest ("performance differences are likely, at least partly, due to
    // changes in the system software"): model the stale 2005 stack with a
    // higher per-message software overhead. Large-message peaks are
    // unaffected, small-message latency is much worse — exactly the shape
    // of Figures 12–13.
    let mut xt3_sc_2005 = presets::xt3_single();
    xt3_sc_2005.nic.sw_overhead_us = 12.0;
    vec![
        ("0-1 internode XT3-SC".into(), xt3_sc_2005, ExecMode::SN, 1),
        ("0-1 internode XT3-DC".into(), presets::xt3_dual(), ExecMode::VN, 1),
        ("0-1 internode XT4".into(), presets::xt4(), ExecMode::VN, 1),
        ("i-(i+2) i=0,1 XT3-DC (VN)".into(), presets::xt3_dual(), ExecMode::VN, 2),
        ("i-(i+2) i=0,1 XT4 (VN)".into(), presets::xt4(), ExecMode::VN, 2),
    ]
}

/// Figures 12 and 13 are the same sweep replotted, so they share every job.
fn bidir_fig(id: &'static str, title: &str, scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new(id, title, "message bytes", "per-pair bidirectional MB/s");
    for (name, m, mode, pairs) in bidir_systems() {
        let s = b.series(name);
        for bytes in bidir::sweep_sizes() {
            let (key, run) = bidir_job(&m, mode, pairs, bytes, scale);
            let job = b.job(key, run);
            b.point(s, bytes as f64, job, "bandwidth_mbs");
        }
    }
    b.build()
}

fn fig12(s: Scale) -> FigureSpec {
    bidir_fig("fig12", "Bidirectional MPI bandwidth (log-log: small messages)", s)
}
fn fig13(s: Scale) -> FigureSpec {
    let mut spec = bidir_fig("fig13", "Bidirectional MPI bandwidth (log-linear: large messages)", s);
    let inner = std::mem::replace(&mut spec.assemble, Box::new(|_| unreachable!()));
    spec.assemble = Box::new(move |outputs| {
        inner(outputs).note("same data as fig12; the paper replots it with a linear y-axis")
    });
    spec
}

fn cam_tasks(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![32, 64, 120, 240],
        Scale::Full => vec![32, 64, 96, 120, 240, 336, 504, 672, 960],
    }
}

fn fig14(scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new("fig14", "CAM throughput, XT4 vs XT3", "MPI tasks", "simulated years/day");
    let systems: Vec<(&str, MachineSpec, ExecMode)> = vec![
        ("XT3 (single-core)", presets::xt3_single(), ExecMode::SN),
        ("XT3-DC VN", presets::xt3_dual(), ExecMode::VN),
        ("XT4 SN", presets::xt4(), ExecMode::SN),
        ("XT4 VN", presets::xt4(), ExecMode::VN),
    ];
    for (name, m, mode) in systems {
        let s = b.series(name);
        for &t in &cam_tasks(scale) {
            let (key, run) = cam_job(&m, mode, t, 1, scale);
            let job = b.job(key, run);
            b.point(s, t as f64, job, "years_per_day");
        }
    }
    b.build()
}

fn fig15(scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new(
        "fig15",
        "CAM throughput across platforms",
        "processors",
        "simulated years/day",
    );
    let platforms: Vec<(&str, MachineSpec, ExecMode)> = vec![
        ("XT4 SN", presets::xt4(), ExecMode::SN),
        ("XT4 VN", presets::xt4(), ExecMode::VN),
        ("Cray X1E", presets::x1e(), ExecMode::SN),
        ("Earth Simulator", presets::earth_simulator(), ExecMode::SN),
        ("IBM p690", presets::p690(), ExecMode::SN),
        ("IBM p575", presets::p575(), ExecMode::SN),
        ("IBM SP", presets::ibm_sp(), ExecMode::SN),
    ];
    for (name, m, mode) in platforms {
        let s = b.series(name);
        for &t in &cam_tasks(scale) {
            if t > m.core_count() {
                continue;
            }
            let key = JobKey::new("cam_best", Some(&m), Some(mode), scale).with("processors", t);
            let m2 = m.clone();
            let job = b.job(key, move || match cam::cam_best(&m2, mode, t) {
                None => Value::Null,
                Some(r) => obj(vec![("years_per_day", r.years_per_day.into())]),
            });
            b.point(s, t as f64, job, "years_per_day");
        }
    }
    b.note("each point optimized over OpenMP threads/task where the platform supports it");
    b.build()
}

fn fig16(scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new(
        "fig16",
        "CAM dynamics vs physics cost",
        "MPI tasks",
        "wall seconds per simulated day",
    );
    let systems: Vec<(&str, MachineSpec, ExecMode)> = vec![
        ("XT4 SN dynamics", presets::xt4(), ExecMode::SN),
        ("XT4 VN dynamics", presets::xt4(), ExecMode::VN),
        ("p575 dynamics", presets::p575(), ExecMode::SN),
    ];
    for (name, m, mode) in systems {
        let dynamics = b.series(name);
        let physics = b.series(name.replace("dynamics", "physics"));
        for &t in &cam_tasks(scale) {
            if t > m.core_count() {
                continue;
            }
            let (key, run) = cam_job(&m, mode, t, 1, scale);
            let job = b.job(key, run);
            b.point(dynamics, t as f64, job, "dynamics_secs_per_day");
            b.point(physics, t as f64, job, "physics_secs_per_day");
        }
    }
    b.build()
}

fn pop_tasks(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![256, 512, 1024, 2048],
        Scale::Full => vec![500, 1000, 2000, 4000, 5000, 8000, 10000, 16000, 22000],
    }
}

fn fig17(scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new("fig17", "POP throughput, XT4 vs XT3", "MPI tasks", "simulated years/day");
    let systems: Vec<(&str, MachineSpec, ExecMode)> = vec![
        ("XT3 (single-core)", presets::xt3_single(), ExecMode::SN),
        ("XT3-DC VN", presets::xt3_dual(), ExecMode::VN),
        ("XT4 SN", presets::xt4(), ExecMode::SN),
        ("XT4 VN", presets::xt4(), ExecMode::VN),
    ];
    for (name, m, mode) in systems {
        let s = b.series(name);
        for &t in &pop_tasks(scale) {
            // Large runs use the combined XT3+XT4 machine like the paper.
            let machine = if t > 6_000 && name.starts_with("XT4") {
                presets::xt3_xt4_combined()
            } else {
                m.clone()
            };
            if t > machine.max_ranks(mode) {
                continue;
            }
            let (key, run) = pop_job(&machine, mode, t, pop::Solver::StandardCg, scale);
            let job = b.job(key, run);
            b.point(s, t as f64, job, "years_per_day");
        }
    }
    b.build()
}

fn fig18(scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new(
        "fig18",
        "POP throughput across platforms (+ C-G variant)",
        "MPI tasks",
        "simulated years/day",
    );
    for (name, solver) in [
        ("XT4 VN", pop::Solver::StandardCg),
        ("XT4 VN (C-G allreduce-halving)", pop::Solver::ChronopoulosGear),
    ] {
        let s = b.series(name);
        for &t in &pop_tasks(scale) {
            let machine = if t > 6_000 {
                presets::xt3_xt4_combined()
            } else {
                presets::xt4()
            };
            let (key, run) = pop_job(&machine, ExecMode::VN, t, solver, scale);
            let job = b.job(key, run);
            b.point(s, t as f64, job, "years_per_day");
        }
    }
    let s = b.series("Cray X1E");
    let x1e = presets::x1e();
    for &t in &pop_tasks(scale) {
        if t > x1e.max_ranks(ExecMode::SN) {
            continue;
        }
        let (key, run) = pop_job(&x1e, ExecMode::SN, t, pop::Solver::StandardCg, scale);
        let job = b.job(key, run);
        b.point(s, t as f64, job, "years_per_day");
    }
    b.build()
}

fn fig19(scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new(
        "fig19",
        "POP phase cost (baroclinic vs barotropic)",
        "MPI tasks",
        "wall seconds per simulated day",
    );
    let configs: Vec<(&str, ExecMode, pop::Solver)> = vec![
        ("SN", ExecMode::SN, pop::Solver::StandardCg),
        ("VN", ExecMode::VN, pop::Solver::StandardCg),
        ("VN C-G", ExecMode::VN, pop::Solver::ChronopoulosGear),
    ];
    for (name, mode, solver) in configs {
        let baro = b.series(format!("baroclinic {name}"));
        let barot = b.series(format!("barotropic {name}"));
        for &t in &pop_tasks(scale) {
            let machine = if t > 6_000 {
                presets::xt3_xt4_combined()
            } else {
                presets::xt4()
            };
            if t > machine.max_ranks(mode).max(24_000) {
                continue;
            }
            let (key, run) = pop_job(&machine, mode, t, solver, scale);
            let job = b.job(key, run);
            b.point(baro, t as f64, job, "baroclinic_secs_per_day");
            b.point(barot, t as f64, job, "barotropic_secs_per_day");
        }
    }
    b.build()
}

fn namd_tasks(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![64, 256, 1024],
        Scale::Full => vec![64, 128, 256, 512, 1024, 2048, 4096, 8192, 12000],
    }
}

fn namd_job(m: &MachineSpec, mode: ExecMode, tasks: usize, sys: namd::System, scale: Scale) -> (JobKey, impl Fn() -> Value + Send + Sync) {
    let key = JobKey::new("namd", Some(m), Some(mode), scale)
        .with("tasks", tasks)
        .with("system", sys.label());
    let m = m.clone();
    (key, move || {
        let r = namd::namd(&m, mode, tasks, sys);
        obj(vec![("secs_per_step", r.secs_per_step.into()), ("pme_fraction", r.pme_fraction.into())])
    })
}

fn fig20(scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new("fig20", "NAMD time/step, XT4 vs XT3", "MPI tasks", "seconds per step");
    for (sys, cap) in [(namd::System::Atoms1M, 8192usize), (namd::System::Atoms3M, 12000)] {
        for (mname, m) in [("XT3", presets::xt3_dual()), ("XT4", presets::xt4())] {
            let s = b.series(format!("{mname}({})", sys.label()));
            for &t in &namd_tasks(scale) {
                if t > cap {
                    continue;
                }
                let (key, run) = namd_job(&m, ExecMode::VN, t, sys, scale);
                let job = b.job(key, run);
                b.point(s, t as f64, job, "secs_per_step");
            }
        }
    }
    b.build()
}

fn fig21(scale: Scale) -> FigureSpec {
    let mut b = PlanBuilder::new("fig21", "NAMD SN vs VN", "MPI tasks", "seconds per step");
    let m = presets::xt4();
    for (sys, cap) in [(namd::System::Atoms1M, 8192usize), (namd::System::Atoms3M, 12000)] {
        for mode in [ExecMode::SN, ExecMode::VN] {
            let s = b.series(format!("{}({})", sys.label(), mode));
            for &t in &namd_tasks(scale) {
                if t > cap || t > m.max_ranks(mode).max(12_000) {
                    continue;
                }
                // SN mode cannot exceed the socket count of the machine.
                if mode == ExecMode::SN && t > 6_400 {
                    continue;
                }
                let (key, run) = namd_job(&m, mode, t, sys, scale);
                let job = b.job(key, run);
                b.point(s, t as f64, job, "secs_per_step");
            }
        }
    }
    b.build()
}

fn fig22(scale: Scale) -> FigureSpec {
    let cores: Vec<usize> = match scale {
        Scale::Quick => vec![1, 8, 64, 512],
        Scale::Full => vec![1, 8, 64, 512, 1728, 4096, 8000, 12000],
    };
    let mut b = PlanBuilder::new("fig22", "S3D weak-scaling cost", "cores", "cost per grid point per step (us)");
    // Both lines are 2007-era dual-core systems run in VN mode (only the
    // dual-core XT3 had ~10,000 cores).
    for (name, m) in [("XT3", presets::xt3_dual()), ("XT4", presets::xt4())] {
        let s = b.series(name);
        for &c in &cores {
            let key = JobKey::new("s3d", Some(&m), Some(ExecMode::VN), scale).with("cores", c);
            let m2 = m.clone();
            let job = b.job(key, move || {
                let r = s3d::s3d(&m2, ExecMode::VN, c);
                obj(vec![
                    ("secs_per_step", r.secs_per_step.into()),
                    ("cost_us_per_point", r.cost_us_per_point.into()),
                ])
            });
            b.point(s, c as f64, job, "cost_us_per_point");
        }
    }
    b.build()
}

fn fig23(scale: Scale) -> FigureSpec {
    let grid = 300;
    let configs: Vec<(&str, MachineSpec, usize)> = match scale {
        Scale::Quick => vec![
            ("4k XT3", presets::xt3_dual(), 4096),
            ("4k XT4", presets::xt4(), 4096),
            ("8k XT4", presets::xt4(), 8192),
        ],
        Scale::Full => vec![
            ("4k XT3", presets::xt3_dual(), 4096),
            ("4k XT4", presets::xt4(), 4096),
            ("8k XT4", presets::xt4(), 8192),
            ("16k XT3/4", presets::xt3_xt4_combined(), 16384),
            ("22.5k XT3/4", presets::xt3_xt4_combined(), 22500),
        ],
    };
    // Notes quote the solver TFLOPS out of each job, so fig23 assembles
    // by hand rather than through PlanBuilder.
    let names: Vec<&'static str> = configs.iter().map(|c| c.0).collect();
    let mut spec = FigureSpec::new("fig23", move |outputs: &[Value]| {
        let mut axb = Series::new("Ax=b");
        let mut ql = Series::new("Calc QL operator");
        let mut total = Series::new("Total");
        let mut fig = FigureResult::new("fig23", "AORSA grind time")
            .axes("configuration (bar)", "grind time (minutes)");
        for (i, (name, out)) in names.iter().zip(outputs).enumerate() {
            axb.push((i + 1) as f64, num(out, "axb_minutes"));
            ql.push((i + 1) as f64, num(out, "ql_minutes"));
            total.push((i + 1) as f64, num(out, "total_minutes"));
            fig = fig.note(format!(
                "bar {} = {}   (solver {:.1} TFLOPS)",
                i + 1,
                name,
                num(out, "solver_tflops")
            ));
        }
        fig.series.push(axb);
        fig.series.push(ql);
        fig.series.push(total);
        fig
    });
    for (_name, m, cores) in configs {
        let key = JobKey::new("aorsa", Some(&m), Some(ExecMode::VN), scale)
            .with("cores", cores)
            .with("grid", grid);
        spec.push_job(key, move || {
            let r = aorsa::aorsa(&m, ExecMode::VN, cores, grid);
            obj(vec![
                ("axb_minutes", r.axb_minutes.into()),
                ("ql_minutes", r.ql_minutes.into()),
                ("total_minutes", r.total_minutes.into()),
                ("solver_tflops", r.solver_tflops.into()),
            ])
        });
    }
    spec
}

/// Figure 24 (extension, not in the paper): the conservative parallel
/// engine running the aggregate-bandwidth patterns of §5 — a pairwise
/// alltoall and an iterated halo+allreduce step — on sharded analytic
/// worlds. The shard count is fixed (part of the experiment); the *thread*
/// count comes from [`crate::sweep::des_threads`] and must never change a
/// number, which `tests/pdes_equivalence.rs` and the golden harness both
/// enforce.
fn fig24(scale: Scale) -> FigureSpec {
    const SHARDS: usize = 4;
    let ranks: Vec<usize> = match scale {
        Scale::Quick => vec![16, 32, 64],
        Scale::Full => vec![64, 128, 256, 512, 1024],
    };
    let mut b = PlanBuilder::new(
        "fig24",
        "Parallel DES: sharded alltoall and halo step",
        "ranks",
        "completion time (ms)",
    );
    let a2a = b.series("pairwise alltoall 64 KiB");
    let halo = b.series("halo+allreduce step (10 x 1 KiB)");
    for &p in &ranks {
        let key = JobKey::new("pdes", Some(&presets::xt4()), Some(ExecMode::VN), scale)
            .with("ranks", p)
            .with("shards", SHARDS)
            .with("a2a_bytes", 65536)
            .with("halo_bytes", 1024)
            .with("halo_iters", 10);
        let job = b.job(key, move || {
            let threads = crate::sweep::des_threads();
            let sc = xtsim_apps::pdes::PdesScenario::new(presets::xt4(), ExecMode::VN, p)
                .sharded(SHARDS, threads);
            let a = xtsim_apps::pdes::alltoall(&sc, 65536);
            let h = xtsim_apps::pdes::halo_allreduce(&sc, 1024, 10);
            obj(vec![
                ("a2a_ms", (a.time_s * 1e3).into()),
                ("halo_ms", (h.time_s * 1e3).into()),
                ("halo_checksum", h.checksum.into()),
            ])
        });
        b.point(a2a, p as f64, job, "a2a_ms");
        b.point(halo, p as f64, job, "halo_ms");
    }
    b.note(format!("worlds sharded {SHARDS} ways; DES threads from the engine (results thread-invariant)"));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let figs = all_figures();
        assert_eq!(figs.len(), 25); // table1 + fig01..fig23 + fig24 extension
        for want in ["table1", "fig01", "fig12", "fig23", "fig24"] {
            assert!(figs.iter().any(|f| f.id == want), "{want} missing");
        }
    }

    #[test]
    fn fig24_is_des_thread_invariant() {
        let spec = figure("fig24").unwrap().spec(Scale::Quick);
        let serial = crate::sweep::run_figure(spec, &crate::sweep::SweepConfig::serial()).0;
        let spec = figure("fig24").unwrap().spec(Scale::Quick);
        let cfg = crate::sweep::SweepConfig::serial().with_des_threads(4);
        let par = crate::sweep::run_figure(spec, &cfg).0;
        assert_eq!(serial.render(), par.render());
    }

    #[test]
    fn lookup_by_id() {
        assert!(figure("fig08").is_some());
        assert!(figure("fig99").is_none());
    }

    #[test]
    fn table1_renders_key_values() {
        let t = figure("table1").unwrap().run(Scale::Quick).render();
        assert!(t.contains("SeaStar2"));
        assert!(t.contains("10.6GB/s"));
    }

    #[test]
    fn quick_local_figures_have_three_bars() {
        let f = figure("fig05").unwrap().run(Scale::Quick);
        assert_eq!(f.series.len(), 2); // SP + EP
        assert_eq!(f.series[0].points.len(), 3); // XT3, XT4-SN, XT4-VN
        // DGEMM EP ~ SP on every system.
        for (sp, ep) in f.series[0].points.iter().zip(&f.series[1].points) {
            assert!(ep.1 / sp.1 > 0.85);
        }
    }

    #[test]
    fn shared_sweeps_share_job_keys() {
        // fig12/fig13 are the same sweep; fig02/fig03 extract different
        // fields of the same runs. Their job digests must coincide so the
        // cache dedupes the work.
        for (a, b) in [("fig12", "fig13"), ("fig02", "fig03")] {
            let da: Vec<String> = figure(a).unwrap().spec(Scale::Quick).jobs.iter().map(|j| j.key.digest()).collect();
            let db: Vec<String> = figure(b).unwrap().spec(Scale::Quick).jobs.iter().map(|j| j.key.digest()).collect();
            assert_eq!(da, db, "{a} vs {b}");
        }
    }
}
