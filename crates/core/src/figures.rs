//! The figure registry: one generator per table/figure of the paper.
//!
//! Every generator reruns the corresponding experiment on the simulated
//! machines and emits the same rows/series the paper reports. `Scale::Quick`
//! shrinks the sweeps for CI; `Scale::Full` uses the paper's ranges.

use xtsim_apps::{aorsa, cam, namd, pop, s3d};
use xtsim_hpcc::{bidir, global, local, netbench};
use xtsim_lustre::{run_ior, IorConfig, LustreConfig};
use xtsim_machine::{presets, ExecMode, MachineSpec};

use crate::report::{FigureResult, Scale, Series};

/// A registered figure generator.
pub struct Figure {
    /// Identifier, e.g. "fig08".
    pub id: &'static str,
    /// Caption from the paper.
    pub title: &'static str,
    /// Generator.
    pub run: fn(Scale) -> FigureResult,
}

/// All tables and figures, in paper order.
pub fn all_figures() -> Vec<Figure> {
    vec![
        Figure { id: "table1", title: "Comparison of XT3, XT3 dual core, and XT4 systems", run: table1 },
        Figure { id: "fig01", title: "Lustre filesystem architecture (IOR demonstration)", run: fig01 },
        Figure { id: "fig02", title: "Network latency", run: fig02 },
        Figure { id: "fig03", title: "Network bandwidth", run: fig03 },
        Figure { id: "fig04", title: "SP/EP Fast Fourier Transform (FFT)", run: fig04 },
        Figure { id: "fig05", title: "SP/EP Matrix Multiply (DGEMM)", run: fig05 },
        Figure { id: "fig06", title: "SP/EP Random Access (RA)", run: fig06 },
        Figure { id: "fig07", title: "SP/EP Memory Bandwidth (Streams)", run: fig07 },
        Figure { id: "fig08", title: "Global High Performance LINPACK (HPL)", run: fig08 },
        Figure { id: "fig09", title: "Global Fast Fourier Transform (MPI-FFT)", run: fig09 },
        Figure { id: "fig10", title: "Global Matrix Transpose (PTRANS)", run: fig10 },
        Figure { id: "fig11", title: "Global Random Access (MPI-RA)", run: fig11 },
        Figure { id: "fig12", title: "Bidirectional MPI bandwidth (small-message emphasis)", run: fig12 },
        Figure { id: "fig13", title: "Bidirectional MPI bandwidth (large-message emphasis)", run: fig13 },
        Figure { id: "fig14", title: "CAM throughput on XT4 vs XT3", run: fig14 },
        Figure { id: "fig15", title: "CAM throughput on XT4 relative to previous results", run: fig15 },
        Figure { id: "fig16", title: "CAM performance by computational phase", run: fig16 },
        Figure { id: "fig17", title: "POP throughput on XT4 vs XT3", run: fig17 },
        Figure { id: "fig18", title: "POP throughput on XT4 relative to previous results", run: fig18 },
        Figure { id: "fig19", title: "POP performance by computational phase", run: fig19 },
        Figure { id: "fig20", title: "NAMD performance on XT4 vs XT3", run: fig20 },
        Figure { id: "fig21", title: "NAMD performance impact of SN vs VN", run: fig21 },
        Figure { id: "fig22", title: "S3D parallel performance", run: fig22 },
        Figure { id: "fig23", title: "AORSA parallel performance", run: fig23 },
    ]
}

/// Look up one figure by id.
pub fn figure(id: &str) -> Option<Figure> {
    all_figures().into_iter().find(|f| f.id == id)
}

fn table1(_scale: Scale) -> FigureResult {
    let xt3 = presets::xt3_single();
    let xt3d = presets::xt3_dual();
    let xt4 = presets::xt4();
    FigureResult::new("table1", "Comparison of XT3, XT3 dual core, and XT4 systems at ORNL")
        .note(xtsim_machine::table::system_comparison(&[&xt3, &xt3d, &xt4]))
        .note("\nDerived balance ratios (the quantities §1/§7 reason in):\n")
        .note(xtsim_machine::balance::balance_table(&[&xt3, &xt3d, &xt4]))
}

fn fig01(scale: Scale) -> FigureResult {
    let clients = match scale {
        Scale::Quick => 16,
        Scale::Full => 64,
    };
    let mut fig = FigureResult::new("fig01", "Lustre filesystem architecture — IOR on the model")
        .axes("stripe count", "aggregate write GB/s");
    let mut s = Series::new("IOR write");
    let mut r = Series::new("IOR read");
    for stripes in [1usize, 2, 4, 8, 16] {
        let out = run_ior(
            7,
            LustreConfig::default(),
            IorConfig {
                clients,
                block_size: 32 << 20,
                transfer_size: 4 << 20,
                stripe_count: stripes,
                file_per_process: true,
            },
        );
        s.push(stripes as f64, out.write_gbs);
        r.push(stripes as f64, out.read_gbs);
    }
    fig = fig.with_series(s).with_series(r);
    fig.note("One MDS (FIFO), 9 OSS × 4 OST; clients stripe files round-robin (paper Figure 1).")
}

/// The three system configurations of Figures 2–11.
fn micro_systems() -> Vec<(String, MachineSpec, ExecMode)> {
    vec![
        ("XT3".into(), presets::xt3_single(), ExecMode::SN),
        ("XT4-SN".into(), presets::xt4(), ExecMode::SN),
        ("XT4-VN".into(), presets::xt4(), ExecMode::VN),
    ]
}

fn net_sockets(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 32,
        Scale::Full => 256,
    }
}

fn fig02(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig02", "Network latency")
        .axes("pattern (1=PPmin 2=PPavg 3=PPmax 4=Nat.Ring 5=Rand.Ring)", "latency (us)");
    for (name, m, mode) in micro_systems() {
        let r = netbench::network_bench(&m, mode, net_sockets(scale));
        let mut s = Series::new(name);
        for (i, v) in [r.pp_min_us, r.pp_avg_us, r.pp_max_us, r.nat_ring_us, r.rand_ring_us]
            .into_iter()
            .enumerate()
        {
            s.push((i + 1) as f64, v);
        }
        fig = fig.with_series(s);
    }
    fig
}

fn fig03(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig03", "Network bandwidth")
        .axes("pattern (1=PPmin 2=PPavg 3=PPmax 4=Nat.Ring 5=Rand.Ring)", "bandwidth (GB/s)");
    for (name, m, mode) in micro_systems() {
        let r = netbench::network_bench(&m, mode, net_sockets(scale));
        let mut s = Series::new(name);
        for (i, v) in [r.pp_min_bw, r.pp_avg_bw, r.pp_max_bw, r.nat_ring_bw, r.rand_ring_bw]
            .into_iter()
            .enumerate()
        {
            s.push((i + 1) as f64, v);
        }
        fig = fig.with_series(s);
    }
    fig
}

fn local_fig(id: &str, title: &str, kernel: local::LocalKernel) -> FigureResult {
    let mut fig = FigureResult::new(id, title).axes("system (bar)", kernel.label());
    let mut sp = Series::new("SP");
    let mut ep = Series::new("EP");
    for (i, (_name, m, mode)) in micro_systems().into_iter().enumerate() {
        let r = local::local_bench(&m, mode, kernel);
        sp.push((i + 1) as f64, r.sp);
        ep.push((i + 1) as f64, r.ep);
    }
    fig.series.push(sp);
    fig.series.push(ep);
    fig.note("bars: 1=XT3, 2=XT4-SN, 3=XT4-VN")
}

fn fig04(_s: Scale) -> FigureResult {
    local_fig("fig04", "SP/EP Fast Fourier Transform", local::LocalKernel::Fft)
}
fn fig05(_s: Scale) -> FigureResult {
    local_fig("fig05", "SP/EP Matrix Multiply (DGEMM)", local::LocalKernel::Dgemm)
}
fn fig06(_s: Scale) -> FigureResult {
    local_fig("fig06", "SP/EP Random Access", local::LocalKernel::RandomAccess)
}
fn fig07(_s: Scale) -> FigureResult {
    local_fig("fig07", "SP/EP Memory Bandwidth (Streams)", local::LocalKernel::StreamTriad)
}

fn global_sockets(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![16, 32, 64, 128],
        Scale::Full => global::default_sweep_sockets(),
    }
}

fn global_fig(
    id: &str,
    title: &str,
    y: &str,
    scale: Scale,
    bench: fn(&MachineSpec, ExecMode, usize) -> f64,
) -> FigureResult {
    let sockets = global_sockets(scale);
    let mut fig = FigureResult::new(id, title).axes("cores/sockets", y);
    // Series exactly as in the paper: XT3 and XT4-SN against sockets (= cores),
    // XT4-VN against both cores and sockets.
    let xt3 = presets::xt3_single();
    let xt4 = presets::xt4();
    let mut s = Series::new("XT3");
    for p in global::sweep(&xt3, ExecMode::SN, &sockets, bench) {
        s.push(p.sockets as f64, p.value);
    }
    fig = fig.with_series(s);
    let mut s = Series::new("XT4-SN");
    for p in global::sweep(&xt4, ExecMode::SN, &sockets, bench) {
        s.push(p.sockets as f64, p.value);
    }
    fig = fig.with_series(s);
    let vn = global::sweep(&xt4, ExecMode::VN, &sockets, bench);
    let mut by_cores = Series::new("XT4-VN (cores)");
    let mut by_sockets = Series::new("XT4-VN (sockets)");
    for p in vn {
        by_cores.push(p.cores as f64, p.value);
        by_sockets.push(p.sockets as f64, p.value);
    }
    fig.with_series(by_cores).with_series(by_sockets)
}

fn fig08(scale: Scale) -> FigureResult {
    global_fig("fig08", "Global HPL", "TFLOPS", scale, global::hpl)
}
fn fig09(scale: Scale) -> FigureResult {
    global_fig("fig09", "Global MPI-FFT", "GFLOPS", scale, global::mpi_fft)
}
fn fig10(scale: Scale) -> FigureResult {
    global_fig("fig10", "Global PTRANS", "GB/s", scale, global::ptrans)
}
fn fig11(scale: Scale) -> FigureResult {
    global_fig("fig11", "Global MPI-RandomAccess", "GUPS", scale, global::mpi_ra)
}

fn bidir_systems() -> Vec<(String, MachineSpec, ExecMode, usize)> {
    // The paper's single-core XT3 curves were measured two years before the
    // rest ("performance differences are likely, at least partly, due to
    // changes in the system software"): model the stale 2005 stack with a
    // higher per-message software overhead. Large-message peaks are
    // unaffected, small-message latency is much worse — exactly the shape
    // of Figures 12–13.
    let mut xt3_sc_2005 = presets::xt3_single();
    xt3_sc_2005.nic.sw_overhead_us = 12.0;
    vec![
        ("0-1 internode XT3-SC".into(), xt3_sc_2005, ExecMode::SN, 1),
        ("0-1 internode XT3-DC".into(), presets::xt3_dual(), ExecMode::VN, 1),
        ("0-1 internode XT4".into(), presets::xt4(), ExecMode::VN, 1),
        ("i-(i+2) i=0,1 XT3-DC (VN)".into(), presets::xt3_dual(), ExecMode::VN, 2),
        ("i-(i+2) i=0,1 XT4 (VN)".into(), presets::xt4(), ExecMode::VN, 2),
    ]
}

fn bidir_fig(id: &str, title: &str) -> FigureResult {
    let mut fig = FigureResult::new(id, title).axes("message bytes", "per-pair bidirectional MB/s");
    for (name, m, mode, pairs) in bidir_systems() {
        let mut s = Series::new(name);
        for p in bidir::bidir_sweep(&m, mode, pairs) {
            s.push(p.bytes as f64, p.bandwidth_mbs);
        }
        fig = fig.with_series(s);
    }
    fig
}

fn fig12(_s: Scale) -> FigureResult {
    bidir_fig("fig12", "Bidirectional MPI bandwidth (log-log: small messages)")
}
fn fig13(_s: Scale) -> FigureResult {
    bidir_fig("fig13", "Bidirectional MPI bandwidth (log-linear: large messages)")
        .note("same data as fig12; the paper replots it with a linear y-axis")
}

fn cam_tasks(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![32, 64, 120, 240],
        Scale::Full => vec![32, 64, 96, 120, 240, 336, 504, 672, 960],
    }
}

fn fig14(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig14", "CAM throughput, XT4 vs XT3")
        .axes("MPI tasks", "simulated years/day");
    let systems: Vec<(&str, MachineSpec, ExecMode)> = vec![
        ("XT3 (single-core)", presets::xt3_single(), ExecMode::SN),
        ("XT3-DC VN", presets::xt3_dual(), ExecMode::VN),
        ("XT4 SN", presets::xt4(), ExecMode::SN),
        ("XT4 VN", presets::xt4(), ExecMode::VN),
    ];
    for (name, m, mode) in systems {
        let mut s = Series::new(name);
        for &t in &cam_tasks(scale) {
            if let Some(r) = cam::cam(&m, mode, t, 1) {
                s.push(t as f64, r.years_per_day);
            }
        }
        fig = fig.with_series(s);
    }
    fig
}

fn fig15(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig15", "CAM throughput across platforms")
        .axes("processors", "simulated years/day");
    let platforms: Vec<(&str, MachineSpec, ExecMode)> = vec![
        ("XT4 SN", presets::xt4(), ExecMode::SN),
        ("XT4 VN", presets::xt4(), ExecMode::VN),
        ("Cray X1E", presets::x1e(), ExecMode::SN),
        ("Earth Simulator", presets::earth_simulator(), ExecMode::SN),
        ("IBM p690", presets::p690(), ExecMode::SN),
        ("IBM p575", presets::p575(), ExecMode::SN),
        ("IBM SP", presets::ibm_sp(), ExecMode::SN),
    ];
    for (name, m, mode) in platforms {
        let mut s = Series::new(name);
        for &t in &cam_tasks(scale) {
            if t > m.core_count() {
                continue;
            }
            if let Some(r) = cam::cam_best(&m, mode, t) {
                s.push(t as f64, r.years_per_day);
            }
        }
        fig = fig.with_series(s);
    }
    fig.note("each point optimized over OpenMP threads/task where the platform supports it")
}

fn fig16(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig16", "CAM dynamics vs physics cost")
        .axes("MPI tasks", "wall seconds per simulated day");
    let systems: Vec<(&str, MachineSpec, ExecMode)> = vec![
        ("XT4 SN dynamics", presets::xt4(), ExecMode::SN),
        ("XT4 VN dynamics", presets::xt4(), ExecMode::VN),
        ("p575 dynamics", presets::p575(), ExecMode::SN),
    ];
    for (name, m, mode) in systems {
        let mut dynamics = Series::new(name);
        let mut physics = Series::new(name.replace("dynamics", "physics"));
        for &t in &cam_tasks(scale) {
            if t > m.core_count() {
                continue;
            }
            if let Some(r) = cam::cam(&m, mode, t, 1) {
                dynamics.push(t as f64, r.dynamics_secs_per_day);
                physics.push(t as f64, r.physics_secs_per_day);
            }
        }
        fig = fig.with_series(dynamics).with_series(physics);
    }
    fig
}

fn pop_tasks(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![256, 512, 1024, 2048],
        Scale::Full => vec![500, 1000, 2000, 4000, 5000, 8000, 10000, 16000, 22000],
    }
}

fn fig17(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig17", "POP throughput, XT4 vs XT3")
        .axes("MPI tasks", "simulated years/day");
    let systems: Vec<(&str, MachineSpec, ExecMode)> = vec![
        ("XT3 (single-core)", presets::xt3_single(), ExecMode::SN),
        ("XT3-DC VN", presets::xt3_dual(), ExecMode::VN),
        ("XT4 SN", presets::xt4(), ExecMode::SN),
        ("XT4 VN", presets::xt4(), ExecMode::VN),
    ];
    for (name, m, mode) in systems {
        let mut s = Series::new(name);
        for &t in &pop_tasks(scale) {
            // Large runs use the combined XT3+XT4 machine like the paper.
            let machine = if t > 6_000 && name.starts_with("XT4") {
                presets::xt3_xt4_combined()
            } else {
                m.clone()
            };
            if t > machine.max_ranks(mode) {
                continue;
            }
            if let Some(r) = pop::pop(&machine, mode, t, pop::Solver::StandardCg) {
                s.push(t as f64, r.years_per_day);
            }
        }
        fig = fig.with_series(s);
    }
    fig
}

fn fig18(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig18", "POP throughput across platforms (+ C-G variant)")
        .axes("MPI tasks", "simulated years/day");
    for (name, solver) in [
        ("XT4 VN", pop::Solver::StandardCg),
        ("XT4 VN (C-G allreduce-halving)", pop::Solver::ChronopoulosGear),
    ] {
        let mut s = Series::new(name);
        for &t in &pop_tasks(scale) {
            let machine = if t > 6_000 {
                presets::xt3_xt4_combined()
            } else {
                presets::xt4()
            };
            if let Some(r) = pop::pop(&machine, ExecMode::VN, t, solver) {
                s.push(t as f64, r.years_per_day);
            }
        }
        fig = fig.with_series(s);
    }
    let mut s = Series::new("Cray X1E");
    for &t in &pop_tasks(scale) {
        let m = presets::x1e();
        if t > m.max_ranks(ExecMode::SN) {
            continue;
        }
        if let Some(r) = pop::pop(&m, ExecMode::SN, t, pop::Solver::StandardCg) {
            s.push(t as f64, r.years_per_day);
        }
    }
    fig.with_series(s)
}

fn fig19(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig19", "POP phase cost (baroclinic vs barotropic)")
        .axes("MPI tasks", "wall seconds per simulated day");
    let configs: Vec<(&str, ExecMode, pop::Solver)> = vec![
        ("SN", ExecMode::SN, pop::Solver::StandardCg),
        ("VN", ExecMode::VN, pop::Solver::StandardCg),
        ("VN C-G", ExecMode::VN, pop::Solver::ChronopoulosGear),
    ];
    for (name, mode, solver) in configs {
        let mut baro = Series::new(format!("baroclinic {name}"));
        let mut barot = Series::new(format!("barotropic {name}"));
        for &t in &pop_tasks(scale) {
            let machine = if t > 6_000 {
                presets::xt3_xt4_combined()
            } else {
                presets::xt4()
            };
            if t > machine.max_ranks(mode).max(24_000) {
                continue;
            }
            if let Some(r) = pop::pop(&machine, mode, t, solver) {
                baro.push(t as f64, r.baroclinic_secs_per_day);
                barot.push(t as f64, r.barotropic_secs_per_day);
            }
        }
        fig = fig.with_series(baro).with_series(barot);
    }
    fig
}

fn namd_tasks(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![64, 256, 1024],
        Scale::Full => vec![64, 128, 256, 512, 1024, 2048, 4096, 8192, 12000],
    }
}

fn fig20(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig20", "NAMD time/step, XT4 vs XT3")
        .axes("MPI tasks", "seconds per step");
    for (sys, cap) in [(namd::System::Atoms1M, 8192usize), (namd::System::Atoms3M, 12000)] {
        for (mname, m) in [("XT3", presets::xt3_dual()), ("XT4", presets::xt4())] {
            let mut s = Series::new(format!("{mname}({})", sys.label()));
            for &t in &namd_tasks(scale) {
                if t > cap {
                    continue;
                }
                let r = namd::namd(&m, ExecMode::VN, t, sys);
                s.push(t as f64, r.secs_per_step);
            }
            fig = fig.with_series(s);
        }
    }
    fig
}

fn fig21(scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("fig21", "NAMD SN vs VN")
        .axes("MPI tasks", "seconds per step");
    let m = presets::xt4();
    for (sys, cap) in [(namd::System::Atoms1M, 8192usize), (namd::System::Atoms3M, 12000)] {
        for mode in [ExecMode::SN, ExecMode::VN] {
            let mut s = Series::new(format!("{}({})", sys.label(), mode));
            for &t in &namd_tasks(scale) {
                if t > cap || t > m.max_ranks(mode).max(12_000) {
                    continue;
                }
                // SN mode cannot exceed the socket count of the machine.
                if mode == ExecMode::SN && t > 6_400 {
                    continue;
                }
                let r = namd::namd(&m, mode, t, sys);
                s.push(t as f64, r.secs_per_step);
            }
            fig = fig.with_series(s);
        }
    }
    fig
}

fn fig22(scale: Scale) -> FigureResult {
    let cores: Vec<usize> = match scale {
        Scale::Quick => vec![1, 8, 64, 512],
        Scale::Full => vec![1, 8, 64, 512, 1728, 4096, 8000, 12000],
    };
    let mut fig = FigureResult::new("fig22", "S3D weak-scaling cost")
        .axes("cores", "cost per grid point per step (us)");
    // Both lines are 2007-era dual-core systems run in VN mode (only the
    // dual-core XT3 had ~10,000 cores).
    for (name, m) in [("XT3", presets::xt3_dual()), ("XT4", presets::xt4())] {
        let mode = ExecMode::VN;
        let mut s = Series::new(name);
        for &c in &cores {
            let r = s3d::s3d(&m, mode, c);
            s.push(c as f64, r.cost_us_per_point);
        }
        fig = fig.with_series(s);
    }
    fig
}

fn fig23(scale: Scale) -> FigureResult {
    let grid = 300;
    let configs: Vec<(&str, MachineSpec, usize)> = match scale {
        Scale::Quick => vec![
            ("4k XT3", presets::xt3_dual(), 4096),
            ("4k XT4", presets::xt4(), 4096),
            ("8k XT4", presets::xt4(), 8192),
        ],
        Scale::Full => vec![
            ("4k XT3", presets::xt3_dual(), 4096),
            ("4k XT4", presets::xt4(), 4096),
            ("8k XT4", presets::xt4(), 8192),
            ("16k XT3/4", presets::xt3_xt4_combined(), 16384),
            ("22.5k XT3/4", presets::xt3_xt4_combined(), 22500),
        ],
    };
    let mut axb = Series::new("Ax=b");
    let mut ql = Series::new("Calc QL operator");
    let mut total = Series::new("Total");
    let mut fig = FigureResult::new("fig23", "AORSA grind time").axes("configuration (bar)", "grind time (minutes)");
    for (i, (name, m, cores)) in configs.iter().enumerate() {
        let r = aorsa::aorsa(m, ExecMode::VN, *cores, grid);
        axb.push((i + 1) as f64, r.axb_minutes);
        ql.push((i + 1) as f64, r.ql_minutes);
        total.push((i + 1) as f64, r.total_minutes);
        fig = fig.note(format!(
            "bar {} = {}   (solver {:.1} TFLOPS)",
            i + 1,
            name,
            r.solver_tflops
        ));
    }
    fig.series.push(axb);
    fig.series.push(ql);
    fig.series.push(total);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let figs = all_figures();
        assert_eq!(figs.len(), 24); // table1 + fig01..fig23
        for want in ["table1", "fig01", "fig12", "fig23"] {
            assert!(figs.iter().any(|f| f.id == want), "{want} missing");
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(figure("fig08").is_some());
        assert!(figure("fig99").is_none());
    }

    #[test]
    fn table1_renders_key_values() {
        let t = table1(Scale::Quick).render();
        assert!(t.contains("SeaStar2"));
        assert!(t.contains("10.6GB/s"));
    }

    #[test]
    fn quick_local_figures_have_three_bars() {
        let f = fig05(Scale::Quick);
        assert_eq!(f.series.len(), 2); // SP + EP
        assert_eq!(f.series[0].points.len(), 3); // XT3, XT4-SN, XT4-VN
        // DGEMM EP ~ SP on every system.
        for (sp, ep) in f.series[0].points.iter().zip(&f.series[1].points) {
            assert!(ep.1 / sp.1 > 0.85);
        }
    }
}
