//! Two-tier content-addressed result cache: a process-wide sharded
//! in-memory hot tier with byte-bounded LRU eviction, layered over a
//! prefix-sharded on-disk store.
//!
//! Every figure sweep, calibration pass, and serve request funnels through
//! here, and the dominant access pattern is *mostly-warm repetition*: the
//! same sweep points looked up again and again across figures, reruns, and
//! concurrent service clients. The hot tier answers those repeats with one
//! shard-local mutex acquisition and a key comparison — no filesystem read,
//! no JSON parse.
//!
//! ## Tiers
//!
//! * **Memory** — [`MEM_SHARDS`] independent shards, each its own
//!   `Mutex` (so concurrent sweep workers rarely contend), keyed by the
//!   leading byte of the digest. Each shard holds parsed [`Value`]s under a
//!   byte-budgeted LRU: the process-wide cap (`--cache-mem-cap`, default
//!   [`DEFAULT_MEM_CAP`]) is split evenly across shards, and inserting past
//!   the budget evicts least-recently-used entries first. Entries larger
//!   than one shard's budget are never admitted, so total residency is
//!   provably bounded by the cap.
//! * **Disk** — one JSON file per digest under a two-hex-prefix
//!   subdirectory (`<dir>/<d[0..2]>/<digest>.json`), so a full-scale sweep
//!   corpus never piles tens of thousands of files into one directory.
//!   Entries from the older flat layout are migrated transparently on open.
//!
//! ## Verification at both tiers
//!
//! An entry — memory or disk — stores the canonical JSON of the
//! [`JobKey`](crate::sweep::JobKey) it was recorded under, and a lookup
//! only hits when that matches the requesting key byte-for-byte. A digest
//! collision, a corrupted file, or a poisoned memory entry therefore
//! becomes a [`CacheLookup::KeyMismatch`] (recompute), never a wrong value.
//! The requesting key is serialized **once per job** into a
//! [`PreparedKey`] and threaded through load/store, instead of being
//! re-serialized at every verification site.
//!
//! Sharing: hot tiers are registered process-wide *per cache directory*
//! (canonicalized), so every [`DiskCache`] handle a service opens onto the
//! same directory shares one memory tier, while caches rooted elsewhere
//! (tests, scratch sweeps) stay isolated.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use serde::{impl_serde_struct, Value};
use xtsim_machine::fingerprint::hex_digest;

/// Default in-memory hot-tier budget (bytes): 64 MiB.
pub const DEFAULT_MEM_CAP: u64 = 64 * 1024 * 1024;

/// Number of independent hot-tier shards. Shard choice is the first hex
/// byte of the digest, so uniformly distributed digests spread evenly.
pub const MEM_SHARDS: usize = 16;

/// A job key serialized once: the canonical JSON encoding plus the digest
/// derived from it. Constructed by `JobKey::prepare()`; both tiers verify
/// against `key_json` and address by `digest` without ever re-serializing
/// the key.
#[derive(Debug, Clone)]
pub struct PreparedKey {
    /// 128-bit hex digest of `key_json`.
    pub digest: String,
    /// Canonical JSON of the job key (object keys sorted, integral floats
    /// rendered `x.0`) — the byte string that load-time verification
    /// compares against.
    pub key_json: String,
}

impl PreparedKey {
    /// Build from an already-canonical key encoding (the digest is derived
    /// from it).
    pub fn from_canonical_json(key_json: String) -> PreparedKey {
        PreparedKey { digest: hex_digest(&key_json), key_json }
    }
}

/// Outcome of a verified cache lookup ([`DiskCache::load`]).
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Entry present and its embedded key matches the requesting key.
    Hit(Value),
    /// No entry in either tier (or an unreadable/corrupt file).
    Miss,
    /// Entry present but recorded under a *different* key — a digest
    /// collision or a corrupted/poisoned entry. Must be recomputed.
    KeyMismatch,
}

/// Aggregate state of a [`DiskCache`] across both tiers, for
/// `/stats`-style reporting.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Committed disk entries (`<digest>.json` files).
    pub entries: u64,
    /// Total bytes across committed disk entries.
    pub bytes: u64,
    /// In-flight or leaked temp files (`.<digest>.<pid>.<seq>.tmp`).
    pub tmp_files: u64,
    /// Entries resident in the memory tier.
    pub mem_entries: u64,
    /// Bytes resident in the memory tier (serialized-entry accounting).
    pub mem_bytes: u64,
    /// Memory-tier byte budget (0 = hot tier disabled).
    pub mem_cap_bytes: u64,
}

impl_serde_struct!(CacheStats { entries, bytes, tmp_files, mem_entries, mem_bytes, mem_cap_bytes });

/// Temp files older than this are presumed leaked by a crashed writer and
/// are reclaimed on [`DiskCache::new`], even when pid liveness can't be
/// probed. A live store-then-rename window is microseconds; an hour is far
/// outside any legitimate in-flight write.
const STALE_TMP_MAX_AGE: Duration = Duration::from_secs(3600);

// ------------------------------------------------------------------ metrics

/// Process-wide cache telemetry handles, registered once. Pure observation:
/// counters and wall-clock latency never influence lookup results, job
/// keys, or figure bytes.
struct CacheMetrics {
    hits_mem: Arc<xtsim_obs::Counter>,
    hits_disk: Arc<xtsim_obs::Counter>,
    misses: Arc<xtsim_obs::Counter>,
    key_mismatches_mem: Arc<xtsim_obs::Counter>,
    key_mismatches_disk: Arc<xtsim_obs::Counter>,
    stores: Arc<xtsim_obs::Counter>,
    store_bytes: Arc<xtsim_obs::Counter>,
    lookup_seconds_mem: Arc<xtsim_obs::Histogram>,
    lookup_seconds_disk: Arc<xtsim_obs::Histogram>,
    mem_evictions: Arc<xtsim_obs::Counter>,
    mem_oversize: Arc<xtsim_obs::Counter>,
    mem_bytes: Arc<xtsim_obs::Gauge>,
    mem_entries: Arc<xtsim_obs::Gauge>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static M: OnceLock<CacheMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let lookups = "xtsim_cache_lookups_total";
        let lookups_help = "Cache lookups by verified outcome and serving tier.";
        let latency = "xtsim_cache_lookup_seconds";
        let latency_help = "Wall-clock cache lookup latency by serving tier \
                            (memory = hot-tier hit; disk = the lookup read the disk tier).";
        CacheMetrics {
            hits_mem: xtsim_obs::counter_with(
                lookups,
                lookups_help,
                &[("result", "hit"), ("tier", "memory")],
            ),
            hits_disk: xtsim_obs::counter_with(
                lookups,
                lookups_help,
                &[("result", "hit"), ("tier", "disk")],
            ),
            misses: xtsim_obs::counter_with(
                lookups,
                lookups_help,
                &[("result", "miss"), ("tier", "disk")],
            ),
            key_mismatches_mem: xtsim_obs::counter_with(
                lookups,
                lookups_help,
                &[("result", "key_mismatch"), ("tier", "memory")],
            ),
            key_mismatches_disk: xtsim_obs::counter_with(
                lookups,
                lookups_help,
                &[("result", "key_mismatch"), ("tier", "disk")],
            ),
            stores: xtsim_obs::counter(
                "xtsim_cache_stores_total",
                "Cache entries committed to disk.",
            ),
            store_bytes: xtsim_obs::counter(
                "xtsim_cache_store_bytes_total",
                "Serialized bytes written into committed cache entries.",
            ),
            lookup_seconds_mem: xtsim_obs::histogram_with(
                latency,
                latency_help,
                &[("tier", "memory")],
            ),
            lookup_seconds_disk: xtsim_obs::histogram_with(
                latency,
                latency_help,
                &[("tier", "disk")],
            ),
            mem_evictions: xtsim_obs::counter(
                "xtsim_cache_mem_evictions_total",
                "Memory-tier entries evicted by the byte-budgeted LRU.",
            ),
            mem_oversize: xtsim_obs::counter(
                "xtsim_cache_mem_oversize_total",
                "Values too large for one memory-tier shard budget (never admitted).",
            ),
            mem_bytes: xtsim_obs::gauge(
                "xtsim_cache_mem_bytes",
                "Bytes resident in the memory tier (serialized-entry accounting).",
            ),
            mem_entries: xtsim_obs::gauge(
                "xtsim_cache_mem_entries",
                "Entries resident in the memory tier.",
            ),
        }
    })
}

// ----------------------------------------------------------------- hot tier

struct MemEntry {
    key_json: String,
    value: Arc<Value>,
    bytes: u64,
    tick: u64,
}

#[derive(Default)]
struct MemShard {
    /// Digest → entry. BTreeMap: point lookups only, deterministic walks.
    entries: BTreeMap<String, MemEntry>,
    /// Recency tick → digest; the smallest tick is the LRU victim.
    lru: BTreeMap<u64, String>,
    bytes: u64,
}

impl MemShard {
    fn remove(&mut self, digest: &str) -> Option<MemEntry> {
        let e = self.entries.remove(digest)?;
        self.lru.remove(&e.tick);
        self.bytes -= e.bytes;
        Some(e)
    }

    /// Evict LRU entries until the shard holds at most `budget` bytes.
    /// Returns the number of entries evicted.
    fn evict_to(&mut self, budget: u64) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            let Some((&tick, _)) = self.lru.iter().next() else { break };
            let digest = self.lru.remove(&tick).expect("lru tick present");
            let e = self.entries.remove(&digest).expect("lru digest present");
            self.bytes -= e.bytes;
            evicted += 1;
        }
        evicted
    }
}

enum MemLookup {
    Hit(Value),
    Miss,
    KeyMismatch,
}

/// The process-wide in-memory hot tier for one cache directory.
struct MemCache {
    shards: Vec<Mutex<MemShard>>,
    /// Total byte budget, split evenly across shards. 0 disables the tier.
    cap: AtomicU64,
    /// Global recency clock (monotonic; shared so LRU order is meaningful
    /// across shards even though eviction is shard-local).
    tick: AtomicU64,
    /// Residency totals, maintained under shard locks, read lock-free.
    total_bytes: AtomicU64,
    total_entries: AtomicU64,
}

impl MemCache {
    fn new(cap: u64) -> MemCache {
        MemCache {
            shards: (0..MEM_SHARDS).map(|_| Mutex::new(MemShard::default())).collect(),
            cap: AtomicU64::new(cap),
            tick: AtomicU64::new(0),
            total_bytes: AtomicU64::new(0),
            total_entries: AtomicU64::new(0),
        }
    }

    fn shard_budget(&self) -> u64 {
        self.cap.load(Ordering::Relaxed) / MEM_SHARDS as u64
    }

    fn shard_for(&self, digest: &str) -> &Mutex<MemShard> {
        let idx = usize::from_str_radix(digest.get(..2).unwrap_or("0"), 16).unwrap_or(0);
        &self.shards[idx % MEM_SHARDS]
    }

    fn publish_totals(&self) {
        let m = cache_metrics();
        m.mem_bytes.set(self.total_bytes.load(Ordering::Relaxed));
        m.mem_entries.set(self.total_entries.load(Ordering::Relaxed));
    }

    /// Re-budget the tier (e.g. a front end passing `--cache-mem-cap` onto
    /// an already-registered directory), evicting down if it shrank.
    fn set_cap(&self, cap: u64) {
        self.cap.store(cap, Ordering::Relaxed);
        let budget = cap / MEM_SHARDS as u64;
        let mut evicted = 0;
        for shard in &self.shards {
            evicted += shard.lock().expect("mem-cache shard lock").evict_to(budget);
        }
        if evicted > 0 {
            cache_metrics().mem_evictions.add(evicted);
            self.recount();
        }
        self.publish_totals();
    }

    /// Recompute residency totals from the shards (slow path, only after
    /// bulk eviction).
    fn recount(&self) {
        let (mut bytes, mut entries) = (0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock().expect("mem-cache shard lock");
            bytes += s.bytes;
            entries += s.entries.len() as u64;
        }
        self.total_bytes.store(bytes, Ordering::Relaxed);
        self.total_entries.store(entries, Ordering::Relaxed);
    }

    fn lookup(&self, key: &PreparedKey) -> MemLookup {
        if self.cap.load(Ordering::Relaxed) == 0 {
            return MemLookup::Miss;
        }
        let mut s = self.shard_for(&key.digest).lock().expect("mem-cache shard lock");
        let Some(e) = s.entries.get(&key.digest) else {
            return MemLookup::Miss;
        };
        if e.key_json != key.key_json {
            // Poisoned or colliding entry: it can never serve this key (and
            // by content-addressing it shouldn't exist at all) — drop it so
            // the recompute's store can land cleanly.
            s.remove(&key.digest);
            self.total_entries.fetch_sub(1, Ordering::Relaxed);
            drop(s);
            self.recount_bytes_only();
            return MemLookup::KeyMismatch;
        }
        let value = Arc::clone(&e.value);
        // Touch: move the entry to the MRU end of the recency order.
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let old = e.tick;
        s.lru.remove(&old);
        s.lru.insert(tick, key.digest.clone());
        s.entries.get_mut(&key.digest).expect("entry present").tick = tick;
        MemLookup::Hit((*value).clone())
    }

    fn recount_bytes_only(&self) {
        let bytes: u64 = self
            .shards
            .iter()
            .map(|s| s.lock().expect("mem-cache shard lock").bytes)
            .sum();
        self.total_bytes.store(bytes, Ordering::Relaxed);
        self.publish_totals();
    }

    fn insert(&self, key: &PreparedKey, value: Arc<Value>, bytes: u64) {
        let budget = self.shard_budget();
        if budget == 0 {
            return;
        }
        if bytes > budget {
            cache_metrics().mem_oversize.inc();
            return;
        }
        let mut s = self.shard_for(&key.digest).lock().expect("mem-cache shard lock");
        let mut entry_delta: i64 = 1;
        let mut byte_delta: i64 = bytes as i64;
        if let Some(old) = s.remove(&key.digest) {
            entry_delta -= 1;
            byte_delta -= old.bytes as i64;
        }
        let evicted_bytes_before = s.bytes;
        let evicted = s.evict_to(budget - bytes);
        if evicted > 0 {
            byte_delta -= (evicted_bytes_before - s.bytes) as i64;
            entry_delta -= evicted as i64;
            cache_metrics().mem_evictions.add(evicted);
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        s.lru.insert(tick, key.digest.clone());
        s.bytes += bytes;
        s.entries
            .insert(key.digest.clone(), MemEntry { key_json: key.key_json.clone(), value, bytes, tick });
        drop(s);
        add_signed(&self.total_bytes, byte_delta);
        add_signed(&self.total_entries, entry_delta);
        self.publish_totals();
    }

    fn stats(&self) -> (u64, u64, u64) {
        (
            self.total_entries.load(Ordering::Relaxed),
            self.total_bytes.load(Ordering::Relaxed),
            self.cap.load(Ordering::Relaxed),
        )
    }
}

fn add_signed(a: &AtomicU64, delta: i64) {
    if delta >= 0 {
        a.fetch_add(delta as u64, Ordering::Relaxed);
    } else {
        a.fetch_sub((-delta) as u64, Ordering::Relaxed);
    }
}

/// Process-wide hot tiers, one per (canonicalized) cache directory: every
/// `DiskCache` a service opens onto the same directory shares one memory
/// tier; caches rooted elsewhere stay isolated.
fn mem_for_dir(dir: &Path, cap: Option<u64>) -> Arc<MemCache> {
    static REG: OnceLock<Mutex<BTreeMap<PathBuf, Arc<MemCache>>>> = OnceLock::new();
    let key = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
    let mut reg = REG.get_or_init(Default::default).lock().expect("mem-cache registry lock");
    match reg.get(&key) {
        Some(mem) => {
            let mem = Arc::clone(mem);
            // An explicit cap re-budgets the existing tier; a plain open
            // (`DiskCache::new`) leaves the configured budget alone.
            if let Some(cap) = cap {
                mem.set_cap(cap);
            }
            mem
        }
        None => {
            let mem = Arc::new(MemCache::new(cap.unwrap_or(DEFAULT_MEM_CAP)));
            reg.insert(key, Arc::clone(&mem));
            mem
        }
    }
}

// ---------------------------------------------------------------- disk tier

/// Two-tier content-addressed job cache: a sharded in-memory LRU hot tier
/// over one JSON file per digest in two-hex-prefix subdirectories.
pub struct DiskCache {
    dir: PathBuf,
    mem: Arc<MemCache>,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `dir` with the default
    /// memory-tier budget — or whatever budget the directory's hot tier was
    /// already configured with this process. Flat-layout entries from older
    /// caches are migrated into prefix subdirectories, and temp files
    /// leaked by writers that died between write and rename are swept —
    /// see [`DiskCache::sweep_stale_tmp`].
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<DiskCache> {
        DiskCache::open(dir.into(), None)
    }

    /// Open a cache with an explicit memory-tier byte budget (`0` disables
    /// the hot tier). Re-budgets the directory's process-wide hot tier if
    /// it already exists, evicting down as needed.
    pub fn with_mem_cap(dir: impl Into<PathBuf>, cap_bytes: u64) -> std::io::Result<DiskCache> {
        DiskCache::open(dir.into(), Some(cap_bytes))
    }

    fn open(dir: PathBuf, cap: Option<u64>) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(&dir)?;
        let cache = DiskCache { mem: mem_for_dir(&dir, cap), dir };
        cache.migrate_flat_entries();
        cache.sweep_stale_tmp(STALE_TMP_MAX_AGE);
        Ok(cache)
    }

    /// The conventional cache location used by the `figures` binary.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results/cache")
    }

    /// Cache directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, digest: &str) -> PathBuf {
        self.dir.join(digest.get(..2).unwrap_or("00")).join(format!("{digest}.json"))
    }

    /// Move flat-layout entries (`<dir>/<digest>.json`, the pre-prefix
    /// layout) into their two-hex-prefix subdirectories. Rename is atomic,
    /// so concurrent openers race benignly: one wins, the rest no-op.
    /// Returns the number of entries migrated.
    pub fn migrate_flat_entries(&self) -> usize {
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut moved = 0;
        for entry in rd.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(stem) = name.strip_suffix(".json") else { continue };
            if !is_hex_digest(stem) {
                continue;
            }
            let sub = self.dir.join(&stem[..2]);
            if std::fs::create_dir_all(&sub).is_ok()
                && std::fs::rename(&path, sub.join(&name)).is_ok()
            {
                moved += 1;
            }
        }
        moved
    }

    /// Load and *verify* the cached entry for `key`: memory tier first
    /// (shard lookup plus byte-exact key comparison), then disk (read,
    /// parse, and key verification, promoting the value into the memory
    /// tier on a hit). A digest collision, a foreign entry, or a poisoned
    /// memory entry is a [`CacheLookup::KeyMismatch`] — callers must
    /// recompute, exactly as for a plain miss.
    pub fn load(&self, key: &PreparedKey) -> CacheLookup {
        let m = cache_metrics();
        let sw = xtsim_obs::Stopwatch::start();
        match self.mem.lookup(key) {
            MemLookup::Hit(v) => {
                m.lookup_seconds_mem.observe_since(&sw);
                m.hits_mem.inc();
                return CacheLookup::Hit(v);
            }
            MemLookup::KeyMismatch => {
                m.lookup_seconds_mem.observe_since(&sw);
                m.key_mismatches_mem.inc();
                return CacheLookup::KeyMismatch;
            }
            MemLookup::Miss => {}
        }
        let out = self.load_disk(key);
        m.lookup_seconds_disk.observe_since(&sw);
        match &out {
            CacheLookup::Hit(_) => m.hits_disk.inc(),
            CacheLookup::Miss => m.misses.inc(),
            CacheLookup::KeyMismatch => m.key_mismatches_disk.inc(),
        }
        out
    }

    fn load_disk(&self, key: &PreparedKey) -> CacheLookup {
        let Ok(text) = std::fs::read_to_string(self.path_for(&key.digest)) else {
            return CacheLookup::Miss;
        };
        let Ok(entry) = serde_json::from_str::<Value>(&text) else {
            return CacheLookup::Miss; // corrupt file: plain miss
        };
        let Value::Object(mut obj) = entry else {
            return CacheLookup::Miss;
        };
        let stored = obj.get("key").map(|k| serde_json::to_string(k).expect("Value serializes"));
        if stored.as_deref() != Some(key.key_json.as_str()) {
            return CacheLookup::KeyMismatch;
        }
        match obj.remove("value") {
            Some(v) => {
                let value = Arc::new(v);
                self.mem.insert(key, Arc::clone(&value), text.len() as u64);
                CacheLookup::Hit((*value).clone())
            }
            None => CacheLookup::Miss,
        }
    }

    /// Store `value` (with its key, for load-time verification) under
    /// `key.digest`, populating both tiers. The entry is assembled by
    /// splicing the already-serialized key next to the serialized value —
    /// no deep clone of the result just to wrap it in a map. Writes to a
    /// temp file unique to this process *and* store call, then renames, so
    /// concurrent writers — even across processes sharing the cache
    /// directory — never tear each other's entries.
    pub fn store(&self, key: &PreparedKey, value: &Value) -> std::io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let value_json = serde_json::to_string(value).expect("value serializes");
        let text = format!("{{\"key\":{},\"value\":{}}}", key.key_json, value_json);
        let sub = self.dir.join(key.digest.get(..2).unwrap_or("00"));
        std::fs::create_dir_all(&sub)?;
        let tmp = sub.join(format!(
            ".{}.{}.{}.tmp",
            key.digest,
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = text.len() as u64;
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, self.path_for(&key.digest))?;
        let m = cache_metrics();
        m.stores.inc();
        m.store_bytes.add(bytes);
        // The hot tier keeps its own parsed copy (this clone *is* the
        // cached value, not serialization scaffolding).
        self.mem.insert(key, Arc::new(value.clone()), bytes);
        Ok(())
    }

    /// Visit every file in the store: prefix subdirectories first, then
    /// stragglers at the top level (pre-migration entries, root temp files).
    fn walk_files(&self, mut f: impl FnMut(&std::fs::DirEntry)) {
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in rd.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                if let Ok(sub) = std::fs::read_dir(&path) {
                    for e in sub.filter_map(Result::ok) {
                        f(&e);
                    }
                }
            } else {
                f(&entry);
            }
        }
    }

    /// Remove leaked temp files from the whole store (root and prefix
    /// subdirectories). A writer crashing between `fs::write` and
    /// `fs::rename` in [`DiskCache::store`] strands its
    /// `.<digest>.<pid>.<seq>.tmp` file forever — nothing else ever touches
    /// that name again. A temp file is reclaimed when its recorded pid is
    /// provably dead (`/proc/<pid>` absent on systems that have `/proc`) or
    /// its mtime is older than `max_age`; fresh files from live writers are
    /// left alone. Returns the number of files removed.
    pub fn sweep_stale_tmp(&self, max_age: Duration) -> usize {
        let now = std::time::SystemTime::now();
        let mut removed = 0;
        self.walk_files(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !(name.starts_with('.') && name.ends_with(".tmp")) {
                return;
            }
            let dead_writer = tmp_writer_pid(&name).is_some_and(pid_provably_dead);
            let expired = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| now.duration_since(t).ok())
                .is_some_and(|age| age >= max_age);
            if (dead_writer || expired) && std::fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        });
        removed
    }

    /// Aggregate state across both tiers: disk entry count and byte total,
    /// temp files, and memory-tier residency/budget.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        self.walk_files(|entry| {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.extension().is_some_and(|x| x == "json") {
                stats.entries += 1;
                stats.bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
            } else if name.starts_with('.') && name.ends_with(".tmp") {
                stats.tmp_files += 1;
            }
        });
        let (mem_entries, mem_bytes, mem_cap) = self.mem.stats();
        stats.mem_entries = mem_entries;
        stats.mem_bytes = mem_bytes;
        stats.mem_cap_bytes = mem_cap;
        stats
    }

    /// Number of entries on disk.
    pub fn len(&self) -> usize {
        self.stats().entries as usize
    }

    /// True when the disk tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn is_hex_digest(s: &str) -> bool {
    s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit())
}

/// Writer pid recorded in a `.<digest>.<pid>.<seq>.tmp` file name.
fn tmp_writer_pid(name: &str) -> Option<u32> {
    name.strip_suffix(".tmp")?.rsplit('.').nth(1)?.parse().ok()
}

/// True only when the platform lets us *prove* the pid is gone (`/proc`
/// exists but `/proc/<pid>` doesn't). Elsewhere the age rule alone decides,
/// so a live writer's fresh temp file is never yanked out from under it.
fn pid_provably_dead(pid: u32) -> bool {
    Path::new("/proc").is_dir() && !Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xtsim-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A prepared key whose digest is controlled by `seed` (canonical JSON
    /// of a one-field object, digest derived exactly as production keys).
    fn key(seed: u32) -> PreparedKey {
        PreparedKey::from_canonical_json(format!("{{\"seed\":{seed}}}"))
    }

    fn val(seed: u32) -> Value {
        let mut m = BTreeMap::new();
        m.insert("y".to_string(), Value::Int(i64::from(seed)));
        m.insert("pad".to_string(), Value::Str("x".repeat(64)));
        Value::Object(m)
    }

    #[test]
    fn roundtrip_hits_memory_then_disk() {
        let dir = tmp_dir("roundtrip");
        let cache = DiskCache::new(&dir).unwrap();
        let k = key(1);
        cache.store(&k, &val(1)).unwrap();
        // Entry landed in a two-hex-prefix subdirectory, not the root.
        assert!(dir.join(&k.digest[..2]).join(format!("{}.json", k.digest)).is_file());
        assert!(matches!(cache.load(&k), CacheLookup::Hit(v) if v == val(1)));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.mem_entries, 1);
        assert!(stats.mem_bytes > 0 && stats.mem_bytes <= stats.mem_cap_bytes);

        // A second handle on the same directory shares the hot tier...
        let again = DiskCache::new(&dir).unwrap();
        assert_eq!(again.stats().mem_entries, 1);
        // ...while a different directory gets its own, empty one.
        let other_dir = tmp_dir("roundtrip-other");
        let other = DiskCache::new(&other_dir).unwrap();
        assert_eq!(other.stats().mem_entries, 0);
        assert!(matches!(other.load(&k), CacheLookup::Miss));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&other_dir);
    }

    #[test]
    fn disk_hit_promotes_into_memory_tier() {
        let dir = tmp_dir("promote");
        // Store with the hot tier disabled, then re-enable: first load must
        // come from disk and promote, second from memory.
        let cold = DiskCache::with_mem_cap(&dir, 0).unwrap();
        let k = key(7);
        cold.store(&k, &val(7)).unwrap();
        assert_eq!(cold.stats().mem_entries, 0, "cap 0 admits nothing");

        let warm = DiskCache::with_mem_cap(&dir, DEFAULT_MEM_CAP).unwrap();
        assert!(matches!(warm.load(&k), CacheLookup::Hit(_)));
        assert_eq!(warm.stats().mem_entries, 1, "disk hit must promote");
        // Now corrupt the disk file: the verified memory copy still serves.
        std::fs::write(warm.path_for(&k.digest), "{ not json").unwrap();
        assert!(matches!(warm.load(&k), CacheLookup::Hit(v) if v == val(7)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_memory_entry_is_a_key_mismatch_and_dropped() {
        let dir = tmp_dir("poison");
        let cache = DiskCache::new(&dir).unwrap();
        let k = key(3);
        cache.store(&k, &val(3)).unwrap();
        // Forge a lookup whose digest collides with k but whose canonical
        // key differs — as a real 128-bit collision would look.
        let forged = PreparedKey { digest: k.digest.clone(), key_json: "{\"seed\":999}".into() };
        assert!(matches!(cache.load(&forged), CacheLookup::KeyMismatch));
        // The poisoned-for-this-key entry was dropped from memory; the real
        // key still verifies from disk (and re-promotes).
        assert!(matches!(cache.load(&k), CacheLookup::Hit(_)));
        assert_eq!(cache.stats().mem_entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_oldest_and_respects_byte_budget() {
        let dir = tmp_dir("lru");
        // All test digests share a first byte? No — force one shard by
        // budgeting for it: use a cap where each shard holds ~2 entries and
        // drive three same-shard keys by brute-force seed search.
        let probe = DiskCache::with_mem_cap(&dir, 0).unwrap();
        let mut same_shard = Vec::new();
        let want = key(0).digest[..2].to_string();
        let mut seed = 0u32;
        while same_shard.len() < 3 {
            let k = key(seed);
            if k.digest[..2] == want[..] {
                same_shard.push((seed, k));
            }
            seed += 1;
        }
        drop(probe);
        let entry_bytes = same_shard
            .iter()
            .map(|(s, k)| {
                let value_json = serde_json::to_string(&val(*s)).unwrap();
                format!("{{\"key\":{},\"value\":{}}}", k.key_json, value_json).len() as u64
            })
            .max()
            .unwrap();
        // Budget one shard for two entries plus slack smaller than one entry
        // (cap is split evenly across MEM_SHARDS), so storing a third entry
        // evicts exactly the LRU one.
        let cap = (entry_bytes * 2 + 16) * MEM_SHARDS as u64;
        let cache = DiskCache::with_mem_cap(&dir, cap).unwrap();
        let (sa, ka) = &same_shard[0];
        let (sb, kb) = &same_shard[1];
        let (sc, kc) = &same_shard[2];
        cache.store(ka, &val(*sa)).unwrap();
        cache.store(kb, &val(*sb)).unwrap();
        // Touch A so B becomes the LRU victim.
        assert!(matches!(cache.load(ka), CacheLookup::Hit(_)));
        cache.store(kc, &val(*sc)).unwrap();
        let stats = cache.stats();
        assert!(stats.mem_bytes <= cap, "residency {} exceeds cap {cap}", stats.mem_bytes);

        // B was evicted from memory (loads go to disk and re-promote,
        // evicting the new LRU in turn); A and C are resident. Check
        // residency *without* load (which would reshuffle): corrupt B on
        // disk — if it were memory-resident it would still hit.
        std::fs::write(cache.path_for(&kb.digest), "{ torn").unwrap();
        assert!(
            matches!(cache.load(kb), CacheLookup::Miss),
            "LRU victim must have left the memory tier"
        );
        std::fs::write(cache.path_for(&ka.digest), "{ torn").unwrap();
        assert!(matches!(cache.load(ka), CacheLookup::Hit(_)), "touched entry must stay resident");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrinking_the_cap_evicts_down_and_zero_disables() {
        let dir = tmp_dir("recap");
        let cache = DiskCache::new(&dir).unwrap();
        for s in 0..32 {
            cache.store(&key(s), &val(s)).unwrap();
        }
        assert_eq!(cache.stats().mem_entries, 32);
        // Re-open with cap 0: the shared hot tier is re-budgeted and emptied.
        let disabled = DiskCache::with_mem_cap(&dir, 0).unwrap();
        let stats = disabled.stats();
        assert_eq!((stats.mem_entries, stats.mem_bytes, stats.mem_cap_bytes), (0, 0, 0));
        // Disk tier unaffected; loads still verify from disk, no admission.
        assert!(matches!(disabled.load(&key(5)), CacheLookup::Hit(_)));
        assert_eq!(disabled.stats().mem_entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversize_values_are_never_admitted() {
        let dir = tmp_dir("oversize");
        let cache = DiskCache::with_mem_cap(&dir, 4096).unwrap(); // 256 B/shard
        let k = key(9);
        let mut m = BTreeMap::new();
        m.insert("blob".to_string(), Value::Str("z".repeat(10_000)));
        cache.store(&k, &Value::Object(m)).unwrap();
        assert_eq!(cache.stats().mem_entries, 0, "oversize value admitted");
        assert!(matches!(cache.load(&k), CacheLookup::Hit(_)), "disk still serves it");
        assert_eq!(cache.stats().mem_entries, 0, "oversize promotion admitted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_layout_entries_migrate_on_open() {
        let dir = tmp_dir("migrate");
        std::fs::create_dir_all(&dir).unwrap();
        // Write three entries in the pre-PR flat layout, byte-compatible
        // with what the old store produced.
        let mut keys = Vec::new();
        for s in 0..3 {
            let k = key(s);
            let value_json = serde_json::to_string(&val(s)).unwrap();
            std::fs::write(
                dir.join(format!("{}.json", k.digest)),
                format!("{{\"key\":{},\"value\":{}}}", k.key_json, value_json),
            )
            .unwrap();
            keys.push(k);
        }
        // A non-digest json file must be left where it is.
        std::fs::write(dir.join("README.json"), "{}").unwrap();

        let cache = DiskCache::with_mem_cap(&dir, 0).unwrap();
        for (s, k) in keys.iter().enumerate() {
            assert!(
                dir.join(&k.digest[..2]).join(format!("{}.json", k.digest)).is_file(),
                "entry {s} not migrated"
            );
            assert!(!dir.join(format!("{}.json", k.digest)).exists());
            assert!(matches!(cache.load(k), CacheLookup::Hit(v) if v == val(s as u32)));
        }
        assert!(dir.join("README.json").exists(), "foreign file must not be moved");
        // stats counts the migrated entries (README.json is also a .json
        // file at the root; it stays counted — harmless accounting).
        assert!(cache.stats().entries >= 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_mixed_load_store_is_never_torn_across_shards() {
        let dir = tmp_dir("mixed");
        // Small cap so eviction churns continuously under load.
        let cache = DiskCache::with_mem_cap(&dir, 8 * 1024).unwrap();
        let keys: Vec<PreparedKey> = (0..24).map(key).collect();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = &cache;
                let keys = &keys;
                s.spawn(move || {
                    for round in 0..50u32 {
                        let i = ((t * 7 + round) as usize) % keys.len();
                        if (t + round) % 3 == 0 {
                            cache.store(&keys[i], &val(i as u32)).unwrap();
                        } else {
                            match cache.load(&keys[i]) {
                                CacheLookup::Hit(v) => {
                                    assert_eq!(v, val(i as u32), "wrong value for key {i}");
                                }
                                CacheLookup::Miss => {}
                                CacheLookup::KeyMismatch => {
                                    panic!("key mismatch under mixed load")
                                }
                            }
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.mem_bytes <= 8 * 1024, "residency above cap: {}", stats.mem_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
