#![forbid(unsafe_code)]
//! # xtsim — Cray XT4 evaluation reproduction, facade crate
//!
//! Re-exports the whole stack and hosts the experiment registry that
//! regenerates every table and figure of *"Cray XT4: An Early Evaluation
//! for Petascale Scientific Simulation"* (SC'07) on the simulated platform.
//!
//! ```
//! use xtsim::figures;
//! use xtsim::report::Scale;
//!
//! let fig = figures::figure("table1").unwrap();
//! let out = fig.run(Scale::Quick);
//! assert!(out.render().contains("SeaStar2"));
//! ```
//!
//! Figures decompose into independent sweep-point jobs; [`sweep`] executes
//! them across worker threads with a content-addressed result cache while
//! keeping the assembled output byte-identical to a serial run.
//!
//! Layer map (each is its own crate, re-exported below):
//!
//! * [`des`] — discrete-event engine;
//! * [`machine`] — machine models and presets;
//! * [`net`] — torus/NIC/memory platform;
//! * [`mpi`] — simulated MPI;
//! * [`kernels`] — real numerical kernels;
//! * [`hpcc`] — HPC Challenge suite (Figures 2–13);
//! * [`lustre`] — parallel filesystem model + IOR (Figure 1);
//! * [`apps`] — CAM/POP/NAMD/S3D/AORSA proxies (Figures 14–23).

#![warn(missing_docs)]

pub mod ablations;
pub mod cache;
pub mod cli;
pub mod figures;
pub mod report;
pub mod sweep;

pub use xtsim_apps as apps;
pub use xtsim_des as des;
pub use xtsim_hpcc as hpcc;
pub use xtsim_kernels as kernels;
pub use xtsim_lustre as lustre;
pub use xtsim_machine as machine;
pub use xtsim_mpi as mpi;
pub use xtsim_net as net;
