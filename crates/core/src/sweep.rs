//! Parallel, cached sweep execution for the figure registry.
//!
//! Every figure generator is decomposed into independent *sweep-point jobs*
//! (one simulated experiment each — a netbench run, one HPL point, one CAM
//! configuration). Jobs carry a content-addressed [`JobKey`]; the engine
//! executes whatever isn't already cached across a pool of worker threads and
//! then reassembles the figure **in job order**, so the output is
//! byte-identical whether it ran on 1 thread or 8, cold or warm.
//!
//! Threading model: the DES simulator underneath is single-threaded
//! (`Rc`/`RefCell` worlds). That is fine — each job *constructs its own
//! world* inside its closure, so nothing non-`Send` ever crosses a thread
//! boundary; only plain spec data goes in and a JSON [`Value`] comes out.
//!
//! Caching: results live in the two-tier [`DiskCache`] (see
//! [`crate::cache`]) — a sharded in-memory LRU hot tier over one
//! `{"key": ..., "value": ...}` JSON file per job in two-hex-prefix
//! subdirectories. The digest hashes the canonical JSON of the key — engine
//! version, job kind, machine spec content, execution mode, scale, and all
//! sweep parameters — via two independent FNV-1a passes
//! ([`xtsim_machine::fingerprint`]); the engine serializes each key **once**
//! into a [`PreparedKey`] and threads it through lookup and store. Bump
//! [`ENGINE_VERSION`] whenever simulator semantics change; every old entry
//! then misses.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{impl_serde_struct, Value};
use xtsim_des::trace::{self, TraceData, TraceSummary};
use xtsim_machine::{ExecMode, MachineSpec};

use crate::report::{FigureResult, Scale};

pub use crate::cache::{
    CacheLookup, CacheStats, DiskCache, PreparedKey, DEFAULT_MEM_CAP, MEM_SHARDS,
};

/// Version of the simulation engine folded into every cache key. Bump on any
/// change that alters simulated numbers so stale cache entries stop hitting.
pub const ENGINE_VERSION: u32 = 1;

/// Content-addressed identity of one sweep-point job.
///
/// Everything that determines the job's output must be in here (the machine
/// by *content*, not name — a tweaked preset hashes differently) and nothing
/// else: the figure id is deliberately absent so figures sharing a
/// computation (fig12/fig13, fig02/fig03) share cache entries too.
#[derive(Debug, Clone)]
pub struct JobKey {
    /// [`ENGINE_VERSION`] at key-construction time.
    pub engine_version: u32,
    /// Generator family, e.g. `"netbench"`, `"global/hpl"`, `"cam"`.
    pub kind: String,
    /// The simulated machine, when the job targets one.
    pub machine: Option<MachineSpec>,
    /// Execution mode, when the job targets a machine.
    pub mode: Option<ExecMode>,
    /// Sweep scale the job belongs to.
    pub scale: Scale,
    /// Remaining kernel/app parameters, as a JSON object.
    pub params: Value,
}

impl_serde_struct!(JobKey { engine_version, kind, machine, mode, scale, params });

impl JobKey {
    /// Start a key for `kind` on `machine`/`mode` at `scale`.
    pub fn new(
        kind: impl Into<String>,
        machine: Option<&MachineSpec>,
        mode: Option<ExecMode>,
        scale: Scale,
    ) -> JobKey {
        JobKey {
            engine_version: ENGINE_VERSION,
            kind: kind.into(),
            machine: machine.cloned(),
            mode,
            scale,
            params: Value::Object(Default::default()),
        }
    }

    /// Add one sweep parameter (builder style).
    pub fn with(mut self, name: &str, value: impl Into<Value>) -> JobKey {
        if let Value::Object(map) = &mut self.params {
            map.insert(name.to_string(), value.into());
        }
        self
    }

    /// Serialize this key once into its canonical JSON encoding plus the
    /// 128-bit hex digest derived from it. Canonical means: object keys
    /// sorted, integral floats rendered `x.0` — so the digest is independent
    /// of field declaration order and stable across processes. The engine
    /// prepares every job key exactly once per run and threads the result
    /// through both cache tiers.
    pub fn prepare(&self) -> PreparedKey {
        let json = serde_json::to_string(self).expect("JobKey serializes");
        PreparedKey::from_canonical_json(json)
    }

    /// 128-bit hex digest of the canonical JSON encoding of this key
    /// (convenience wrapper over [`JobKey::prepare`]).
    pub fn digest(&self) -> String {
        self.prepare().digest
    }
}

/// One schedulable sweep point: an identity plus the closure that computes
/// it. The closure builds its own single-threaded simulation world, so it is
/// safe to run from any worker thread.
pub struct Job {
    /// Cache identity.
    pub key: JobKey,
    /// The computation; returns the job's JSON-serializable output.
    pub run: Box<dyn Fn() -> Value + Send + Sync>,
}

impl Job {
    /// Package `run` under `key`.
    pub fn new(key: JobKey, run: impl Fn() -> Value + Send + Sync + 'static) -> Job {
        Job { key, run: Box::new(run) }
    }
}

/// Boxed assembly step: job outputs, in job order, to the finished figure.
pub type AssembleFn = Box<dyn FnOnce(&[Value]) -> FigureResult + Send>;

/// A figure decomposed into jobs plus the (cheap, pure) assembly step that
/// turns the job outputs — supplied **in job order** — into the final
/// [`FigureResult`]. Assembly must not simulate anything; all cost lives in
/// the jobs so it can be parallelized and cached.
pub struct FigureSpec {
    /// Figure identifier, e.g. `"fig08"`.
    pub id: &'static str,
    /// The sweep points, in deterministic order.
    pub jobs: Vec<Job>,
    /// Reassembles outputs (`outputs[i]` is `jobs[i]`'s value) into the figure.
    pub assemble: AssembleFn,
}

impl FigureSpec {
    /// New spec with no jobs yet.
    pub fn new(
        id: &'static str,
        assemble: impl FnOnce(&[Value]) -> FigureResult + Send + 'static,
    ) -> FigureSpec {
        FigureSpec { id, jobs: Vec::new(), assemble: Box::new(assemble) }
    }

    /// Append a job, returning its index (for use inside `assemble`).
    pub fn push_job(
        &mut self,
        key: JobKey,
        run: impl Fn() -> Value + Send + Sync + 'static,
    ) -> usize {
        self.jobs.push(Job::new(key, run));
        self.jobs.len() - 1
    }
}

/// Engine configuration for one figure run.
pub struct SweepConfig {
    /// Worker threads; `1` executes jobs inline on the calling thread.
    pub jobs: usize,
    /// Result cache; `None` recomputes everything.
    pub cache: Option<DiskCache>,
    /// Directory receiving one Chrome trace-event JSON file per *computed*
    /// job; `None` disables trace export.
    pub trace_dir: Option<PathBuf>,
    /// Collect per-job [`TraceSummary`]s and a per-figure [`FigureMetrics`]
    /// record (implied by `trace_dir`).
    pub collect_metrics: bool,
    /// DES worker-thread budget advertised to each job via
    /// [`des_threads`]. Figures that can shard their worlds run the
    /// parallel engine with this many threads; by contract the knob never
    /// changes simulated numbers, so it is *not* part of [`JobKey`].
    pub des_threads: usize,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            jobs: 1,
            cache: None,
            trace_dir: None,
            collect_metrics: false,
            des_threads: 1,
        }
    }
}

impl SweepConfig {
    /// Serial, uncached — the behaviour of the pre-engine harness.
    pub fn serial() -> SweepConfig {
        SweepConfig::default()
    }

    /// `n` worker threads, no cache.
    pub fn threads(n: usize) -> SweepConfig {
        SweepConfig { jobs: n.max(1), ..SweepConfig::default() }
    }

    /// Attach a cache.
    pub fn with_cache(mut self, cache: DiskCache) -> SweepConfig {
        self.cache = Some(cache);
        self
    }

    /// Export per-job Chrome traces into `dir`.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> SweepConfig {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Collect a per-figure metrics record.
    pub fn with_metrics(mut self) -> SweepConfig {
        self.collect_metrics = true;
        self
    }

    /// Advertise a DES worker-thread budget to every job (see
    /// [`des_threads`]).
    pub fn with_des_threads(mut self, n: usize) -> SweepConfig {
        self.des_threads = n.max(1);
        self
    }

    fn capture(&self) -> bool {
        self.collect_metrics || self.trace_dir.is_some()
    }
}

thread_local! {
    static DES_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// The DES worker-thread budget for the currently executing sweep job
/// (from [`SweepConfig::des_threads`]; `1` outside the engine). PDES-aware
/// figures pass this to their sharded worlds. The parallel engine is
/// deterministic — results must never depend on this value — which is why
/// it rides a thread-local instead of the cache key.
pub fn des_threads() -> usize {
    DES_THREADS.with(|c| c.get())
}

/// Per-job entry of a [`FigureMetrics`] record.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Job index within the figure spec.
    pub index: u64,
    /// Generator family of the job's key.
    pub kind: String,
    /// Cache digest of the job's key.
    pub digest: String,
    /// Whether the job was answered from the cache (no trace then).
    pub cached: bool,
    /// Trace aggregate for computed jobs when capture was enabled.
    pub trace: Option<TraceSummary>,
}

impl_serde_struct!(JobMetrics { index, kind, digest, cached, trace });

/// Machine-readable per-figure metrics record: what ran, what hit the cache,
/// and where simulated time went (categories from
/// [`xtsim_des::trace::SpanCategory`]).
#[derive(Debug, Clone, Default)]
pub struct FigureMetrics {
    /// Figure id, e.g. `"fig08"`.
    pub figure: String,
    /// Total sweep-point jobs.
    pub total_jobs: u64,
    /// Jobs executed this run.
    pub computed: u64,
    /// Jobs answered from the cache.
    pub cached: u64,
    /// Cache entries rejected because the embedded key did not match.
    pub key_mismatches: u64,
    /// Wall-clock seconds for the whole figure.
    pub wall_secs: f64,
    /// Simulated seconds per span category, summed over computed jobs.
    pub sim_secs_by_category: BTreeMap<String, f64>,
    /// Sum of the *rank-time* categories (compute/p2p/collective/io) — the
    /// figure's total attributed simulated busy time. Flow spans overlap
    /// rank spans and are excluded.
    pub sim_total_secs: f64,
    /// Span count per category, summed over computed jobs.
    pub span_counts_by_category: BTreeMap<String, u64>,
    /// Total spans captured.
    pub spans: u64,
    /// Spans discarded by the per-job capture limit.
    pub dropped_spans: u64,
    /// Chrome trace files written (relative to the trace directory).
    pub trace_files: Vec<String>,
    /// Per-job detail, in job order.
    pub jobs: Vec<JobMetrics>,
}

impl_serde_struct!(FigureMetrics {
    figure,
    total_jobs,
    computed,
    cached,
    key_mismatches,
    wall_secs,
    sim_secs_by_category,
    sim_total_secs,
    span_counts_by_category,
    spans,
    dropped_spans,
    trace_files,
    jobs,
});

/// What one figure run did.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Total sweep-point jobs in the figure.
    pub total: usize,
    /// Jobs actually executed this run.
    pub computed: usize,
    /// Jobs answered from the cache.
    pub cached: usize,
    /// Cache entries whose embedded key did not match the requesting key
    /// (treated as misses and recomputed).
    pub key_mismatches: usize,
    /// Wall-clock time for the whole figure (lookup + execute + assemble).
    pub wall: Duration,
    /// Metrics record, when [`SweepConfig::collect_metrics`] or a trace
    /// directory was set.
    pub metrics: Option<FigureMetrics>,
}

/// One computed job's result: its output value plus the trace captured
/// around it (when capture was on).
type JobOutcome = (Value, Option<TraceData>);

/// Execute a figure spec under `cfg`: cache-lookup every job (verifying the
/// embedded key), run the misses on the worker pool — optionally under trace
/// capture — persist fresh results, export traces, and assemble in job order.
pub fn run_figure(spec: FigureSpec, cfg: &SweepConfig) -> (FigureResult, RunStats) {
    let t0 = Instant::now();
    let n = spec.jobs.len();
    // Serialize every key exactly once; both cache tiers address by the
    // prepared digest and verify against the prepared canonical JSON.
    let keys: Vec<PreparedKey> = spec.jobs.iter().map(|j| j.key.prepare()).collect();
    let digests: Vec<&str> = keys.iter().map(|k| k.digest.as_str()).collect();

    // Slot per job; verified cache hits fill immediately, misses queue up.
    let mut slots: Vec<Option<Value>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<usize> = Vec::new();
    let mut key_mismatches = 0usize;
    for i in 0..n {
        match cfg.cache.as_ref().map(|c| c.load(&keys[i])) {
            Some(CacheLookup::Hit(v)) => slots[i] = Some(v),
            Some(CacheLookup::KeyMismatch) => {
                key_mismatches += 1;
                xtsim_obs::events::warn(
                    "xtsim::sweep",
                    &format!(
                        "cache entry {} does not match job {} ({}); recomputing",
                        digests[i], i, spec.jobs[i].key.kind
                    ),
                    &[
                        ("figure", spec.id),
                        ("digest", digests[i]),
                        ("job_index", &i.to_string()),
                        ("kind", &spec.jobs[i].key.kind),
                    ],
                );
                pending.push(i);
            }
            Some(CacheLookup::Miss) | None => pending.push(i),
        }
    }
    let cached = n - pending.len();
    let capture = cfg.capture();

    // Execute misses: worker threads pull indices off a shared atomic cursor
    // (cheap work-stealing); results land in per-job mutexed slots and are
    // read back in job order, so scheduling order never leaks into output.
    // Each job runs single-threaded on whichever worker claims it, so
    // thread-local trace capture brackets exactly that job's simulation.
    let workers = cfg.jobs.max(1).min(pending.len().max(1));
    let job_exec_seconds = xtsim_obs::histogram(
        "xtsim_sweep_job_exec_seconds",
        "Wall-clock execution time of one sweep-point job (cache misses only).",
    );
    let exec = |i: usize| -> JobOutcome {
        let sw = xtsim_obs::Stopwatch::start();
        DES_THREADS.with(|c| c.set(cfg.des_threads.max(1)));
        let out = if capture {
            trace::capture_begin();
            let v = (spec.jobs[i].run)();
            (v, trace::capture_end())
        } else {
            ((spec.jobs[i].run)(), None)
        };
        DES_THREADS.with(|c| c.set(1));
        job_exec_seconds.observe_since(&sw);
        out
    };
    let fresh: Vec<Mutex<Option<JobOutcome>>> =
        pending.iter().map(|_| Mutex::new(None)).collect();
    if workers <= 1 {
        for (slot, &i) in fresh.iter().zip(&pending) {
            *slot.lock().unwrap() = Some(exec(i));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let exec_ref = &exec;
        let pending_ref = &pending;
        let fresh_ref = &fresh;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= pending_ref.len() {
                        break;
                    }
                    let v = exec_ref(pending_ref[k]);
                    *fresh_ref[k].lock().unwrap() = Some(v);
                });
            }
        });
    }

    xtsim_obs::counter(
        "xtsim_sweep_jobs_computed_total",
        "Sweep-point jobs executed (cache misses).",
    )
    .add(pending.len() as u64);
    xtsim_obs::counter(
        "xtsim_sweep_jobs_cached_total",
        "Sweep-point jobs answered from the verified cache.",
    )
    .add(cached as u64);

    let mut metrics = capture.then(|| FigureMetrics {
        figure: spec.id.to_string(),
        total_jobs: n as u64,
        computed: pending.len() as u64,
        cached: cached as u64,
        key_mismatches: key_mismatches as u64,
        ..FigureMetrics::default()
    });
    if let (Some(m), true) = (metrics.as_mut(), cached > 0) {
        for i in 0..n {
            if slots[i].is_some() {
                m.jobs.push(JobMetrics {
                    index: i as u64,
                    kind: spec.jobs[i].key.kind.clone(),
                    digest: digests[i].to_string(),
                    cached: true,
                    trace: None,
                });
            }
        }
    }
    if let Some(dir) = &cfg.trace_dir {
        let _ = std::fs::create_dir_all(dir);
    }

    for (slot, &i) in fresh.iter().zip(&pending) {
        let (v, trace_data) = slot.lock().unwrap().take().expect("worker filled every slot");
        if let Some(cache) = &cfg.cache {
            // Cache write failure is not a figure failure; drop the entry.
            let _ = cache.store(&keys[i], &v);
        }
        if let Some(m) = metrics.as_mut() {
            let td = trace_data.unwrap_or_default();
            if let Some(dir) = &cfg.trace_dir {
                let fname = format!("{}-job{:03}-{}.trace.json", spec.id, i, &digests[i][..8]);
                let json = td.to_chrome_json(&[
                    ("figure", Value::Str(spec.id.to_string())),
                    ("jobIndex", Value::Int(i as i64)),
                    ("kind", Value::Str(spec.jobs[i].key.kind.clone())),
                    ("digest", Value::Str(digests[i].to_string())),
                ]);
                match std::fs::write(dir.join(&fname), json) {
                    Ok(()) => m.trace_files.push(fname),
                    Err(e) => xtsim_obs::events::warn(
                        "xtsim::sweep",
                        &format!("failed to write trace {fname}: {e}"),
                        &[("figure", spec.id), ("file", &fname)],
                    ),
                }
            }
            let s = td.summary();
            for (cat, secs) in &s.secs_by_category {
                *m.sim_secs_by_category.entry(cat.clone()).or_insert(0.0) += secs;
            }
            for (cat, count) in &s.counts_by_category {
                *m.span_counts_by_category.entry(cat.clone()).or_insert(0) += count;
            }
            m.sim_total_secs += s.rank_busy_secs;
            m.spans += s.spans;
            m.dropped_spans += td.dropped;
            m.jobs.push(JobMetrics {
                index: i as u64,
                kind: spec.jobs[i].key.kind.clone(),
                digest: digests[i].to_string(),
                cached: false,
                trace: Some(s),
            });
        }
        slots[i] = Some(v);
    }
    if let Some(m) = metrics.as_mut() {
        m.jobs.sort_by_key(|j| j.index);
    }

    let values: Vec<Value> = slots.into_iter().map(|s| s.expect("all slots filled")).collect();
    let fig = (spec.assemble)(&values);
    // One clock read for the whole figure: FigureMetrics.wall_secs and
    // RunStats.wall must describe the same run, not two nearby instants.
    let wall = t0.elapsed();
    if let Some(m) = metrics.as_mut() {
        m.wall_secs = wall.as_secs_f64();
    }
    let stats = RunStats {
        total: n,
        computed: pending.len(),
        cached,
        key_mismatches,
        wall,
        metrics,
    };
    (fig, stats)
}

/// Build a JSON object from `(name, value)` pairs — the conventional shape of
/// a job output.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Read numeric field `name` out of a job-output object (panics on absence —
/// job outputs are produced by this same binary, so a missing field is a bug,
/// not bad input).
pub fn num(v: &Value, name: &str) -> f64 {
    v.as_object()
        .and_then(|o| o.get(name))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("job output missing numeric field {name:?}: {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;
    use xtsim_machine::presets;

    fn tiny_spec(mult: f64) -> FigureSpec {
        let mut spec = FigureSpec::new("figT", move |outs| {
            let mut s = Series::new("line");
            for (i, o) in outs.iter().enumerate() {
                s.push(i as f64, num(o, "y"));
            }
            FigureResult::new("figT", "tiny").with_series(s)
        });
        for i in 0..5u32 {
            let key = JobKey::new("tiny", None, None, Scale::Quick).with("i", i);
            spec.push_job(key, move || obj(vec![("y", (f64::from(i) * mult).into())]));
        }
        spec
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (serial, s1) = run_figure(tiny_spec(2.0), &SweepConfig::serial());
        let (par, s8) = run_figure(tiny_spec(2.0), &SweepConfig::threads(8));
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&par).unwrap()
        );
        assert_eq!(s1.computed, 5);
        assert_eq!(s8.computed, 5);
    }

    #[test]
    fn digest_ignores_param_insertion_order() {
        let a = JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::VN), Scale::Quick)
            .with("alpha", 1)
            .with("beta", 2.5);
        let b = JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::VN), Scale::Quick)
            .with("beta", 2.5)
            .with("alpha", 1);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_separates_kind_machine_mode_scale_params() {
        let base = || JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::VN), Scale::Quick).with("p", 1);
        let d0 = base().digest();
        assert_ne!(d0, { let mut k = base(); k.kind = "k2".into(); k.digest() });
        assert_ne!(d0, JobKey::new("k", Some(&presets::xt3_dual()), Some(ExecMode::VN), Scale::Quick).with("p", 1).digest());
        assert_ne!(d0, JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::SN), Scale::Quick).with("p", 1).digest());
        assert_ne!(d0, JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::VN), Scale::Full).with("p", 1).digest());
        assert_ne!(d0, base().with("p", 2).digest());
        assert_ne!(d0, { let mut k = base(); k.engine_version += 1; k.digest() });
    }

    #[test]
    fn mismatched_cache_key_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("xtsim-mismatch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(&dir).unwrap();
        // Poison job 0's digest slot with an entry recorded under a
        // *different* key (as a digest collision or corruption would).
        let key0 = JobKey::new("tiny", None, None, Scale::Quick).with("i", 0u32).prepare();
        // A foreign key filed under key0's digest — exactly what a digest
        // collision (or corruption) would leave behind.
        let foreign = PreparedKey {
            digest: key0.digest.clone(),
            key_json: JobKey::new("tiny", None, None, Scale::Quick).with("i", 7u32).prepare().key_json,
        };
        cache.store(&foreign, &obj(vec![("y", 999.0.into())])).unwrap();
        assert!(matches!(cache.load(&key0), CacheLookup::KeyMismatch));
        assert!(matches!(cache.load(&foreign), CacheLookup::Hit(_)));

        // The engine must recompute the poisoned job, not serve 999.
        let cfg = SweepConfig::serial().with_cache(DiskCache::new(&dir).unwrap());
        let (fig, stats) = run_figure(tiny_spec(2.0), &cfg);
        assert_eq!(stats.key_mismatches, 1);
        assert_eq!(stats.computed, 5);
        assert_eq!(fig.series[0].points[0].1, 0.0, "served a mismatched entry");
        // The recompute overwrote the poisoned entry with a verified one.
        assert!(matches!(
            DiskCache::new(&dir).unwrap().load(&key0),
            CacheLookup::Hit(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stores_never_tear_entries() {
        let dir = std::env::temp_dir().join(format!("xtsim-racestore-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = JobKey::new("race", None, None, Scale::Quick).with("p", 1u32).prepare();
        // Writers hammer the same digest with two alternating payloads while
        // readers continuously load-and-verify; a torn or misnamed temp file
        // would surface as a corrupt (Miss) or mismatched entry.
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let dir = dir.clone();
                let key = key.clone();
                s.spawn(move || {
                    let cache = DiskCache::new(&dir).unwrap();
                    for round in 0..50u32 {
                        let y = f64::from((w + round) % 2);
                        cache.store(&key, &obj(vec![("y", y.into())])).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let dir = dir.clone();
                let key = key.clone();
                s.spawn(move || {
                    let cache = DiskCache::new(&dir).unwrap();
                    for _ in 0..200 {
                        match cache.load(&key) {
                            CacheLookup::Hit(v) => {
                                let y = num(&v, "y");
                                assert!(y == 0.0 || y == 1.0, "torn value {y}");
                            }
                            CacheLookup::Miss => {} // not yet written / mid-rename
                            CacheLookup::KeyMismatch => panic!("key mismatch from torn write"),
                        }
                    }
                });
            }
        });
        // Every temp file was renamed away (check the whole tree — entries
        // and their temp files live in prefix subdirectories); the entry is
        // whole and verified.
        assert_eq!(DiskCache::new(&dir).unwrap().stats().tmp_files, 0, "stray temp files");
        assert!(matches!(
            DiskCache::new(&dir).unwrap().load(&key),
            CacheLookup::Hit(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_wall_matches_run_stats_wall() {
        // One clock read: the metrics record and RunStats must agree exactly
        // (two separate t0.elapsed() calls used to make them drift).
        let (_, stats) = run_figure(tiny_spec(2.0), &SweepConfig::serial().with_metrics());
        let m = stats.metrics.expect("metrics collected");
        assert_eq!(m.wall_secs, stats.wall.as_secs_f64());
    }

    #[test]
    fn stale_tmp_files_are_swept() {
        let dir = std::env::temp_dir().join(format!("xtsim-tmpsweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let digest = "a".repeat(32);

        // A temp file whose recorded writer is dead: spawn a process, let it
        // exit, and stamp its (now free) pid into the name.
        let dead = std::process::Command::new("true").spawn().ok().map(|mut child| {
            let pid = child.id();
            child.wait().unwrap();
            let path = dir.join(format!(".{digest}.{pid}.0.tmp"));
            std::fs::write(&path, b"{\"torn\":").unwrap();
            path
        });
        // A fresh temp file from a *live* writer (our own pid): must survive.
        let live = dir.join(format!(".{digest}.{}.1.tmp", std::process::id()));
        std::fs::write(&live, b"{\"inflight\":").unwrap();

        let cache = DiskCache::new(&dir).unwrap(); // sweeps on open
        if let Some(dead) = &dead {
            assert!(!dead.exists(), "dead writer's temp file not swept");
        }
        assert!(live.exists(), "live writer's fresh temp file was yanked");
        assert_eq!(cache.stats().tmp_files, 1);

        // Age-based fallback: with a zero max-age even the live file is
        // past the threshold (covers platforms without /proc).
        assert_eq!(cache.sweep_stale_tmp(Duration::ZERO), 1);
        assert!(!live.exists());
        assert_eq!(cache.stats().tmp_files, 0);

        // Committed entries are never touched by the sweep.
        let key = JobKey::new("tiny", None, None, Scale::Quick).with("i", 1u32).prepare();
        cache.store(&key, &obj(vec![("y", 1.0.into())])).unwrap();
        DiskCache::new(&dir).unwrap().sweep_stale_tmp(Duration::ZERO);
        assert!(matches!(cache.load(&key), CacheLookup::Hit(_)));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.tmp_files), (1, 0));
        assert!(stats.bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_roundtrip_and_stats() {
        let dir = std::env::temp_dir().join(format!("xtsim-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SweepConfig::serial().with_cache(DiskCache::new(&dir).unwrap());
        let (_, cold) = run_figure(tiny_spec(3.0), &cfg);
        assert_eq!((cold.computed, cold.cached), (5, 0));
        let cfg = SweepConfig::threads(4).with_cache(DiskCache::new(&dir).unwrap());
        let (warm_fig, warm) = run_figure(tiny_spec(3.0), &cfg);
        assert_eq!((warm.computed, warm.cached), (0, 5));
        assert_eq!(warm_fig.series[0].points[4].1, 12.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
