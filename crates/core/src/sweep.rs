//! Parallel, cached sweep execution for the figure registry.
//!
//! Every figure generator is decomposed into independent *sweep-point jobs*
//! (one simulated experiment each — a netbench run, one HPL point, one CAM
//! configuration). Jobs carry a content-addressed [`JobKey`]; the engine
//! executes whatever isn't already cached across a pool of worker threads and
//! then reassembles the figure **in job order**, so the output is
//! byte-identical whether it ran on 1 thread or 8, cold or warm.
//!
//! Threading model: the DES simulator underneath is single-threaded
//! (`Rc`/`RefCell` worlds). That is fine — each job *constructs its own
//! world* inside its closure, so nothing non-`Send` ever crosses a thread
//! boundary; only plain spec data goes in and a JSON [`Value`] comes out.
//!
//! Cache layout: one file per job under the cache directory,
//! `<32-hex-digest>.json`, holding `{"key": ..., "value": ...}`. The digest
//! hashes the canonical JSON of the key — engine version, job kind, machine
//! spec content, execution mode, scale, and all sweep parameters — via two
//! independent FNV-1a passes ([`xtsim_machine::fingerprint`]). Bump
//! [`ENGINE_VERSION`] whenever simulator semantics change; every old entry
//! then misses.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{impl_serde_struct, Value};
use xtsim_machine::fingerprint::hex_digest;
use xtsim_machine::{ExecMode, MachineSpec};

use crate::report::{FigureResult, Scale};

/// Version of the simulation engine folded into every cache key. Bump on any
/// change that alters simulated numbers so stale cache entries stop hitting.
pub const ENGINE_VERSION: u32 = 1;

/// Content-addressed identity of one sweep-point job.
///
/// Everything that determines the job's output must be in here (the machine
/// by *content*, not name — a tweaked preset hashes differently) and nothing
/// else: the figure id is deliberately absent so figures sharing a
/// computation (fig12/fig13, fig02/fig03) share cache entries too.
#[derive(Debug, Clone)]
pub struct JobKey {
    /// [`ENGINE_VERSION`] at key-construction time.
    pub engine_version: u32,
    /// Generator family, e.g. `"netbench"`, `"global/hpl"`, `"cam"`.
    pub kind: String,
    /// The simulated machine, when the job targets one.
    pub machine: Option<MachineSpec>,
    /// Execution mode, when the job targets a machine.
    pub mode: Option<ExecMode>,
    /// Sweep scale the job belongs to.
    pub scale: Scale,
    /// Remaining kernel/app parameters, as a JSON object.
    pub params: Value,
}

impl_serde_struct!(JobKey { engine_version, kind, machine, mode, scale, params });

impl JobKey {
    /// Start a key for `kind` on `machine`/`mode` at `scale`.
    pub fn new(
        kind: impl Into<String>,
        machine: Option<&MachineSpec>,
        mode: Option<ExecMode>,
        scale: Scale,
    ) -> JobKey {
        JobKey {
            engine_version: ENGINE_VERSION,
            kind: kind.into(),
            machine: machine.cloned(),
            mode,
            scale,
            params: Value::Object(Default::default()),
        }
    }

    /// Add one sweep parameter (builder style).
    pub fn with(mut self, name: &str, value: impl Into<Value>) -> JobKey {
        if let Value::Object(map) = &mut self.params {
            map.insert(name.to_string(), value.into());
        }
        self
    }

    /// 128-bit hex digest of the canonical JSON encoding of this key.
    /// Canonical means: object keys sorted, integral floats rendered `x.0` —
    /// so the digest is independent of field declaration order and stable
    /// across processes.
    pub fn digest(&self) -> String {
        let json = serde_json::to_string(self).expect("JobKey serializes");
        hex_digest(&json)
    }
}

/// One schedulable sweep point: an identity plus the closure that computes
/// it. The closure builds its own single-threaded simulation world, so it is
/// safe to run from any worker thread.
pub struct Job {
    /// Cache identity.
    pub key: JobKey,
    /// The computation; returns the job's JSON-serializable output.
    pub run: Box<dyn Fn() -> Value + Send + Sync>,
}

impl Job {
    /// Package `run` under `key`.
    pub fn new(key: JobKey, run: impl Fn() -> Value + Send + Sync + 'static) -> Job {
        Job { key, run: Box::new(run) }
    }
}

/// A figure decomposed into jobs plus the (cheap, pure) assembly step that
/// turns the job outputs — supplied **in job order** — into the final
/// [`FigureResult`]. Assembly must not simulate anything; all cost lives in
/// the jobs so it can be parallelized and cached.
pub struct FigureSpec {
    /// Figure identifier, e.g. `"fig08"`.
    pub id: &'static str,
    /// The sweep points, in deterministic order.
    pub jobs: Vec<Job>,
    /// Reassembles outputs (`outputs[i]` is `jobs[i]`'s value) into the figure.
    pub assemble: Box<dyn FnOnce(&[Value]) -> FigureResult + Send>,
}

impl FigureSpec {
    /// New spec with no jobs yet.
    pub fn new(
        id: &'static str,
        assemble: impl FnOnce(&[Value]) -> FigureResult + Send + 'static,
    ) -> FigureSpec {
        FigureSpec { id, jobs: Vec::new(), assemble: Box::new(assemble) }
    }

    /// Append a job, returning its index (for use inside `assemble`).
    pub fn push_job(
        &mut self,
        key: JobKey,
        run: impl Fn() -> Value + Send + Sync + 'static,
    ) -> usize {
        self.jobs.push(Job::new(key, run));
        self.jobs.len() - 1
    }
}

/// On-disk content-addressed job cache (one JSON file per digest).
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<DiskCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir })
    }

    /// The conventional cache location used by the `figures` binary.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results/cache")
    }

    /// Cache directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Load the cached value for `digest`, if present and well-formed.
    pub fn load(&self, digest: &str) -> Option<Value> {
        let text = std::fs::read_to_string(self.path_for(digest)).ok()?;
        let entry: Value = serde_json::from_str(&text).ok()?;
        entry.as_object()?.get("value").cloned()
    }

    /// Store `value` (with its `key`, for debuggability) under `digest`.
    /// Writes to a temp file then renames, so concurrent readers never see a
    /// torn entry.
    pub fn store(&self, digest: &str, key: &JobKey, value: &Value) -> std::io::Result<()> {
        let mut entry = std::collections::BTreeMap::new();
        entry.insert("key".to_string(), serde_json::to_value(key).expect("key serializes"));
        entry.insert("value".to_string(), value.clone());
        let text = serde_json::to_string_pretty(&Value::Object(entry)).expect("entry serializes");
        let tmp = self.dir.join(format!(".{digest}.tmp"));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, self.path_for(digest))
    }

    /// Number of entries on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Engine configuration for one figure run.
pub struct SweepConfig {
    /// Worker threads; `1` executes jobs inline on the calling thread.
    pub jobs: usize,
    /// Result cache; `None` recomputes everything.
    pub cache: Option<DiskCache>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig { jobs: 1, cache: None }
    }
}

impl SweepConfig {
    /// Serial, uncached — the behaviour of the pre-engine harness.
    pub fn serial() -> SweepConfig {
        SweepConfig::default()
    }

    /// `n` worker threads, no cache.
    pub fn threads(n: usize) -> SweepConfig {
        SweepConfig { jobs: n.max(1), cache: None }
    }

    /// Attach a cache.
    pub fn with_cache(mut self, cache: DiskCache) -> SweepConfig {
        self.cache = Some(cache);
        self
    }
}

/// What one figure run did.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Total sweep-point jobs in the figure.
    pub total: usize,
    /// Jobs actually executed this run.
    pub computed: usize,
    /// Jobs answered from the cache.
    pub cached: usize,
    /// Wall-clock time for the whole figure (lookup + execute + assemble).
    pub wall: Duration,
}

/// Execute a figure spec under `cfg`: cache-lookup every job, run the misses
/// on the worker pool, persist fresh results, and assemble in job order.
pub fn run_figure(spec: FigureSpec, cfg: &SweepConfig) -> (FigureResult, RunStats) {
    let t0 = Instant::now();
    let n = spec.jobs.len();
    let digests: Vec<String> = spec.jobs.iter().map(|j| j.key.digest()).collect();

    // Slot per job; cache hits fill immediately, misses queue up.
    let mut slots: Vec<Option<Value>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<usize> = Vec::new();
    for i in 0..n {
        match cfg.cache.as_ref().and_then(|c| c.load(&digests[i])) {
            Some(v) => slots[i] = Some(v),
            None => pending.push(i),
        }
    }
    let cached = n - pending.len();

    // Execute misses: worker threads pull indices off a shared atomic cursor
    // (cheap work-stealing); results land in per-job mutexed slots and are
    // read back in job order, so scheduling order never leaks into output.
    let workers = cfg.jobs.max(1).min(pending.len().max(1));
    let fresh: Vec<Mutex<Option<Value>>> = pending.iter().map(|_| Mutex::new(None)).collect();
    if workers <= 1 {
        for (slot, &i) in fresh.iter().zip(&pending) {
            *slot.lock().unwrap() = Some((spec.jobs[i].run)());
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let jobs = &spec.jobs;
        let pending_ref = &pending;
        let fresh_ref = &fresh;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= pending_ref.len() {
                        break;
                    }
                    let v = (jobs[pending_ref[k]].run)();
                    *fresh_ref[k].lock().unwrap() = Some(v);
                });
            }
        });
    }
    for (slot, &i) in fresh.iter().zip(&pending) {
        let v = slot.lock().unwrap().take().expect("worker filled every slot");
        if let Some(cache) = &cfg.cache {
            // Cache write failure is not a figure failure; drop the entry.
            let _ = cache.store(&digests[i], &spec.jobs[i].key, &v);
        }
        slots[i] = Some(v);
    }

    let values: Vec<Value> = slots.into_iter().map(|s| s.expect("all slots filled")).collect();
    let fig = (spec.assemble)(&values);
    let stats = RunStats { total: n, computed: pending.len(), cached, wall: t0.elapsed() };
    (fig, stats)
}

/// Build a JSON object from `(name, value)` pairs — the conventional shape of
/// a job output.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Read numeric field `name` out of a job-output object (panics on absence —
/// job outputs are produced by this same binary, so a missing field is a bug,
/// not bad input).
pub fn num(v: &Value, name: &str) -> f64 {
    v.as_object()
        .and_then(|o| o.get(name))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("job output missing numeric field {name:?}: {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;
    use xtsim_machine::presets;

    fn tiny_spec(mult: f64) -> FigureSpec {
        let mut spec = FigureSpec::new("figT", move |outs| {
            let mut s = Series::new("line");
            for (i, o) in outs.iter().enumerate() {
                s.push(i as f64, num(o, "y"));
            }
            FigureResult::new("figT", "tiny").with_series(s)
        });
        for i in 0..5u32 {
            let key = JobKey::new("tiny", None, None, Scale::Quick).with("i", i);
            spec.push_job(key, move || obj(vec![("y", (f64::from(i) * mult).into())]));
        }
        spec
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (serial, s1) = run_figure(tiny_spec(2.0), &SweepConfig::serial());
        let (par, s8) = run_figure(tiny_spec(2.0), &SweepConfig::threads(8));
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&par).unwrap()
        );
        assert_eq!(s1.computed, 5);
        assert_eq!(s8.computed, 5);
    }

    #[test]
    fn digest_ignores_param_insertion_order() {
        let a = JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::VN), Scale::Quick)
            .with("alpha", 1)
            .with("beta", 2.5);
        let b = JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::VN), Scale::Quick)
            .with("beta", 2.5)
            .with("alpha", 1);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_separates_kind_machine_mode_scale_params() {
        let base = || JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::VN), Scale::Quick).with("p", 1);
        let d0 = base().digest();
        assert_ne!(d0, { let mut k = base(); k.kind = "k2".into(); k.digest() });
        assert_ne!(d0, JobKey::new("k", Some(&presets::xt3_dual()), Some(ExecMode::VN), Scale::Quick).with("p", 1).digest());
        assert_ne!(d0, JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::SN), Scale::Quick).with("p", 1).digest());
        assert_ne!(d0, JobKey::new("k", Some(&presets::xt4()), Some(ExecMode::VN), Scale::Full).with("p", 1).digest());
        assert_ne!(d0, base().with("p", 2).digest());
        assert_ne!(d0, { let mut k = base(); k.engine_version += 1; k.digest() });
    }

    #[test]
    fn cache_roundtrip_and_stats() {
        let dir = std::env::temp_dir().join(format!("xtsim-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SweepConfig::serial().with_cache(DiskCache::new(&dir).unwrap());
        let (_, cold) = run_figure(tiny_spec(3.0), &cfg);
        assert_eq!((cold.computed, cold.cached), (5, 0));
        let cfg = SweepConfig::threads(4).with_cache(DiskCache::new(&dir).unwrap());
        let (warm_fig, warm) = run_figure(tiny_spec(3.0), &cfg);
        assert_eq!((warm.computed, warm.cached), (0, 5));
        assert_eq!(warm_fig.series[0].points[4].1, 12.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
