//! Shared request/argument validation for the harness front ends.
//!
//! The `figures` CLI and the `xtsim-serve` service accept the same scenario
//! parameters (figure ids, scale, DES thread budget); this module is the
//! single implementation of their validation so the two can never drift —
//! an id the CLI rejects with exit 2 is exactly an id the service rejects
//! with 404.

use crate::figures::Figure;
use crate::report::Scale;

/// Parse a scale label as used on the command line and in service requests.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "quick" => Some(Scale::Quick),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// Filter `figures` down to the ids in `only`, preserving registry order.
///
/// Every requested id must match something: ids that match nothing are
/// collected and returned as the error, so a typo (`figZZ`) or an ablation
/// id requested without `--ablations` fails loudly instead of being
/// silently dropped from the run.
pub fn select_figures(figures: Vec<Figure>, only: &[String]) -> Result<Vec<Figure>, Vec<String>> {
    let unmatched: Vec<String> = only
        .iter()
        .filter(|id| !figures.iter().any(|f| f.id == id.as_str()))
        .cloned()
        .collect();
    if !unmatched.is_empty() {
        return Err(unmatched);
    }
    Ok(figures
        .into_iter()
        .filter(|f| only.iter().any(|id| id == f.id))
        .collect())
}

/// Parse a strictly positive integer argument (`--jobs`, `--des-threads`,
/// `--max-concurrent`, ...). The error names the flag and quotes the
/// offending token so front ends can print it verbatim and exit 2.
pub fn parse_positive(flag: &str, value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} needs a positive integer, got {value:?}")),
    }
}

/// Parse a byte-size argument (`--cache-mem-cap`): a non-negative integer
/// with an optional, case-insensitive binary suffix — `k`/`kb`/`kib`,
/// `m`/`mb`/`mib`, `g`/`gb`/`gib` (all powers of 1024). `0` is legal and
/// means "disabled". The error names the flag and quotes the offending
/// token so front ends can print it verbatim and exit 2.
pub fn parse_byte_size(flag: &str, value: &str) -> Result<u64, String> {
    let err = || format!("{flag} needs a byte size like 64m, 512k, 1g or 0, got {value:?}");
    let t = value.trim().to_ascii_lowercase();
    let (digits, unit): (&str, u64) = if let Some(d) = t
        .strip_suffix("kib")
        .or_else(|| t.strip_suffix("kb"))
        .or_else(|| t.strip_suffix('k'))
    {
        (d, 1024)
    } else if let Some(d) = t
        .strip_suffix("mib")
        .or_else(|| t.strip_suffix("mb"))
        .or_else(|| t.strip_suffix('m'))
    {
        (d, 1024 * 1024)
    } else if let Some(d) = t
        .strip_suffix("gib")
        .or_else(|| t.strip_suffix("gb"))
        .or_else(|| t.strip_suffix('g'))
    {
        (d, 1024 * 1024 * 1024)
    } else {
        (t.as_str(), 1)
    };
    let n: u64 = digits.trim_end().parse().map_err(|_| err())?;
    n.checked_mul(unit).ok_or_else(err)
}

/// DES worker-thread budget from the `DES_THREADS` environment variable.
///
/// Unset means serial (1). A set-but-unparsable value (`DES_THREADS=abc`,
/// `=0`, `=-2`) also runs serial, but *says so* on stderr — silently
/// ignoring an explicit request to parallelize hides misconfiguration.
// xtsim-lint: allow(transitive-taint, "the warn-event timestamp is stderr telemetry read before the sim starts; no sim state derives from it")
pub fn des_threads_from_env() -> usize {
    match std::env::var("DES_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                xtsim_obs::events::warn(
                    "xtsim::cli",
                    &format!(
                        "ignoring DES_THREADS={v:?} (needs a positive integer); \
                         running the serial DES engine"
                    ),
                    &[("env_var", "DES_THREADS"), ("value", &v)],
                );
                1
            }
        },
        Err(_) => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::all_figures;

    #[test]
    fn select_keeps_registry_order_and_matches_all() {
        let only = vec!["fig12".to_string(), "fig02".to_string()];
        let picked = select_figures(all_figures(), &only).unwrap();
        // Registry order, not request order.
        let ids: Vec<&str> = picked.iter().map(|f| f.id).collect();
        assert_eq!(ids, ["fig02", "fig12"]);
    }

    #[test]
    fn select_rejects_unknown_ids_listing_every_one() {
        let only = vec![
            "fig12".to_string(),
            "figZZ".to_string(),
            "nope".to_string(),
        ];
        let err = select_figures(all_figures(), &only).err().expect("must reject");
        assert_eq!(err, ["figZZ", "nope"]);
    }

    #[test]
    fn positive_integers_parse_and_errors_quote_the_token() {
        assert_eq!(parse_positive("--jobs", "8"), Ok(8));
        assert_eq!(parse_positive("--jobs", " 2 "), Ok(2));
        for bad in ["0", "-3", "abc", "1.5", ""] {
            let err = parse_positive("--jobs", bad).unwrap_err();
            assert!(err.contains("--jobs"), "{err}");
            assert!(err.contains(&format!("{bad:?}")), "{err} must quote {bad:?}");
        }
    }

    #[test]
    fn byte_sizes_parse_with_binary_suffixes() {
        assert_eq!(parse_byte_size("--cache-mem-cap", "0"), Ok(0));
        assert_eq!(parse_byte_size("--cache-mem-cap", "12345"), Ok(12345));
        assert_eq!(parse_byte_size("--cache-mem-cap", "512k"), Ok(512 * 1024));
        assert_eq!(parse_byte_size("--cache-mem-cap", "64M"), Ok(64 * 1024 * 1024));
        assert_eq!(parse_byte_size("--cache-mem-cap", "64mb"), Ok(64 * 1024 * 1024));
        assert_eq!(parse_byte_size("--cache-mem-cap", "64MiB"), Ok(64 * 1024 * 1024));
        assert_eq!(parse_byte_size("--cache-mem-cap", "2g"), Ok(2 * 1024 * 1024 * 1024));
        for bad in ["", "m", "-1", "4x", "1.5g", "99999999999999999999", "18446744073709551615g"] {
            let err = parse_byte_size("--cache-mem-cap", bad).unwrap_err();
            assert!(err.contains("--cache-mem-cap"), "{err}");
            assert!(err.contains(&format!("{bad:?}")), "{err} must quote {bad:?}");
        }
    }

    #[test]
    fn scale_labels_roundtrip() {
        assert_eq!(parse_scale("quick"), Some(Scale::Quick));
        assert_eq!(parse_scale("full"), Some(Scale::Full));
        assert_eq!(parse_scale("FULL"), None);
        for s in [Scale::Quick, Scale::Full] {
            assert_eq!(parse_scale(s.label()), Some(s));
        }
    }
}
