//! Shared request/argument validation for the harness front ends.
//!
//! The `figures` CLI and the `xtsim-serve` service accept the same scenario
//! parameters (figure ids, scale, DES thread budget); this module is the
//! single implementation of their validation so the two can never drift —
//! an id the CLI rejects with exit 2 is exactly an id the service rejects
//! with 404.

use crate::figures::Figure;
use crate::report::Scale;

/// Parse a scale label as used on the command line and in service requests.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "quick" => Some(Scale::Quick),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// Filter `figures` down to the ids in `only`, preserving registry order.
///
/// Every requested id must match something: ids that match nothing are
/// collected and returned as the error, so a typo (`figZZ`) or an ablation
/// id requested without `--ablations` fails loudly instead of being
/// silently dropped from the run.
pub fn select_figures(figures: Vec<Figure>, only: &[String]) -> Result<Vec<Figure>, Vec<String>> {
    let unmatched: Vec<String> = only
        .iter()
        .filter(|id| !figures.iter().any(|f| f.id == id.as_str()))
        .cloned()
        .collect();
    if !unmatched.is_empty() {
        return Err(unmatched);
    }
    Ok(figures
        .into_iter()
        .filter(|f| only.iter().any(|id| id == f.id))
        .collect())
}

/// DES worker-thread budget from the `DES_THREADS` environment variable.
///
/// Unset means serial (1). A set-but-unparsable value (`DES_THREADS=abc`,
/// `=0`, `=-2`) also runs serial, but *says so* on stderr — silently
/// ignoring an explicit request to parallelize hides misconfiguration.
pub fn des_threads_from_env() -> usize {
    match std::env::var("DES_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                xtsim_obs::events::warn(
                    "xtsim::cli",
                    &format!(
                        "ignoring DES_THREADS={v:?} (needs a positive integer); \
                         running the serial DES engine"
                    ),
                    &[("env_var", "DES_THREADS"), ("value", &v)],
                );
                1
            }
        },
        Err(_) => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::all_figures;

    #[test]
    fn select_keeps_registry_order_and_matches_all() {
        let only = vec!["fig12".to_string(), "fig02".to_string()];
        let picked = select_figures(all_figures(), &only).unwrap();
        // Registry order, not request order.
        let ids: Vec<&str> = picked.iter().map(|f| f.id).collect();
        assert_eq!(ids, ["fig02", "fig12"]);
    }

    #[test]
    fn select_rejects_unknown_ids_listing_every_one() {
        let only = vec![
            "fig12".to_string(),
            "figZZ".to_string(),
            "nope".to_string(),
        ];
        let err = select_figures(all_figures(), &only).err().expect("must reject");
        assert_eq!(err, ["figZZ", "nope"]);
    }

    #[test]
    fn scale_labels_roundtrip() {
        assert_eq!(parse_scale("quick"), Some(Scale::Quick));
        assert_eq!(parse_scale("full"), Some(Scale::Full));
        assert_eq!(parse_scale("FULL"), None);
        for s in [Scale::Quick, Scale::Full] {
            assert_eq!(parse_scale(s.label()), Some(s));
        }
    }
}
