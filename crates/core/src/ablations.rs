//! Ablation experiments for the design choices DESIGN.md calls out — these
//! go beyond the paper's figures and probe the model's levers directly.

use xtsim_apps::{cam, s3d};
use xtsim_hpcc::{bidir, global, local};
use xtsim_machine::{presets, ExecMode};

use crate::report::{FigureResult, Scale, Series};

/// All ablation experiments.
pub fn all_ablations() -> Vec<crate::figures::Figure> {
    vec![
        crate::figures::Figure {
            id: "abl-eager",
            title: "Eager/rendezvous threshold sensitivity",
            run: eager_threshold,
        },
        crate::figures::Figure {
            id: "abl-memory",
            title: "Memory technology ladder (DDR-400 → DDR2-667 → DDR2-800)",
            run: memory_ladder,
        },
        crate::figures::Figure {
            id: "abl-quadcore",
            title: "Quad-core projection (the paper's future work)",
            run: quad_core,
        },
        crate::figures::Figure {
            id: "abl-vnstack",
            title: "VN software-stack maturity (paper's predicted improvement)",
            run: vn_stack,
        },
        crate::figures::Figure {
            id: "abl-openmp",
            title: "OpenMP on the XT4 (the paper's anticipated enhancement)",
            run: openmp_xt4,
        },
    ]
}

/// Sweep the NIC eager threshold and watch the mid-size-message latency step
/// move (Figures 12–13 carry this signature).
fn eager_threshold(_scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("abl-eager", "Eager threshold sweep")
        .axes("message bytes", "one-way latency (us)");
    for threshold in [16u64 << 10, 64 << 10, 256 << 10] {
        let mut m = presets::xt4();
        m.nic.eager_threshold_bytes = threshold;
        let mut s = Series::new(format!("threshold {}KiB", threshold >> 10));
        for bytes in [8u64 << 10, 32 << 10, 128 << 10, 512 << 10] {
            let p = bidir::bidir_point(&m, ExecMode::SN, 1, bytes);
            s.push(bytes as f64, p.latency_us);
        }
        fig = fig.with_series(s);
    }
    fig.note("larger thresholds defer the rendezvous handshake cost to larger messages")
}

/// STREAM and FFT across the DDR generations named in §2.
fn memory_ladder(_scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("abl-memory", "Memory ladder")
        .axes("machine (1=XT3 DDR-400, 2=XT4 DDR2-667, 3=XT4 DDR2-800)", "value");
    let machines = [presets::xt3_single(), presets::xt4(), presets::xt4_ddr2_800()];
    let mut triad = Series::new("STREAM triad GB/s (SP)");
    let mut fft = Series::new("FFT GFLOPS (SP)");
    for (i, m) in machines.iter().enumerate() {
        let t = local::local_bench(m, ExecMode::SN, local::LocalKernel::StreamTriad);
        let f = local::local_bench(m, ExecMode::SN, local::LocalKernel::Fft);
        triad.push((i + 1) as f64, t.sp);
        fft.push((i + 1) as f64, f.sp);
    }
    fig.series.push(triad);
    fig.series.push(fft);
    fig
}

/// Project the site-upgrade to quad-core sockets: per-core STREAM collapses
/// further, S3D VN-mode contention worsens — exactly the "multi-core is not
/// a universal answer" trend of §7.
fn quad_core(_scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("abl-quadcore", "Quad-core projection")
        .axes("cores per socket", "value");
    let duo = presets::xt4();
    let quad = presets::xt4_quad();
    let mut stream = Series::new("per-core STREAM triad GB/s (EP)");
    let mut s3d_cost = Series::new("S3D cost us/point (VN)");
    for m in [&duo, &quad] {
        let cores = m.processor.cores_per_socket as f64;
        let t = local::local_bench(m, ExecMode::VN, local::LocalKernel::StreamTriad);
        stream.push(cores, t.ep);
        let r = s3d::s3d(m, ExecMode::VN, 64);
        s3d_cost.push(cores, r.cost_us_per_point);
    }
    fig.series.push(stream);
    fig.series.push(s3d_cost);
    fig
}

/// Sweep the VN NIC-sharing penalty toward zero — the paper repeatedly
/// expects VN-mode results "to improve as the XT4 software stack matures".
fn vn_stack(_scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("abl-vnstack", "VN software maturity")
        .axes("vn extra overhead (us)", "MPI-RA GUPS at 64 sockets (VN)");
    let mut s = Series::new("XT4-VN MPI-RA");
    for extra in [4.2f64, 2.8, 1.4, 0.0] {
        let mut m = presets::xt4();
        m.nic.vn_extra_overhead_us = extra;
        s.push(extra, global::mpi_ra(&m, ExecMode::VN, 64));
    }
    let sn = global::mpi_ra(&presets::xt4(), ExecMode::SN, 64);
    fig.series.push(s);
    fig.note(format!(
        "XT4-SN reference: {sn:.4} GUPS — a matured VN stack closes most of the gap"
    ))
}

/// The paper (§6.1): "OpenMP is also expected to provide a performance
/// enhancement when it becomes available on the XT4 by allowing fewer MPI
/// tasks to be used and by allowing us to restrict MPI communication to a
/// single core per node." Run CAM with 1 vs 2 threads per task at the same
/// processor counts.
fn openmp_xt4(_scale: Scale) -> FigureResult {
    let mut fig = FigureResult::new("abl-openmp", "CAM with OpenMP on XT4")
        .axes("processors", "simulated years/day");
    let m = presets::xt4();
    let mut mpi_only = Series::new("VN, MPI-only");
    let mut hybrid = Series::new("SN + 2 OpenMP threads/task");
    for procs in [240usize, 480, 960] {
        if let Some(r) = cam::cam(&m, ExecMode::VN, procs, 1) {
            mpi_only.push(procs as f64, r.years_per_day);
        }
        // 2 threads per task: half the MPI tasks, one rank per node (SN),
        // both cores driven by OpenMP.
        if let Some(r) = cam::cam(&m, ExecMode::SN, procs / 2, 2) {
            hybrid.push(procs as f64, r.years_per_day);
        }
    }
    fig.series.push(mpi_only);
    fig.series.push(hybrid);
    fig.note("hybrid mode halves the MPI task count and keeps the NIC single-owner")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_ladder_is_monotone() {
        let f = memory_ladder(Scale::Quick);
        for s in &f.series {
            assert!(s.points[1].1 > s.points[0].1, "{}: {:?}", s.name, s.points);
            assert!(s.points[2].1 > s.points[1].1, "{}: {:?}", s.name, s.points);
        }
    }

    #[test]
    fn quad_core_worsens_contention() {
        let f = quad_core(Scale::Quick);
        let stream = &f.series[0];
        assert!(stream.points[1].1 < stream.points[0].1, "{stream:?}");
        let s3d_cost = &f.series[1];
        assert!(s3d_cost.points[1].1 > s3d_cost.points[0].1, "{s3d_cost:?}");
    }

    #[test]
    fn vn_stack_maturity_recovers_gups() {
        let f = vn_stack(Scale::Quick);
        let pts = &f.series[0].points;
        // Lower penalty -> higher GUPS.
        assert!(pts.last().unwrap().1 > pts.first().unwrap().1, "{pts:?}");
    }
}
