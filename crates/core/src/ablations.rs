//! Ablation experiments for the design choices DESIGN.md calls out — these
//! go beyond the paper's figures and probe the model's levers directly.
//!
//! Like the main registry, every ablation decomposes into sweep-point jobs
//! (see [`crate::sweep`]); the tweaked machines hash by content, so e.g. an
//! eager-threshold variant never collides with the stock preset in the cache.

use serde::Value;
use xtsim_apps::{cam, s3d};
use xtsim_hpcc::{bidir, global, local};
use xtsim_machine::{presets, ExecMode};

use crate::figures::Figure;
use crate::report::{FigureResult, Scale, Series};
use crate::sweep::{num, obj, FigureSpec, JobKey};

/// All ablation experiments.
pub fn all_ablations() -> Vec<Figure> {
    vec![
        Figure {
            id: "abl-eager",
            title: "Eager/rendezvous threshold sensitivity",
            build: eager_threshold,
        },
        Figure {
            id: "abl-memory",
            title: "Memory technology ladder (DDR-400 → DDR2-667 → DDR2-800)",
            build: memory_ladder,
        },
        Figure {
            id: "abl-quadcore",
            title: "Quad-core projection (the paper's future work)",
            build: quad_core,
        },
        Figure {
            id: "abl-vnstack",
            title: "VN software-stack maturity (paper's predicted improvement)",
            build: vn_stack,
        },
        Figure {
            id: "abl-openmp",
            title: "OpenMP on the XT4 (the paper's anticipated enhancement)",
            build: openmp_xt4,
        },
    ]
}

/// Sweep the NIC eager threshold and watch the mid-size-message latency step
/// move (Figures 12–13 carry this signature).
fn eager_threshold(scale: Scale) -> FigureSpec {
    let mut plans: Vec<(String, Vec<(f64, usize)>)> = Vec::new();
    let mut spec = FigureSpec::new("abl-eager", |_| unreachable!());
    for threshold in [16u64 << 10, 64 << 10, 256 << 10] {
        let mut m = presets::xt4();
        m.nic.eager_threshold_bytes = threshold;
        let mut pts = Vec::new();
        for bytes in [8u64 << 10, 32 << 10, 128 << 10, 512 << 10] {
            let key = JobKey::new("bidir", Some(&m), Some(ExecMode::SN), scale)
                .with("pairs", 1usize)
                .with("bytes", bytes);
            let m2 = m.clone();
            let job = spec.push_job(key, move || {
                let p = bidir::bidir_point(&m2, ExecMode::SN, 1, bytes);
                obj(vec![
                    ("bytes", p.bytes.into()),
                    ("bandwidth_mbs", p.bandwidth_mbs.into()),
                    ("latency_us", p.latency_us.into()),
                ])
            });
            pts.push((bytes as f64, job));
        }
        plans.push((format!("threshold {}KiB", threshold >> 10), pts));
    }
    spec.assemble = Box::new(move |outputs: &[Value]| {
        let mut fig = FigureResult::new("abl-eager", "Eager threshold sweep")
            .axes("message bytes", "one-way latency (us)");
        for (name, pts) in plans {
            let mut s = Series::new(name);
            for (x, job) in pts {
                s.push(x, num(&outputs[job], "latency_us"));
            }
            fig = fig.with_series(s);
        }
        fig.note("larger thresholds defer the rendezvous handshake cost to larger messages")
    });
    spec
}

/// STREAM and FFT across the DDR generations named in §2.
fn memory_ladder(scale: Scale) -> FigureSpec {
    let mut spec = FigureSpec::new("abl-memory", |_| unreachable!());
    let machines = [presets::xt3_single(), presets::xt4(), presets::xt4_ddr2_800()];
    let mut triad_jobs = Vec::new();
    let mut fft_jobs = Vec::new();
    for m in &machines {
        for (kernel, jobs) in [
            (local::LocalKernel::StreamTriad, &mut triad_jobs),
            (local::LocalKernel::Fft, &mut fft_jobs),
        ] {
            let key = JobKey::new("local", Some(m), Some(ExecMode::SN), scale)
                .with("kernel", kernel.label());
            let m2 = m.clone();
            jobs.push(spec.push_job(key, move || {
                let r = local::local_bench(&m2, ExecMode::SN, kernel);
                obj(vec![("sp", r.sp.into()), ("ep", r.ep.into())])
            }));
        }
    }
    spec.assemble = Box::new(move |outputs: &[Value]| {
        let mut fig = FigureResult::new("abl-memory", "Memory ladder")
            .axes("machine (1=XT3 DDR-400, 2=XT4 DDR2-667, 3=XT4 DDR2-800)", "value");
        let mut triad = Series::new("STREAM triad GB/s (SP)");
        let mut fft = Series::new("FFT GFLOPS (SP)");
        for (i, (&tj, &fj)) in triad_jobs.iter().zip(&fft_jobs).enumerate() {
            triad.push((i + 1) as f64, num(&outputs[tj], "sp"));
            fft.push((i + 1) as f64, num(&outputs[fj], "sp"));
        }
        fig.series.push(triad);
        fig.series.push(fft);
        fig
    });
    spec
}

/// Project the site-upgrade to quad-core sockets: per-core STREAM collapses
/// further, S3D VN-mode contention worsens — exactly the "multi-core is not
/// a universal answer" trend of §7.
fn quad_core(scale: Scale) -> FigureSpec {
    let mut spec = FigureSpec::new("abl-quadcore", |_| unreachable!());
    let mut rows = Vec::new(); // (cores_per_socket, stream job, s3d job)
    for m in [presets::xt4(), presets::xt4_quad()] {
        let stream_key = JobKey::new("local", Some(&m), Some(ExecMode::VN), scale)
            .with("kernel", local::LocalKernel::StreamTriad.label());
        let m2 = m.clone();
        let stream_job = spec.push_job(stream_key, move || {
            let r = local::local_bench(&m2, ExecMode::VN, local::LocalKernel::StreamTriad);
            obj(vec![("sp", r.sp.into()), ("ep", r.ep.into())])
        });
        let s3d_key = JobKey::new("s3d", Some(&m), Some(ExecMode::VN), scale).with("cores", 64usize);
        let m2 = m.clone();
        let s3d_job = spec.push_job(s3d_key, move || {
            let r = s3d::s3d(&m2, ExecMode::VN, 64);
            obj(vec![
                ("secs_per_step", r.secs_per_step.into()),
                ("cost_us_per_point", r.cost_us_per_point.into()),
            ])
        });
        rows.push((m.processor.cores_per_socket as f64, stream_job, s3d_job));
    }
    spec.assemble = Box::new(move |outputs: &[Value]| {
        let mut fig = FigureResult::new("abl-quadcore", "Quad-core projection")
            .axes("cores per socket", "value");
        let mut stream = Series::new("per-core STREAM triad GB/s (EP)");
        let mut s3d_cost = Series::new("S3D cost us/point (VN)");
        for &(cores, sj, dj) in &rows {
            stream.push(cores, num(&outputs[sj], "ep"));
            s3d_cost.push(cores, num(&outputs[dj], "cost_us_per_point"));
        }
        fig.series.push(stream);
        fig.series.push(s3d_cost);
        fig
    });
    spec
}

/// Sweep the VN NIC-sharing penalty toward zero — the paper repeatedly
/// expects VN-mode results "to improve as the XT4 software stack matures".
fn vn_stack(scale: Scale) -> FigureSpec {
    let mut spec = FigureSpec::new("abl-vnstack", |_| unreachable!());
    let mut vn_points = Vec::new(); // (extra overhead, job)
    for extra in [4.2f64, 2.8, 1.4, 0.0] {
        let mut m = presets::xt4();
        m.nic.vn_extra_overhead_us = extra;
        let key = JobKey::new("global/mpi_ra", Some(&m), Some(ExecMode::VN), scale)
            .with("sockets", 64usize);
        let job = spec.push_job(key, move || {
            let p = global::sweep(&m, ExecMode::VN, &[64], global::mpi_ra).remove(0);
            obj(vec![
                ("sockets", p.sockets.into()),
                ("cores", p.cores.into()),
                ("value", p.value.into()),
            ])
        });
        vn_points.push((extra, job));
    }
    let sn_machine = presets::xt4();
    let sn_key = JobKey::new("global/mpi_ra", Some(&sn_machine), Some(ExecMode::SN), scale)
        .with("sockets", 64usize);
    let sn_job = spec.push_job(sn_key, move || {
        let p = global::sweep(&sn_machine, ExecMode::SN, &[64], global::mpi_ra).remove(0);
        obj(vec![
            ("sockets", p.sockets.into()),
            ("cores", p.cores.into()),
            ("value", p.value.into()),
        ])
    });
    spec.assemble = Box::new(move |outputs: &[Value]| {
        let mut fig = FigureResult::new("abl-vnstack", "VN software maturity")
            .axes("vn extra overhead (us)", "MPI-RA GUPS at 64 sockets (VN)");
        let mut s = Series::new("XT4-VN MPI-RA");
        for &(extra, job) in &vn_points {
            s.push(extra, num(&outputs[job], "value"));
        }
        let sn = num(&outputs[sn_job], "value");
        fig.series.push(s);
        fig.note(format!(
            "XT4-SN reference: {sn:.4} GUPS — a matured VN stack closes most of the gap"
        ))
    });
    spec
}

/// The paper (§6.1): "OpenMP is also expected to provide a performance
/// enhancement when it becomes available on the XT4 by allowing fewer MPI
/// tasks to be used and by allowing us to restrict MPI communication to a
/// single core per node." Run CAM with 1 vs 2 threads per task at the same
/// processor counts.
fn openmp_xt4(scale: Scale) -> FigureSpec {
    let mut spec = FigureSpec::new("abl-openmp", |_| unreachable!());
    let m = presets::xt4();
    let mut rows = Vec::new(); // (procs, mpi-only job, hybrid job)
    for procs in [240usize, 480, 960] {
        let key = JobKey::new("cam", Some(&m), Some(ExecMode::VN), scale)
            .with("tasks", procs)
            .with("threads", 1usize);
        let m2 = m.clone();
        let mpi_job = spec.push_job(key, move || match cam::cam(&m2, ExecMode::VN, procs, 1) {
            None => Value::Null,
            Some(r) => obj(vec![("years_per_day", r.years_per_day.into())]),
        });
        // 2 threads per task: half the MPI tasks, one rank per node (SN),
        // both cores driven by OpenMP.
        let key = JobKey::new("cam", Some(&m), Some(ExecMode::SN), scale)
            .with("tasks", procs / 2)
            .with("threads", 2usize);
        let m2 = m.clone();
        let hybrid_job = spec.push_job(key, move || match cam::cam(&m2, ExecMode::SN, procs / 2, 2) {
            None => Value::Null,
            Some(r) => obj(vec![("years_per_day", r.years_per_day.into())]),
        });
        rows.push((procs as f64, mpi_job, hybrid_job));
    }
    spec.assemble = Box::new(move |outputs: &[Value]| {
        let mut fig = FigureResult::new("abl-openmp", "CAM with OpenMP on XT4")
            .axes("processors", "simulated years/day");
        let mut mpi_only = Series::new("VN, MPI-only");
        let mut hybrid = Series::new("SN + 2 OpenMP threads/task");
        for &(procs, mj, hj) in &rows {
            if !matches!(outputs[mj], Value::Null) {
                mpi_only.push(procs, num(&outputs[mj], "years_per_day"));
            }
            if !matches!(outputs[hj], Value::Null) {
                hybrid.push(procs, num(&outputs[hj], "years_per_day"));
            }
        }
        fig.series.push(mpi_only);
        fig.series.push(hybrid);
        fig.note("hybrid mode halves the MPI task count and keeps the NIC single-owner")
    });
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_figure, SweepConfig};

    fn run(spec: FigureSpec) -> FigureResult {
        run_figure(spec, &SweepConfig::serial()).0
    }

    #[test]
    fn memory_ladder_is_monotone() {
        let f = run(memory_ladder(Scale::Quick));
        for s in &f.series {
            assert!(s.points[1].1 > s.points[0].1, "{}: {:?}", s.name, s.points);
            assert!(s.points[2].1 > s.points[1].1, "{}: {:?}", s.name, s.points);
        }
    }

    #[test]
    fn quad_core_worsens_contention() {
        let f = run(quad_core(Scale::Quick));
        let stream = &f.series[0];
        assert!(stream.points[1].1 < stream.points[0].1, "{stream:?}");
        let s3d_cost = &f.series[1];
        assert!(s3d_cost.points[1].1 > s3d_cost.points[0].1, "{s3d_cost:?}");
    }

    #[test]
    fn vn_stack_maturity_recovers_gups() {
        let f = run(vn_stack(Scale::Quick));
        let pts = &f.series[0].points;
        // Lower penalty -> higher GUPS.
        assert!(pts.last().unwrap().1 > pts.first().unwrap().1, "{pts:?}");
    }
}
