//! Result containers and text rendering for the figure harness.

use serde::{impl_serde_struct, impl_serde_unit_enum};

/// A named data series (one line of a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, matching the paper's figures.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// One regenerated table or figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Identifier, e.g. "fig08" or "table1".
    pub id: String,
    /// Title, matching the paper's caption.
    pub title: String,
    /// Axis labels `(x, y)` when the figure is a chart.
    pub axes: Option<(String, String)>,
    /// The data series.
    pub series: Vec<Series>,
    /// Preformatted text body (used for tables and notes).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Start a figure result.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> FigureResult {
        FigureResult {
            id: id.into(),
            title: title.into(),
            axes: None,
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Set axis labels.
    pub fn axes(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.axes = Some((x.into(), y.into()));
        self
    }

    /// Add a series.
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Add a free-text note / preformatted block.
    pub fn note(mut self, text: impl Into<String>) -> Self {
        self.notes.push(text.into());
        self
    }

    /// Render as aligned text: a header, each series as a row block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} — {} ===\n", self.id, self.title));
        if let Some((x, y)) = &self.axes {
            out.push_str(&format!("x: {x}   y: {y}\n"));
        }
        if !self.series.is_empty() {
            // Union of x values across series, sorted.
            let mut xs: Vec<f64> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|p| p.0))
                .collect();
            xs.sort_by(f64::total_cmp);
            xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            let name_w = self
                .series
                .iter()
                .map(|s| s.name.len())
                .max()
                .unwrap_or(0)
                .max(8);
            out.push_str(&format!("{:name_w$}", "series"));
            for x in &xs {
                out.push_str(&format!(" {:>10}", trim_num(*x)));
            }
            out.push('\n');
            for s in &self.series {
                out.push_str(&format!("{:name_w$}", s.name));
                for x in &xs {
                    match s
                        .points
                        .iter()
                        .find(|(px, _)| (px - x).abs() < 1e-12)
                    {
                        Some((_, y)) => out.push_str(&format!(" {:>10}", trim_num(*y))),
                        None => out.push_str(&format!(" {:>10}", "-")),
                    }
                }
                out.push('\n');
            }
        }
        for n in &self.notes {
            out.push_str(n);
            if !n.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// CSV rendering (long format: series,x,y).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                out.push_str(&format!("{},{},{}\n", s.name, x, y));
            }
        }
        out
    }
}

fn trim_num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 && v.fract() == 0.0 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// How heavy a figure regeneration should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweeps for CI and tests (seconds per figure).
    Quick,
    /// The paper's sweeps (minutes for the largest figures).
    Full,
}

impl Scale {
    /// Lower-case label, as used on the `figures` command line.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

impl_serde_struct!(Series { name, points });
impl_serde_struct!(FigureResult { id, title, axes, series, notes });
impl_serde_unit_enum!(Scale { Quick, Full });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_series() {
        let fig = FigureResult::new("figX", "Test")
            .axes("sockets", "GB/s")
            .with_series({
                let mut s = Series::new("XT3");
                s.push(64.0, 1.15);
                s.push(128.0, 1.14);
                s
            })
            .with_series({
                let mut s = Series::new("XT4");
                s.push(64.0, 2.1);
                s
            });
        let text = fig.render();
        assert!(text.contains("figX"));
        assert!(text.contains("XT3"));
        assert!(text.contains("1.150"));
        // Missing point renders as '-'.
        assert!(text.contains('-'));
    }

    #[test]
    fn csv_long_format() {
        let mut s = Series::new("a");
        s.push(1.0, 2.0);
        let fig = FigureResult::new("f", "t").with_series(s);
        assert_eq!(fig.to_csv(), "series,x,y\na,1,2\n");
    }

    #[test]
    fn json_roundtrip() {
        let mut s = Series::new("a");
        s.push(1.0, 2.0);
        let fig = FigureResult::new("f", "t").with_series(s).note("hello");
        let j = serde_json::to_string(&fig).unwrap();
        let back: FigureResult = serde_json::from_str(&j).unwrap();
        assert_eq!(back.series[0].points, vec![(1.0, 2.0)]);
        assert_eq!(back.notes, vec!["hello".to_string()]);
    }
}
