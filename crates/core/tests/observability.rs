//! End-to-end checks of the observability layer: a traced figure run must
//! emit valid Chrome trace-event JSON whose per-category durations agree
//! with the figure's metrics record, and the rank-time categories must sum
//! to the record's reported total simulated time.

use std::collections::BTreeMap;
use std::path::PathBuf;

use serde::Value;
use xtsim::report::Scale;
use xtsim::sweep::{run_figure, SweepConfig};

const RANK_TIME_CATEGORIES: [&str; 4] = ["compute", "p2p", "collective", "io"];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtsim-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn traced_run_matches_metrics_record() {
    let trace_dir = tmp_dir("trace");
    let cfg = SweepConfig::threads(2).with_trace_dir(&trace_dir).with_metrics();
    let spec = xtsim::figures::figure("fig02").unwrap().spec(Scale::Quick);
    let (_, stats) = run_figure(spec, &cfg);
    let m = stats.metrics.expect("metrics collected");

    assert_eq!(m.computed as usize, stats.computed);
    assert_eq!(m.total_jobs as usize, stats.total);
    assert_eq!(m.trace_files.len(), stats.computed, "one trace per computed job");
    assert!(m.spans > 0, "network figure produced no spans");
    assert_eq!(m.dropped_spans, 0);
    assert!(m.jobs.iter().filter(|j| !j.cached).all(|j| j.trace.is_some()));

    // Re-derive per-category totals from the exported trace files and compare
    // against the metrics record (trace timestamps are microseconds).
    let mut from_traces: BTreeMap<String, f64> = BTreeMap::new();
    for fname in &m.trace_files {
        let text = std::fs::read_to_string(trace_dir.join(fname)).expect("trace file exists");
        let v: Value = serde_json::from_str(&text).expect("trace file is valid JSON");
        let top = v.as_object().expect("trace is an object");
        assert_eq!(
            top.get("figure").and_then(Value::as_str),
            Some("fig02"),
            "trace meta names its figure"
        );
        let events = top
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        for ev in events {
            let ev = ev.as_object().expect("event object");
            assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
            let cat = ev.get("cat").and_then(Value::as_str).expect("event category");
            let dur = ev.get("dur").and_then(Value::as_f64).expect("event duration");
            assert!(dur >= 0.0);
            *from_traces.entry(cat.to_string()).or_insert(0.0) += dur * 1e-6;
        }
    }
    for (cat, secs) in &m.sim_secs_by_category {
        let t = from_traces.get(cat).copied().unwrap_or(0.0);
        assert!(
            (t - secs).abs() <= 1e-9 + 1e-6 * secs.abs(),
            "category {cat}: traces say {t}, metrics say {secs}"
        );
    }

    // The acceptance invariant: rank-time categories partition the figure's
    // reported total simulated time (flows overlap and are excluded).
    let rank_time: f64 = RANK_TIME_CATEGORIES
        .iter()
        .filter_map(|c| from_traces.get(*c))
        .sum();
    assert!(
        (rank_time - m.sim_total_secs).abs() <= 1e-9 + 1e-6 * m.sim_total_secs,
        "rank-time sum {rank_time} != reported total {}",
        m.sim_total_secs
    );
    assert!(m.sim_total_secs > 0.0, "figure attributed no simulated time");

    let _ = std::fs::remove_dir_all(&trace_dir);
}

#[test]
fn untraced_run_collects_no_metrics_and_same_figure() {
    let trace_dir = tmp_dir("off");
    let plain = run_figure(
        xtsim::figures::figure("fig05").unwrap().spec(Scale::Quick),
        &SweepConfig::serial(),
    );
    let traced = run_figure(
        xtsim::figures::figure("fig05").unwrap().spec(Scale::Quick),
        &SweepConfig::serial().with_trace_dir(&trace_dir).with_metrics(),
    );
    assert!(plain.1.metrics.is_none());
    assert!(traced.1.metrics.is_some());
    // Capture must not perturb simulated results.
    assert_eq!(
        serde_json::to_string(&plain.0).unwrap(),
        serde_json::to_string(&traced.0).unwrap()
    );
    let _ = std::fs::remove_dir_all(&trace_dir);
}
