//! Two-tier cache guarantees under concurrency and eviction pressure.
//!
//! The memory hot tier may drop (evict) or promote entries at any moment,
//! from any thread — but it must never *invent* data: a `Hit` is always the
//! exact value stored under that key, residency never exceeds the
//! configured cap, and figure output stays byte-identical no matter how
//! much the tier churns underneath.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use serde::Value;
use xtsim::report::Scale;
use xtsim::sweep::{
    obj, run_figure, CacheLookup, DiskCache, JobKey, PreparedKey, SweepConfig,
};

/// Fresh directory per call (cases in one process must not share hot tiers).
fn unique_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "xtsim-tiers-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The one true value for key `i`: any `Hit` serving anything else is a torn
/// or mismatched read. Padded so a handful of entries overflows a shard
/// budget and forces LRU eviction mid-run.
fn value_for(i: usize) -> Value {
    obj(vec![
        ("i", (i as i64).into()),
        ("pad", Value::Str(format!("{i:03}").repeat(140))),
    ])
}

fn keys_for(n: usize) -> Vec<PreparedKey> {
    (0..n)
        .map(|i| JobKey::new("tier-prop", None, None, Scale::Quick).with("i", i as i64).prepare())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings of load/store across 4 threads and all shards,
    /// under a cap tight enough that stores continuously evict: every `Hit`
    /// must carry exactly the value stored under its key (never a torn or
    /// foreign one), and residency must stay under the cap throughout.
    #[test]
    fn interleaved_ops_never_serve_torn_or_mismatched_values(
        ops in prop::collection::vec((0usize..24, 0u8..4), 64..200),
        cap_kib in 4u64..32,
    ) {
        let dir = unique_dir("prop");
        let cap = cap_kib * 1024;
        let cache = DiskCache::with_mem_cap(&dir, cap).unwrap();
        let keys = keys_for(24);
        let chunk = ops.len().div_ceil(4);
        std::thread::scope(|s| {
            for ops in ops.chunks(chunk) {
                let cache = &cache;
                let keys = &keys;
                s.spawn(move || {
                    for &(ki, op) in ops {
                        if op == 0 {
                            cache.store(&keys[ki], &value_for(ki)).unwrap();
                        } else {
                            match cache.load(&keys[ki]) {
                                CacheLookup::Hit(v) => assert_eq!(
                                    v,
                                    value_for(ki),
                                    "hit for key {ki} served a torn/foreign value"
                                ),
                                CacheLookup::Miss => {}
                                CacheLookup::KeyMismatch => {
                                    panic!("key mismatch for key {ki} under interleaved ops")
                                }
                            }
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        prop_assert!(
            stats.mem_bytes <= cap,
            "memory residency {} exceeds the {cap}-byte cap", stats.mem_bytes
        );
        prop_assert_eq!(stats.mem_cap_bytes, cap);
        prop_assert_eq!(stats.tmp_files, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Continuous eviction must be invisible in figure bytes: fig02 regenerated
/// through a cache whose hot tier is far too small to hold the sweep (so
/// promotion and eviction churn on every lookup) is byte-identical to an
/// uncached run — cold and warm — and residency stays bounded by the cap.
#[test]
fn eviction_under_load_keeps_figures_byte_identical() {
    let fig02 = || xtsim::figures::figure("fig02").unwrap();
    let (reference, _) = run_figure(fig02().spec(Scale::Quick), &SweepConfig::serial());
    let reference = serde_json::to_string_pretty(&reference).unwrap();

    let dir = unique_dir("evict");
    let cap = 16 * 1024; // 1 KiB per shard: a few entries, constant churn
    let cfg =
        SweepConfig::threads(4).with_cache(DiskCache::with_mem_cap(&dir, cap).unwrap());
    let (cold_fig, cold) = run_figure(fig02().spec(Scale::Quick), &cfg);
    assert_eq!(cold.computed, cold.total);
    assert_eq!(
        serde_json::to_string_pretty(&cold_fig).unwrap(),
        reference,
        "cold cached run diverged from uncached output"
    );
    let stats = DiskCache::new(&dir).unwrap().stats();
    assert!(
        stats.mem_bytes <= cap,
        "memory residency {} exceeds the {cap}-byte cap after the cold run",
        stats.mem_bytes
    );

    let cfg =
        SweepConfig::threads(4).with_cache(DiskCache::with_mem_cap(&dir, cap).unwrap());
    let (warm_fig, warm) = run_figure(fig02().spec(Scale::Quick), &cfg);
    assert_eq!(warm.computed, 0, "warm run recomputed jobs");
    assert_eq!(
        serde_json::to_string_pretty(&warm_fig).unwrap(),
        reference,
        "eviction-churned warm run diverged from uncached output"
    );
    let stats = DiskCache::new(&dir).unwrap().stats();
    assert!(
        stats.mem_bytes <= cap,
        "memory residency {} exceeds the {cap}-byte cap after the warm run",
        stats.mem_bytes
    );
    let _ = std::fs::remove_dir_all(&dir);
}
