//! Engine-level guarantees: parallel execution is byte-identical to serial
//! across the whole quick registry, and the disk cache answers reruns without
//! recomputation (until the engine version moves).

use xtsim::ablations::all_ablations;
use xtsim::figures::all_figures;
use xtsim::report::Scale;
use xtsim::sweep::{run_figure, DiskCache, SweepConfig};

fn tmp_cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xtsim-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tentpole acceptance gate: every figure and ablation, rebuilt at quick
/// scale, serializes to the exact same JSON whether its jobs ran on one
/// thread or eight. Worker scheduling must never leak into output.
#[test]
fn parallel_output_is_byte_identical_to_serial() {
    for fig in all_figures().into_iter().chain(all_ablations()) {
        let serial = run_figure(fig.spec(Scale::Quick), &SweepConfig::serial()).0;
        let parallel = run_figure(fig.spec(Scale::Quick), &SweepConfig::threads(8)).0;
        assert_eq!(
            serde_json::to_string_pretty(&serial).unwrap(),
            serde_json::to_string_pretty(&parallel).unwrap(),
            "{}: parallel output diverged from serial",
            fig.id
        );
    }
}

/// Second run over a warm cache computes nothing and reproduces the figure
/// byte-for-byte; fig03 then reuses fig02's netbench runs outright.
#[test]
fn warm_cache_skips_recomputation() {
    let dir = tmp_cache_dir("warm");
    let fig02 = || xtsim::figures::figure("fig02").unwrap();

    let cfg = SweepConfig::threads(4).with_cache(DiskCache::new(&dir).unwrap());
    let (cold_fig, cold) = run_figure(fig02().spec(Scale::Quick), &cfg);
    assert_eq!(cold.cached, 0);
    assert_eq!(cold.computed, cold.total);
    assert!(cold.total > 0);

    let cfg = SweepConfig::threads(4).with_cache(DiskCache::new(&dir).unwrap());
    let (warm_fig, warm) = run_figure(fig02().spec(Scale::Quick), &cfg);
    assert_eq!(warm.computed, 0, "warm run recomputed jobs");
    assert_eq!(warm.cached, cold.total);
    assert_eq!(
        serde_json::to_string_pretty(&cold_fig).unwrap(),
        serde_json::to_string_pretty(&warm_fig).unwrap(),
        "cached rerun changed the figure"
    );

    // fig03 extracts bandwidth from the same netbench runs fig02 cached.
    let cfg = SweepConfig::serial().with_cache(DiskCache::new(&dir).unwrap());
    let (_, shared) = run_figure(xtsim::figures::figure("fig03").unwrap().spec(Scale::Quick), &cfg);
    assert_eq!(shared.computed, 0, "fig03 should ride fig02's cache entries");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Bumping the engine version changes every digest, so stale entries miss.
#[test]
fn engine_version_bump_invalidates_cache() {
    let dir = tmp_cache_dir("version");
    let fig05 = || xtsim::figures::figure("fig05").unwrap();

    let cfg = SweepConfig::serial().with_cache(DiskCache::new(&dir).unwrap());
    let (_, cold) = run_figure(fig05().spec(Scale::Quick), &cfg);
    assert_eq!(cold.computed, cold.total);

    // Same engine version: full hit.
    let cfg = SweepConfig::serial().with_cache(DiskCache::new(&dir).unwrap());
    let (_, warm) = run_figure(fig05().spec(Scale::Quick), &cfg);
    assert_eq!(warm.computed, 0);

    // Simulate an engine-semantics change by bumping the version on every
    // job key: nothing may hit.
    let mut spec = fig05().spec(Scale::Quick);
    for job in &mut spec.jobs {
        job.key.engine_version += 1;
    }
    let cfg = SweepConfig::serial().with_cache(DiskCache::new(&dir).unwrap());
    let (_, bumped) = run_figure(spec, &cfg);
    assert_eq!(bumped.cached, 0, "stale engine version hit the cache");
    assert_eq!(bumped.computed, bumped.total);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt cache entries are treated as misses, not errors. The memory
/// tier is disabled throughout: this test is about the *disk* tier's
/// handling of on-disk damage (with the hot tier on, verified in-memory
/// copies would legitimately keep serving — covered elsewhere).
#[test]
fn corrupt_cache_entries_are_recomputed() {
    let dir = tmp_cache_dir("corrupt");
    let fig05 = || xtsim::figures::figure("fig05").unwrap();
    let cfg = SweepConfig::serial().with_cache(DiskCache::with_mem_cap(&dir, 0).unwrap());
    let (_, cold) = run_figure(fig05().spec(Scale::Quick), &cfg);
    assert_eq!(cold.computed, cold.total);

    // Entries live in two-hex-prefix subdirectories; clobber every file in
    // the tree.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            for sub in std::fs::read_dir(&path).unwrap() {
                std::fs::write(sub.unwrap().path(), "{ not json").unwrap();
            }
        } else {
            std::fs::write(path, "{ not json").unwrap();
        }
    }
    let cfg = SweepConfig::serial().with_cache(DiskCache::with_mem_cap(&dir, 0).unwrap());
    let (fig, stats) = run_figure(fig05().spec(Scale::Quick), &cfg);
    assert_eq!(stats.computed, stats.total, "corrupt entries must miss");
    assert!(!fig.series.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}
