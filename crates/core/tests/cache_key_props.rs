//! Property tests for the sweep-cache key: distinct inputs must get distinct
//! digests, and equal content must digest identically no matter how the key
//! was assembled — including across process restarts (no randomized hasher
//! state anywhere).

use proptest::prelude::*;
use xtsim::report::Scale;
use xtsim::sweep::JobKey;
use xtsim_machine::{presets, ExecMode, MachineSpec};

fn tweaked(clock_ghz: f64, cores: u32, eager_kib: u64) -> MachineSpec {
    let mut m = presets::xt4();
    m.processor.clock_ghz = clock_ghz;
    m.processor.cores_per_socket = cores;
    m.nic.eager_threshold_bytes = eager_kib << 10;
    m
}

proptest! {
    #[test]
    fn distinct_machine_content_gives_distinct_digests(
        clock in 1.0f64..3.0,
        delta in 0.001f64..1.0,
        cores in 1u32..8,
        eager in 1u64..512,
    ) {
        let a = tweaked(clock, cores, eager);
        let clock_changed = tweaked(clock + delta, cores, eager);
        let cores_changed = tweaked(clock, cores + 1, eager);
        let eager_changed = tweaked(clock, cores, eager + 1);
        let key = |m: &MachineSpec| {
            JobKey::new("probe", Some(m), Some(ExecMode::VN), Scale::Quick).with("p", 1).digest()
        };
        prop_assert_ne!(key(&a), key(&clock_changed));
        prop_assert_ne!(key(&a), key(&cores_changed));
        prop_assert_ne!(key(&a), key(&eager_changed));
        // Content-equal specs digest identically regardless of provenance.
        prop_assert_eq!(key(&a), key(&tweaked(clock, cores, eager)));
    }

    #[test]
    fn mode_scale_and_kind_separate_digests(
        clock in 1.0f64..3.0,
        cores in 1u32..8,
        eager in 1u64..512,
    ) {
        let m = tweaked(clock, cores, eager);
        let base = JobKey::new("probe", Some(&m), Some(ExecMode::SN), Scale::Quick).digest();
        prop_assert_ne!(
            base.clone(),
            JobKey::new("probe", Some(&m), Some(ExecMode::VN), Scale::Quick).digest()
        );
        prop_assert_ne!(
            base.clone(),
            JobKey::new("probe", Some(&m), Some(ExecMode::SN), Scale::Full).digest()
        );
        prop_assert_ne!(
            base,
            JobKey::new("probe2", Some(&m), Some(ExecMode::SN), Scale::Quick).digest()
        );
    }

    #[test]
    fn param_insertion_order_is_irrelevant(
        a in 0i64..1000,
        b in 0.0f64..100.0,
        sockets in 1usize..4096,
    ) {
        let m = presets::xt3_dual();
        let fwd = JobKey::new("probe", Some(&m), Some(ExecMode::VN), Scale::Full)
            .with("alpha", a)
            .with("beta", b)
            .with("sockets", sockets)
            .digest();
        let rev = JobKey::new("probe", Some(&m), Some(ExecMode::VN), Scale::Full)
            .with("sockets", sockets)
            .with("beta", b)
            .with("alpha", a)
            .digest();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn param_values_separate_digests(a in 0i64..1000, b in 1i64..1000) {
        let key = |v: i64| JobKey::new("probe", None, None, Scale::Quick).with("x", v).digest();
        prop_assert_ne!(key(a), key(a + b));
    }
}

/// Pinned digest of a fixed key. If this test fails, the canonical encoding
/// (or the FNV constants) changed between builds — which silently invalidates
/// every existing cache. Change it only alongside an ENGINE_VERSION bump.
#[test]
fn digest_is_stable_across_processes() {
    let plain = JobKey::new("stable-probe", None, None, Scale::Quick).with("x", 1);
    assert_eq!(plain.digest(), "323af55f15d55169cf62db0a799872ba");
    let with_machine =
        JobKey::new("stable-probe", Some(&presets::xt4()), Some(ExecMode::VN), Scale::Full)
            .with("bytes", 1u64 << 20)
            .with("ratio", 0.5);
    assert_eq!(with_machine.digest(), "32d4125c51388a9a9602523e096d4b75");
}
