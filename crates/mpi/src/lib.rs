#![forbid(unsafe_code)]
//! # xtsim-mpi — simulated MPI over the discrete-event platform
//!
//! Each MPI rank is an async task on the [`xtsim_des`] executor; sends and
//! receives resolve against the wire model of [`xtsim_net`]. Point-to-point
//! matching follows MPI semantics (source/tag with wildcards, arrival
//! order), the eager/rendezvous protocol switch follows the NIC's
//! threshold, and collectives are the real production algorithms (binomial
//! trees, recursive doubling, ring, pairwise exchange) — or, for very large
//! jobs, an analytic gate model that preserves data semantics.
//!
//! Entry point: [`simulate`] runs an SPMD closure on every rank:
//!
//! ```
//! use xtsim_mpi::{simulate, WorldConfig, ReduceOp};
//! use xtsim_net::PlatformConfig;
//! use xtsim_machine::{presets, ExecMode};
//!
//! let mut spec = presets::xt4();
//! spec.torus_dims = [2, 2, 1];
//! let cfg = WorldConfig::new(PlatformConfig::new(spec, ExecMode::SN, 4));
//! simulate(0, cfg, |mpi| async move {
//!     let sum = mpi.comm().allreduce(vec![1.0], ReduceOp::Sum).await;
//!     assert_eq!(sum, vec![4.0]);
//! });
//! ```

#![warn(missing_docs)]

mod comm;
mod gate;
mod message;
mod profile;
pub mod sharded;
mod world;

pub use comm::Comm;
pub use sharded::{simulate_sharded, ShardedConfig, ShardedMpi, ShardedOutcome};
pub use message::{Message, ReduceOp};
pub use profile::{JobProfile, RankProfile};
pub use world::{
    simulate, simulate_profiled, CollectiveMode, Mpi, SimOutcome, Tag, World, WorldConfig,
};
