//! Per-rank time accounting — a simulated `mpiP`/CrayPat.
//!
//! The paper's application analyses attribute phase costs to specific MPI
//! operations ("70% of the difference in the physics ... is due to the
//! difference in time required in the MPI_Alltoallv calls", §6.1). The
//! profiler records, per rank, time spent computing, blocked in
//! point-to-point calls, and blocked in collectives, so the proxies can
//! report the same breakdowns.
//!
//! Categories are exclusive: point-to-point traffic issued *inside* a
//! collective algorithm accrues to the collective, not to p2p.

use serde::impl_serde_struct;

/// Accumulated per-rank activity.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RankProfile {
    /// Simulated seconds inside `compute` packets.
    pub compute_secs: f64,
    /// Simulated seconds blocked in point-to-point operations (send/recv/
    /// sendrecv issued directly by the application).
    pub p2p_secs: f64,
    /// Simulated seconds blocked in collective operations.
    pub collective_secs: f64,
    /// Messages sent by this rank (application-level p2p only).
    pub messages_sent: u64,
    /// Payload bytes sent (application-level p2p only).
    pub bytes_sent: u64,
    /// Collective operations entered.
    pub collectives: u64,
}

impl RankProfile {
    /// Total accounted time.
    pub fn total_secs(&self) -> f64 {
        self.compute_secs + self.p2p_secs + self.collective_secs
    }

    /// Fraction of accounted time spent in MPI (p2p + collectives).
    pub fn mpi_fraction(&self) -> f64 {
        let t = self.total_secs();
        if t <= 0.0 {
            0.0
        } else {
            (self.p2p_secs + self.collective_secs) / t
        }
    }

    /// Merge another rank's profile (for job-level aggregates).
    pub fn merge(&mut self, other: &RankProfile) {
        self.compute_secs += other.compute_secs;
        self.p2p_secs += other.p2p_secs;
        self.collective_secs += other.collective_secs;
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.collectives += other.collectives;
    }
}

/// Job-level profile summary.
#[derive(Debug, Default, Clone, Copy)]
pub struct JobProfile {
    /// Sum over ranks.
    pub total: RankProfile,
    /// The rank with the largest MPI fraction (the victim of imbalance).
    pub max_mpi_fraction: f64,
}

impl JobProfile {
    /// Build from per-rank profiles.
    pub fn from_ranks(ranks: &[RankProfile]) -> JobProfile {
        let mut total = RankProfile::default();
        let mut max_mpi = 0.0f64;
        for r in ranks {
            total.merge(r);
            max_mpi = max_mpi.max(r.mpi_fraction());
        }
        JobProfile {
            total,
            max_mpi_fraction: max_mpi,
        }
    }
}

impl_serde_struct!(RankProfile { compute_secs, p2p_secs, collective_secs, messages_sent, bytes_sent, collectives });
impl_serde_struct!(JobProfile { total, max_mpi_fraction });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = RankProfile {
            compute_secs: 1.0,
            p2p_secs: 2.0,
            collective_secs: 3.0,
            messages_sent: 4,
            bytes_sent: 5,
            collectives: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.compute_secs, 2.0);
        assert_eq!(a.messages_sent, 8);
        assert_eq!(a.total_secs(), 12.0);
    }

    #[test]
    fn mpi_fraction_bounds() {
        let r = RankProfile {
            compute_secs: 3.0,
            p2p_secs: 1.0,
            collective_secs: 0.0,
            ..Default::default()
        };
        assert!((r.mpi_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(RankProfile::default().mpi_fraction(), 0.0);
    }
}
