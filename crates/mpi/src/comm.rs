//! Communicators and collective operations.
//!
//! Collectives are implemented as the real message-passing algorithms used
//! by production MPI libraries (binomial trees, recursive doubling with
//! non-power-of-two folding, ring allgather, pairwise-exchange alltoall,
//! dissemination barrier), executing over the simulated wire. On very large
//! jobs the world can run collectives in *modeled* mode instead (see
//! [`crate::gate`]), which preserves data semantics at `O(p)` cost.
//!
//! All ranks of a communicator must call collectives in the same order
//! (standard SPMD contract); tags are namespaced by communicator id and a
//! per-communicator sequence number so concurrent collectives on different
//! communicators cannot interfere.

use std::cell::Cell;
use std::rc::Rc;

use xtsim_des::join_all;
use xtsim_des::trace::{self, SpanCategory};

use crate::gate::{modeled_time, CollShape, Contribution, Gate, GateOutput};
use crate::message::{Message, ReduceOp};
use xtsim_des::SimTime;
use crate::world::{Mpi, Tag, WorldInner};
use xtsim_net::Rank;

/// Above this size, a communicator on a modeled-collectives world uses
/// gates; smaller communicators always run the real algorithms (they are
/// cheap and more accurate).
const MODELED_MIN_SIZE: usize = 64;

enum Members {
    /// Identity mapping over `0..n` (the world communicator).
    Range(usize),
    /// Explicit world-rank list; position = communicator rank.
    Explicit(Rc<[Rank]>),
}

impl Members {
    fn len(&self) -> usize {
        match self {
            Members::Range(n) => *n,
            Members::Explicit(v) => v.len(),
        }
    }
    fn world_rank(&self, idx: usize) -> Rank {
        match self {
            Members::Range(_) => idx,
            Members::Explicit(v) => v[idx],
        }
    }
}

/// A communicator: an ordered group of ranks with collective operations.
///
/// Each simulated process holds its own `Comm` value (its `my_index`
/// differs); the per-rank collective sequence counter is shared between
/// clones of the same value so `isend`-style clones stay coherent.
pub struct Comm {
    world: Rc<WorldInner>,
    members: Rc<Members>,
    my_index: usize,
    comm_id: u64,
    seq: Rc<Cell<u64>>,
}

impl Clone for Comm {
    fn clone(&self) -> Self {
        Comm {
            world: Rc::clone(&self.world),
            members: Rc::clone(&self.members),
            my_index: self.my_index,
            comm_id: self.comm_id,
            seq: Rc::clone(&self.seq),
        }
    }
}

impl Comm {
    pub(crate) fn world(world: Rc<WorldInner>, rank: Rank) -> Comm {
        let n = world.platform.ranks();
        Comm {
            world,
            members: Rc::new(Members::Range(n)),
            my_index: rank,
            comm_id: 0,
            seq: Rc::new(Cell::new(0)),
        }
    }

    /// This process's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank of communicator rank `idx`.
    pub fn world_rank(&self, idx: usize) -> Rank {
        self.members.world_rank(idx)
    }

    /// Derive a sub-communicator from an explicit, ordered world-rank list.
    ///
    /// Must be called collectively (same list, same program point) by every
    /// member of *this* communicator; ranks not in the list get `None`.
    /// This is the moral equivalent of `MPI_Comm_create`.
    pub fn sub(&self, world_ranks: &[Rank]) -> Option<Comm> {
        let seq = self.bump_seq();
        // Deterministic child id every member computes identically.
        let mut id = self
            .comm_id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seq)
            .wrapping_add(0xABCD_EF01);
        for &r in world_ranks {
            id = id.wrapping_mul(31).wrapping_add(r as u64 + 1);
        }
        let me = self.members.world_rank(self.my_index);
        let my_index = world_ranks.iter().position(|&r| r == me)?;
        Some(Comm {
            world: Rc::clone(&self.world),
            members: Rc::new(Members::Explicit(Rc::from(world_ranks))),
            my_index,
            comm_id: id,
            seq: Rc::new(Cell::new(0)),
        })
    }

    fn mpi(&self) -> Mpi {
        // Reconstruct a p2p context for this process.
        crate::world::World {
            inner: Rc::clone(&self.world),
        }
        .mpi(self.members.world_rank(self.my_index))
    }

    fn bump_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    fn tag(&self, seq: u64, step: u64) -> Tag {
        (1 << 63) | ((self.comm_id & 0x3F_FFFF) << 40) | ((seq & 0xFF_FFFF) << 16) | (step & 0xFFFF)
    }

    fn use_modeled(&self) -> bool {
        self.world.modeled_collectives && self.size() >= MODELED_MIN_SIZE
    }

    /// RAII collective timer: brackets a collective call for the profiler
    /// (p2p issued inside is charged to the collective, not to p2p) and for
    /// the typed trace stream (one [`SpanCategory::Collective`] span per
    /// call, named after the operation).
    fn coll_timer(&self, name: &'static str) -> CollTimer {
        let rank = self.members.world_rank(self.my_index);
        self.world.coll_depth.borrow_mut()[rank] += 1;
        CollTimer {
            world: Rc::clone(&self.world),
            rank,
            name,
            size: self.size(),
            t0: self.world.platform.handle().now(),
        }
    }

    async fn gate(&self, seq: u64, contribution: Contribution, shape: CollShape) -> GateOutput {
        let key = (self.comm_id, seq);
        let gate = {
            let mut gates = self.world.gates.borrow_mut();
            Rc::clone(
                gates
                    .entry(key)
                    .or_insert_with(|| Rc::new(Gate::new(self.size()))),
            )
        };
        let dur = modeled_time(&self.world.platform, self.size(), shape);
        let out = gate
            .arrive(self.world.platform.handle(), contribution, dur)
            .await;
        self.world.gates.borrow_mut().remove(&key);
        out
    }

    /// Dissemination barrier.
    pub async fn barrier(&self) {
        let _prof = self.coll_timer("barrier");
        let seq = self.bump_seq();
        let p = self.size();
        if p <= 1 {
            return;
        }
        if self.use_modeled() {
            self.gate(seq, Contribution::None, CollShape::Barrier).await;
            return;
        }
        let mpi = self.mpi();
        let me = self.my_index;
        let mut k = 0u64;
        let mut dist = 1usize;
        while dist < p {
            let dst = self.world_rank((me + dist) % p);
            let src = self.world_rank((me + p - dist) % p);
            let send = mpi.isend(dst, self.tag(seq, k), Message::empty());
            mpi.recv(Some(src), Some(self.tag(seq, k))).await;
            send.await;
            dist <<= 1;
            k += 1;
        }
    }

    /// Binomial-tree broadcast from communicator rank `root`. Every rank
    /// returns the broadcast message.
    pub async fn bcast(&self, root: usize, msg: Option<Message>) -> Message {
        let _prof = self.coll_timer("bcast");
        let seq = self.bump_seq();
        let p = self.size();
        if self.my_index == root {
            debug_assert!(msg.is_some(), "root must supply the payload");
        }
        if p <= 1 {
            return msg.expect("single-rank bcast needs the payload");
        }
        if self.use_modeled() {
            let bytes = msg.as_ref().map(|m| m.bytes).unwrap_or(0);
            let out = self
                .gate(
                    seq,
                    Contribution::Bcast(msg),
                    CollShape::Bcast { bytes },
                )
                .await;
            match out {
                GateOutput::Bcast(m) => return m,
                _ => unreachable!("bcast gate returns bcast"),
            }
        }
        let mpi = self.mpi();
        let vr = (self.my_index + p - root) % p;
        let mut data = msg;
        // Receive from parent (lowest set bit side).
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let src_vr = vr - mask;
                let src = self.world_rank((src_vr + root) % p);
                let (_, _, m) = mpi.recv(Some(src), Some(self.tag(seq, 0))).await;
                data = Some(m);
                break;
            }
            mask <<= 1;
        }
        // Forward to children.
        mask >>= 1;
        let payload = data.expect("received or root");
        let mut sends = Vec::new();
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let dst = self.world_rank((vr + mask + root) % p);
                sends.push(mpi.isend(dst, self.tag(seq, 0), payload.clone()));
            }
            mask >>= 1;
        }
        join_all(sends).await;
        payload
    }

    /// Binomial-tree reduction to communicator rank `root`. The root gets
    /// `Some(result)`; everyone else `None`.
    pub async fn reduce(&self, root: usize, data: Vec<f64>, op: ReduceOp) -> Option<Vec<f64>> {
        let _prof = self.coll_timer("reduce");
        let seq = self.bump_seq();
        let p = self.size();
        if p <= 1 {
            return Some(data);
        }
        if self.use_modeled() {
            let bytes = (data.len() * 8) as u64;
            let out = self
                .gate(
                    seq,
                    Contribution::Reduce(data, op),
                    CollShape::Reduce { bytes },
                )
                .await;
            return match out {
                GateOutput::Reduced(v) if self.my_index == root => Some(v),
                GateOutput::Reduced(_) => None,
                _ => unreachable!("reduce gate returns reduction"),
            };
        }
        let mpi = self.mpi();
        let vr = (self.my_index + p - root) % p;
        let mut acc = data;
        let mut mask = 1usize;
        while mask < p {
            if vr & mask == 0 {
                let peer_vr = vr | mask;
                if peer_vr < p {
                    let peer = self.world_rank((peer_vr + root) % p);
                    let (_, _, m) = mpi.recv(Some(peer), Some(self.tag(seq, 0))).await;
                    op.fold(&mut acc, m.values());
                }
            } else {
                let peer_vr = vr & !mask;
                let peer = self.world_rank((peer_vr + root) % p);
                mpi.send(peer, self.tag(seq, 0), Message::from_values(acc))
                    .await;
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Recursive-doubling allreduce (MPICH algorithm, with pre/post folding
    /// for non-power-of-two sizes). Every rank returns the combined vector.
    pub async fn allreduce(&self, data: Vec<f64>, op: ReduceOp) -> Vec<f64> {
        let _prof = self.coll_timer("allreduce");
        let seq = self.bump_seq();
        let p = self.size();
        if p <= 1 {
            return data;
        }
        if self.use_modeled() {
            let bytes = (data.len() * 8) as u64;
            let out = self
                .gate(
                    seq,
                    Contribution::Reduce(data, op),
                    CollShape::Allreduce { bytes },
                )
                .await;
            return match out {
                GateOutput::Reduced(v) => v,
                _ => unreachable!("allreduce gate returns reduction"),
            };
        }
        let mpi = self.mpi();
        let me = self.my_index;
        let pof2 = p.next_power_of_two() >> if p.is_power_of_two() { 0 } else { 1 };
        let rem = p - pof2;
        let mut acc = data;
        // Fold phase: the first 2*rem ranks pair up so pof2 ranks remain.
        let newrank: isize = if me < 2 * rem {
            if me.is_multiple_of(2) {
                let dst = self.world_rank(me + 1);
                mpi.send(dst, self.tag(seq, 1), Message::from_values(acc.clone()))
                    .await;
                -1
            } else {
                let src = self.world_rank(me - 1);
                let (_, _, m) = mpi.recv(Some(src), Some(self.tag(seq, 1))).await;
                op.fold(&mut acc, m.values());
                (me / 2) as isize
            }
        } else {
            (me - rem) as isize
        };
        // Recursive doubling among the pof2 survivors.
        if newrank >= 0 {
            let newrank = newrank as usize;
            let mut mask = 1usize;
            let mut step = 2u64;
            while mask < pof2 {
                let peer_new = newrank ^ mask;
                let peer = if peer_new < rem {
                    peer_new * 2 + 1
                } else {
                    peer_new + rem
                };
                let peer = self.world_rank(peer);
                let send = mpi.isend(peer, self.tag(seq, step), Message::from_values(acc.clone()));
                let (_, _, m) = mpi.recv(Some(peer), Some(self.tag(seq, step))).await;
                send.await;
                op.fold(&mut acc, m.values());
                mask <<= 1;
                step += 1;
            }
        }
        // Unfold: survivors return results to the folded ranks.
        if me < 2 * rem {
            if me.is_multiple_of(2) {
                let src = self.world_rank(me + 1);
                let (_, _, m) = mpi.recv(Some(src), Some(self.tag(seq, 99))).await;
                acc = m.values().to_vec();
            } else {
                let dst = self.world_rank(me - 1);
                mpi.send(dst, self.tag(seq, 99), Message::from_values(acc.clone()))
                    .await;
            }
        }
        acc
    }

    /// Ring allgather: returns every rank's block, in communicator-rank order.
    pub async fn allgather(&self, msg: Message) -> Vec<Message> {
        let _prof = self.coll_timer("allgather");
        let seq = self.bump_seq();
        let p = self.size();
        if p <= 1 {
            return vec![msg];
        }
        if self.use_modeled() {
            let bytes = msg.bytes;
            let out = self
                .gate(
                    seq,
                    Contribution::Gather(self.my_index, msg),
                    CollShape::Allgather { bytes_per: bytes },
                )
                .await;
            return match out {
                GateOutput::Gathered(v) => v,
                _ => unreachable!("allgather gate returns blocks"),
            };
        }
        let mpi = self.mpi();
        let me = self.my_index;
        let right = self.world_rank((me + 1) % p);
        let left = self.world_rank((me + p - 1) % p);
        let mut blocks: Vec<Option<Message>> = vec![None; p];
        blocks[me] = Some(msg.clone());
        let mut cur = msg;
        for step in 0..p - 1 {
            let send = mpi.isend(right, self.tag(seq, step as u64), cur);
            let (_, _, m) = mpi.recv(Some(left), Some(self.tag(seq, step as u64))).await;
            send.await;
            let owner = (me + p - 1 - step) % p;
            blocks[owner] = Some(m.clone());
            cur = m;
        }
        blocks
            .into_iter()
            .map(|b| b.expect("ring visited every block"))
            .collect()
    }

    /// Pairwise-exchange alltoall: `msgs[i]` goes to communicator rank `i`;
    /// returns the messages received, indexed by source rank.
    ///
    /// In modeled mode this is size-only: returned messages carry sizes (the
    /// per-pair size is taken from `msgs[0]`) but no payload data.
    pub async fn alltoall(&self, msgs: Vec<Message>) -> Vec<Message> {
        let _prof = self.coll_timer("alltoall");
        let p = self.size();
        assert_eq!(msgs.len(), p, "alltoall needs one message per rank");
        let seq = self.bump_seq();
        if p == 1 {
            return msgs;
        }
        if self.use_modeled() {
            let bytes_per = msgs[0].bytes;
            self.gate(
                seq,
                Contribution::None,
                CollShape::Alltoall { bytes_per },
            )
            .await;
            return (0..p).map(|_| Message::of_bytes(bytes_per)).collect();
        }
        let mpi = self.mpi();
        let me = self.my_index;
        let mut result: Vec<Option<Message>> = vec![None; p];
        let mut msgs: Vec<Option<Message>> = msgs.into_iter().map(Some).collect();
        result[me] = msgs[me].take();
        for step in 1..p {
            let dst_idx = (me + step) % p;
            let src_idx = (me + p - step) % p;
            let dst = self.world_rank(dst_idx);
            let src = self.world_rank(src_idx);
            let payload = msgs[dst_idx].take().expect("each block sent once");
            let send = mpi.isend(dst, self.tag(seq, step as u64), payload);
            let (_, _, m) = mpi.recv(Some(src), Some(self.tag(seq, step as u64))).await;
            send.await;
            result[src_idx] = Some(m);
        }
        result
            .into_iter()
            .map(|b| b.expect("pairwise exchange visited every rank"))
            .collect()
    }

    /// Vector alltoall by sizes only (performance path — the workhorse of
    /// the CAM remap and load-balancing phases). `send_bytes[i]` is the
    /// payload size for communicator rank `i`; zero entries send nothing.
    pub async fn alltoallv_bytes(&self, send_bytes: &[u64]) {
        let _prof = self.coll_timer("alltoallv");
        let p = self.size();
        assert_eq!(send_bytes.len(), p, "alltoallv needs one size per rank");
        let seq = self.bump_seq();
        if p == 1 {
            return;
        }
        if self.use_modeled() {
            let total: u64 = send_bytes.iter().sum::<u64>() * p as u64;
            self.gate(
                seq,
                Contribution::None,
                CollShape::Alltoallv { total_bytes: total },
            )
            .await;
            return;
        }
        let mpi = self.mpi();
        let me = self.my_index;
        for step in 1..p {
            let dst_idx = (me + step) % p;
            let src_idx = (me + p - step) % p;
            let dst = self.world_rank(dst_idx);
            let src = self.world_rank(src_idx);
            let send = mpi.isend(
                dst,
                self.tag(seq, step as u64),
                Message::of_bytes(send_bytes[dst_idx]),
            );
            mpi.recv(Some(src), Some(self.tag(seq, step as u64))).await;
            send.await;
        }
    }

    /// Linear gather to `root`: root receives every rank's block in
    /// communicator-rank order; non-roots get `None`.
    pub async fn gather(&self, root: usize, msg: Message) -> Option<Vec<Message>> {
        let _prof = self.coll_timer("gather");
        let seq = self.bump_seq();
        let p = self.size();
        let mpi = self.mpi();
        if self.my_index == root {
            let mut blocks: Vec<Option<Message>> = vec![None; p];
            blocks[root] = Some(msg);
            for _ in 0..p - 1 {
                let (src, _, m) = mpi.recv(None, Some(self.tag(seq, 0))).await;
                let idx = (0..p)
                    .position(|i| self.world_rank(i) == src)
                    .expect("sender is a member");
                blocks[idx] = Some(m);
            }
            Some(blocks.into_iter().map(|b| b.expect("all sent")).collect())
        } else {
            mpi.send(self.world_rank(root), self.tag(seq, 0), msg).await;
            None
        }
    }

    /// Linear scatter from `root`: root supplies one message per rank.
    pub async fn scatter(&self, root: usize, msgs: Option<Vec<Message>>) -> Message {
        let _prof = self.coll_timer("scatter");
        let seq = self.bump_seq();
        let p = self.size();
        let mpi = self.mpi();
        if self.my_index == root {
            let msgs = msgs.expect("root must supply messages");
            assert_eq!(msgs.len(), p);
            let mut mine = None;
            let mut sends = Vec::new();
            for (i, m) in msgs.into_iter().enumerate() {
                if i == root {
                    mine = Some(m);
                } else {
                    sends.push(mpi.isend(self.world_rank(i), self.tag(seq, 0), m));
                }
            }
            join_all(sends).await;
            mine.expect("root keeps its block")
        } else {
            let (_, _, m) = mpi
                .recv(Some(self.world_rank(root)), Some(self.tag(seq, 0)))
                .await;
            m
        }
    }
}

/// RAII guard created by [`Comm::coll_timer`].
struct CollTimer {
    world: Rc<WorldInner>,
    rank: Rank,
    name: &'static str,
    size: usize,
    t0: SimTime,
}

impl Drop for CollTimer {
    fn drop(&mut self) {
        self.world.coll_depth.borrow_mut()[self.rank] -= 1;
        let now = self.world.platform.handle().now();
        let dt = (now - self.t0).as_secs_f64();
        let mut p = self.world.profiles.borrow_mut();
        p[self.rank].collective_secs += dt;
        p[self.rank].collectives += 1;
        drop(p);
        if trace::capture_active() {
            trace::span(
                SpanCategory::Collective,
                self.name,
                Some(self.rank as u32),
                Some(self.world.platform.node_of(self.rank) as u32),
                self.t0,
                now,
                vec![("comm_size", self.size as f64)],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{simulate, CollectiveMode, WorldConfig};
    use std::cell::RefCell;
    use xtsim_machine::{presets, ExecMode};
    use xtsim_net::{ContentionModel, PlatformConfig};

    fn cfg(ranks: usize, mode: CollectiveMode) -> WorldConfig {
        let mut spec = presets::xt4();
        spec.torus_dims = [4, 4, 4];
        let mut p = PlatformConfig::new(spec, ExecMode::SN, ranks);
        p.contention = ContentionModel::Fluid;
        let mut w = WorldConfig::new(p);
        w.collectives = mode;
        w
    }

    #[test]
    fn barrier_releases_no_one_early() {
        for p in [2usize, 3, 5, 8] {
            simulate(0, cfg(p, CollectiveMode::Algorithmic), move |mpi| async move {
                // Rank r arrives at t = r us; nobody may leave before the
                // last arrival.
                let r = mpi.rank() as u64;
                mpi.sleep(xtsim_des::SimDuration::from_us(r)).await;
                mpi.comm().barrier().await;
                assert!(
                    mpi.now().as_secs_f64() >= (p as f64 - 1.0) * 1e-6,
                    "p={p} rank {r} left at {}",
                    mpi.now()
                );
            });
        }
    }

    #[test]
    fn bcast_delivers_root_payload_to_all() {
        for p in 1..=9usize {
            for root in [0, p - 1, p / 2] {
                simulate(0, cfg(p, CollectiveMode::Algorithmic), move |mpi| async move {
                    let payload = if mpi.comm().rank() == root {
                        Some(Message::from_values(vec![3.25, -1.0, root as f64]))
                    } else {
                        None
                    };
                    let got = mpi.comm().bcast(root, payload).await;
                    assert_eq!(got.values(), &[3.25, -1.0, root as f64]);
                });
            }
        }
    }

    #[test]
    fn reduce_matches_sequential() {
        for p in 1..=9usize {
            simulate(0, cfg(p, CollectiveMode::Algorithmic), move |mpi| async move {
                let r = mpi.comm().rank() as f64;
                let data = vec![r + 1.0, r * r];
                let out = mpi.comm().reduce(0, data, ReduceOp::Sum).await;
                if mpi.comm().rank() == 0 {
                    let n = p as f64;
                    let expect0 = n * (n + 1.0) / 2.0;
                    let expect1 = (0..p).map(|i| (i * i) as f64).sum::<f64>();
                    let out = out.expect("root gets result");
                    assert!((out[0] - expect0).abs() < 1e-9, "p={p}");
                    assert!((out[1] - expect1).abs() < 1e-9, "p={p}");
                } else {
                    assert!(out.is_none());
                }
            });
        }
    }

    #[test]
    fn allreduce_matches_sequential_all_sizes() {
        // Exercises the non-power-of-two fold/unfold path thoroughly.
        for p in 1..=12usize {
            for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
                simulate(0, cfg(p, CollectiveMode::Algorithmic), move |mpi| async move {
                    let r = mpi.comm().rank() as f64;
                    let data = vec![r, -r, r * 0.5 + 1.0];
                    let out = mpi.comm().allreduce(data, op).await;
                    let mut expect = vec![op.identity(); 3];
                    for i in 0..p {
                        let i = i as f64;
                        op.fold(&mut expect, &[i, -i, i * 0.5 + 1.0]);
                    }
                    assert_eq!(out, expect, "p={p} op={op:?}");
                });
            }
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        for p in 1..=7usize {
            simulate(0, cfg(p, CollectiveMode::Algorithmic), move |mpi| async move {
                let r = mpi.comm().rank() as f64;
                let blocks = mpi
                    .comm()
                    .allgather(Message::from_values(vec![r, 10.0 * r]))
                    .await;
                assert_eq!(blocks.len(), p);
                for (i, b) in blocks.iter().enumerate() {
                    assert_eq!(b.values(), &[i as f64, 10.0 * i as f64]);
                }
            });
        }
    }

    #[test]
    fn alltoall_permutes_blocks() {
        for p in 1..=6usize {
            simulate(0, cfg(p, CollectiveMode::Algorithmic), move |mpi| async move {
                let me = mpi.comm().rank();
                let msgs: Vec<Message> = (0..p)
                    .map(|dst| Message::from_values(vec![me as f64, dst as f64]))
                    .collect();
                let got = mpi.comm().alltoall(msgs).await;
                for (src, m) in got.iter().enumerate() {
                    assert_eq!(m.values(), &[src as f64, me as f64], "p={p}");
                }
            });
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        simulate(0, cfg(5, CollectiveMode::Algorithmic), |mpi| async move {
            let me = mpi.comm().rank();
            let gathered = mpi
                .comm()
                .gather(2, Message::from_values(vec![me as f64]))
                .await;
            let to_scatter = gathered.map(|blocks| {
                blocks
                    .into_iter()
                    .map(|b| Message::from_values(vec![b.values()[0] * 2.0]))
                    .collect::<Vec<_>>()
            });
            let back = mpi.comm().scatter(2, to_scatter).await;
            assert_eq!(back.values(), &[2.0 * me as f64]);
        });
    }

    #[test]
    fn sub_communicator_collectives_are_isolated() {
        simulate(0, cfg(6, CollectiveMode::Algorithmic), |mpi| async move {
            let me = mpi.rank();
            let evens: Vec<usize> = vec![0, 2, 4];
            let odds: Vec<usize> = vec![1, 3, 5];
            let mine = if me % 2 == 0 { &evens } else { &odds };
            let comm = mpi.comm().sub(mine).expect("member of own group");
            assert_eq!(comm.size(), 3);
            let sum = comm.allreduce(vec![me as f64], ReduceOp::Sum).await;
            let expect = if me % 2 == 0 { 6.0 } else { 9.0 };
            assert_eq!(sum, vec![expect]);
        });
    }

    #[test]
    fn sub_returns_none_for_non_members() {
        simulate(0, cfg(4, CollectiveMode::Algorithmic), |mpi| async move {
            let group = vec![0usize, 1];
            let sub = mpi.comm().sub(&group);
            assert_eq!(sub.is_some(), mpi.rank() < 2);
            if let Some(c) = sub {
                c.barrier().await;
            }
        });
    }

    #[test]
    fn modeled_collectives_preserve_reduction_data() {
        // Force modeled mode on a tiny job by dropping the size floor via a
        // 64+ rank world? Instead: 64 ranks exactly (MODELED_MIN_SIZE).
        let p = 64;
        simulate(0, cfg(p, CollectiveMode::Modeled), move |mpi| async move {
            let r = mpi.comm().rank() as f64;
            let out = mpi.comm().allreduce(vec![r], ReduceOp::Sum).await;
            assert_eq!(out, vec![(p * (p - 1) / 2) as f64]);
            let payload = if mpi.comm().rank() == 3 {
                Some(Message::from_values(vec![9.0]))
            } else {
                None
            };
            let got = mpi.comm().bcast(3, payload).await;
            assert_eq!(got.values(), &[9.0]);
        });
    }

    #[test]
    fn modeled_and_algorithmic_barrier_agree_roughly() {
        let p = 64;
        let run = |mode| {
            let t = std::rc::Rc::new(RefCell::new(0.0f64));
            let t2 = std::rc::Rc::clone(&t);
            let out = simulate(0, cfg(p, mode), move |mpi| {
                let t = std::rc::Rc::clone(&t2);
                async move {
                    mpi.comm().barrier().await;
                    if mpi.rank() == 0 {
                        *t.borrow_mut() = mpi.now().as_secs_f64();
                    }
                }
            });
            let _ = out;
            let v = *t.borrow();
            v
        };
        let alg = run(CollectiveMode::Algorithmic);
        let modeled = run(CollectiveMode::Modeled);
        assert!(
            modeled / alg > 0.3 && modeled / alg < 3.0,
            "algorithmic {alg} vs modeled {modeled}"
        );
    }

    #[test]
    fn allreduce_scales_with_log_p() {
        // Time for an 8-byte allreduce should grow roughly logarithmically.
        let time_for = |p: usize| {
            let out = simulate(0, cfg(p, CollectiveMode::Algorithmic), move |mpi| async move {
                mpi.comm().allreduce(vec![1.0], ReduceOp::Sum).await;
            });
            out.end_time.as_secs_f64()
        };
        let t4 = time_for(4);
        let t32 = time_for(32);
        // log2(32)/log2(4) = 2.5; allow generous slack but insist sublinear.
        assert!(t32 > t4, "{t4} {t32}");
        assert!(t32 < 8.0 * t4, "t4={t4} t32={t32}");
    }
}
