//! Message payloads.
//!
//! Performance studies mostly care about *sizes*, but the test suite (and
//! the reduction collectives) need real data to verify that the simulated
//! algorithms move and combine values correctly. A [`Message`] therefore
//! carries a wire size plus an optional shared `f64` payload.

use std::rc::Rc;

/// A message: a wire size and an optional numeric payload.
#[derive(Debug, Clone)]
pub struct Message {
    /// Bytes on the wire.
    pub bytes: u64,
    /// Optional payload (shared, cheap to clone).
    pub data: Option<Rc<[f64]>>,
}

impl Message {
    /// Zero-byte control message.
    pub fn empty() -> Message {
        Message {
            bytes: 0,
            data: None,
        }
    }

    /// A message of `bytes` with no payload (performance-only traffic).
    pub fn of_bytes(bytes: u64) -> Message {
        Message { bytes, data: None }
    }

    /// A message carrying `values`; wire size is 8 bytes per element.
    pub fn from_values(values: Vec<f64>) -> Message {
        Message {
            bytes: (values.len() * 8) as u64,
            data: Some(Rc::from(values.into_boxed_slice())),
        }
    }

    /// Borrow the payload; panics if the message carries none.
    pub fn values(&self) -> &[f64] {
        self.data
            .as_deref()
            .expect("message carries no payload data")
    }

    /// Number of f64 elements implied by the wire size.
    pub fn count(&self) -> usize {
        (self.bytes / 8) as usize
    }
}

/// Reduction operator for reduce/allreduce collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise product.
    Prod,
}

impl ReduceOp {
    /// Apply the operator: `acc[i] = op(acc[i], x[i])`.
    pub fn fold(self, acc: &mut [f64], x: &[f64]) {
        assert_eq!(acc.len(), x.len(), "reduction length mismatch");
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(x).for_each(|(a, b)| *a += b),
            ReduceOp::Max => acc.iter_mut().zip(x).for_each(|(a, b)| *a = a.max(*b)),
            ReduceOp::Min => acc.iter_mut().zip(x).for_each(|(a, b)| *a = a.min(*b)),
            ReduceOp::Prod => acc.iter_mut().zip(x).for_each(|(a, b)| *a *= b),
        }
    }

    /// Identity element of the operator.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Prod => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_sets_wire_size() {
        let m = Message::from_values(vec![1.0, 2.0, 3.0]);
        assert_eq!(m.bytes, 24);
        assert_eq!(m.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn reduce_ops_fold() {
        let mut acc = vec![1.0, 5.0];
        ReduceOp::Sum.fold(&mut acc, &[2.0, 2.0]);
        assert_eq!(acc, vec![3.0, 7.0]);
        ReduceOp::Max.fold(&mut acc, &[10.0, 0.0]);
        assert_eq!(acc, vec![10.0, 7.0]);
        ReduceOp::Min.fold(&mut acc, &[1.0, 100.0]);
        assert_eq!(acc, vec![1.0, 7.0]);
        ReduceOp::Prod.fold(&mut acc, &[2.0, 3.0]);
        assert_eq!(acc, vec![2.0, 21.0]);
    }

    #[test]
    fn identities_are_neutral() {
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod] {
            let mut acc = vec![op.identity(); 3];
            let x = [1.5, -2.0, 0.25];
            op.fold(&mut acc, &x);
            assert_eq!(acc, x.to_vec(), "{op:?}");
        }
    }

    #[test]
    #[should_panic(expected = "no payload")]
    fn values_on_empty_panics() {
        Message::of_bytes(16).values();
    }
}
