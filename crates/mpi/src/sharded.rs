//! SPMD MPI worlds over the conservative parallel engine.
//!
//! [`simulate`](crate::simulate) runs every rank inside one serial [`Sim`]
//! world sharing one fluid network — inherently single-threaded.
//! [`simulate_sharded`] instead hosts each rank in the shard that owns its
//! *node*: nodes are partitioned across shards (contiguous slabs by
//! default, any node→shard map for stress testing), messages are priced by
//! the contention-free [`AnalyticNet`], and cross-shard traffic rides the
//! [`xtsim_des::pdes`] barrier-epoch engine with lookahead
//! [`AnalyticNet::lookahead`].
//!
//! ## Partition invariance
//!
//! The contract (checked by `tests/pdes_equivalence.rs`) is that results —
//! rank finish times, collective values, the event log — depend only on
//! `(machine, ranks, seed)`, never on the partition map or thread count:
//!
//! * **P2p**: a message's delivery time is the pure function
//!   [`AnalyticNet::message_time`]; receivers match `(source, tag)` pairs
//!   by *sender sequence number* (MPI non-overtaking), so neither mailbox
//!   arrival order nor same-instant scheduling order can change what a
//!   `recv` returns or when it completes. Node→shard maps keep same-node
//!   ranks together, so every cross-shard message crosses nodes and the
//!   machine's minimum remote latency bounds it.
//! * **Collectives**: a two-level gate. Each shard accumulates its local
//!   arrivals; the last one forwards `(ranks, values, latest arrival)` to
//!   the owner shard (the one hosting rank 0) one lookahead later. When
//!   the owner has every rank it folds the operands **in global rank
//!   order** (so floating-point association never depends on the
//!   partition) and schedules the release at `global_max +`
//!   [`AnalyticNet::collective_time`] — an analytic duration floored at
//!   two lookaheads, which is exactly what makes both hops legal sends.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::future::Future;
use std::rc::Rc;
use std::task::{Poll, Waker};

use xtsim_des::pdes::{self, LogEntry, PdesConfig, PdesLogger, RemoteEnvelope, Router};
use xtsim_des::{Notify, SimDuration, SimHandle, SimTime};
use xtsim_machine::{ExecMode, MachineSpec};
use xtsim_net::{AnalyticNet, CollectiveShape};

/// Configuration for one sharded SPMD run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Machine description.
    pub spec: MachineSpec,
    /// Execution mode (SN/VN) — decides ranks per node and overheads.
    pub mode: ExecMode,
    /// Number of ranks.
    pub ranks: usize,
    /// Number of shards to partition the nodes across.
    pub shards: usize,
    /// Worker threads for the engine (never affects results).
    pub threads: usize,
    /// Seed for every shard's RNG streams.
    pub seed: u64,
    /// Explicit node→shard map (length = node count, values `< shards`).
    /// `None` = contiguous balanced slabs. Ranks always follow their node,
    /// so any map is legal.
    pub partition: Option<Vec<usize>>,
    /// Epoch-window cap passed through to the engine (stress knob).
    pub window: Option<SimDuration>,
    /// Collect per-rank scenario log entries (see [`ShardedMpi::log`]).
    pub log_events: bool,
    /// Collect engine wire-delivery log entries.
    pub log_wire: bool,
}

impl ShardedConfig {
    /// A config with everything defaulted except the world shape.
    pub fn new(spec: MachineSpec, mode: ExecMode, ranks: usize) -> ShardedConfig {
        ShardedConfig {
            spec,
            mode,
            ranks,
            shards: 1,
            threads: 1,
            seed: 0,
            partition: None,
            window: None,
            log_events: false,
            log_wire: false,
        }
    }
}

/// What a sharded run produced.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// Latest simulated instant across all ranks.
    pub end_time: SimTime,
    /// Per-rank completion time of the SPMD closure, indexed by rank.
    pub finish_times: Vec<SimTime>,
    /// Engine barrier epochs executed.
    pub epochs: u64,
    /// Cross-shard messages routed.
    pub remote_messages: u64,
    /// Merged `(time, key)`-ordered log (scenario + wire entries).
    pub log: Vec<LogEntry>,
}

// --------------------------------------------------------------- wire types

enum Wire {
    P2p {
        src: usize,
        dst: usize,
        tag: u64,
        /// Match sequence: position in the sender's stream for this
        /// `(src, dst, tag)` key (distinct from the per-pair order stamp).
        mseq: u64,
        bytes: u64,
    },
    CollContrib {
        instance: u64,
        local_max: SimTime,
        /// `(rank, operand)` for every rank the source shard hosts.
        data: Vec<(usize, Vec<f64>)>,
    },
    CollRelease {
        instance: u64,
        result: Vec<f64>,
    },
}

// P2p order keys use the raw source rank; collective keys live above every
// rank value so the two spaces cannot collide.
const ORDER_CONTRIB: u64 = 1 << 62;
const ORDER_RELEASE: u64 = 1 << 63;

struct LocalColl {
    arrived: usize,
    local_max: SimTime,
    data: Vec<(usize, Vec<f64>)>,
    result: Option<Rc<Vec<f64>>>,
    released: Rc<Notify>,
    consumed: usize,
}

struct OwnerColl {
    ranks_in: usize,
    global_max: SimTime,
    data: Vec<(usize, Vec<f64>)>,
}

type P2pKey = (usize, usize, u64); // (dst, src, tag)

struct ShardCore {
    handle: SimHandle,
    router: Router,
    logger: Option<PdesLogger>,
    net: Rc<AnalyticNet>,
    /// node → shard.
    partition: Rc<Vec<usize>>,
    shard: usize,
    owner_shard: usize,
    ranks_total: usize,
    local_ranks: usize,
    /// Arrived-but-unmatched messages, by matching key then sender seq.
    /// These maps are point-lookup only (never iterated), so `HashMap` is
    /// safe for determinism and keeps an alltoall's O(ranks²) matching keys
    /// O(1) instead of deep cold-cache tree walks.
    pending: RefCell<HashMap<P2pKey, BTreeMap<u64, u64>>>,
    /// Receivers parked on `(matching key, claimed sender seq)` — exactly
    /// one waker per outstanding `recv`, replaced on re-poll and removed on
    /// wake, so stale wakers never accumulate.
    waiters: RefCell<HashMap<(P2pKey, u64), Waker>>,
    /// Per matching key: next sender seq a `recv` will claim. Matching in
    /// send order (not arrival order) is MPI non-overtaking.
    next_recv: RefCell<HashMap<P2pKey, u64>>,
    /// Per ordered rank pair `(src, dst)`: next order stamp (makes every
    /// p2p delivery key unique and partition-invariant).
    pair_seq: RefCell<HashMap<(usize, usize), u64>>,
    /// Per `(src, dst, tag)`: next match sequence a `send` will stamp.
    /// Mirrors `next_recv` on the receiving side.
    match_seq: RefCell<HashMap<P2pKey, u64>>,
    /// Shard-level collective accumulators, by instance.
    colls: RefCell<BTreeMap<u64, LocalColl>>,
    /// Owner-side accumulators (only used on `owner_shard`).
    owner: RefCell<BTreeMap<u64, OwnerColl>>,
}

impl ShardCore {
    fn shard_of_rank(&self, rank: usize) -> usize {
        self.partition[self.net.node_of(rank)]
    }

    fn coll_state(&self, instance: u64) -> Rc<Notify> {
        let mut colls = self.colls.borrow_mut();
        Rc::clone(
            &colls
                .entry(instance)
                .or_insert_with(|| LocalColl {
                    arrived: 0,
                    local_max: SimTime::ZERO,
                    data: Vec::new(),
                    result: None,
                    released: Rc::new(Notify::new()),
                    consumed: 0,
                })
                .released,
        )
    }

    /// Deposit an arrived p2p message and wake the receiver that claimed
    /// exactly this sender sequence (if it is already parked). Waking only
    /// the matching claim keeps the executor free of spurious polls: a
    /// wake-everyone scheme here turns lockstep patterns like an alltoall
    /// into O(ranks) re-polls per message.
    fn deposit(&self, key: P2pKey, seq: u64, bytes: u64) {
        self.pending
            .borrow_mut()
            .entry(key)
            .or_default()
            .insert(seq, bytes);
        if let Some(w) = self.waiters.borrow_mut().remove(&(key, seq)) {
            w.wake();
        }
    }

    /// Owner-side: fold completed operand set in rank order, release.
    fn owner_arrive(self: &Rc<Self>, instance: u64, local_max: SimTime, data: Vec<(usize, Vec<f64>)>) {
        let mut owner = self.owner.borrow_mut();
        let st = owner.entry(instance).or_insert_with(|| OwnerColl {
            ranks_in: 0,
            global_max: SimTime::ZERO,
            data: Vec::new(),
        });
        st.ranks_in += data.len();
        st.global_max = st.global_max.max(local_max);
        st.data.extend(data);
        if st.ranks_in < self.ranks_total {
            return;
        }
        let mut st = owner.remove(&instance).expect("present");
        drop(owner);
        // Fold in global rank order: FP association independent of which
        // shard contributed which slice.
        st.data.sort_by_key(|&(r, _)| r);
        let width = st.data[0].1.len();
        let mut result = vec![0.0f64; width];
        for (_, v) in &st.data {
            debug_assert_eq!(v.len(), width, "mismatched allreduce widths");
            for (acc, x) in result.iter_mut().zip(v) {
                *acc += x;
            }
        }
        let shape = if width == 0 {
            CollectiveShape::Barrier
        } else {
            CollectiveShape::Allreduce {
                bytes: width as u64 * 8,
            }
        };
        let release_at = st.global_max + self.net.collective_time(self.ranks_total, shape);
        // One release per shard that hosts ranks (self included).
        let mut shards: Vec<usize> = self.partition.iter().copied().collect();
        shards.sort_unstable();
        shards.dedup();
        for s in shards {
            self.router.send(
                s,
                release_at,
                (ORDER_RELEASE | instance, 0),
                Box::new(Wire::CollRelease {
                    instance,
                    result: result.clone(),
                }),
            );
        }
    }

    fn on_wire(self: &Rc<Self>, env: RemoteEnvelope) {
        match *env.payload.downcast::<Wire>().expect("sharded wire payload") {
            Wire::P2p {
                src,
                dst,
                tag,
                mseq,
                bytes,
            } => {
                self.deposit((dst, src, tag), mseq, bytes);
            }
            Wire::CollContrib {
                instance,
                local_max,
                data,
            } => {
                debug_assert_eq!(self.shard, self.owner_shard);
                self.owner_arrive(instance, local_max, data);
            }
            Wire::CollRelease { instance, result } => {
                let mut colls = self.colls.borrow_mut();
                let st = colls.get_mut(&instance).expect("collective state");
                st.result = Some(Rc::new(result));
                let released = Rc::clone(&st.released);
                drop(colls);
                released.set();
            }
        }
    }
}

/// One rank's MPI endpoint inside a sharded world.
pub struct ShardedMpi {
    core: Rc<ShardCore>,
    rank: usize,
    coll_instance: Cell<u64>,
    log_seq: Cell<u64>,
}

impl ShardedMpi {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.core.ranks_total
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.handle.now()
    }

    /// The shard hosting this rank (for diagnostics).
    pub fn shard(&self) -> usize {
        self.core.shard
    }

    /// Burn `dur` of compute time.
    pub async fn compute(&self, dur: SimDuration) {
        self.core.handle.sleep(dur).await;
    }

    /// Record a scenario log entry at the current instant, keyed by
    /// `(rank, per-rank sequence)` so merged logs are partition-invariant.
    pub fn log(&self, text: String) {
        if let Some(logger) = &self.core.logger {
            let seq = self.log_seq.get();
            self.log_seq.set(seq + 1);
            logger.log((self.rank as u64, seq), text);
        }
    }

    /// Send `bytes` to `dst` under `tag`. Resolves when the sender's CPU is
    /// free again (software overhead + any rendezvous handshake); the
    /// payload lands at the receiver [`AnalyticNet::message_time`] later.
    pub async fn send(&self, dst: usize, tag: u64, bytes: u64) {
        let core = &self.core;
        let now = core.handle.now();
        let deliver_at = now + core.net.message_time(self.rank, dst, bytes);
        let seq = {
            let mut seqs = core.pair_seq.borrow_mut();
            let s = seqs.entry((self.rank, dst)).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        let mseq = {
            let mut seqs = core.match_seq.borrow_mut();
            let s = seqs.entry((dst, self.rank, tag)).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        // Order key encodes (src, dst) plus the per-pair stamp: unique per
        // message and a pure function of the rank program.
        let order = (((self.rank as u64) << 32) | dst as u64, seq);
        core.router.send(
            core.shard_of_rank(dst),
            deliver_at,
            order,
            Box::new(Wire::P2p {
                src: self.rank,
                dst,
                tag,
                mseq,
                bytes,
            }),
        );
        core.handle.sleep(core.net.send_occupancy(bytes)).await;
    }

    /// Receive the next unmatched message from `src` under `tag` (sender
    /// order — MPI non-overtaking). Resolves at the payload's delivery
    /// instant with its byte count.
    pub async fn recv(&self, src: usize, tag: u64) -> u64 {
        let core = Rc::clone(&self.core);
        let key: P2pKey = (self.rank, src, tag);
        // Claim the next sender seq up front: matching order is the order
        // `recv` calls were issued, paired with the order sends were issued.
        let want = {
            let mut next = core.next_recv.borrow_mut();
            let n = next.entry(key).or_insert(0);
            let v = *n;
            *n += 1;
            v
        };
        std::future::poll_fn(move |cx| {
            {
                let mut pending = core.pending.borrow_mut();
                if let Some(by_seq) = pending.get_mut(&key) {
                    if let Some(bytes) = by_seq.remove(&want) {
                        if by_seq.is_empty() {
                            pending.remove(&key);
                        }
                        core.waiters.borrow_mut().remove(&(key, want));
                        return Poll::Ready(bytes);
                    }
                }
            }
            core.waiters
                .borrow_mut()
                .insert((key, want), cx.waker().clone());
            Poll::Pending
        })
        .await
    }

    /// Concurrent send + receive (the pairwise-exchange workhorse).
    /// Resolves when both legs are done, returning the received byte count.
    pub async fn sendrecv(
        &self,
        dst: usize,
        src: usize,
        tag: u64,
        bytes: u64,
    ) -> u64 {
        let (_, got) = xtsim_des::join2(self.send(dst, tag, bytes), self.recv(src, tag)).await;
        got
    }

    /// Element-wise global sum of `contrib` across all ranks. Every rank
    /// must call with the same vector length; all ranks resolve at the
    /// analytic release instant with the identical result.
    pub async fn allreduce(&self, contrib: Vec<f64>) -> Vec<f64> {
        let core = Rc::clone(&self.core);
        let instance = self.coll_instance.get();
        self.coll_instance.set(instance + 1);
        let released = core.coll_state(instance);
        {
            let mut colls = core.colls.borrow_mut();
            let st = colls.get_mut(&instance).expect("just created");
            st.arrived += 1;
            st.local_max = st.local_max.max(core.handle.now());
            st.data.push((self.rank, contrib));
            if st.arrived == core.local_ranks {
                // Last local arrival forwards the shard's contribution one
                // lookahead from now (now == local_max).
                let data = std::mem::take(&mut st.data);
                let local_max = st.local_max;
                let at = local_max + core.router.lookahead();
                drop(colls);
                core.router.send(
                    core.owner_shard,
                    at,
                    (ORDER_CONTRIB | instance, core.shard as u64),
                    Box::new(Wire::CollContrib {
                        instance,
                        local_max,
                        data,
                    }),
                );
            }
        }
        released.wait().await;
        let result = {
            let mut colls = core.colls.borrow_mut();
            let st = colls.get_mut(&instance).expect("released state");
            let r = Rc::clone(st.result.as_ref().expect("result set on release"));
            st.consumed += 1;
            if st.consumed == core.local_ranks {
                colls.remove(&instance);
            }
            r
        };
        result.as_ref().clone()
    }

    /// Global barrier (an empty allreduce).
    pub async fn barrier(&self) {
        self.allreduce(Vec::new()).await;
    }
}

/// Contiguous balanced node slabs: shard `s` gets nodes
/// `[s*n/shards, (s+1)*n/shards)`.
pub fn slab_partition(nodes: usize, shards: usize) -> Vec<usize> {
    (0..nodes)
        .map(|n| (n * shards / nodes.max(1)).min(shards - 1))
        .collect()
}

/// Run `body` as an SPMD program on every rank of a sharded world and
/// collect the outcome. `body` is invoked once per rank, inside the shard
/// that owns the rank's node.
pub fn simulate_sharded<F, Fut>(cfg: &ShardedConfig, body: F) -> ShardedOutcome
where
    F: Fn(ShardedMpi) -> Fut + Send + Sync,
    Fut: Future<Output = ()> + 'static,
{
    assert!(cfg.ranks >= 1, "need at least one rank");
    assert!(cfg.shards >= 1, "need at least one shard");
    let net = AnalyticNet::new(cfg.spec.clone(), cfg.mode, cfg.ranks);
    let nodes = net.torus().node_count();
    let partition = match &cfg.partition {
        Some(p) => {
            assert_eq!(p.len(), nodes, "partition map must cover {nodes} nodes");
            assert!(
                p.iter().all(|&s| s < cfg.shards),
                "partition map references shard >= {}",
                cfg.shards
            );
            p.clone()
        }
        None => slab_partition(nodes, cfg.shards),
    };

    let mut pcfg = PdesConfig::new(cfg.shards, cfg.threads, net.lookahead());
    pcfg.seed = cfg.seed;
    pcfg.window = cfg.window;
    pcfg.log_wire = cfg.log_wire;

    let owner_shard = partition[net.node_of(0)];
    let ranks_total = cfg.ranks;
    let net = &net;
    let partition = &partition;
    let log_events = cfg.log_events;
    let body = &body;

    let out = pdes::run_partitioned(&pcfg, move |ctx| {
        let shard = ctx.shard();
        let local: Vec<usize> = (0..ranks_total)
            .filter(|&r| partition[net.node_of(r)] == shard)
            .collect();
        let core = Rc::new(ShardCore {
            handle: ctx.handle(),
            router: ctx.router(),
            logger: log_events.then(|| ctx.logger()),
            net: Rc::new(net.clone()),
            partition: Rc::new(partition.clone()),
            shard,
            owner_shard,
            ranks_total,
            local_ranks: local.len(),
            pending: RefCell::new(HashMap::new()),
            waiters: RefCell::new(HashMap::new()),
            next_recv: RefCell::new(HashMap::new()),
            pair_seq: RefCell::new(HashMap::new()),
            match_seq: RefCell::new(HashMap::new()),
            colls: RefCell::new(BTreeMap::new()),
            owner: RefCell::new(BTreeMap::new()),
        });
        {
            let core = Rc::clone(&core);
            ctx.on_remote(move |env| core.on_wire(env));
        }
        let finishes: Rc<RefCell<Vec<(usize, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        for &rank in &local {
            let mpi = ShardedMpi {
                core: Rc::clone(&core),
                rank,
                coll_instance: Cell::new(0),
                log_seq: Cell::new(0),
            };
            let handle = ctx.handle();
            let inner = handle.clone();
            let fin = Rc::clone(&finishes);
            let fut = body(mpi);
            handle.spawn(async move {
                fut.await;
                fin.borrow_mut().push((rank, inner.now()));
            });
        }
        move || std::mem::take(&mut *finishes.borrow_mut())
    });

    let mut finish_times = vec![SimTime::ZERO; ranks_total];
    // xtsim-lint: allow(nondet-map-iter, "out.results is the engine's Vec of per-shard Vecs in shard order; the HashMaps inside the builder closure above are unrelated to this binding")
    for (rank, t) in out.results.into_iter().flatten() {
        finish_times[rank] = t;
    }
    ShardedOutcome {
        end_time: out.end_time,
        finish_times,
        epochs: out.epochs,
        remote_messages: out.remote_messages,
        log: out.log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    fn cfg(ranks: usize, shards: usize, threads: usize) -> ShardedConfig {
        let mut c = ShardedConfig::new(presets::xt4(), ExecMode::VN, ranks);
        c.shards = shards;
        c.threads = threads;
        c.log_events = true;
        c
    }

    /// Pairwise-exchange alltoall: every rank swaps with `(rank ± step)`,
    /// one tag per step — the paper's figure-style traffic pattern.
    async fn alltoall(mpi: ShardedMpi, bytes: u64) {
        let p = mpi.size();
        for step in 1..p {
            let dst = (mpi.rank() + step) % p;
            let src = (mpi.rank() + p - step) % p;
            let got = mpi.sendrecv(dst, src, step as u64, bytes).await;
            assert_eq!(got, bytes);
        }
        mpi.log(format!("rank {} done at {:?}", mpi.rank(), mpi.now()));
    }

    #[test]
    fn alltoall_invariant_over_shards_threads_and_partition() {
        let run = |shards, threads, partition: Option<Vec<usize>>| {
            let mut c = cfg(16, shards, threads);
            c.partition = partition;
            simulate_sharded(&c, |mpi| alltoall(mpi, 4096))
        };
        let base = run(1, 1, None);
        assert!(base.end_time > SimTime::ZERO);
        assert_eq!(base.remote_messages, 0);

        // 8 nodes in VN mode; a deliberately scrambled node→shard map.
        let scrambled = vec![2, 0, 3, 1, 0, 2, 1, 3];
        for (shards, threads, part) in [
            (2, 1, None),
            (2, 2, None),
            (4, 4, None),
            (4, 2, Some(scrambled.clone())),
            (4, 4, Some(scrambled)),
        ] {
            let out = run(shards, threads, part);
            assert_eq!(out.finish_times, base.finish_times, "{shards}s/{threads}t");
            assert_eq!(out.end_time, base.end_time, "{shards}s/{threads}t");
            assert_eq!(out.log, base.log, "{shards}s/{threads}t");
            assert!(out.remote_messages > 0);
        }
    }

    type RankSums = std::sync::Arc<std::sync::Mutex<Vec<(usize, Vec<f64>)>>>;

    #[test]
    fn allreduce_sums_in_rank_order_everywhere() {
        let run = |shards, threads| {
            let c = cfg(12, shards, threads);
            let sums: RankSums = Default::default();
            let out = simulate_sharded(&c, |mpi| {
                let sums = std::sync::Arc::clone(&sums);
                async move {
                    mpi.compute(SimDuration::from_us(mpi.rank() as u64)).await;
                    let r = mpi
                        .allreduce(vec![mpi.rank() as f64, 1.0, 0.1 * mpi.rank() as f64])
                        .await;
                    sums.lock().unwrap().push((mpi.rank(), r));
                    mpi.barrier().await;
                }
            });
            let mut got = sums.lock().unwrap().clone();
            got.sort_by_key(|&(r, _)| r);
            (out.finish_times, got)
        };
        let (base_t, base_sums) = run(1, 1);
        let expect = vec![66.0, 12.0, (0..12).map(|r| 0.1 * r as f64).sum::<f64>()];
        for (_, s) in &base_sums {
            assert_eq!(s, &expect);
        }
        // Every rank resolves the allreduce at one shared release instant,
        // so the trailing barrier leaves all finish times equal.
        assert!(base_t.iter().all(|&t| t == base_t[0]));
        for (shards, threads) in [(2, 2), (3, 2), (4, 4)] {
            let (t, sums) = run(shards, threads);
            assert_eq!(t, base_t, "{shards}s/{threads}t");
            // Bitwise-identical FP: folds happen in rank order regardless
            // of which shard contributed which operand.
            assert_eq!(sums, base_sums, "{shards}s/{threads}t");
        }
    }

    #[test]
    fn p2p_is_non_overtaking_per_pair() {
        let c = cfg(4, 2, 2);
        let seen: std::sync::Arc<std::sync::Mutex<Vec<u64>>> = Default::default();
        simulate_sharded(&c, |mpi| {
            let seen = std::sync::Arc::clone(&seen);
            async move {
                match mpi.rank() {
                    0 => {
                        // Same (dst, tag) three times: bigger payloads land
                        // later, but the receiver must still see sender order.
                        mpi.send(3, 7, 1 << 20).await;
                        mpi.send(3, 7, 1024).await;
                        mpi.send(3, 7, 16).await;
                    }
                    3 => {
                        for _ in 0..3 {
                            let b = mpi.recv(0, 7).await;
                            seen.lock().unwrap().push(b);
                        }
                    }
                    _ => {}
                }
            }
        });
        assert_eq!(*seen.lock().unwrap(), vec![1 << 20, 1024, 16]);
    }

    #[test]
    fn slab_partition_is_balanced_and_total() {
        let p = slab_partition(10, 4);
        assert_eq!(p.len(), 10);
        assert!(p.iter().all(|&s| s < 4));
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
        for s in 0..4 {
            let n = p.iter().filter(|&&x| x == s).count();
            assert!((2..=3).contains(&n), "shard {s} got {n} nodes");
        }
    }
}
