//! The MPI world: rank contexts, point-to-point matching, protocols.
//!
//! Matching semantics follow MPI: a receive names `(source, tag)` — either
//! may be a wildcard — and matches queued sends in arrival order. Two wire
//! protocols are modelled, switching at the NIC's eager threshold:
//!
//! * **eager** — payload travels immediately; the sender completes when the
//!   message is delivered into the receiver's unexpected-message queue;
//! * **rendezvous** — the sender transmits a zero-byte RTS, waits for the
//!   receiver's CTS (sent when the receive is matched), then streams the
//!   payload. This reproduces the large-message latency step in the paper's
//!   Figures 12–13.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::rc::Rc;

use xtsim_des::trace::{self, SpanCategory};
use xtsim_des::{
    oneshot, JoinHandle, OneshotSender, RebalanceStats, Sim, SimDuration, SimHandle, SimTime,
};
use xtsim_machine::{ExecMode, MachineSpec, WorkPacket};
use xtsim_net::{Platform, PlatformConfig, Rank, TrafficStats};

use crate::comm::Comm;
use crate::message::Message;
use crate::profile::RankProfile;

/// Message tag.
pub type Tag = u64;

/// How collectives execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveMode {
    /// Run the real p2p algorithm (binomial trees, recursive doubling,
    /// pairwise exchange). Every message is simulated.
    Algorithmic,
    /// Use an analytic time model with a synchronization gate: O(ranks) per
    /// collective instead of O(ranks · log ranks) messages. Reductions still
    /// combine real data. For very large jobs (POP at 22,000 ranks).
    Modeled,
    /// Algorithmic up to 4,096 ranks, modeled beyond.
    Auto,
}

/// Configuration for [`World::new`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Platform (machine + mode + rank count + contention model).
    pub platform: PlatformConfig,
    /// Collective execution mode.
    pub collectives: CollectiveMode,
}

impl WorldConfig {
    /// Sensible defaults: auto collective mode.
    pub fn new(platform: PlatformConfig) -> Self {
        WorldConfig {
            platform,
            collectives: CollectiveMode::Auto,
        }
    }
}

pub(crate) enum EnvelopeKind {
    Eager(Message),
    Rts {
        cts: OneshotSender<()>,
        payload: xtsim_des::OneshotReceiver<Message>,
    },
}

pub(crate) struct Envelope {
    pub src: Rank,
    pub tag: Tag,
    pub kind: EnvelopeKind,
}

struct PendingRecv {
    src: Option<Rank>,
    tag: Option<Tag>,
    slot: OneshotSender<Envelope>,
}

#[derive(Default)]
struct MatchEngine {
    unmatched: VecDeque<Envelope>,
    pending: VecDeque<PendingRecv>,
}

pub(crate) struct WorldInner {
    pub(crate) platform: Platform,
    engines: Vec<RefCell<MatchEngine>>,
    pub(crate) modeled_collectives: bool,
    pub(crate) gates: RefCell<std::collections::BTreeMap<(u64, u64), Rc<crate::gate::Gate>>>,
    pub(crate) profiles: RefCell<Vec<RankProfile>>,
    /// Collective nesting depth per rank: p2p inside a collective accrues
    /// to the collective, not to p2p.
    pub(crate) coll_depth: RefCell<Vec<u32>>,
}

/// A simulated MPI job on a simulated machine.
#[derive(Clone)]
pub struct World {
    pub(crate) inner: Rc<WorldInner>,
}

impl World {
    /// Build a world inside simulation `handle`.
    pub fn new(handle: SimHandle, config: WorldConfig) -> World {
        let ranks = config.platform.ranks;
        let platform = Platform::new(handle, config.platform);
        let modeled = match config.collectives {
            CollectiveMode::Algorithmic => false,
            CollectiveMode::Modeled => true,
            CollectiveMode::Auto => ranks > 4096,
        };
        World {
            inner: Rc::new(WorldInner {
                platform,
                engines: (0..ranks).map(|_| RefCell::new(MatchEngine::default())).collect(),
                modeled_collectives: modeled,
                gates: RefCell::new(std::collections::BTreeMap::new()),
                profiles: RefCell::new(vec![RankProfile::default(); ranks]),
                coll_depth: RefCell::new(vec![0; ranks]),
            }),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.platform.ranks()
    }

    /// The per-rank MPI context (also the `MPI_COMM_WORLD` communicator).
    pub fn mpi(&self, rank: Rank) -> Mpi {
        assert!(rank < self.size(), "rank {rank} out of range");
        Mpi {
            world: Rc::clone(&self.inner),
            rank,
            world_comm: Comm::world(Rc::clone(&self.inner), rank),
        }
    }

    /// Underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.inner.platform
    }

    /// Per-rank activity profiles accumulated so far.
    pub fn profiles(&self) -> Vec<RankProfile> {
        self.inner.profiles.borrow().clone()
    }
}

/// Per-rank MPI context handed to each simulated process.
#[derive(Clone)]
pub struct Mpi {
    pub(crate) world: Rc<WorldInner>,
    pub(crate) rank: Rank,
    world_comm: Comm,
}

impl Mpi {
    /// This process's rank in `MPI_COMM_WORLD`.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.platform.ranks()
    }

    /// The world communicator (collectives live on [`Comm`]).
    pub fn comm(&self) -> &Comm {
        &self.world_comm
    }

    /// Simulation handle (time queries, spawning, RNG streams).
    pub fn handle(&self) -> &SimHandle {
        self.world.platform.handle()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.handle().now()
    }

    /// Machine description this job runs on.
    pub fn machine(&self) -> &MachineSpec {
        self.world.platform.spec()
    }

    /// Execution mode (SN/VN).
    pub fn mode(&self) -> ExecMode {
        self.world.platform.mode()
    }

    /// Record a completed rank-attributed span into the active trace capture.
    fn trace_span(
        &self,
        category: SpanCategory,
        name: &'static str,
        t0: SimTime,
        args: Vec<(&'static str, f64)>,
    ) {
        trace::span(
            category,
            name,
            Some(self.rank as u32),
            Some(self.world.platform.node_of(self.rank) as u32),
            t0,
            self.now(),
            args,
        );
    }

    /// Execute a compute work packet on this rank's core.
    pub async fn compute(&self, work: WorkPacket) {
        let t0 = self.now();
        self.world.platform.compute(self.rank, work).await;
        let dt = (self.now() - t0).as_secs_f64();
        self.world.profiles.borrow_mut()[self.rank].compute_secs += dt;
        if trace::capture_active() {
            self.trace_span(SpanCategory::Compute, "compute", t0, Vec::new());
        }
    }

    /// This rank's accumulated activity profile.
    pub fn profile(&self) -> RankProfile {
        self.world.profiles.borrow()[self.rank]
    }

    fn in_collective(&self) -> bool {
        self.world.coll_depth.borrow()[self.rank] > 0
    }

    /// Sleep for simulated `dur` (models non-MPI serial work).
    pub async fn sleep(&self, dur: SimDuration) {
        self.handle().sleep(dur).await;
    }

    /// Wire-level transfer to `dst` without MPI matching: resolves when the
    /// payload has been delivered (NIC overheads, routing and contention all
    /// apply). Used by benchmarks whose traffic is one-sided by nature
    /// (e.g. MPI-RandomAccess update streams).
    pub async fn raw_transmit(&self, dst: Rank, bytes: u64) {
        let t0 = self.now();
        self.world.platform.transmit(self.rank, dst, bytes).await;
        if !self.in_collective() {
            let mut p = self.world.profiles.borrow_mut();
            p[self.rank].p2p_secs += (self.now() - t0).as_secs_f64();
            p[self.rank].messages_sent += 1;
            p[self.rank].bytes_sent += bytes;
            if trace::capture_active() {
                self.trace_span(
                    SpanCategory::P2p,
                    "transmit",
                    t0,
                    vec![("dst", dst as f64), ("bytes", bytes as f64)],
                );
            }
        }
    }

    /// Blocking send: completes when the message has been delivered to
    /// `dst`'s message queue (eager) or received (rendezvous).
    pub async fn send(&self, dst: Rank, tag: Tag, msg: Message) {
        let t0 = self.now();
        let bytes = msg.bytes;
        self.send_inner(dst, tag, msg).await;
        if !self.in_collective() {
            let mut p = self.world.profiles.borrow_mut();
            p[self.rank].p2p_secs += (self.now() - t0).as_secs_f64();
            p[self.rank].messages_sent += 1;
            p[self.rank].bytes_sent += bytes;
            drop(p);
            if trace::capture_active() {
                self.trace_span(
                    SpanCategory::P2p,
                    "send",
                    t0,
                    vec![("dst", dst as f64), ("bytes", bytes as f64)],
                );
            }
        }
    }

    async fn send_inner(&self, dst: Rank, tag: Tag, msg: Message) {
        let world = &self.world;
        let eager_limit = world.platform.spec().nic.eager_threshold_bytes;
        if msg.bytes <= eager_limit {
            world.platform.transmit(self.rank, dst, msg.bytes).await;
            deposit(
                world,
                dst,
                Envelope {
                    src: self.rank,
                    tag,
                    kind: EnvelopeKind::Eager(msg),
                },
            );
        } else {
            // Rendezvous: RTS → CTS → payload.
            let (cts_tx, cts_rx) = oneshot::<()>();
            let (payload_tx, payload_rx) = oneshot::<Message>();
            world.platform.transmit(self.rank, dst, 0).await; // RTS
            deposit(
                world,
                dst,
                Envelope {
                    src: self.rank,
                    tag,
                    kind: EnvelopeKind::Rts {
                        cts: cts_tx,
                        payload: payload_rx,
                    },
                },
            );
            cts_rx.await.expect("receiver vanished during rendezvous");
            world.platform.transmit(self.rank, dst, msg.bytes).await;
            payload_tx.send(msg);
        }
    }

    /// Nonblocking send: returns a handle to await for completion.
    pub fn isend(&self, dst: Rank, tag: Tag, msg: Message) -> JoinHandle<()> {
        let this = self.clone();
        self.handle()
            .spawn(async move { this.send(dst, tag, msg).await })
    }

    /// Blocking receive. `src`/`tag` of `None` are wildcards. Returns
    /// `(source, tag, message)`.
    pub async fn recv(&self, src: Option<Rank>, tag: Option<Tag>) -> (Rank, Tag, Message) {
        let t0 = self.now();
        let out = self.recv_inner(src, tag).await;
        if !self.in_collective() {
            self.world.profiles.borrow_mut()[self.rank].p2p_secs +=
                (self.now() - t0).as_secs_f64();
            if trace::capture_active() {
                self.trace_span(
                    SpanCategory::P2p,
                    "recv",
                    t0,
                    vec![("src", out.0 as f64), ("bytes", out.2.bytes as f64)],
                );
            }
        }
        out
    }

    async fn recv_inner(&self, src: Option<Rank>, tag: Option<Tag>) -> (Rank, Tag, Message) {
        let env = {
            let mut engine = self.world.engines[self.rank].borrow_mut();
            if let Some(pos) = engine
                .unmatched
                .iter()
                .position(|e| matches(src, tag, e.src, e.tag))
            {
                Ok(engine.unmatched.remove(pos).expect("position valid"))
            } else {
                let (slot, waiter) = oneshot::<Envelope>();
                engine.pending.push_back(PendingRecv { src, tag, slot });
                Err(waiter)
            }
        };
        let env = match env {
            Ok(env) => env,
            Err(waiter) => waiter.await.expect("world torn down mid-receive"),
        };
        self.complete_recv(env).await
    }

    /// Nonblocking receive.
    pub fn irecv(&self, src: Option<Rank>, tag: Option<Tag>) -> JoinHandle<(Rank, Tag, Message)> {
        let this = self.clone();
        self.handle()
            .spawn(async move { this.recv(src, tag).await })
    }

    /// Combined send+receive (both proceed concurrently, like
    /// `MPI_Sendrecv`). Returns the received `(source, tag, message)`.
    pub async fn sendrecv(
        &self,
        dst: Rank,
        send_tag: Tag,
        msg: Message,
        src: Option<Rank>,
        recv_tag: Option<Tag>,
    ) -> (Rank, Tag, Message) {
        let send = self.isend(dst, send_tag, msg);
        let out = self.recv(src, recv_tag).await;
        send.await;
        out
    }

    async fn complete_recv(&self, env: Envelope) -> (Rank, Tag, Message) {
        match env.kind {
            EnvelopeKind::Eager(msg) => (env.src, env.tag, msg),
            EnvelopeKind::Rts { cts, payload } => {
                // CTS control message back to the sender costs wire time.
                self.world.platform.transmit(self.rank, env.src, 0).await;
                cts.send(());
                let msg = payload.await.expect("sender vanished during rendezvous");
                (env.src, env.tag, msg)
            }
        }
    }

    /// Traffic statistics of the whole job.
    pub fn stats(&self) -> TrafficStats {
        self.world.platform.stats()
    }

    /// Work counters of the network fluid pool's incremental rebalancer
    /// (see EXPERIMENTS.md, "Profiling the simulator").
    pub fn net_rebalance_stats(&self) -> RebalanceStats {
        self.world.platform.net_rebalance_stats()
    }
}

fn matches(want_src: Option<Rank>, want_tag: Option<Tag>, src: Rank, tag: Tag) -> bool {
    want_src.is_none_or(|s| s == src) && want_tag.is_none_or(|t| t == tag)
}

fn deposit(world: &WorldInner, dst: Rank, env: Envelope) {
    let mut engine = world.engines[dst].borrow_mut();
    if let Some(pos) = engine
        .pending
        .iter()
        .position(|p| matches(p.src, p.tag, env.src, env.tag))
    {
        let pending = engine.pending.remove(pos).expect("position valid");
        drop(engine);
        pending.slot.send(env);
    } else {
        engine.unmatched.push_back(env);
    }
}

/// Outcome of [`simulate`].
#[derive(Debug, Clone, Copy)]
pub struct SimOutcome {
    /// Simulated time at which the last rank finished.
    pub end_time: SimTime,
    /// Wire traffic totals.
    pub traffic: TrafficStats,
}

/// Run an SPMD program (`f` is instantiated once per rank) to completion and
/// return the simulated end time. The standard entry point for benchmarks:
///
/// ```
/// use xtsim_mpi::{simulate, WorldConfig, Message};
/// use xtsim_net::PlatformConfig;
/// use xtsim_machine::{presets, ExecMode};
///
/// let mut spec = presets::xt4();
/// spec.torus_dims = [2, 2, 2];
/// let cfg = WorldConfig::new(PlatformConfig::new(spec, ExecMode::SN, 2));
/// let out = simulate(7, cfg, |mpi| async move {
///     if mpi.rank() == 0 {
///         mpi.send(1, 0, Message::of_bytes(1024)).await;
///     } else {
///         mpi.recv(None, None).await;
///     }
/// });
/// assert!(out.end_time.as_secs_f64() > 0.0);
/// ```
pub fn simulate<F, Fut>(seed: u64, config: WorldConfig, f: F) -> SimOutcome
where
    F: Fn(Mpi) -> Fut,
    Fut: Future<Output = ()> + 'static,
{
    let mut sim = Sim::new(seed);
    let world = World::new(sim.handle(), config);
    for r in 0..world.size() {
        sim.spawn(f(world.mpi(r)));
    }
    let end_time = sim.run();
    SimOutcome {
        end_time,
        traffic: world.platform().stats(),
    }
}

/// Like [`simulate`], additionally returning the per-rank activity profiles
/// (see [`crate::RankProfile`]).
pub fn simulate_profiled<F, Fut>(
    seed: u64,
    config: WorldConfig,
    f: F,
) -> (SimOutcome, Vec<RankProfile>)
where
    F: Fn(Mpi) -> Fut,
    Fut: Future<Output = ()> + 'static,
{
    let mut sim = Sim::new(seed);
    let world = World::new(sim.handle(), config);
    for r in 0..world.size() {
        sim.spawn(f(world.mpi(r)));
    }
    let end_time = sim.run();
    (
        SimOutcome {
            end_time,
            traffic: world.platform().stats(),
        },
        world.profiles(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;
    use xtsim_net::ContentionModel;

    pub(crate) fn tiny_config(ranks: usize, mode: ExecMode) -> WorldConfig {
        let mut spec = presets::xt4();
        spec.torus_dims = [4, 4, 4];
        let mut p = PlatformConfig::new(spec, mode, ranks);
        p.contention = ContentionModel::Fluid;
        WorldConfig::new(p)
    }

    #[test]
    fn send_recv_roundtrip_carries_data() {
        let out = simulate(0, tiny_config(2, ExecMode::SN), |mpi| async move {
            if mpi.rank() == 0 {
                mpi.send(1, 42, Message::from_values(vec![1.0, 2.0, 3.0]))
                    .await;
            } else {
                let (src, tag, msg) = mpi.recv(None, None).await;
                assert_eq!(src, 0);
                assert_eq!(tag, 42);
                assert_eq!(msg.values(), &[1.0, 2.0, 3.0]);
            }
        });
        assert!(out.end_time > SimTime::ZERO);
        assert_eq!(out.traffic.messages, 1);
    }

    #[test]
    fn tag_matching_selects_correct_message() {
        simulate(0, tiny_config(2, ExecMode::SN), |mpi| async move {
            if mpi.rank() == 0 {
                mpi.send(1, 7, Message::from_values(vec![7.0])).await;
                mpi.send(1, 8, Message::from_values(vec![8.0])).await;
            } else {
                // Receive tag 8 first even though 7 arrived first.
                let (_, tag, msg) = mpi.recv(None, Some(8)).await;
                assert_eq!(tag, 8);
                assert_eq!(msg.values(), &[8.0]);
                let (_, tag, msg) = mpi.recv(None, Some(7)).await;
                assert_eq!(tag, 7);
                assert_eq!(msg.values(), &[7.0]);
            }
        });
    }

    #[test]
    fn wildcard_recv_takes_arrival_order() {
        simulate(0, tiny_config(3, ExecMode::SN), |mpi| async move {
            match mpi.rank() {
                0 => {
                    // Serialize arrivals: rank 1 sends immediately, rank 2
                    // is farther; both deposit, rank 0 receives in order.
                    let (s1, _, _) = mpi.recv(None, None).await;
                    let (s2, _, _) = mpi.recv(None, None).await;
                    assert_ne!(s1, s2);
                }
                r => {
                    mpi.send(0, r as Tag, Message::of_bytes(8)).await;
                }
            }
        });
    }

    #[test]
    fn rendezvous_path_matches_large_messages() {
        let cfg = tiny_config(2, ExecMode::SN);
        let big = 1u64 << 20; // > 64 KiB eager threshold
        let out = simulate(0, cfg, move |mpi| async move {
            if mpi.rank() == 0 {
                mpi.send(1, 0, Message::of_bytes(big)).await;
            } else {
                // Receiver posts late: the RTS waits, then CTS releases payload.
                mpi.sleep(SimDuration::from_us(100)).await;
                let (_, _, msg) = mpi.recv(Some(0), Some(0)).await;
                assert_eq!(msg.bytes, big);
            }
        });
        // Payload cannot start before the receiver posts at 100us.
        assert!(out.end_time.as_secs_f64() > 100e-6);
        // RTS + CTS + payload = 3 wire messages.
        assert_eq!(out.traffic.messages, 3);
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        simulate(0, tiny_config(2, ExecMode::SN), |mpi| async move {
            let peer = 1 - mpi.rank();
            let mine = vec![mpi.rank() as f64; 4];
            let (src, _, msg) = mpi
                .sendrecv(peer, 5, Message::from_values(mine), Some(peer), Some(5))
                .await;
            assert_eq!(src, peer);
            assert_eq!(msg.values()[0], peer as f64);
        });
    }

    #[test]
    fn isend_overlaps_with_compute() {
        let out = simulate(0, tiny_config(2, ExecMode::SN), |mpi| async move {
            if mpi.rank() == 0 {
                let h = mpi.isend(1, 0, Message::of_bytes(1024));
                mpi.sleep(SimDuration::from_ms(1)).await; // overlapped work
                h.await;
                // Send (microseconds) hides entirely inside the 1 ms sleep.
                assert!(mpi.now().as_secs_f64() < 1.1e-3);
            } else {
                mpi.recv(None, None).await;
            }
        });
        assert!(out.end_time.as_secs_f64() < 1.1e-3);
    }

    #[test]
    fn ping_pong_latency_matches_platform() {
        // 8-byte ping-pong between adjacent nodes: RTT/2 ~ 4us on XT4 SN.
        let reps = 10u64;
        let out = simulate(0, tiny_config(2, ExecMode::SN), move |mpi| async move {
            for i in 0..reps {
                if mpi.rank() == 0 {
                    mpi.send(1, i, Message::of_bytes(8)).await;
                    mpi.recv(Some(1), Some(i)).await;
                } else {
                    mpi.recv(Some(0), Some(i)).await;
                    mpi.send(0, i, Message::of_bytes(8)).await;
                }
            }
        });
        let half_rtt = out.end_time.as_secs_f64() / (2.0 * reps as f64);
        assert!(
            half_rtt > 3.5e-6 && half_rtt < 5.5e-6,
            "one-way latency {half_rtt}"
        );
    }
}
