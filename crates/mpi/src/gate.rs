//! Modeled collectives: synchronization gates with analytic timing.
//!
//! At very large rank counts (POP runs to 22,000 tasks) simulating every
//! message of every collective is wasteful: a single allreduce is
//! `O(p log p)` simulated messages. A [`Gate`] instead synchronizes all
//! participants — everyone waits until the last arrival plus an analytic
//! completion time — while still combining real payload data for
//! reductions/broadcasts, so program semantics are preserved.
//!
//! The analytic times deliberately reuse the same per-message cost estimate
//! as the wire model (including VN-mode NIC penalties), so modeled and
//! algorithmic collectives agree to first order; an integration test checks
//! that.

use std::cell::RefCell;
use xtsim_des::{Notify, SimDuration, SimHandle, SimTime};
use xtsim_machine::ExecMode;
use xtsim_net::Platform;

use crate::message::{Message, ReduceOp};

/// What a rank brings to the gate.
pub(crate) enum Contribution {
    /// Nothing (barrier, size-only collectives).
    None,
    /// Reduction operand.
    Reduce(Vec<f64>, ReduceOp),
    /// Broadcast payload (only the root passes `Some`).
    Bcast(Option<Message>),
    /// Allgather block: (commrank, message).
    Gather(usize, Message),
}

#[derive(Default)]
struct GateState {
    arrived: usize,
    max_arrival: SimTime,
    acc: Option<(Vec<f64>, ReduceOp)>,
    bcast: Option<Message>,
    gathered: Vec<Option<Message>>,
    release_at: SimTime,
}

/// A reusable rendezvous for one collective call on one communicator.
pub(crate) struct Gate {
    expected: usize,
    state: RefCell<GateState>,
    released: Notify,
}

/// What comes out of the gate after release.
pub(crate) enum GateOutput {
    /// Barrier-like: nothing.
    None,
    /// Combined reduction result.
    Reduced(Vec<f64>),
    /// Broadcast payload.
    Bcast(Message),
    /// All gathered blocks in comm-rank order.
    Gathered(Vec<Message>),
}

impl Gate {
    pub(crate) fn new(expected: usize) -> Gate {
        Gate {
            expected,
            state: RefCell::new(GateState::default()),
            released: Notify::new(),
        }
    }

    /// Arrive with a contribution; resolves at the modeled completion time.
    ///
    /// `duration` must be identical across participants (it is computed from
    /// collective parameters every rank agrees on).
    pub(crate) async fn arrive(
        &self,
        handle: &SimHandle,
        contribution: Contribution,
        duration: SimDuration,
    ) -> GateOutput {
        {
            let mut st = self.state.borrow_mut();
            st.arrived += 1;
            st.max_arrival = st.max_arrival.max(handle.now());
            match contribution {
                Contribution::None => {}
                Contribution::Reduce(data, op) => match &mut st.acc {
                    Some((acc, _)) => op.fold(acc, &data),
                    None => st.acc = Some((data, op)),
                },
                Contribution::Bcast(Some(msg)) => st.bcast = Some(msg),
                Contribution::Bcast(None) => {}
                Contribution::Gather(idx, msg) => {
                    if st.gathered.len() < self.expected {
                        st.gathered.resize(self.expected, None);
                    }
                    st.gathered[idx] = Some(msg);
                }
            }
            if st.arrived == self.expected {
                st.release_at = st.max_arrival + duration;
                drop(st);
                self.released.set();
            }
        }
        self.released.wait().await;
        let release_at = self.state.borrow().release_at;
        handle.sleep_until(release_at).await;
        let st = self.state.borrow();
        match (&st.acc, &st.bcast, st.gathered.is_empty()) {
            (Some((acc, _)), _, _) => GateOutput::Reduced(acc.clone()),
            (None, Some(msg), _) => GateOutput::Bcast(msg.clone()),
            (None, None, false) => GateOutput::Gathered(
                st.gathered
                    .iter()
                    .map(|m| m.clone().expect("every rank contributed"))
                    .collect(),
            ),
            _ => GateOutput::None,
        }
    }
}

/// Collective shapes priced by [`modeled_time`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum CollShape {
    Barrier,
    Bcast { bytes: u64 },
    Reduce { bytes: u64 },
    Allreduce { bytes: u64 },
    Allgather { bytes_per: u64 },
    Alltoall { bytes_per: u64 },
    Alltoallv { total_bytes: u64 },
}

/// Analytic completion time for a collective over `p` ranks.
///
/// Latency terms use the platform's per-message estimate (which includes VN
/// software penalties); an extra `ranks_per_node` factor models NIC
/// serialization when both cores participate. Bandwidth terms are bounded by
/// the injection port and, for all-to-all patterns, the torus bisection.
pub(crate) fn modeled_time(platform: &Platform, p: usize, shape: CollShape) -> SimDuration {
    let spec = platform.spec();
    let rpn = match platform.mode() {
        ExecMode::SN => 1.0,
        ExecMode::VN => spec.processor.cores_per_socket as f64,
    };
    let rounds = (p.max(2) as f64).log2().ceil();
    let t0 = platform.message_time_estimate(0).as_secs_f64() * rpn;
    let inj_dir = spec.nic.injection_bw_gbs * 1e9 / 2.0 / rpn;
    let bis_bw = platform.torus().bisection_links() as f64 * spec.nic.link_bw_gbs * 1e9;
    let secs = match shape {
        CollShape::Barrier => rounds * t0,
        // Tree latency plus a pipelined (scatter/allgather-style) bandwidth
        // term: production bcast/reduce implementations move ~2·bytes per
        // rank for large payloads rather than bytes per tree level.
        CollShape::Bcast { bytes } | CollShape::Reduce { bytes } => {
            rounds * t0 + 2.0 * bytes as f64 / inj_dir
        }
        CollShape::Allreduce { bytes } => {
            // Recursive doubling latency + Rabenseifner bandwidth term.
            // Cray's MPI_Allreduce was specifically optimized for VN mode
            // ("eliminating much of the contention between the processor
            // cores ... reflected in the data here", §6.2): it pays only a
            // 20% VN surcharge instead of full NIC serialization.
            let t0_ar = t0 / rpn * (1.0 + 0.2 * (rpn - 1.0));
            rounds * t0_ar + 2.0 * bytes as f64 / inj_dir
        }
        CollShape::Allgather { bytes_per } => {
            let lat = rounds * t0;
            let bw = (p.saturating_sub(1)) as f64 * bytes_per as f64 / inj_dir;
            lat + bw
        }
        CollShape::Alltoall { bytes_per } => {
            let pairwise =
                (p.saturating_sub(1)) as f64 * (t0 + bytes_per as f64 / inj_dir);
            let total = (p as f64) * (p as f64) * bytes_per as f64;
            let bisection = 0.5 * total / bis_bw;
            pairwise.max(bisection)
        }
        CollShape::Alltoallv { total_bytes } => {
            let per_rank = total_bytes as f64 / p as f64;
            let pairwise = (p.saturating_sub(1)) as f64 * t0 + per_rank / inj_dir;
            let bisection = 0.5 * total_bytes as f64 / bis_bw;
            pairwise.max(bisection)
        }
    };
    SimDuration::from_secs_f64(secs)
}
