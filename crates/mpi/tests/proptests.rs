//! Property-based tests over the simulated MPI semantics.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

use xtsim_machine::{fit_dims, presets, ExecMode};
use xtsim_mpi::{simulate, CollectiveMode, Message, ReduceOp, WorldConfig};
use xtsim_net::{ContentionModel, PlatformConfig};

fn cfg(ranks: usize) -> WorldConfig {
    let mut spec = presets::xt4();
    spec.torus_dims = fit_dims(ranks);
    let mut p = PlatformConfig::new(spec, ExecMode::SN, ranks);
    p.contention = ContentionModel::Counting;
    let mut w = WorldConfig::new(p);
    w.collectives = CollectiveMode::Algorithmic;
    w
}

fn op_from(idx: u8) -> ReduceOp {
    match idx % 4 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Max,
        2 => ReduceOp::Min,
        _ => ReduceOp::Prod,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Allreduce equals the sequential fold for arbitrary sizes, vector
    /// lengths, and operators — including non-powers of two.
    #[test]
    fn allreduce_equals_sequential_fold(
        p in 1usize..20,
        len in 1usize..6,
        op_idx in 0u8..4,
        base in -3.0f64..3.0,
    ) {
        let op = op_from(op_idx);
        let results: Rc<RefCell<Vec<Vec<f64>>>> = Rc::new(RefCell::new(Vec::new()));
        let r2 = Rc::clone(&results);
        simulate(1, cfg(p), move |mpi| {
            let results = Rc::clone(&r2);
            async move {
                let r = mpi.comm().rank() as f64;
                let data: Vec<f64> = (0..len).map(|i| base + r * 0.25 + i as f64).collect();
                let out = mpi.comm().allreduce(data, op).await;
                results.borrow_mut().push(out);
            }
        });
        let mut expect = vec![op.identity(); len];
        for r in 0..p {
            let data: Vec<f64> = (0..len).map(|i| base + r as f64 * 0.25 + i as f64).collect();
            op.fold(&mut expect, &data);
        }
        let results = results.borrow();
        prop_assert_eq!(results.len(), p);
        for out in results.iter() {
            for (a, b) in out.iter().zip(&expect) {
                // Tree reductions associate differently than the sequential
                // fold; only relative agreement is guaranteed for f64.
                let tol = 1e-9 * b.abs().max(1.0);
                prop_assert!((a - b).abs() <= tol, "{} vs {}", a, b);
            }
        }
    }

    /// Broadcast from an arbitrary root delivers the root's payload to all.
    #[test]
    fn bcast_from_any_root(p in 1usize..16, root_seed in any::<usize>(), tagval in -50.0f64..50.0) {
        let root = root_seed % p;
        let hits = Rc::new(RefCell::new(0usize));
        let h2 = Rc::clone(&hits);
        simulate(2, cfg(p), move |mpi| {
            let hits = Rc::clone(&h2);
            async move {
                let payload = (mpi.comm().rank() == root)
                    .then(|| Message::from_values(vec![tagval, root as f64]));
                let got = mpi.comm().bcast(root, payload).await;
                assert_eq!(got.values(), &[tagval, root as f64]);
                *hits.borrow_mut() += 1;
            }
        });
        prop_assert_eq!(*hits.borrow(), p);
    }

    /// Alltoall is the transpose permutation for arbitrary sizes.
    #[test]
    fn alltoall_transposes(p in 1usize..10) {
        let ok = Rc::new(RefCell::new(0usize));
        let ok2 = Rc::clone(&ok);
        simulate(3, cfg(p), move |mpi| {
            let ok = Rc::clone(&ok2);
            async move {
                let me = mpi.comm().rank();
                let msgs: Vec<Message> = (0..p)
                    .map(|dst| Message::from_values(vec![(me * 1000 + dst) as f64]))
                    .collect();
                let got = mpi.comm().alltoall(msgs).await;
                for (src, m) in got.iter().enumerate() {
                    assert_eq!(m.values(), &[(src * 1000 + me) as f64]);
                }
                *ok.borrow_mut() += 1;
            }
        });
        prop_assert_eq!(*ok.borrow(), p);
    }

    /// Point-to-point ordering: messages between one (src, dst, tag) pair
    /// arrive in send order (MPI non-overtaking guarantee).
    #[test]
    fn p2p_non_overtaking(count in 1usize..20, bytes in 0u64..200_000) {
        let ok = Rc::new(RefCell::new(false));
        let ok2 = Rc::clone(&ok);
        simulate(4, cfg(2), move |mpi| {
            let ok = Rc::clone(&ok2);
            async move {
                if mpi.rank() == 0 {
                    for i in 0..count {
                        mpi.send(1, 7, Message::from_values(vec![i as f64])).await;
                        if bytes > 0 {
                            // Interleave untagged traffic to stress matching.
                            mpi.send(1, 8, Message::of_bytes(bytes)).await;
                        }
                    }
                } else {
                    for i in 0..count {
                        let (_, _, m) = mpi.recv(Some(0), Some(7)).await;
                        assert_eq!(m.values(), &[i as f64]);
                        if bytes > 0 {
                            mpi.recv(Some(0), Some(8)).await;
                        }
                    }
                    *ok.borrow_mut() = true;
                }
            }
        });
        prop_assert!(*ok.borrow());
    }

    /// Barrier: no rank exits before the last arrival, for arbitrary
    /// arrival skews.
    #[test]
    fn barrier_never_releases_early(skews in prop::collection::vec(0u64..500, 2..12)) {
        let p = skews.len();
        let max_skew = *skews.iter().max().unwrap();
        let ok = Rc::new(RefCell::new(true));
        let ok2 = Rc::clone(&ok);
        let skews = Rc::new(skews);
        simulate(5, cfg(p), move |mpi| {
            let ok = Rc::clone(&ok2);
            let skews = Rc::clone(&skews);
            async move {
                let us = skews[mpi.rank()];
                mpi.sleep(xtsim_des::SimDuration::from_us(us)).await;
                mpi.comm().barrier().await;
                if mpi.now().as_secs_f64() < max_skew as f64 * 1e-6 {
                    *ok.borrow_mut() = false;
                }
            }
        });
        prop_assert!(*ok.borrow());
    }
}
