//! Edge-case tests for the MPI layer: degenerate communicators, mixed
//! protocol traffic, wildcard storms, nested sub-communicators.

use std::cell::RefCell;
use std::rc::Rc;
use xtsim_machine::{fit_dims, presets, ExecMode};
use xtsim_mpi::{simulate, CollectiveMode, Message, ReduceOp, WorldConfig};
use xtsim_net::{ContentionModel, PlatformConfig};

fn cfg(ranks: usize) -> WorldConfig {
    let mut spec = presets::xt4();
    spec.torus_dims = fit_dims(ranks);
    let mut p = PlatformConfig::new(spec, ExecMode::SN, ranks);
    p.contention = ContentionModel::Fluid;
    let mut w = WorldConfig::new(p);
    w.collectives = CollectiveMode::Algorithmic;
    w
}

#[test]
fn single_rank_world_collectives_are_noops() {
    simulate(0, cfg(1), |mpi| async move {
        mpi.comm().barrier().await;
        let v = mpi.comm().allreduce(vec![7.0], ReduceOp::Sum).await;
        assert_eq!(v, vec![7.0]);
        let b = mpi
            .comm()
            .bcast(0, Some(Message::from_values(vec![1.0])))
            .await;
        assert_eq!(b.values(), &[1.0]);
        let g = mpi.comm().allgather(Message::from_values(vec![2.0])).await;
        assert_eq!(g.len(), 1);
        let a = mpi.comm().alltoall(vec![Message::from_values(vec![3.0])]).await;
        assert_eq!(a.len(), 1);
        assert_eq!(mpi.now().as_ps(), 0, "no wire traffic for p=1");
    });
}

#[test]
fn nested_sub_communicators() {
    simulate(0, cfg(8), |mpi| async move {
        let me = mpi.rank();
        // World -> halves -> quarters; reductions stay isolated at each level.
        let half: Vec<usize> = if me < 4 { (0..4).collect() } else { (4..8).collect() };
        let hc = mpi.comm().sub(&half).unwrap();
        let quarter: Vec<usize> = half[(me % 4 / 2) * 2..(me % 4 / 2) * 2 + 2].to_vec();
        let qc = hc.sub(&quarter).unwrap();
        let q = qc.allreduce(vec![me as f64], ReduceOp::Sum).await;
        let expected: f64 = quarter.iter().map(|&r| r as f64).sum();
        assert_eq!(q, vec![expected]);
        let h = hc.allreduce(vec![1.0], ReduceOp::Sum).await;
        assert_eq!(h, vec![4.0]);
        let w = mpi.comm().allreduce(vec![1.0], ReduceOp::Sum).await;
        assert_eq!(w, vec![8.0]);
    });
}

#[test]
fn mixed_eager_and_rendezvous_ordering() {
    // A small (eager) and a large (rendezvous) message on the same tag
    // must still arrive in send order.
    simulate(0, cfg(2), |mpi| async move {
        if mpi.rank() == 0 {
            mpi.send(1, 5, Message::from_values(vec![1.0])).await;
            mpi.send(1, 5, Message::of_bytes(1 << 20)).await;
            mpi.send(1, 5, Message::from_values(vec![3.0])).await;
        } else {
            let (_, _, a) = mpi.recv(Some(0), Some(5)).await;
            assert_eq!(a.values(), &[1.0]);
            let (_, _, b) = mpi.recv(Some(0), Some(5)).await;
            assert_eq!(b.bytes, 1 << 20);
            let (_, _, c) = mpi.recv(Some(0), Some(5)).await;
            assert_eq!(c.values(), &[3.0]);
        }
    });
}

#[test]
fn wildcard_source_storm() {
    // Many senders, one receiver with full wildcards: every message is
    // delivered exactly once.
    let p = 9;
    let got = Rc::new(RefCell::new(Vec::new()));
    let g2 = Rc::clone(&got);
    simulate(0, cfg(p), move |mpi| {
        let got = Rc::clone(&g2);
        async move {
            if mpi.rank() == 0 {
                for _ in 0..(p - 1) * 3 {
                    let (src, _, m) = mpi.recv(None, None).await;
                    got.borrow_mut().push((src, m.values()[0]));
                }
            } else {
                for k in 0..3 {
                    mpi.send(0, k, Message::from_values(vec![(mpi.rank() * 10 + k as usize) as f64]))
                        .await;
                }
            }
        }
    });
    let got = got.borrow();
    assert_eq!(got.len(), (p - 1) * 3);
    // Every (src, value) pair unique and consistent.
    for &(src, v) in got.iter() {
        let k = v as usize % 10;
        assert_eq!(v as usize, src * 10 + k);
    }
}

#[test]
fn self_send_completes() {
    simulate(0, cfg(4), |mpi| async move {
        if mpi.rank() == 2 {
            let send = mpi.isend(2, 9, Message::from_values(vec![5.0]));
            let (_, _, m) = mpi.recv(Some(2), Some(9)).await;
            send.await;
            assert_eq!(m.values(), &[5.0]);
        }
    });
}

#[test]
fn reduce_to_every_root_gives_same_answer() {
    let p = 6;
    for root in 0..p {
        simulate(0, cfg(p), move |mpi| async move {
            let out = mpi
                .comm()
                .reduce(root, vec![mpi.rank() as f64], ReduceOp::Sum)
                .await;
            if mpi.comm().rank() == root {
                assert_eq!(out.unwrap(), vec![15.0]);
            } else {
                assert!(out.is_none());
            }
        });
    }
}

#[test]
fn alltoallv_asymmetric_sizes_complete() {
    // Rank r sends r KiB to everyone; no deadlock, time > 0.
    let out = simulate(0, cfg(6), |mpi| async move {
        let sizes: Vec<u64> = (0..mpi.size())
            .map(|_| (mpi.rank() as u64) * 1024)
            .collect();
        mpi.comm().alltoallv_bytes(&sizes).await;
    });
    assert!(out.end_time.as_ps() > 0);
}
