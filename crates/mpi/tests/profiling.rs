//! Tests for the per-rank activity profiler.

use std::cell::RefCell;
use std::rc::Rc;
use xtsim_des::SimDuration;
use xtsim_machine::{fit_dims, presets, ExecMode, WorkPacket};
use xtsim_mpi::{simulate_profiled, CollectiveMode, Message, ReduceOp, WorldConfig};
use xtsim_net::{ContentionModel, PlatformConfig};

fn cfg(ranks: usize) -> WorldConfig {
    let mut spec = presets::xt4();
    spec.torus_dims = fit_dims(ranks);
    let mut p = PlatformConfig::new(spec, ExecMode::SN, ranks);
    p.contention = ContentionModel::Fluid;
    let mut w = WorldConfig::new(p);
    w.collectives = CollectiveMode::Algorithmic;
    w
}

#[test]
fn compute_time_is_attributed() {
    let (_out, profiles) = simulate_profiled(0, cfg(2), |mpi| async move {
        // 10 ms of flops on rank 0 only.
        if mpi.rank() == 0 {
            mpi.compute(WorkPacket::flops_only(5.2e7, 1.0)).await;
        }
    });
    assert!((profiles[0].compute_secs - 0.01).abs() < 1e-5, "{profiles:?}");
    assert_eq!(profiles[1].compute_secs, 0.0);
    assert_eq!(profiles[0].p2p_secs, 0.0);
}

#[test]
fn p2p_time_and_counts_are_attributed() {
    let bytes = 1u64 << 20;
    let (_out, profiles) = simulate_profiled(0, cfg(2), move |mpi| async move {
        if mpi.rank() == 0 {
            mpi.send(1, 0, Message::of_bytes(bytes)).await;
        } else {
            mpi.recv(Some(0), Some(0)).await;
        }
    });
    assert_eq!(profiles[0].messages_sent, 1);
    assert_eq!(profiles[0].bytes_sent, bytes);
    assert!(profiles[0].p2p_secs > 0.0);
    assert!(profiles[1].p2p_secs > 0.0); // recv wait
    assert_eq!(profiles[1].messages_sent, 0);
}

#[test]
fn collective_time_excludes_internal_p2p() {
    let (_out, profiles) = simulate_profiled(0, cfg(8), |mpi| async move {
        mpi.comm().allreduce(vec![1.0; 64], ReduceOp::Sum).await;
        mpi.comm().barrier().await;
    });
    for (r, p) in profiles.iter().enumerate() {
        assert_eq!(p.collectives, 2, "rank {r}: {p:?}");
        assert!(p.collective_secs > 0.0, "rank {r}");
        // The algorithm's internal sends must NOT appear as p2p.
        assert_eq!(p.p2p_secs, 0.0, "rank {r}: {p:?}");
        assert_eq!(p.messages_sent, 0, "rank {r}");
    }
}

#[test]
fn late_rank_charges_wait_to_the_collective() {
    let (_out, profiles) = simulate_profiled(0, cfg(4), |mpi| async move {
        if mpi.rank() == 3 {
            mpi.sleep(SimDuration::from_ms(5)).await;
        }
        mpi.comm().barrier().await;
    });
    // Early ranks waited ~5 ms inside the barrier.
    for (r, p) in profiles.iter().take(3).enumerate() {
        assert!(p.collective_secs > 4e-3, "rank {r}: {p:?}");
    }
    assert!(profiles[3].collective_secs < 1e-3, "{:?}", profiles[3]);
}

#[test]
fn job_profile_aggregates() {
    use xtsim_mpi::JobProfile;
    let (_out, profiles) = simulate_profiled(0, cfg(4), |mpi| async move {
        mpi.compute(WorkPacket::flops_only(5.2e6, 1.0)).await;
        mpi.comm().barrier().await;
    });
    let job = JobProfile::from_ranks(&profiles);
    assert_eq!(job.total.collectives, 4);
    assert!(job.total.compute_secs > 3.9e-3);
    assert!(job.max_mpi_fraction > 0.0 && job.max_mpi_fraction < 1.0);
}

#[test]
fn profiles_visible_mid_run_via_mpi_handle() {
    let seen = Rc::new(RefCell::new(0.0f64));
    let s2 = Rc::clone(&seen);
    simulate_profiled(0, cfg(2), move |mpi| {
        let seen = Rc::clone(&s2);
        async move {
            mpi.compute(WorkPacket::flops_only(5.2e6, 1.0)).await;
            if mpi.rank() == 0 {
                *seen.borrow_mut() = mpi.profile().compute_secs;
            }
        }
    });
    assert!(*seen.borrow() > 0.0);
}
