//! Table 1 of the paper: side-by-side system comparison.

use crate::spec::MachineSpec;

/// Render the paper's Table 1 ("Comparison of XT3, XT3 dual core, and XT4
/// systems at ORNL") for an arbitrary set of machines, as fixed-width text.
pub fn system_comparison(machines: &[&MachineSpec]) -> String {
    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    let get = |f: &dyn Fn(&MachineSpec) -> String| -> Vec<String> {
        machines.iter().map(|m| f(m)).collect()
    };
    rows.push(("Processor".into(), get(&|m| m.processor.name.clone())));
    rows.push((
        "Processor Sockets".into(),
        get(&|m| format!("{}", m.node_count())),
    ));
    rows.push((
        "Processor Cores".into(),
        get(&|m| format!("{}", m.core_count())),
    ));
    rows.push(("Memory".into(), get(&|m| m.memory.technology.clone())));
    rows.push((
        "Memory Capacity".into(),
        get(&|m| format!("{}GB/core", m.memory.capacity_gb_per_core)),
    ));
    rows.push((
        "Memory Bandwidth".into(),
        get(&|m| format!("{}GB/s", m.memory.peak_bw_gbs)),
    ));
    rows.push(("Interconnect".into(), get(&|m| m.nic.name.clone())));
    rows.push((
        "Network Injection Bandwidth".into(),
        get(&|m| format!("{}GB/s", m.nic.injection_bw_gbs)),
    ));

    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut col_w: Vec<usize> = machines.iter().map(|m| m.name.len()).collect();
    for (_, vals) in &rows {
        for (i, v) in vals.iter().enumerate() {
            col_w[i] = col_w[i].max(v.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{:label_w$}", ""));
    for (i, m) in machines.iter().enumerate() {
        out.push_str(&format!("  {:>w$}", m.name, w = col_w[i]));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_w + col_w.iter().map(|w| w + 2).sum::<usize>()));
    out.push('\n');
    for (label, vals) in &rows {
        out.push_str(&format!("{label:label_w$}"));
        for (i, v) in vals.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", v, w = col_w[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn table_contains_headline_numbers() {
        let xt3 = presets::xt3_single();
        let xt3d = presets::xt3_dual();
        let xt4 = presets::xt4();
        let t = system_comparison(&[&xt3, &xt3d, &xt4]);
        assert!(t.contains("10.6GB/s"), "{t}");
        assert!(t.contains("6.4GB/s"), "{t}");
        assert!(t.contains("SeaStar2"), "{t}");
        assert!(t.contains("4GB/s"), "{t}");
        // Three data columns plus the label column on every row.
        for line in t.lines().skip(2) {
            assert!(!line.trim().is_empty());
        }
    }
}
