//! Stable content fingerprints for machine specifications.
//!
//! The sweep-engine cache (in `xtsim-core`) keys results by the *content* of
//! the machine being simulated, not by preset name: an `xt4()` whose NIC
//! eager threshold was tweaked must hash differently from the stock preset.
//! Specs are serialized to canonical JSON (object keys sorted, integral
//! floats printed with a trailing `.0`) and hashed with FNV-1a, so the
//! fingerprint is independent of struct field order and stable across
//! processes and runs — there is no randomized hasher state anywhere in the
//! path.

use crate::spec::{ExecMode, MachineSpec};

/// FNV-1a offset basis (the standard 64-bit one).
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, distinct basis so callers can derive a 128-bit digest from two
/// independent 64-bit passes.
pub const FNV_OFFSET_BASIS_ALT: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`, starting from `basis`.
pub fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit hex digest of `text`: two independent FNV-1a passes concatenated.
pub fn hex_digest(text: &str) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a64(text.as_bytes(), FNV_OFFSET_BASIS),
        fnv1a64(text.as_bytes(), FNV_OFFSET_BASIS_ALT)
    )
}

impl MachineSpec {
    /// Content fingerprint over the canonical JSON encoding of every spec
    /// field. Two specs compare equal here iff every parameter matches.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("MachineSpec serializes");
        fnv1a64(json.as_bytes(), FNV_OFFSET_BASIS)
    }
}

impl ExecMode {
    /// Content fingerprint of the execution mode (folds the mode label).
    pub fn fingerprint(self) -> u64 {
        fnv1a64(self.label().as_bytes(), FNV_OFFSET_BASIS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn presets_have_distinct_fingerprints() {
        let specs = [
            presets::xt3_single(),
            presets::xt3_dual(),
            presets::xt4(),
            presets::xt4_quad(),
        ];
        for (i, a) in specs.iter().enumerate() {
            for b in specs.iter().skip(i + 1) {
                assert_ne!(a.fingerprint(), b.fingerprint(), "{} vs {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn clone_preserves_fingerprint_and_field_change_breaks_it() {
        let m = presets::xt4();
        assert_eq!(m.fingerprint(), m.clone().fingerprint());
        let mut tweaked = m.clone();
        tweaked.nic.eager_threshold_bytes += 1;
        assert_ne!(m.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn fnv_is_the_reference_function() {
        // Reference vector: FNV-1a("a") with the standard basis.
        assert_eq!(fnv1a64(b"a", FNV_OFFSET_BASIS), 0xaf63dc4c8601ec8c);
        assert_eq!(hex_digest("").len(), 32);
    }

    #[test]
    fn modes_differ() {
        assert_ne!(ExecMode::SN.fingerprint(), ExecMode::VN.fingerprint());
    }
}
