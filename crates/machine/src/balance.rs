//! System-balance ratios — the quantities §1 and §7 of the paper reason in:
//! memory bytes per flop, network injection bytes per flop, GUPS per
//! GFLOPS. "The suitability of next generation HPC technology for petascale
//! simulations will depend on balance among memory, processor, I/O, and
//! local and global network performance."

use crate::spec::{ExecMode, MachineSpec};

/// The balance ratios of one machine in one execution mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Balance {
    /// Peak memory bytes per peak flop, per active core.
    pub mem_bytes_per_flop: f64,
    /// Network injection bytes per peak flop, per active core.
    pub net_bytes_per_flop: f64,
    /// Random-access updates per 10^9 flops, per active core (GUPS/GFLOPS).
    pub gups_per_gflop: f64,
    /// Messages per second per active core at zero payload (1 / software
    /// overhead), in millions.
    pub msg_rate_m_per_core: f64,
}

/// Compute the balance ratios for `machine` in `mode`.
pub fn balance(machine: &MachineSpec, mode: ExecMode) -> Balance {
    let active = machine.ranks_per_node(mode) as f64;
    let core_flops = machine.processor.core_peak_flops();
    let mem_bw = machine.memory.stream_bw_socket_gbs * 1e9 / active;
    let inj = machine.nic.injection_bw_gbs * 1e9 / active;
    let gups = machine.memory.random_gups_socket / active;
    let o = (machine.nic.sw_overhead_us
        + if mode == ExecMode::VN {
            machine.nic.vn_extra_overhead_us
        } else {
            0.0
        })
        * 1e-6;
    Balance {
        mem_bytes_per_flop: mem_bw / core_flops,
        net_bytes_per_flop: inj / core_flops,
        gups_per_gflop: gups / (core_flops / 1e9),
        msg_rate_m_per_core: 1.0 / o / 1e6 / active,
    }
}

/// Text table of balance ratios for a set of machines (both modes for
/// multi-core machines).
pub fn balance_table(machines: &[&MachineSpec]) -> String {
    let mut out = String::from(
        "machine            mode  mem B/F   net B/F   GUPS/GF   Mmsg/s/core\n",
    );
    for m in machines {
        let modes: &[ExecMode] = if m.processor.cores_per_socket > 1 {
            &[ExecMode::SN, ExecMode::VN]
        } else {
            &[ExecMode::SN]
        };
        for &mode in modes {
            let b = balance(m, mode);
            out.push_str(&format!(
                "{:18} {:>4}  {:>7.3}  {:>8.4}  {:>8.5}  {:>10.3}\n",
                m.name, mode, b.mem_bytes_per_flop, b.net_bytes_per_flop,
                b.gups_per_gflop, b.msg_rate_m_per_core,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn xt4_sn_memory_balance_improves_over_xt3() {
        // DDR2-667 raised bytes/flop even though the clock also rose.
        let b3 = balance(&presets::xt3_single(), ExecMode::SN);
        let b4 = balance(&presets::xt4(), ExecMode::SN);
        assert!(b4.mem_bytes_per_flop > b3.mem_bytes_per_flop);
        assert!(b4.net_bytes_per_flop > b3.net_bytes_per_flop);
    }

    #[test]
    fn vn_mode_halves_per_core_balance() {
        let sn = balance(&presets::xt4(), ExecMode::SN);
        let vn = balance(&presets::xt4(), ExecMode::VN);
        assert!((sn.mem_bytes_per_flop / vn.mem_bytes_per_flop - 2.0).abs() < 1e-9);
        assert!((sn.net_bytes_per_flop / vn.net_bytes_per_flop - 2.0).abs() < 1e-9);
        // VN message rate per core drops by more than 2x (software penalty).
        assert!(sn.msg_rate_m_per_core > 2.0 * vn.msg_rate_m_per_core);
    }

    #[test]
    fn vn_xt4_memory_balance_regresses_below_xt3() {
        // The §7 conclusion: per-core, the dual-core XT4 in VN mode is
        // *worse*-balanced for bandwidth-bound codes than the XT3 was.
        let xt3 = balance(&presets::xt3_single(), ExecMode::SN);
        let vn = balance(&presets::xt4(), ExecMode::VN);
        assert!(vn.mem_bytes_per_flop < xt3.mem_bytes_per_flop);
    }

    #[test]
    fn table_lists_both_modes_for_dual_core() {
        let xt4 = presets::xt4();
        let t = balance_table(&[&xt4]);
        assert!(t.contains("SN"));
        assert!(t.contains("VN"));
        let t3 = balance_table(&[&presets::xt3_single()]);
        assert!(!t3.contains("VN"));
    }
}
