//! Machine presets for every platform appearing in the paper, calibrated to
//! the published single-rank micro-benchmark observations (see
//! EXPERIMENTS.md for the calibration table). Everything *beyond* a single
//! rank — contention, scaling, collectives, crossovers — is produced by the
//! simulator, not by these constants.

use crate::spec::{AppPerfSpec, MachineSpec, MemorySpec, NicSpec, ProcessorSpec, VectorSpec};

fn no_vector(sustained: f64, smp: u32) -> AppPerfSpec {
    AppPerfSpec {
        sustained_fraction: sustained,
        vector: None,
        smp_threads_per_task: smp,
    }
}

/// The original ORNL Cray XT3: 2.4 GHz single-core Opteron 150, DDR-400,
/// SeaStar. 5,212 sockets (torus dims approximate the cabinet layout).
pub fn xt3_single() -> MachineSpec {
    MachineSpec {
        name: "XT3".into(),
        processor: ProcessorSpec {
            name: "2.4GHz single-core Opteron".into(),
            clock_ghz: 2.4,
            flops_per_cycle: 2.0,
            cores_per_socket: 1,
            dgemm_efficiency: 0.87,
        },
        memory: MemorySpec {
            technology: "DDR-400".into(),
            peak_bw_gbs: 6.4,
            stream_bw_socket_gbs: 5.1,
            single_stream_bw_gbs: 5.1,
            latency_ns: 60.0,
            random_gups_socket: 0.0140,
            capacity_gb_per_core: 2.0,
        },
        nic: NicSpec {
            name: "Cray SeaStar".into(),
            injection_bw_gbs: 2.2,
            link_bw_gbs: 3.0,
            sw_overhead_us: 5.5,
            vn_extra_overhead_us: 0.0, // single core: VN mode not applicable
            per_hop_ns: 50.0,
            memcpy_bw_gbs: 2.5,
            eager_threshold_bytes: 64 * 1024,
            rendezvous_latency_us: 8.0,
        },
        torus_dims: [14, 16, 24], // 5,376 nodes ~ 5,212 sockets
        // Application results on the single-core system were collected on
        // the 2005 software stack; the paper itself cautions that the
        // differences are "likely to be, at least partly, due to changes in
        // the system software". Slightly lower sustained fraction than the
        // 2007-era dual-core systems.
        app: no_vector(0.09, 1),
    }
}

/// The 2006 upgrade: 2.6 GHz dual-core Opteron, still DDR-400 and SeaStar.
/// The paper stresses that memory bandwidth did **not** grow with the second
/// core here.
pub fn xt3_dual() -> MachineSpec {
    let mut m = xt3_single();
    m.name = "XT3-DC".into();
    m.processor = ProcessorSpec {
        name: "2.6GHz dual-core Opteron".into(),
        clock_ghz: 2.6,
        flops_per_cycle: 2.0,
        cores_per_socket: 2,
        dgemm_efficiency: 0.87,
    };
    // Same DDR-400 parts; capacity was doubled to hold 2 GB/core.
    m.memory.capacity_gb_per_core = 2.0;
    // Software stack matured between the single-core (2005) and dual-core
    // (2006) measurements; the paper notes single-core latency data are stale.
    m.app = no_vector(0.105, 1);
    m.nic.sw_overhead_us = 4.8;
    m.nic.vn_extra_overhead_us = 4.6;
    m
}

/// The Cray XT4: Revision F dual-core Opteron, DDR2-667, SeaStar2. The three
/// changes called out in §2: socket AM2, DDR2 memory, doubled injection
/// bandwidth.
pub fn xt4() -> MachineSpec {
    MachineSpec {
        name: "XT4".into(),
        processor: ProcessorSpec {
            name: "2.6GHz dual-core Opteron (Rev F)".into(),
            clock_ghz: 2.6,
            flops_per_cycle: 2.0,
            cores_per_socket: 2,
            dgemm_efficiency: 0.87,
        },
        memory: MemorySpec {
            technology: "DDR2-667".into(),
            peak_bw_gbs: 10.6,
            stream_bw_socket_gbs: 7.3,
            single_stream_bw_gbs: 7.3,
            latency_ns: 55.0,
            random_gups_socket: 0.0190,
            capacity_gb_per_core: 2.0,
        },
        nic: NicSpec {
            name: "Cray SeaStar2".into(),
            injection_bw_gbs: 4.0,
            // Link-compatible with SeaStar; the paper attributes flat PTRANS
            // to the *unchanged* SeaStar-to-SeaStar link bandwidth.
            link_bw_gbs: 3.0,
            sw_overhead_us: 3.8,
            vn_extra_overhead_us: 4.2,
            per_hop_ns: 50.0,
            memcpy_bw_gbs: 3.5,
            eager_threshold_bytes: 64 * 1024,
            rendezvous_latency_us: 6.0,
        },
        torus_dims: [16, 16, 25], // 6,400 nodes ~ 6,296 sockets
        app: no_vector(0.105, 1),
    }
}

/// The combined XT3+XT4 machine used for the largest POP/AORSA runs
/// (11,508 sockets / 23,016 cores at the time of writing). Modelled with XT4
/// node parameters — the paper runs these experiments on mixed partitions
/// where the slower XT3 portion bounds per-node rates only marginally.
pub fn xt3_xt4_combined() -> MachineSpec {
    let mut m = xt4();
    m.name = "XT3/4".into();
    m.torus_dims = [24, 16, 30]; // 11,520 nodes ~ 11,508 sockets
    // Mixed partition: memory rates bounded by the DDR-400 half for the
    // fraction of nodes that are XT3; approximate with a mild haircut.
    m.memory.stream_bw_socket_gbs = 6.6;
    m.memory.single_stream_bw_gbs = 6.6;
    m
}

/// Hypothetical XT4 with the DDR2-800 parts named in §2 as the upgrade path
/// (12.8 GB/s). Used by the ablation benches, not by any paper figure.
pub fn xt4_ddr2_800() -> MachineSpec {
    let mut m = xt4();
    m.name = "XT4-DDR2-800".into();
    m.memory.technology = "DDR2-800".into();
    m.memory.peak_bw_gbs = 12.8;
    m.memory.stream_bw_socket_gbs = 8.8;
    m.memory.single_stream_bw_gbs = 8.8;
    m
}

/// Hypothetical quad-core XT4 (the site-upgrade the AM2 socket was chosen
/// for; the paper's stated future work). Used by the ablation benches.
pub fn xt4_quad() -> MachineSpec {
    let mut m = xt4();
    m.name = "XT4-QC".into();
    m.processor.name = "2.1GHz quad-core Opteron (projected)".into();
    m.processor.clock_ghz = 2.1;
    m.processor.cores_per_socket = 4;
    m
}

/// Cray X1E at ORNL: 1,024 Multi-Streaming Processors, 18 GFlop/s each,
/// fully connected within 32-MSP subsets, 2-D torus between subsets.
pub fn x1e() -> MachineSpec {
    MachineSpec {
        name: "X1E".into(),
        processor: ProcessorSpec {
            name: "Cray X1E MSP".into(),
            clock_ghz: 1.13,
            flops_per_cycle: 16.0, // 18 GF/s per MSP
            cores_per_socket: 1,
            dgemm_efficiency: 0.90,
        },
        memory: MemorySpec {
            technology: "RDRAM".into(),
            peak_bw_gbs: 34.0,
            stream_bw_socket_gbs: 24.0,
            single_stream_bw_gbs: 24.0,
            latency_ns: 110.0,
            random_gups_socket: 0.03,
            capacity_gb_per_core: 2.0,
        },
        nic: NicSpec {
            name: "X1E interconnect".into(),
            injection_bw_gbs: 12.0,
            link_bw_gbs: 8.0,
            sw_overhead_us: 7.0,
            vn_extra_overhead_us: 0.0,
            per_hop_ns: 100.0,
            memcpy_bw_gbs: 10.0,
            eager_threshold_bytes: 64 * 1024,
            rendezvous_latency_us: 8.0,
        },
        torus_dims: [8, 8, 16], // 1,024 MSPs
        app: AppPerfSpec {
            sustained_fraction: 0.11,
            vector: Some(VectorSpec {
                min_efficient_length: 128.0,
                short_vector_fraction: 0.30,
            }),
            smp_threads_per_task: 1,
        },
    }
}

/// The Japanese Earth Simulator: 640 8-way vector SMP nodes, 8 GFlop/s per
/// AP, single-stage 640×640 crossbar.
pub fn earth_simulator() -> MachineSpec {
    MachineSpec {
        name: "Earth Simulator".into(),
        processor: ProcessorSpec {
            name: "ES vector AP".into(),
            clock_ghz: 0.5,
            flops_per_cycle: 16.0, // 8 GF/s per AP
            cores_per_socket: 1,
            dgemm_efficiency: 0.93,
        },
        memory: MemorySpec {
            technology: "FPLRAM".into(),
            peak_bw_gbs: 32.0,
            stream_bw_socket_gbs: 26.0,
            single_stream_bw_gbs: 26.0,
            latency_ns: 120.0,
            random_gups_socket: 0.03,
            capacity_gb_per_core: 2.0,
        },
        nic: NicSpec {
            name: "ES crossbar".into(),
            injection_bw_gbs: 12.3,
            link_bw_gbs: 12.3,
            sw_overhead_us: 6.0,
            vn_extra_overhead_us: 0.0,
            per_hop_ns: 30.0,
            memcpy_bw_gbs: 16.0,
            eager_threshold_bytes: 64 * 1024,
            rendezvous_latency_us: 6.0,
        },
        torus_dims: [8, 8, 10], // 640 nodes (crossbar; dims nominal)
        app: AppPerfSpec {
            sustained_fraction: 0.14,
            vector: Some(VectorSpec {
                min_efficient_length: 128.0,
                short_vector_fraction: 0.30,
            }),
            smp_threads_per_task: 8,
        },
    }
}

/// IBM p690 cluster at ORNL: 27 32-way POWER4 1.3 GHz SMPs, HPS interconnect.
pub fn p690() -> MachineSpec {
    MachineSpec {
        name: "IBM p690".into(),
        processor: ProcessorSpec {
            name: "1.3GHz POWER4".into(),
            clock_ghz: 1.3,
            flops_per_cycle: 4.0, // 5.2 GF/s
            cores_per_socket: 1,
            dgemm_efficiency: 0.80,
        },
        memory: MemorySpec {
            technology: "DDR".into(),
            peak_bw_gbs: 8.0,
            stream_bw_socket_gbs: 2.1,
            single_stream_bw_gbs: 2.1,
            latency_ns: 180.0,
            random_gups_socket: 0.006,
            capacity_gb_per_core: 1.0,
        },
        nic: NicSpec {
            name: "HPS (2 adapters/node)".into(),
            injection_bw_gbs: 2.0,
            link_bw_gbs: 2.0,
            sw_overhead_us: 7.5,
            vn_extra_overhead_us: 0.0,
            per_hop_ns: 150.0,
            memcpy_bw_gbs: 2.0,
            eager_threshold_bytes: 64 * 1024,
            rendezvous_latency_us: 10.0,
        },
        torus_dims: [3, 3, 96], // 864 processors in 27 32-way nodes (dims nominal)
        app: no_vector(0.067, 32),
    }
}

/// IBM p575 cluster at NERSC: 122 8-way POWER5 1.9 GHz SMPs, HPS.
pub fn p575() -> MachineSpec {
    MachineSpec {
        name: "IBM p575".into(),
        processor: ProcessorSpec {
            name: "1.9GHz POWER5".into(),
            clock_ghz: 1.9,
            flops_per_cycle: 4.0, // 7.6 GF/s
            cores_per_socket: 1,
            dgemm_efficiency: 0.85,
        },
        memory: MemorySpec {
            technology: "DDR2".into(),
            peak_bw_gbs: 12.0,
            stream_bw_socket_gbs: 5.5,
            single_stream_bw_gbs: 5.5,
            latency_ns: 90.0,
            random_gups_socket: 0.012,
            capacity_gb_per_core: 2.0,
        },
        nic: NicSpec {
            name: "HPS (1 two-link adapter/node)".into(),
            injection_bw_gbs: 4.0,
            link_bw_gbs: 2.0,
            sw_overhead_us: 5.0,
            vn_extra_overhead_us: 0.0,
            per_hop_ns: 150.0,
            memcpy_bw_gbs: 4.0,
            eager_threshold_bytes: 64 * 1024,
            rendezvous_latency_us: 8.0,
        },
        torus_dims: [4, 4, 61], // 976 processors in 122 8-way nodes (dims nominal)
        app: no_vector(0.075, 8),
    }
}

/// IBM SP at NERSC: 184 Nighthawk II 16-way POWER3-II 375 MHz SMPs, SP Switch2.
pub fn ibm_sp() -> MachineSpec {
    MachineSpec {
        name: "IBM SP".into(),
        processor: ProcessorSpec {
            name: "375MHz POWER3-II".into(),
            clock_ghz: 0.375,
            flops_per_cycle: 4.0, // 1.5 GF/s
            cores_per_socket: 1,
            dgemm_efficiency: 0.85,
        },
        memory: MemorySpec {
            technology: "SDRAM".into(),
            peak_bw_gbs: 1.6,
            stream_bw_socket_gbs: 0.7,
            single_stream_bw_gbs: 0.7,
            latency_ns: 200.0,
            random_gups_socket: 0.004,
            capacity_gb_per_core: 1.0,
        },
        nic: NicSpec {
            name: "SP Switch2 (2 interfaces/node)".into(),
            injection_bw_gbs: 1.0,
            link_bw_gbs: 0.5,
            sw_overhead_us: 17.0,
            vn_extra_overhead_us: 0.0,
            per_hop_ns: 300.0,
            memcpy_bw_gbs: 1.0,
            eager_threshold_bytes: 32 * 1024,
            rendezvous_latency_us: 20.0,
        },
        torus_dims: [4, 16, 46], // 2,944 processors in 184 16-way nodes (nominal)
        app: no_vector(0.09, 16),
    }
}

/// Every preset, for validation sweeps and Table 1-style reports.
pub fn all() -> Vec<MachineSpec> {
    vec![
        xt3_single(),
        xt3_dual(),
        xt4(),
        xt3_xt4_combined(),
        xt4_ddr2_800(),
        xt4_quad(),
        x1e(),
        earth_simulator(),
        p690(),
        p575(),
        ibm_sp(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xt4_balance_matches_table1() {
        let m = xt4();
        assert_eq!(m.processor.cores_per_socket, 2);
        assert!((m.memory.peak_bw_gbs - 10.6).abs() < 1e-9);
        assert!((m.nic.injection_bw_gbs - 4.0).abs() < 1e-9);
        assert!((m.processor.clock_ghz - 2.6).abs() < 1e-9);
    }

    #[test]
    fn xt3_to_xt4_upgrades_are_monotone() {
        let xt3 = xt3_single();
        let xt4 = xt4();
        assert!(xt4.processor.clock_ghz > xt3.processor.clock_ghz);
        assert!(xt4.memory.peak_bw_gbs > xt3.memory.peak_bw_gbs);
        assert!(xt4.nic.injection_bw_gbs > xt3.nic.injection_bw_gbs);
        // Link bandwidth deliberately unchanged (PTRANS flatness).
        assert_eq!(xt4.nic.link_bw_gbs, xt3.nic.link_bw_gbs);
    }

    #[test]
    fn node_counts_are_plausible() {
        assert!((5000..6000).contains(&xt3_single().node_count()));
        assert!((6000..7000).contains(&xt4().node_count()));
        assert!((11000..12000).contains(&xt3_xt4_combined().node_count()));
    }

    #[test]
    fn comparison_platform_peaks() {
        // Per-processor peaks quoted in §6.1 of the paper.
        assert!((x1e().processor.core_peak_flops() / 1e9 - 18.08).abs() < 0.1);
        assert!((earth_simulator().processor.core_peak_flops() / 1e9 - 8.0).abs() < 0.1);
        assert!((p690().processor.core_peak_flops() / 1e9 - 5.2).abs() < 0.1);
        assert!((p575().processor.core_peak_flops() / 1e9 - 7.6).abs() < 0.1);
        assert!((ibm_sp().processor.core_peak_flops() / 1e9 - 1.5).abs() < 0.1);
    }
}
