//! Roofline-style compute-time model.
//!
//! A [`WorkPacket`] describes one core's slice of computation in terms the
//! balance model can price:
//!
//! * `flops` — retired double-precision flops, pipelined at an
//!   efficiency-scaled core rate;
//! * `serial_dram_bytes` — memory traffic whose cost is *not* shared between
//!   cores (dependent-stride, prefetch-limited traffic priced at the
//!   single-stream bandwidth);
//! * `shared_dram_bytes` — streaming traffic that contends on the socket's
//!   memory controller (a fluid link in the node model);
//! * `random_refs` — random table updates that contend on the socket's
//!   random-access capacity (GUPS).
//!
//! The *uncontended* time is available here (pure math, used for SP-mode
//! estimates and unit tests); the node model in `xtsim-net` executes the same
//! packet against fluid resources so that EP/VN-mode contention emerges.

use serde::impl_serde_struct;

use crate::spec::MachineSpec;

/// One core's slice of computation, priced by the balance model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkPacket {
    /// Retired double-precision flops.
    pub flops: f64,
    /// Fraction of the core's *peak* flop rate this kernel's inner loops
    /// sustain when not memory-bound (1.0 = perfectly pipelined).
    pub flop_efficiency: f64,
    /// Non-shareable (single-stream) DRAM traffic, bytes.
    pub serial_dram_bytes: f64,
    /// Shareable streaming DRAM traffic through the socket controller, bytes.
    pub shared_dram_bytes: f64,
    /// Random memory updates (GUPS-class references).
    pub random_refs: f64,
}

impl WorkPacket {
    /// A packet of pure, cache-resident flops.
    pub fn flops_only(flops: f64, efficiency: f64) -> Self {
        WorkPacket {
            flops,
            flop_efficiency: efficiency,
            ..Default::default()
        }
    }

    /// A streaming packet: flops plus shared-controller traffic (STREAM-class).
    pub fn streaming(flops: f64, efficiency: f64, bytes: f64) -> Self {
        WorkPacket {
            flops,
            flop_efficiency: efficiency,
            shared_dram_bytes: bytes,
            ..Default::default()
        }
    }

    /// Sum of two packets (e.g. accumulate phases).
    pub fn merge(self, other: WorkPacket) -> WorkPacket {
        // Weighted flop efficiency so merged packets price correctly.
        let fl = self.flops + other.flops;
        let eff = if fl > 0.0 {
            fl / (self.flops / self.flop_efficiency.max(1e-12)
                + other.flops / other.flop_efficiency.max(1e-12))
        } else {
            1.0
        };
        WorkPacket {
            flops: fl,
            flop_efficiency: eff,
            serial_dram_bytes: self.serial_dram_bytes + other.serial_dram_bytes,
            shared_dram_bytes: self.shared_dram_bytes + other.shared_dram_bytes,
            random_refs: self.random_refs + other.random_refs,
        }
    }

    /// Uncontended execution time on one core of `machine`, seconds.
    ///
    /// Flop and memory phases are assumed non-overlapping for the serial and
    /// random terms (they are dependence-limited by construction) and
    /// overlapping for the shared streaming term (hardware prefetch), hence:
    /// `t = max(t_flop, t_shared) + t_serial + t_random`.
    pub fn uncontended_time(&self, machine: &MachineSpec) -> f64 {
        let t_flop = self.flop_time(machine);
        let t_shared = self.shared_dram_bytes / (machine.memory.stream_bw_socket_gbs * 1e9);
        let t_serial = self.serial_dram_bytes / (machine.memory.single_stream_bw_gbs * 1e9);
        let t_random = self.random_refs / (machine.memory.random_gups_socket * 1e9);
        t_flop.max(t_shared) + t_serial + t_random
    }

    /// Time of the flop phase alone, seconds.
    pub fn flop_time(&self, machine: &MachineSpec) -> f64 {
        if self.flops <= 0.0 {
            return 0.0;
        }
        let eff = self.flop_efficiency.clamp(1e-3, 1.0);
        self.flops / (machine.processor.core_peak_flops() * eff)
    }

    /// Effective GFLOPS this packet achieves uncontended on `machine`.
    pub fn uncontended_gflops(&self, machine: &MachineSpec) -> f64 {
        let t = self.uncontended_time(machine);
        if t <= 0.0 {
            0.0
        } else {
            self.flops / t / 1e9
        }
    }
}

impl_serde_struct!(WorkPacket { flops, flop_efficiency, serial_dram_bytes, shared_dram_bytes, random_refs });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn pure_flops_price_at_peak_times_efficiency() {
        let m = presets::xt4(); // core peak 5.2 GF
        let w = WorkPacket::flops_only(5.2e9, 1.0);
        assert!((w.uncontended_time(&m) - 1.0).abs() < 1e-12);
        let w2 = WorkPacket::flops_only(5.2e9, 0.5);
        assert!((w2.uncontended_time(&m) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_packet_is_bandwidth_bound() {
        let m = presets::xt4(); // 7.3 GB/s socket stream
        // 73 GB of traffic, negligible flops: 10 s.
        let w = WorkPacket::streaming(1.0, 1.0, 73.0e9);
        assert!((w.uncontended_time(&m) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn random_refs_price_at_gups() {
        let m = presets::xt3_single(); // 0.014 GUPS
        let w = WorkPacket {
            random_refs: 0.014e9,
            flop_efficiency: 1.0,
            ..Default::default()
        };
        assert!((w.uncontended_time(&m) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn xt4_beats_xt3_on_memory_bound_work() {
        let xt3 = presets::xt3_single();
        let xt4 = presets::xt4();
        let w = WorkPacket {
            flops: 1e9,
            flop_efficiency: 0.9,
            serial_dram_bytes: 8e9,
            ..Default::default()
        };
        assert!(w.uncontended_time(&xt4) < w.uncontended_time(&xt3));
    }

    #[test]
    fn merge_adds_and_preserves_pricing() {
        let m = presets::xt4();
        let a = WorkPacket::flops_only(1e9, 1.0);
        let b = WorkPacket::flops_only(2e9, 0.5);
        let merged = a.merge(b);
        let t_sep = a.uncontended_time(&m) + b.uncontended_time(&m);
        let t_merged = merged.uncontended_time(&m);
        assert!((t_sep - t_merged).abs() / t_sep < 1e-9);
        assert_eq!(merged.flops, 3e9);
    }

    #[test]
    fn zero_packet_takes_zero_time() {
        let m = presets::xt4();
        assert_eq!(WorkPacket::default().uncontended_time(&m), 0.0);
    }
}
