//! Machine specification types.
//!
//! A [`MachineSpec`] captures the balance parameters the paper uses to
//! explain every result: core clock, per-socket memory bandwidth and latency,
//! NIC injection bandwidth, link bandwidth, and the execution-mode rules
//! (single-node vs virtual-node). All bandwidths are in **GB/s = 1e9
//! bytes/s**, latencies in the stated unit.

use serde::{impl_serde_struct, impl_serde_unit_enum};

/// Processor (socket) parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorSpec {
    /// Marketing name, e.g. "2.6GHz dual-core Opteron".
    pub name: String,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Double-precision flops per cycle per core (2 for K8 SSE2, 4 for
    /// POWER4/5 FMA×2, 8-wide for vector pipes).
    pub flops_per_cycle: f64,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Fraction of peak achieved by a tuned DGEMM (library BLAS).
    pub dgemm_efficiency: f64,
}

impl ProcessorSpec {
    /// Peak double-precision flop rate of one core, flops/s.
    pub fn core_peak_flops(&self) -> f64 {
        self.clock_ghz * 1e9 * self.flops_per_cycle
    }

    /// Peak double-precision flop rate of the whole socket, flops/s.
    pub fn socket_peak_flops(&self) -> f64 {
        self.core_peak_flops() * self.cores_per_socket as f64
    }
}

/// Memory subsystem parameters (per socket — the Opteron's integrated
/// controller is the unit of sharing between cores).
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    /// Technology label, e.g. "DDR2-667".
    pub technology: String,
    /// Theoretical peak bandwidth per socket, GB/s.
    pub peak_bw_gbs: f64,
    /// Achievable streaming (STREAM-triad) bandwidth per socket, GB/s. This
    /// is the capacity of the shared-controller fluid link.
    pub stream_bw_socket_gbs: f64,
    /// Effective single-core, single-stream bandwidth, GB/s. Governs the
    /// *serial* (non-contended) memory term of cache-unfriendly kernels.
    pub single_stream_bw_gbs: f64,
    /// Open-page load-to-use latency, ns.
    pub latency_ns: f64,
    /// Achievable random-access update rate per socket, GUPS. Capacity of the
    /// socket's random-access fluid link.
    pub random_gups_socket: f64,
    /// Installed capacity per core, GB.
    pub capacity_gb_per_core: f64,
}

/// Network interface + router parameters (SeaStar-style).
#[derive(Debug, Clone, PartialEq)]
pub struct NicSpec {
    /// Interconnect name, e.g. "Cray SeaStar2".
    pub name: String,
    /// Node injection bandwidth (bidirectional aggregate), GB/s.
    pub injection_bw_gbs: f64,
    /// Per-direction torus link bandwidth, GB/s.
    pub link_bw_gbs: f64,
    /// One-way per-message software overhead (send+receive sides combined), µs.
    pub sw_overhead_us: f64,
    /// Additional per-message NIC occupancy when the node runs in VN mode
    /// (the "immature software stack" sharing penalty of the paper), µs.
    pub vn_extra_overhead_us: f64,
    /// Router traversal latency per hop, ns.
    pub per_hop_ns: f64,
    /// Intra-node (core-to-core) memcpy bandwidth, GB/s.
    pub memcpy_bw_gbs: f64,
    /// Eager/rendezvous protocol switch, bytes.
    pub eager_threshold_bytes: u64,
    /// Extra rendezvous handshake latency (RTS/CTS round trip), µs.
    pub rendezvous_latency_us: f64,
}

/// How application-level sustained performance relates to peak — used only by
/// the cross-platform comparison figures (15 and 18), where machines we do
/// not model in detail (vector and fat-SMP systems) appear.
#[derive(Debug, Clone, PartialEq)]
pub struct AppPerfSpec {
    /// Fraction of peak a tuned scalar science code sustains.
    pub sustained_fraction: f64,
    /// Vector architecture behaviour, if any.
    pub vector: Option<VectorSpec>,
    /// OpenMP threads usable per MPI task (SMP platforms); 1 when pure MPI.
    pub smp_threads_per_task: u32,
}

/// Vector-pipeline behaviour: efficiency collapses once the vector length a
/// decomposition produces falls below `min_efficient_length` (the paper notes
/// this at 960 tasks for CAM on the X1E and Earth Simulator).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSpec {
    /// Vector length below which efficiency degrades.
    pub min_efficient_length: f64,
    /// Fraction of sustained performance retained at very short vector length.
    pub short_vector_fraction: f64,
}

/// Execution mode of a dual-core XT node (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Single/serial-node mode: one rank per socket, full memory bandwidth
    /// and exclusive NIC access.
    SN,
    /// Virtual-node mode: one rank per core; cores share the memory
    /// controller and the NIC (with a sharing penalty).
    VN,
}

impl ExecMode {
    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::SN => "SN",
            ExecMode::VN => "VN",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Machine name as used in the paper's legends (e.g. "XT4").
    pub name: String,
    /// Processor/socket description.
    pub processor: ProcessorSpec,
    /// Memory subsystem description.
    pub memory: MemorySpec,
    /// NIC and router description.
    pub nic: NicSpec,
    /// 3-D torus dimensions (X, Y, Z); product = number of nodes.
    pub torus_dims: [usize; 3],
    /// Application-level sustained-performance model.
    pub app: AppPerfSpec,
}

impl MachineSpec {
    /// Number of compute nodes (= sockets for XT systems).
    pub fn node_count(&self) -> usize {
        self.torus_dims[0] * self.torus_dims[1] * self.torus_dims[2]
    }

    /// Total cores across the machine.
    pub fn core_count(&self) -> usize {
        self.node_count() * self.processor.cores_per_socket as usize
    }

    /// Ranks hosted per node in `mode`.
    pub fn ranks_per_node(&self, mode: ExecMode) -> usize {
        match mode {
            ExecMode::SN => 1,
            ExecMode::VN => self.processor.cores_per_socket as usize,
        }
    }

    /// Largest rank count runnable in `mode`.
    pub fn max_ranks(&self, mode: ExecMode) -> usize {
        self.node_count() * self.ranks_per_node(mode)
    }

    /// Memory available to one rank in `mode`, GB (VN mode splits the node
    /// memory evenly between the cores — paper §2).
    pub fn memory_per_rank_gb(&self, mode: ExecMode) -> f64 {
        let node_gb =
            self.memory.capacity_gb_per_core * self.processor.cores_per_socket as f64;
        node_gb / self.ranks_per_node(mode) as f64
    }

    /// One-way latency of the smallest possible cross-node message in
    /// `mode`, in seconds: per-message software overhead plus a single
    /// router hop carrying zero payload. No internode message can complete
    /// faster, which makes this the machine-derived bound the conservative
    /// parallel-DES mode builds its lookahead from (`xtsim-net`'s analytic
    /// layer divides it between the send and release legs of its
    /// collectives).
    pub fn min_remote_latency_s(&self, mode: ExecMode) -> f64 {
        let n = &self.nic;
        let overhead_us = n.sw_overhead_us
            + match mode {
                ExecMode::SN => 0.0,
                ExecMode::VN => n.vn_extra_overhead_us,
            };
        overhead_us * 1e-6 + n.per_hop_ns * 1e-9
    }

    /// Validate internal consistency; returns a list of problems (empty = ok).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let p = &self.processor;
        if p.clock_ghz.is_nan() || p.clock_ghz <= 0.0 {
            problems.push("clock must be positive".into());
        }
        if p.cores_per_socket == 0 {
            problems.push("cores_per_socket must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&p.dgemm_efficiency) {
            problems.push("dgemm_efficiency must be in [0,1]".into());
        }
        let m = &self.memory;
        if m.stream_bw_socket_gbs > m.peak_bw_gbs {
            problems.push("achievable stream bandwidth exceeds peak".into());
        }
        if m.single_stream_bw_gbs > m.stream_bw_socket_gbs {
            problems.push("single-stream bandwidth exceeds socket bandwidth".into());
        }
        let n = &self.nic;
        if n.injection_bw_gbs <= 0.0 || n.link_bw_gbs <= 0.0 {
            problems.push("NIC bandwidths must be positive".into());
        }
        if self.node_count() == 0 {
            problems.push("torus has zero nodes".into());
        }
        problems
    }
}

// JSON forms (field-keyed objects / variant-name strings) for specs: these
// feed the spec fingerprints the sweep-engine cache keys are built from, so
// every parameter field must be listed here.
impl_serde_struct!(ProcessorSpec { name, clock_ghz, flops_per_cycle, cores_per_socket, dgemm_efficiency });
impl_serde_struct!(MemorySpec {
    technology,
    peak_bw_gbs,
    stream_bw_socket_gbs,
    single_stream_bw_gbs,
    latency_ns,
    random_gups_socket,
    capacity_gb_per_core,
});
impl_serde_struct!(NicSpec {
    name,
    injection_bw_gbs,
    link_bw_gbs,
    sw_overhead_us,
    vn_extra_overhead_us,
    per_hop_ns,
    memcpy_bw_gbs,
    eager_threshold_bytes,
    rendezvous_latency_us,
});
impl_serde_struct!(AppPerfSpec { sustained_fraction, vector, smp_threads_per_task });
impl_serde_struct!(VectorSpec { min_efficient_length, short_vector_fraction });
impl_serde_unit_enum!(ExecMode { SN, VN });
impl_serde_struct!(MachineSpec { name, processor, memory, nic, torus_dims, app });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn exec_mode_rank_math() {
        let xt4 = presets::xt4();
        assert_eq!(xt4.ranks_per_node(ExecMode::SN), 1);
        assert_eq!(xt4.ranks_per_node(ExecMode::VN), 2);
        assert_eq!(xt4.max_ranks(ExecMode::VN), 2 * xt4.node_count());
        // VN halves memory per rank.
        assert!(
            (xt4.memory_per_rank_gb(ExecMode::SN) - 2.0 * xt4.memory_per_rank_gb(ExecMode::VN))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn peak_flops() {
        let p = ProcessorSpec {
            name: "test".into(),
            clock_ghz: 2.5,
            flops_per_cycle: 2.0,
            cores_per_socket: 2,
            dgemm_efficiency: 0.9,
        };
        assert_eq!(p.core_peak_flops(), 5.0e9);
        assert_eq!(p.socket_peak_flops(), 1.0e10);
    }

    #[test]
    fn min_remote_latency_orders_modes() {
        let xt4 = presets::xt4();
        let sn = xt4.min_remote_latency_s(ExecMode::SN);
        let vn = xt4.min_remote_latency_s(ExecMode::VN);
        assert!(sn > 0.0);
        // VN adds NIC-sharing overhead, so its floor is at least SN's.
        assert!(vn >= sn);
        // The floor is the zero-byte, one-hop message.
        let n = &xt4.nic;
        assert!((sn - (n.sw_overhead_us * 1e-6 + n.per_hop_ns * 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn presets_validate_clean() {
        for m in presets::all() {
            assert!(m.validate().is_empty(), "{}: {:?}", m.name, m.validate());
        }
    }

    #[test]
    fn spec_serde_roundtrip() {
        let m = presets::xt4();
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

/// Compact 3-D torus dimensions for a job of `nodes` nodes: the smallest
/// near-cubic box with `a·b·c ≥ nodes` (models the compact partition a
/// scheduler would allocate; keeps mean hop counts realistic for small jobs).
pub fn fit_dims(nodes: usize) -> [usize; 3] {
    let nodes = nodes.max(1);
    let c = (nodes as f64).cbrt().floor().max(1.0) as usize;
    let mut best: Option<[usize; 3]> = None;
    for a in 1..=c + 1 {
        for b in a..=nodes.div_ceil(a) {
            let depth = nodes.div_ceil(a * b);
            let dims = [a, b, depth];
            let vol = a * b * depth;
            if vol >= nodes {
                let better = match best {
                    None => true,
                    Some(cur) => {
                        let cur_vol = cur[0] * cur[1] * cur[2];
                        vol < cur_vol
                            || (vol == cur_vol
                                && dims.iter().max() < cur.iter().max())
                    }
                };
                if better {
                    best = Some(dims);
                }
            }
            if a * b > nodes {
                break;
            }
        }
    }
    best.unwrap_or([1, 1, nodes])
}

#[cfg(test)]
mod fit_tests {
    use super::fit_dims;

    #[test]
    fn fits_exact_cubes() {
        assert_eq!(fit_dims(64), [4, 4, 4]);
        assert_eq!(fit_dims(1), [1, 1, 1]);
    }

    #[test]
    fn capacity_is_sufficient_and_tight() {
        for n in [1usize, 2, 3, 7, 13, 100, 500, 1152, 5212, 11508] {
            let d = fit_dims(n);
            let vol = d[0] * d[1] * d[2];
            assert!(vol >= n, "{n}: {d:?}");
            assert!(vol <= n + n / 2 + 8, "{n}: {d:?} too loose");
        }
    }

    #[test]
    fn dims_are_near_cubic() {
        let d = fit_dims(1000);
        assert!(*d.iter().max().unwrap() <= 2 * *d.iter().min().unwrap().max(&5));
    }
}
