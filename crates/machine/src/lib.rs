#![forbid(unsafe_code)]
//! # xtsim-machine — Cray XT3/XT4-era machine models
//!
//! Parametric descriptions of the systems evaluated in the paper (Cray XT3,
//! XT3 dual-core, XT4, and the comparison platforms of Figures 15/18), plus
//! the roofline work-pricing model that converts kernel operation counts
//! into simulated time.
//!
//! The presets are calibrated to the paper's published *single-rank*
//! micro-benchmark values; all multi-rank behaviour (contention, scaling,
//! SN-vs-VN effects) is produced by the simulator layers built on top.
//!
//! ```
//! use xtsim_machine::{presets, ExecMode};
//!
//! let xt4 = presets::xt4();
//! assert_eq!(xt4.ranks_per_node(ExecMode::VN), 2);
//! println!("{}", xtsim_machine::table::system_comparison(&[&xt4]));
//! ```

#![warn(missing_docs)]

pub mod balance;
pub mod fingerprint;
pub mod presets;
mod roofline;
mod spec;
pub mod table;

pub use roofline::WorkPacket;
pub use spec::{
    fit_dims, AppPerfSpec, ExecMode, MachineSpec, MemorySpec, NicSpec, ProcessorSpec, VectorSpec,
};
