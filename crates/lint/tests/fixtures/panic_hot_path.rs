// Fixture: panic-in-hot-path — unwrap/expect (warn) and indexing (note) in
// a configured DES hot path.

fn positive(v: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("present");
    a + b + v[0]
}

fn suppressed(o: Option<u32>) -> u32 {
    // xtsim-lint: allow(panic-in-hot-path, "invariant: caller checked is_some")
    o.unwrap()
}

fn negative_checked(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}
