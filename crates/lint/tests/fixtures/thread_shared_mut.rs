// Fixture: thread-shared-mut — writable or non-Sync process globals in a
// simulator crate (shards on worker threads must not share them).

static mut EVENT_COUNT: u64 = 0;

static SHARED_TABLE: std::cell::RefCell<Vec<u32>> = todo!();

fn suppressed() {}
// xtsim-lint: allow(thread-shared-mut, "fixture demo of the suppression syntax")
static mut LEGACY_KNOB: bool = false;

// Negative cases: Sync globals, thread-locals, and lifetimes stay silent.
static LIMIT: usize = 1024;
static GAUGE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

thread_local! {
    static DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    static SCRATCH: std::cell::RefCell<Vec<u8>> = std::cell::RefCell::new(Vec::new());
}

fn lifetime(s: &'static str) -> &'static str {
    s
}

#[cfg(test)]
mod tests {
    // Test scaffolding may use process globals.
    static mut TEST_ONLY: u32 = 0;
}
