// Fixture: refcell-reentrant-borrow — two live borrows of one cell in a
// single statement.
use std::cell::RefCell;

fn positive(c: &RefCell<Vec<u32>>) {
    merge(c.borrow_mut(), c.borrow_mut());
}

fn negative_match_arms(w: &RefCell<String>, left: bool) {
    match left {
        true => *w.borrow_mut() = "l".to_string(),
        false => *w.borrow_mut() = "r".to_string(),
    }
}

fn negative_sequential(c: &RefCell<Vec<u32>>) {
    c.borrow_mut().push(1);
    c.borrow_mut().push(2);
}

fn suppressed(c: &RefCell<Vec<u32>>, d: &RefCell<Vec<u32>>) {
    // xtsim-lint: allow(refcell-reentrant-borrow, "shared read + exclusive write of the same cell is the point of this fixture")
    compare(c.borrow(), c.borrow_mut());
    let _ = (c, d);
}
