// Fixture: wallclock-in-sim — reading the host clock inside a sim crate.
use std::time::Instant;

fn positive() {
    let t = Instant::now();
    let _ = t;
    let _ = std::time::SystemTime::now();
}

fn suppressed() {
    // xtsim-lint: allow(wallclock-in-sim, "harness-side timing, never enters sim state")
    let _ = Instant::now();
}

fn negative(start: Instant) -> std::time::Duration {
    start.elapsed()
}
