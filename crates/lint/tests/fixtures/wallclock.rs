// Fixture: wallclock-in-sim — reading the host clock inside a sim crate.
use std::time::Instant;

fn positive() {
    let t = Instant::now();
    let _ = t;
    let _ = std::time::SystemTime::now();
}

fn suppressed() {
    // xtsim-lint: allow(wallclock-in-sim, "harness-side timing, never enters sim state")
    let _ = Instant::now();
}

// The xtsim-obs telemetry API wraps the same clock: its timer entry points
// are flagged in sim code too, so metrics can't smuggle wall time in.
fn positive_telemetry_timer() {
    let sw = xtsim_obs::Stopwatch::start();
    let hist = xtsim_obs::histogram("x_seconds", "h");
    hist.observe_since(&sw);
    let _guard = hist.start_timer();
}

fn suppressed_telemetry_timer() {
    // xtsim-lint: allow(wallclock-in-sim, "barrier-stall measurement, harness side")
    let _sw = xtsim_obs::Stopwatch::start();
}

fn negative(start: Instant) -> std::time::Duration {
    // Plain observe takes a value the caller computed; it reads no clock.
    let hist = xtsim_obs::histogram("y_seconds", "h");
    hist.observe(0.5);
    start.elapsed()
}
