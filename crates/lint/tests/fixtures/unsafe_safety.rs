// Fixture: unsafe-without-safety-comment — unsafe blocks must carry a
// nearby justification comment (this header deliberately avoids the
// magic word so it can't cover the positive case below).

fn positive(p: *const u32) -> u32 {
    unsafe { *p }
}

fn suppressed(p: *const u32) -> u32 {
    // xtsim-lint: allow(unsafe-without-safety-comment, "fixture demo of the suppression syntax")
    unsafe { *p }
}

fn documented(p: *const u32) -> u32 {
    // SAFETY: caller guarantees p is valid, aligned, and initialized.
    unsafe { *p }
}
