//! Two mutexes taken in both orders (fixture: deadlock-capable cycle with
//! one direct witness and one behind a call).

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    /// One direction: alpha held, then beta, directly.
    pub fn forward(&self) -> u64 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    /// Other direction: beta held, alpha acquired behind a call.
    pub fn backward(&self) -> u64 {
        let b = self.beta.lock().unwrap();
        *b + self.bump_alpha()
    }

    fn bump_alpha(&self) -> u64 {
        let mut a = self.alpha.lock().unwrap();
        *a += 1;
        *a
    }

    /// Negative: same fixed order as `forward` — no new edge direction.
    pub fn forward_again(&self) -> u64 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a * *b
    }
}
