//! Decode helpers (fixture: outside the hot set; direct panics here are
//! fine *locally* but propagate to hot callers).

pub fn decode(ev: u32) -> u32 {
    table(ev).expect("event id out of range")
}

fn table(ev: u32) -> Option<u32> {
    [7u32, 11, 13].get(ev as usize).copied()
}

pub fn decode_checked(ev: u32) -> Option<u32> {
    table(ev)
}
