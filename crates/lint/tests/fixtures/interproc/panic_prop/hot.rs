//! Event dispatch (fixture: inside `hot_paths` scope).

/// Positive: leaves the hot set and reaches a panic in support.rs.
pub fn dispatch(ev: u32) -> u32 {
    decode(ev)
}

/// Negative: the checked helper cannot panic.
pub fn dispatch_checked(ev: u32) -> u32 {
    decode_checked(ev).unwrap_or(0)
}
