//! Sim-side epoch bookkeeping (fixture: inside `sim_crates` scope).

pub struct Epoch(u64);

impl Epoch {
    /// Positive: reaches the wall clock through the harness helpers.
    pub fn advance_epoch(&mut self) -> u64 {
        self.0 += 1;
        stamp_epoch()
    }

    // xtsim-lint: allow(transitive-taint, "epoch stamps feed the run log, not sim state")
    pub fn log_epoch(&self) -> u64 {
        stamp_epoch()
    }

    /// Negative: a pure helper keeps this function clean.
    pub fn width(&self) -> u64 {
        decimal_width(self.0)
    }
}
