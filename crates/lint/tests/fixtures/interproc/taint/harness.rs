//! Measurement harness (fixture: outside `sim_crates` — a taint *source*,
//! not itself a finding).

use std::time::Instant;

/// Wall-clock epoch stamp; tainted for sim callers.
pub fn stamp_epoch() -> u64 {
    now_ns()
}

fn now_ns() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}

/// Clean helper: arithmetic only.
pub fn decimal_width(mut v: u64) -> u64 {
    let mut w = 1;
    while v >= 10 {
        v /= 10;
        w += 1;
    }
    w
}
