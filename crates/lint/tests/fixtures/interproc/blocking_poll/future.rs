//! A hand-rolled future (fixture: inside `poll_paths` scope).

pub struct Drain {
    pub ready: bool,
}

impl Drain {
    /// Positive: reaches the queue mutex while polling.
    pub fn poll(&mut self) -> bool {
        if self.ready {
            return true;
        }
        drain_queue()
    }

    /// Negative: not named `poll`, never flagged.
    pub fn is_ready(&self) -> bool {
        self.ready
    }
}
