//! Queue internals (fixture: outside `poll_paths`; the mutex itself is
//! legitimate — taking it from a poll body is the bug).

use std::sync::Mutex;

static QUEUE: Mutex<Vec<u32>> = Mutex::new(Vec::new());

pub fn drain_queue() -> bool {
    let mut q = QUEUE.lock().unwrap();
    q.pop().is_some()
}
