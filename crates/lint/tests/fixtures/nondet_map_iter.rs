// Fixture: nondet-map-iter — HashMap/HashSet iteration in a sim crate.
use std::collections::HashMap;

fn positive() {
    let m: HashMap<u32, u32> = HashMap::new();
    for (k, v) in m.iter() {
        let _ = (k, v);
    }
}

fn suppressed() {
    let counts: HashMap<u32, u32> = HashMap::new();
    // xtsim-lint: allow(nondet-map-iter, "order folds through a commutative sum")
    let _total: u32 = counts.values().sum();
}

fn negative_btree() {
    let ordered: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    for (_k, _v) in ordered.iter() {}
}

fn negative_keyed_access(lookup: &HashMap<u32, u32>) -> Option<u32> {
    lookup.get(&3).copied()
}
