// Fixture: ambient-rng — entropy-seeded randomness outside test code.

fn positive() {
    let _rng = rand::thread_rng();
}

fn suppressed() {
    // xtsim-lint: allow(ambient-rng, "fixture demo of the suppression syntax")
    let _ = rand::rngs::OsRng;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_seed_from_entropy() {
        let _ = rand::rngs::StdRng::from_entropy();
    }
}
