//! Property tests: the lexer and the structural parser must never panic,
//! whatever bytes land in a `.rs` file. The lint runs over the whole
//! workspace in CI, so a crash on weird-but-valid UTF-8 (or on Rust-ish
//! fragment soup that confuses the recursive descent) would take the build
//! down with it. These tests don't check *what* is produced — only that
//! something is, without panicking.

use proptest::prelude::*;
use xtsim_lint::config::Config;
use xtsim_lint::lexer;
use xtsim_lint::parser;
use xtsim_lint::rules::FileContext;

fn lint_config() -> Config {
    Config::parse("[lint]\n").expect("minimal config parses")
}

/// Run the full per-file front half of the pipeline on `src`: lex, annotate,
/// parse declarations. Returns counts so the optimizer can't discard the work.
fn lex_and_parse(src: &str) -> (usize, usize) {
    let tokens = lexer::lex(src);
    let cfg = lint_config();
    let ctx = FileContext::new("prop/fuzz.rs", src, &cfg);
    let decls = parser::parse_file(&ctx);
    (tokens.len(), decls.len())
}

/// Arbitrary UTF-8: a vector of candidate code points, keeping only the
/// valid ones (the shim has no string strategy, so strings are built by
/// hand). Surrogates and out-of-range values are dropped by `from_u32`.
fn utf8_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x11_0000u32, 0..400)
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

/// Rust-flavoured fragment soup: sequences drawn from a table of tokens the
/// parser specifically dispatches on — unbalanced braces, stray `fn`, `impl`
/// without a type, generics cut mid-angle, lock calls, allow comments.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "impl ",
    "for ",
    "self",
    "Self::",
    "pub ",
    "mod m",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    "::",
    ".",
    ";",
    ",",
    "->",
    "=>",
    "x",
    "poll",
    "lock()",
    ".lock().unwrap()",
    "Instant::now()",
    "rand::random()",
    "panic!(\"boom\")",
    "unreachable!()",
    "#[cfg(test)]",
    "#[test]",
    "// xtsim-lint: allow(wallclock-in-sim, \"why\")",
    "/* unterminated",
    "\"unterminated string",
    "r#\"raw\"#",
    "b'\\x7f'",
    "'\u{3bb}'",
    "async ",
    "unsafe ",
    "where T: ",
    "let g = a.lock().unwrap();",
    "std::thread::sleep(d)",
    "\n",
];

fn fragment_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..FRAGMENTS.len(), 0..120)
        .prop_map(|ix| ix.into_iter().map(|i| FRAGMENTS[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_and_parser_survive_arbitrary_utf8(src in utf8_soup()) {
        let (toks, decls) = lex_and_parse(&src);
        // Nothing to assert beyond "we got here"; keep the values alive.
        prop_assert!(toks <= src.len() + 1);
        prop_assert!(decls <= toks + 1);
    }

    #[test]
    fn lexer_and_parser_survive_rust_fragment_soup(src in fragment_soup()) {
        let (toks, decls) = lex_and_parse(&src);
        prop_assert!(toks <= src.len() + 1);
        prop_assert!(decls <= toks + 1);
    }
}
