#![forbid(unsafe_code)]
//! Golden tests for the rule catalog: each fixture under `tests/fixtures/`
//! exercises one rule (a positive case, a suppressed case, and negative
//! cases that must stay silent), and its rendered diagnostics must match
//! `tests/fixtures/expected/<name>.txt` byte-for-byte.
//!
//! Regenerate goldens after an intentional rule change with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test -p xtsim-lint --test fixtures
//! ```

use std::path::PathBuf;

use xtsim_lint::config::Config;
use xtsim_lint::report::SuppressedHow;
use xtsim_lint::scan_source;

/// Fixture scan config: every fixture counts as sim code, and the
/// panic-rule fixture is a hot path. Real-path scoping lives in the
/// workspace `lint.toml`; this stays self-contained so goldens don't move
/// when the workspace config does.
const FIXTURE_CONFIG: &str = r#"[lint]
sim_crates = ["fixtures/**"]
hot_paths = ["fixtures/panic_hot_path.rs"]
"#;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Render one fixture's scan result in a stable, diff-friendly form.
fn render(rel: &str, src: &str) -> String {
    let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let (findings, suppressed, unsafe_count) = scan_source(rel, src, &cfg);
    let mut out = String::new();
    for f in &findings {
        out.push_str(&format!(
            "{}:{} {} {}\n",
            f.line,
            f.col,
            f.severity.as_str(),
            f.rule
        ));
    }
    for s in &suppressed {
        let how = match &s.how {
            SuppressedHow::Allow { reason } => format!("allow(\"{reason}\")"),
            SuppressedHow::Baseline => "baseline".to_string(),
        };
        out.push_str(&format!(
            "{}:{} suppressed {} by {}\n",
            s.finding.line, s.finding.col, s.finding.rule, how
        ));
    }
    out.push_str(&format!("unsafe_count={unsafe_count}\n"));
    out
}

fn check_fixture(name: &str) {
    let dir = fixture_dir();
    let src = std::fs::read_to_string(dir.join(name)).expect("read fixture");
    let got = render(&format!("fixtures/{name}"), &src);
    let expected_path = dir.join("expected").join(format!(
        "{}.txt",
        name.strip_suffix(".rs").expect("fixture is a .rs file")
    ));
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::create_dir_all(expected_path.parent().expect("expected dir"))
            .expect("create expected dir");
        std::fs::write(&expected_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_FIXTURES=1 cargo test -p xtsim-lint --test fixtures",
            expected_path.display()
        )
    });
    assert_eq!(
        got, want,
        "fixture {name} diagnostics drifted from {}",
        expected_path.display()
    );
}

#[test]
fn nondet_map_iter_fixture() {
    check_fixture("nondet_map_iter.rs");
}

#[test]
fn wallclock_fixture() {
    check_fixture("wallclock.rs");
}

#[test]
fn ambient_rng_fixture() {
    check_fixture("ambient_rng.rs");
}

#[test]
fn refcell_borrow_fixture() {
    check_fixture("refcell_borrow.rs");
}

#[test]
fn panic_hot_path_fixture() {
    check_fixture("panic_hot_path.rs");
}

#[test]
fn unsafe_safety_fixture() {
    check_fixture("unsafe_safety.rs");
}

#[test]
fn thread_shared_mut_fixture() {
    check_fixture("thread_shared_mut.rs");
}

/// The positive cases in every fixture stay findings when no allow comment
/// covers them — i.e. the goldens above aren't vacuously empty.
#[test]
fn fixtures_have_positive_findings() {
    let dir = fixture_dir();
    for name in [
        "nondet_map_iter.rs",
        "wallclock.rs",
        "ambient_rng.rs",
        "refcell_borrow.rs",
        "panic_hot_path.rs",
        "unsafe_safety.rs",
    ] {
        let src = std::fs::read_to_string(dir.join(name)).expect("read fixture");
        let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
        let (findings, suppressed, _) = scan_source(&format!("fixtures/{name}"), &src, &cfg);
        assert!(
            !findings.is_empty(),
            "{name}: expected at least one unsuppressed finding"
        );
        assert!(
            !suppressed.is_empty(),
            "{name}: expected at least one allow-suppressed finding"
        );
    }
}
