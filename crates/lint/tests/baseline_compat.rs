#![forbid(unsafe_code)]
//! The v2 baseline reader must keep accepting v1 baselines: a repo pinned
//! to an old committed baseline upgrades the tool without churn. The
//! committed sample (`tests/data/baseline-v1-sample.json`) is also run
//! through the binary by `scripts/ci.sh`, where its two
//! matching-nothing entries must both surface as stale.

use std::path::PathBuf;

use xtsim_lint::report::parse_baseline;

#[test]
fn committed_v1_sample_parses_without_function_keys() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/baseline-v1-sample.json");
    let text = std::fs::read_to_string(&path).expect("read committed v1 sample");
    let entries = parse_baseline(&text).expect("v1 baseline parses under the v2 reader");
    assert_eq!(entries.len(), 2, "sample holds exactly two entries");
    for e in &entries {
        assert!(
            e.function.is_none(),
            "v1 entries predate per-function keys: {e:?}"
        );
        assert!(!e.file.is_empty() && !e.rule.is_empty() && !e.snippet.is_empty());
    }
}
