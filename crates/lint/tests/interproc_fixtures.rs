#![forbid(unsafe_code)]
//! Golden tests for the interprocedural rules: each scenario directory under
//! `tests/fixtures/interproc/` holds a small multi-file "workspace" whose
//! analysis (via [`xtsim_lint::analyze_sources`], which runs the call-graph
//! pass the per-file `scan_source` cannot) must match
//! `tests/fixtures/expected/interproc_<scenario>.txt` byte-for-byte,
//! including every witness chain.
//!
//! Regenerate goldens after an intentional rule change with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test -p xtsim-lint --test interproc_fixtures
//! ```

use std::path::PathBuf;

use xtsim_lint::analyze_sources;
use xtsim_lint::config::Config;
use xtsim_lint::report::SuppressedHow;
use xtsim_lint::rules::rule_id;

/// Scope config for the scenarios; self-contained so goldens don't move when
/// the workspace `lint.toml` does. Each scenario exercises exactly one scope.
/// The harness file is wallclock-allowlisted to mirror the real workspace
/// setup — the allowlist excuses reading the clock *there*, but the file
/// still seeds the taint analysis (path allowlists never un-seed facts).
const INTERPROC_CONFIG: &str = r#"[lint]
sim_crates = ["fixtures/interproc/taint/sim.rs"]
hot_paths = ["fixtures/interproc/panic_prop/hot.rs"]
poll_paths = ["fixtures/interproc/blocking_poll/future.rs"]

[allow.wallclock-in-sim]
paths = ["fixtures/interproc/taint/harness.rs"]
"#;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Load one scenario's sources, `(workspace-relative path, text)`, sorted by
/// file name for deterministic analysis order.
fn scenario_sources(scenario: &str) -> Vec<(String, String)> {
    let dir = fixture_dir().join("interproc").join(scenario);
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").file_name().into_string().expect("utf-8 name"))
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let src = std::fs::read_to_string(dir.join(&n)).expect("read fixture source");
            (format!("fixtures/interproc/{scenario}/{n}"), src)
        })
        .collect()
}

/// Render a scenario's analysis in a stable, diff-friendly form: every
/// finding with its full witness chain, then every suppressed finding.
fn render(scenario: &str) -> String {
    let cfg = Config::parse(INTERPROC_CONFIG).expect("fixture config parses");
    let sources = scenario_sources(scenario);
    let (files, _graph) = analyze_sources(&sources, &cfg);
    let mut out = String::new();
    for fa in &files {
        for f in &fa.findings {
            out.push_str(&format!(
                "{}:{}:{} {} {}\n",
                f.file,
                f.line,
                f.col,
                f.severity.as_str(),
                f.rule
            ));
            for (i, h) in f.chain.iter().enumerate() {
                out.push_str(&format!(
                    "  chain[{i}]: {} ({}:{})\n",
                    h.function, h.file, h.line
                ));
            }
        }
        for s in &fa.suppressed {
            let how = match &s.how {
                SuppressedHow::Allow { reason } => format!("allow(\"{reason}\")"),
                SuppressedHow::Baseline => "baseline".to_string(),
            };
            out.push_str(&format!(
                "{}:{}:{} suppressed {} by {}\n",
                s.finding.file, s.finding.line, s.finding.col, s.finding.rule, how
            ));
        }
    }
    out
}

fn check_scenario(scenario: &str) {
    let got = render(scenario);
    let expected_path = fixture_dir()
        .join("expected")
        .join(format!("interproc_{scenario}.txt"));
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::create_dir_all(expected_path.parent().expect("expected dir"))
            .expect("create expected dir");
        std::fs::write(&expected_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_FIXTURES=1 cargo test -p xtsim-lint --test interproc_fixtures",
            expected_path.display()
        )
    });
    assert_eq!(
        got, want,
        "scenario {scenario} diagnostics drifted from {}",
        expected_path.display()
    );
}

#[test]
fn taint_scenario() {
    check_scenario("taint");
}

#[test]
fn panic_prop_scenario() {
    check_scenario("panic_prop");
}

#[test]
fn blocking_poll_scenario() {
    check_scenario("blocking_poll");
}

#[test]
fn lock_cycle_scenario() {
    check_scenario("lock_cycle");
}

/// The lock-cycle finding must carry *both* witness paths: the direct
/// alpha→beta ordering and the beta→alpha ordering behind a call.
#[test]
fn lock_cycle_reports_both_witness_paths() {
    let cfg = Config::parse(INTERPROC_CONFIG).expect("fixture config parses");
    let sources = scenario_sources("lock_cycle");
    let (files, _graph) = analyze_sources(&sources, &cfg);
    let cycle: Vec<_> = files
        .iter()
        .flat_map(|fa| fa.findings.iter())
        .filter(|f| f.rule == rule_id::LOCK_ORDER_CYCLE)
        .collect();
    assert_eq!(cycle.len(), 1, "exactly one cycle component expected");
    let msg = &cycle[0].message;
    assert!(
        msg.contains("holds `locks:alpha`") && msg.contains("then acquires `locks:beta`"),
        "missing alpha-then-beta witness in: {msg}"
    );
    assert!(
        msg.contains("holds `locks:beta`") && msg.contains("acquires `locks:alpha` via call"),
        "missing beta-then-alpha (via-call) witness in: {msg}"
    );
}

/// Every scenario produces at least one unsuppressed interprocedural
/// finding — i.e. the goldens aren't vacuously empty.
#[test]
fn scenarios_have_positive_findings() {
    let cfg = Config::parse(INTERPROC_CONFIG).expect("fixture config parses");
    for (scenario, rule) in [
        ("taint", rule_id::TRANSITIVE_TAINT),
        ("panic_prop", rule_id::PANIC_PROPAGATION),
        ("blocking_poll", rule_id::BLOCKING_IN_POLL),
        ("lock_cycle", rule_id::LOCK_ORDER_CYCLE),
    ] {
        let sources = scenario_sources(scenario);
        let (files, _graph) = analyze_sources(&sources, &cfg);
        let hit = files
            .iter()
            .flat_map(|fa| fa.findings.iter())
            .any(|f| f.rule == rule);
        assert!(hit, "{scenario}: expected a {rule} finding");
    }
}
