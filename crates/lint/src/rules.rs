//! The token-pattern rule engine and the rule catalog.
//!
//! Rules walk the comment-stripped token stream of one file (plus a little
//! file-level context: path scoping from `lint.toml`, `#[cfg(test)]` spans,
//! inline allow comments) and emit [`Finding`]s. Pattern matching is
//! deliberately heuristic — this is a token-level pass, not a type checker —
//! so every rule has an inline escape hatch:
//!
//! ```text
//! // xtsim-lint: allow(<rule-id>, "<reason>")
//! ```
//!
//! which suppresses findings of `<rule-id>` on the comment's own line, or on
//! the next code line when the comment stands alone.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::{lex, Tok, Token};

/// Rule identifiers (also the `allow(...)` names).
pub mod rule_id {
    /// Iterating a `HashMap`/`HashSet` in a simulator crate.
    pub const NONDET_MAP_ITER: &str = "nondet-map-iter";
    /// Reading the wall clock outside the allowlisted harness paths.
    pub const WALLCLOCK_IN_SIM: &str = "wallclock-in-sim";
    /// Entropy-seeded / ambient RNG outside test code.
    pub const AMBIENT_RNG: &str = "ambient-rng";
    /// Two borrows of one `RefCell` reachable in a single statement.
    pub const REFCELL_REENTRANT_BORROW: &str = "refcell-reentrant-borrow";
    /// `unwrap`/`expect` (warn) and indexing (note) in DES hot paths.
    pub const PANIC_IN_HOT_PATH: &str = "panic-in-hot-path";
    /// `unsafe` without a nearby `// SAFETY:` comment.
    pub const UNSAFE_WITHOUT_SAFETY_COMMENT: &str = "unsafe-without-safety-comment";
    /// An `xtsim-lint:` comment that does not parse.
    pub const MALFORMED_ALLOW: &str = "malformed-allow";
    /// `static mut` or a non-`Sync` global in a simulator crate.
    pub const THREAD_SHARED_MUT: &str = "thread-shared-mut";
    /// An allow comment that suppressed nothing.
    pub const UNUSED_ALLOW: &str = "unused-allow";
    /// A sim-crate function reaching wallclock/ambient-RNG through calls.
    pub const TRANSITIVE_TAINT: &str = "transitive-taint";
    /// A cycle in the lock acquisition-order graph.
    pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
    /// A hot-path function calling a may-panic function outside hot files.
    pub const PANIC_PROPAGATION: &str = "panic-propagation";
    /// A std sync lock/Condvar wait reachable from a `fn poll` body.
    pub const BLOCKING_IN_POLL: &str = "blocking-in-poll";
}

/// Finding severity. `Note` is informational and never fails the run;
/// `Warn` fails under `--deny warnings`; `Error` always fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Note,
    Warn,
    Error,
}

impl Severity {
    /// Lowercase name used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One hop of an interprocedural call chain: `function` (at `file`) does
/// the next step of the chain at `line` — a call for intermediate hops, the
/// offending token itself for the terminal hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    pub function: String,
    pub file: String,
    pub line: u32,
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
    pub suggestion: String,
    /// The trimmed source line — the baseline key component that survives
    /// line-number drift.
    pub snippet: String,
    /// Interprocedural rules attach the witness call chain (first hop is the
    /// flagged function); token rules leave it empty.
    pub chain: Vec<ChainHop>,
}

/// A parsed `// xtsim-lint: allow(rule, "reason")` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    pub line: u32,
    pub col: u32,
    /// Lines this allow applies to (its own, plus the next code line when
    /// the comment stands alone).
    pub applies_to: Vec<u32>,
    pub used: bool,
}

/// Everything the rules know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
    /// Source lines (for snippets).
    pub lines: Vec<&'a str>,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub code: Vec<usize>,
    /// Line ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
    /// Whole file is test/bench/example code (by path).
    pub path_is_test: bool,
    /// Parsed allow comments.
    pub allows: Vec<Allow>,
    /// Count of `unsafe` tokens (for the per-crate inventory).
    pub unsafe_count: usize,
}

impl<'a> FileContext<'a> {
    /// Lex and annotate `src`.
    pub fn new(path: &'a str, src: &'a str, cfg: &Config) -> FileContext<'a> {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let lines: Vec<&str> = src.lines().collect();
        let test_spans = find_cfg_test_spans(&tokens, &code);
        let path_is_test = cfg.is_test_path(path);
        let mut ctx = FileContext {
            path,
            lines,
            tokens,
            code,
            test_spans,
            path_is_test,
            allows: Vec::new(),
            unsafe_count: 0,
        };
        ctx.allows = collect_allows(&ctx);
        ctx.unsafe_count = ctx
            .code
            .iter()
            .filter(|&&i| ctx.tokens[i].is_ident("unsafe"))
            .count();
        ctx
    }

    /// The `idx`-th code token.
    fn ct(&self, idx: usize) -> &Token {
        &self.tokens[self.code[idx]]
    }

    /// Trimmed text of a 1-based source line.
    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Is `line` inside test code?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.path_is_test || self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }

    fn finding(
        &self,
        idx: usize,
        rule: &'static str,
        severity: Severity,
        message: String,
        suggestion: &str,
    ) -> Finding {
        let t = self.ct(idx);
        Finding {
            file: self.path.to_string(),
            line: t.line,
            col: t.col,
            rule,
            severity,
            message,
            suggestion: suggestion.to_string(),
            snippet: self.snippet(t.line),
            chain: Vec::new(),
        }
    }
}

/// Run the whole catalog over one file.
pub fn run_rules(ctx: &FileContext, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    nondet_map_iter(ctx, cfg, &mut out);
    wallclock_in_sim(ctx, cfg, &mut out);
    ambient_rng(ctx, cfg, &mut out);
    refcell_reentrant_borrow(ctx, cfg, &mut out);
    panic_in_hot_path(ctx, cfg, &mut out);
    unsafe_without_safety_comment(ctx, cfg, &mut out);
    thread_shared_mut(ctx, cfg, &mut out);
    malformed_allow_comments(ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    // `for x in map.iter()` trips both the for-loop and the method-call
    // pattern; one diagnostic per line is enough for this rule.
    out.dedup_by(|a, b| {
        a.rule == rule_id::NONDET_MAP_ITER && b.rule == rule_id::NONDET_MAP_ITER && a.line == b.line
    });
    out
}

// ---------------------------------------------------------------------------
// allow comments

/// Recognize `xtsim-lint: allow(rule, "reason")` inside a comment.
fn parse_allow(text: &str) -> Option<Result<(String, String), String>> {
    let rest = text.trim().strip_prefix("xtsim-lint:")?.trim();
    let inner = match rest.strip_prefix("allow(").and_then(|s| s.strip_suffix(')')) {
        Some(inner) => inner,
        None => return Some(Err("expected `allow(<rule>, \"<reason>\")`".to_string())),
    };
    let (rule, reason) = match inner.split_once(',') {
        Some(parts) => parts,
        None => {
            return Some(Err(
                "missing reason: `allow(<rule>, \"<reason>\")` requires a quoted why".to_string(),
            ))
        }
    };
    let rule = rule.trim().to_string();
    let reason = reason.trim();
    let reason = match reason.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        Some(r) if !r.trim().is_empty() => r.to_string(),
        _ => return Some(Err("reason must be a non-empty quoted string".to_string())),
    };
    if rule.is_empty() {
        return Some(Err("empty rule name".to_string()));
    }
    Some(Ok((rule, reason)))
}

fn collect_allows(ctx: &FileContext) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, t) in ctx.tokens.iter().enumerate() {
        let text = match &t.tok {
            Tok::LineComment(s) | Tok::BlockComment(s) => s,
            _ => continue,
        };
        let Some(Ok((rule, reason))) = parse_allow(text) else {
            continue; // malformed ones become findings elsewhere
        };
        // Standalone comment (no code token earlier on its line) also covers
        // the next code line.
        let alone = !ctx.tokens[..i]
            .iter()
            .any(|p| !p.is_comment() && p.line == t.line);
        let mut applies_to = vec![t.line];
        if alone {
            if let Some(next) = ctx
                .tokens[i + 1..]
                .iter()
                .find(|p| !p.is_comment() && p.line > t.line)
            {
                applies_to.push(next.line);
            }
        }
        allows.push(Allow {
            rule,
            reason,
            line: t.line,
            col: t.col,
            applies_to,
            used: false,
        });
    }
    allows
}

fn malformed_allow_comments(ctx: &FileContext, out: &mut Vec<Finding>) {
    for t in &ctx.tokens {
        let text = match &t.tok {
            Tok::LineComment(s) | Tok::BlockComment(s) => s,
            _ => continue,
        };
        if let Some(Err(why)) = parse_allow(text) {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                rule: rule_id::MALFORMED_ALLOW,
                severity: Severity::Warn,
                message: format!("unparseable xtsim-lint comment: {why}"),
                suggestion: "write `// xtsim-lint: allow(<rule-id>, \"<why>\")`".to_string(),
                snippet: ctx.snippet(t.line),
                chain: Vec::new(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// cfg(test) spans

/// Line ranges of items annotated `#[cfg(test)]` (or `#[cfg(all(test, …))]`):
/// from the item's opening `{` to its matching `}`.
fn find_cfg_test_spans(tokens: &[Token], code: &[usize]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        let t = &tokens[code[i]];
        if t.is_punct('#') && tokens[code[i + 1]].is_punct('[') {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut has_cfg = false;
            let mut has_test = false;
            let mut has_not = false;
            while j < code.len() && depth > 0 {
                let a = &tokens[code[j]];
                match &a.tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(s) if s == "cfg" => has_cfg = true,
                    Tok::Ident(s) if s == "test" => has_test = true,
                    Tok::Ident(s) if s == "not" => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            if has_cfg && has_test && !has_not {
                // Find the annotated item's `{ … }` body.
                let mut k = j;
                while k < code.len() && !tokens[code[k]].is_punct('{') {
                    // A `;`-terminated item (e.g. `#[cfg(test)] use …;`) has
                    // no body to span.
                    if tokens[code[k]].is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                if k < code.len() && tokens[code[k]].is_punct('{') {
                    let open_line = tokens[code[k]].line;
                    let mut braces = 1usize;
                    let mut m = k + 1;
                    while m < code.len() && braces > 0 {
                        match tokens[code[m]].tok {
                            Tok::Punct('{') => braces += 1,
                            Tok::Punct('}') => braces -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    let close_line = tokens[code[m.saturating_sub(1)]].line;
                    spans.push((open_line, close_line));
                    i = m;
                    continue;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

// ---------------------------------------------------------------------------
// nondet-map-iter

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain",
    "into_keys", "into_values",
];
/// Methods that forward to an inner cell/handle when walking back to a
/// receiver: `map.borrow_mut().iter()` iterates `map`.
const PASSTHROUGH_METHODS: [&str; 6] = ["borrow", "borrow_mut", "lock", "as_ref", "as_mut", "clone"];

fn nondet_map_iter(ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.is_sim_crate(ctx.path) || cfg.rule_allows(rule_id::NONDET_MAP_ITER, ctx.path) {
        return;
    }
    let map_vars = collect_map_vars(ctx);
    if map_vars.is_empty() {
        return;
    }
    let n = ctx.code.len();
    for i in 0..n {
        if ctx.is_test_line(ctx.ct(i).line) {
            continue;
        }
        // `recv.method(` where method is an iteration method.
        if i >= 1
            && i + 1 < n
            && ctx.ct(i).ident().is_some_and(|m| ITER_METHODS.contains(&m))
            && ctx.ct(i - 1).is_punct('.')
            && ctx.ct(i + 1).is_punct('(')
        {
            if let Some(name) = receiver_ident(ctx, i - 1) {
                if map_vars.contains(name) {
                    let method = ctx.ct(i).ident().unwrap_or_default().to_string();
                    out.push(ctx.finding(
                        i,
                        rule_id::NONDET_MAP_ITER,
                        Severity::Error,
                        format!(
                            "`{name}.{method}()` iterates a HashMap/HashSet in a simulator \
                             crate; RandomState iteration order can leak into simulation \
                             results"
                        ),
                        "use BTreeMap/BTreeSet or collect-and-sort keys before iterating; if \
                         order provably cannot reach sim output, annotate with // xtsim-lint: \
                         allow(nondet-map-iter, \"<why>\")",
                    ));
                }
            }
        }
        // `for pat in <expr mentioning a map var> {`
        if ctx.ct(i).is_ident("for") {
            if let Some(name) = for_loop_over_map(ctx, i, &map_vars) {
                out.push(ctx.finding(
                    i,
                    rule_id::NONDET_MAP_ITER,
                    Severity::Error,
                    format!(
                        "`for … in` over HashMap/HashSet `{name}` in a simulator crate; \
                         RandomState iteration order can leak into simulation results"
                    ),
                    "use BTreeMap/BTreeSet or iterate sorted keys; if order provably cannot \
                     reach sim output, annotate with // xtsim-lint: allow(nondet-map-iter, \
                     \"<why>\")",
                ));
            }
        }
    }
}

/// Identifiers bound (anywhere in the file) to a `HashMap`/`HashSet` type:
/// `name: …HashMap<…>` annotations (fields, params, lets) and
/// `let [mut] name = …HashMap::new()`-style initializations.
fn collect_map_vars(ctx: &FileContext) -> BTreeSet<String> {
    let mut vars = BTreeSet::new();
    let n = ctx.code.len();
    for i in 0..n {
        // A test-only binding must not poison a production identifier of the
        // same name (findings on test lines are skipped anyway).
        if ctx.is_test_line(ctx.ct(i).line) {
            continue;
        }
        // `name : <type…>` — not a path segment (`a::name`).
        if let Some(name) = ctx.ct(i).ident() {
            let colon = i + 1 < n
                && ctx.ct(i + 1).is_punct(':')
                && !(i + 2 < n && ctx.ct(i + 2).is_punct(':'))
                && !(i >= 1 && ctx.ct(i - 1).is_punct(':'));
            if colon && type_mentions_hash(ctx, i + 2) {
                vars.insert(name.to_string());
            }
        }
        // `let [mut] name … = … HashMap::… ;`
        if ctx.ct(i).is_ident("let") {
            let mut j = i + 1;
            if j < n && ctx.ct(j).is_ident("mut") {
                j += 1;
            }
            let Some(name) = ctx.code.get(j).map(|&t| &ctx.tokens[t]).and_then(Token::ident)
            else {
                continue;
            };
            let name = name.to_string();
            // Scan the initializer up to the statement's `;`.
            let mut k = j + 1;
            let mut depth = 0i32;
            let mut saw_hash = false;
            while k < n {
                let t = ctx.ct(k);
                match &t.tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Tok::Punct(';') if depth == 0 => break,
                    Tok::Ident(s) if HASH_TYPES.contains(&s.as_str()) => saw_hash = true,
                    _ => {}
                }
                k += 1;
            }
            if saw_hash {
                vars.insert(name);
            }
        }
    }
    vars
}

/// Does the type expression starting at code index `i` mention
/// `HashMap`/`HashSet` before ending (at `, ; = ) {` at angle-depth 0)?
fn type_mentions_hash(ctx: &FileContext, mut i: usize) -> bool {
    let mut angle = 0i32;
    let mut paren = 0i32;
    while i < ctx.code.len() {
        let t = ctx.ct(i);
        match &t.tok {
            Tok::Ident(s) if HASH_TYPES.contains(&s.as_str()) => return true,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') if paren > 0 => paren -= 1,
            Tok::Punct(',') | Tok::Punct(';') | Tok::Punct('=') | Tok::Punct('{')
            | Tok::Punct(')') | Tok::Punct(']')
                if angle <= 0 && paren <= 0 =>
            {
                return false
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// Walking back from the `.` at code index `dot`, find the root identifier
/// of a receiver chain, skipping passthrough method calls and index groups:
/// `self.world.gates.borrow_mut()` → `gates`; `engines[dst].iter()` →
/// `engines`.
fn receiver_ident<'c>(ctx: &'c FileContext, dot: usize) -> Option<&'c str> {
    let mut j = dot.checked_sub(1)?;
    loop {
        match &ctx.ct(j).tok {
            Tok::Punct(')') => {
                // Skip the call's argument list, then require a passthrough
                // method name so `make_map().iter()` doesn't resolve to a
                // variable.
                j = skip_group_back(ctx, j, '(', ')')?;
                let m = ctx.ct(j).ident()?;
                if !PASSTHROUGH_METHODS.contains(&m) {
                    return None;
                }
                j = j.checked_sub(1)?;
                if !ctx.ct(j).is_punct('.') {
                    return None;
                }
                j = j.checked_sub(1)?;
            }
            Tok::Punct(']') => {
                // Step to the indexed expression's last token (usually the
                // ident before `[`), and let the next iteration consume it.
                j = skip_group_back(ctx, j, '[', ']')?;
            }
            Tok::Ident(name) => return Some(name),
            _ => return None,
        }
    }
}

/// With `close` at code index `j`, return the index just before the matching
/// opener.
fn skip_group_back(ctx: &FileContext, j: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = j;
    loop {
        let t = ctx.ct(k);
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return k.checked_sub(1);
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// For a `for` at code index `i`, return a map variable mentioned in the
/// iterated expression (between `in` and the body `{`).
fn for_loop_over_map(ctx: &FileContext, i: usize, map_vars: &BTreeSet<String>) -> Option<String> {
    let n = ctx.code.len();
    // Find `in` at pattern depth 0.
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < n {
        let t = ctx.ct(j);
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Ident(s) if s == "in" && depth == 0 => break,
            Tok::Punct('{') | Tok::Punct(';') => return None,
            _ => {}
        }
        j += 1;
    }
    // Scan the iterated expression to the body's `{`.
    let mut k = j + 1;
    let mut depth = 0i32;
    while k < n {
        let t = ctx.ct(k);
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => return None,
            Tok::Punct(';') => return None,
            Tok::Ident(name) if map_vars.contains(name.as_str()) => {
                return Some(name.clone());
            }
            _ => {}
        }
        k += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// wallclock-in-sim

fn wallclock_in_sim(ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.rule_allows(rule_id::WALLCLOCK_IN_SIM, ctx.path) {
        return;
    }
    let n = ctx.code.len();
    for i in 0..n {
        let t = ctx.ct(i);
        if ctx.is_test_line(t.line) {
            continue;
        }
        let flagged = match t.ident() {
            // Only the *call* reads the clock; a bare import is harmless.
            Some("Instant") => {
                i + 3 < n
                    && ctx.ct(i + 1).is_punct(':')
                    && ctx.ct(i + 2).is_punct(':')
                    && ctx.ct(i + 3).is_ident("now")
            }
            Some("SystemTime") | Some("UNIX_EPOCH") => true,
            _ => false,
        };
        // The xtsim-obs telemetry API is a wall clock behind a nicer name:
        // Stopwatch wraps Instant, start_timer/observe_since record elapsed
        // wall time. Flagging the tokens keeps sim crates from laundering a
        // clock read through the metrics layer.
        let telemetry_timer =
            matches!(t.ident(), Some("Stopwatch" | "start_timer" | "observe_since"));
        if flagged {
            let what = t.ident().unwrap_or_default().to_string();
            out.push(ctx.finding(
                i,
                rule_id::WALLCLOCK_IN_SIM,
                Severity::Error,
                format!(
                    "`{what}` reads the wall clock; simulation results must depend only on \
                     the virtual clock, or figures stop being reproducible"
                ),
                "use SimHandle::now() for simulated time; wall-clock *measurement* belongs in \
                 the paths allowlisted under [allow.wallclock-in-sim] in lint.toml",
            ));
        } else if telemetry_timer {
            let what = t.ident().unwrap_or_default().to_string();
            out.push(ctx.finding(
                i,
                rule_id::WALLCLOCK_IN_SIM,
                Severity::Error,
                format!(
                    "`{what}` is a wall-clock telemetry timer (xtsim-obs); calling it here \
                     routes real time into simulation code"
                ),
                "record latencies from the harness side (sweep engine, serve layer) or \
                 allowlist the measurement under [allow.wallclock-in-sim] in lint.toml",
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// ambient-rng

pub(crate) const AMBIENT_RNG_IDENTS: [&str; 4] =
    ["thread_rng", "from_entropy", "OsRng", "from_os_rng"];

fn ambient_rng(ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.rule_allows(rule_id::AMBIENT_RNG, ctx.path) {
        return;
    }
    for i in 0..ctx.code.len() {
        let t = ctx.ct(i);
        if ctx.is_test_line(t.line) {
            continue;
        }
        if t.ident().is_some_and(|s| AMBIENT_RNG_IDENTS.contains(&s)) {
            let what = t.ident().unwrap_or_default().to_string();
            out.push(ctx.finding(
                i,
                rule_id::AMBIENT_RNG,
                Severity::Error,
                format!(
                    "`{what}` draws OS entropy; simulations must use seeded, deterministic \
                     RNG streams (SimHandle::rng / seed_from_u64)"
                ),
                "thread seeds through JobKey/MachineSpec so reruns reproduce; entropy is only \
                 acceptable in test scaffolding",
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// refcell-reentrant-borrow

fn refcell_reentrant_borrow(ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.rule_allows(rule_id::REFCELL_REENTRANT_BORROW, ctx.path) {
        return;
    }
    let n = ctx.code.len();
    let mut stmt_start = 0usize;
    // Paren/bracket nesting within the current segment: a `,` at depth 0
    // separates match arms (only one arm ever runs), while a `,` inside
    // `(…)`/`[…]` separates call arguments or array elements (whose borrow
    // guards do coexist).
    let mut depth = 0i32;
    let mut i = 0usize;
    while i <= n {
        let boundary = i == n || {
            let t = ctx.ct(i);
            match &t.tok {
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => true,
                Tok::Punct(',') => depth <= 0,
                Tok::Punct('(') | Tok::Punct('[') => {
                    depth += 1;
                    false
                }
                Tok::Punct(')') | Tok::Punct(']') => {
                    depth -= 1;
                    false
                }
                _ => false,
            }
        };
        if boundary {
            check_stmt_borrows(ctx, stmt_start, i, out);
            stmt_start = i + 1;
            depth = 0;
        }
        i += 1;
    }
}

fn check_stmt_borrows(ctx: &FileContext, start: usize, end: usize, out: &mut Vec<Finding>) {
    // Collect (receiver-path, is_mut, code-index) for each borrow call.
    let mut borrows: Vec<(String, bool, usize)> = Vec::new();
    let mut i = start;
    while i < end {
        let t = ctx.ct(i);
        let is_mut = match t.ident() {
            Some("borrow_mut") => true,
            Some("borrow") => false,
            _ => {
                i += 1;
                continue;
            }
        };
        let called = i >= 1
            && i + 1 < end
            && ctx.ct(i - 1).is_punct('.')
            && ctx.ct(i + 1).is_punct('(');
        if called {
            if let Some(path) = receiver_path(ctx, i - 1) {
                borrows.push((path, is_mut, i));
            }
        }
        i += 1;
    }
    for (k, (path, is_mut, idx)) in borrows.iter().enumerate() {
        for (prev_path, prev_mut, _) in &borrows[..k] {
            if path == prev_path && (*is_mut || *prev_mut) {
                let kinds = match (prev_mut, is_mut) {
                    (true, true) => "borrow_mut × borrow_mut",
                    (true, false) => "borrow_mut then borrow",
                    (false, true) => "borrow then borrow_mut",
                    (false, false) => unreachable!("shared × shared not flagged"),
                };
                out.push(ctx.finding(
                    *idx,
                    rule_id::REFCELL_REENTRANT_BORROW,
                    Severity::Error,
                    format!(
                        "two borrows of RefCell `{path}` reachable in one statement \
                         ({kinds}); both guards live at once panics at runtime"
                    ),
                    "bind the first borrow in its own `let` and end its scope before the \
                     second, or restructure to borrow once",
                ));
                break;
            }
        }
    }
}

/// Full dotted receiver path before the `.` at code index `dot`, including
/// index expressions so `engines[a]` and `engines[b]` stay distinct:
/// `self.world.engines[self.rank]`.
pub(crate) fn receiver_path(ctx: &FileContext, dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot.checked_sub(1)?;
    loop {
        match &ctx.ct(j).tok {
            Tok::Punct(']') => {
                // `before` is the last token of the indexed expression; the
                // `[` sits at before+1, the inner tokens at before+2..j.
                let before = skip_group_back(ctx, j, '[', ']')?;
                let inner: Vec<String> =
                    ((before + 2)..j).map(|k| token_text(&ctx.ct(k).tok)).collect();
                parts.push(format!("[{}]", inner.join("")));
                j = before;
                // Let the next iteration consume the indexed expression
                // itself (`engines` in `engines[dst]`).
                continue;
            }
            Tok::Punct(')') => {
                // A call in the chain: keep `name()` as a path component.
                let before = skip_group_back(ctx, j, '(', ')')?;
                let m = ctx.ct(before).ident()?.to_string();
                parts.push(format!("{m}()"));
                j = before;
            }
            Tok::Ident(name) => {
                parts.push(name.clone());
                j = match j.checked_sub(1) {
                    Some(p) if ctx.ct(p).is_punct('.') => match p.checked_sub(1) {
                        Some(q) => q,
                        None => break,
                    },
                    _ => break,
                };
                continue;
            }
            _ => break,
        }
        // After a group, expect `.` to continue the chain.
        j = match j.checked_sub(1) {
            Some(p) if ctx.ct(p).is_punct('.') => match p.checked_sub(1) {
                Some(q) => q,
                None => break,
            },
            _ => break,
        };
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

fn token_text(tok: &Tok) -> String {
    match tok {
        Tok::Ident(s) | Tok::Num(s) => s.clone(),
        Tok::Lifetime(s) => format!("'{s}"),
        Tok::Punct(c) => c.to_string(),
        Tok::Str => "\"…\"".to_string(),
        Tok::Char => "'…'".to_string(),
        Tok::LineComment(_) | Tok::BlockComment(_) => String::new(),
    }
}

// ---------------------------------------------------------------------------
// panic-in-hot-path

fn panic_in_hot_path(ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.is_hot_path(ctx.path) || cfg.rule_allows(rule_id::PANIC_IN_HOT_PATH, ctx.path) {
        return;
    }
    let n = ctx.code.len();
    for i in 0..n {
        let t = ctx.ct(i);
        if ctx.is_test_line(t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(` — warn.
        if i >= 1
            && i + 1 < n
            && ctx.ct(i - 1).is_punct('.')
            && ctx.ct(i + 1).is_punct('(')
            && matches!(t.ident(), Some("unwrap") | Some("expect"))
        {
            let what = t.ident().unwrap_or_default().to_string();
            out.push(ctx.finding(
                i,
                rule_id::PANIC_IN_HOT_PATH,
                Severity::Warn,
                format!(
                    "`.{what}()` in a DES hot path; a panic mid-event-dispatch aborts the \
                     whole simulation"
                ),
                "prefer returning/propagating, or document the invariant in the expect \
                 message and baseline it (lint-baseline.json)",
            ));
        }
        // `ident[…]` indexing — note (informational: slab indexing is the
        // engine's idiom; bounds panics are still panics, so inventory it).
        if i + 1 < n && t.ident().is_some() && ctx.ct(i + 1).is_punct('[') {
            out.push(ctx.finding(
                i,
                rule_id::PANIC_IN_HOT_PATH,
                Severity::Note,
                format!(
                    "indexing `{}[…]` in a DES hot path can panic on out-of-bounds",
                    t.ident().unwrap_or_default()
                ),
                "informational: use get()/get_mut() where a miss is reachable",
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// unsafe-without-safety-comment

/// How many lines above an `unsafe` token a `SAFETY:` comment still counts.
const SAFETY_COMMENT_WINDOW: u32 = 6;

fn unsafe_without_safety_comment(ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.rule_allows(rule_id::UNSAFE_WITHOUT_SAFETY_COMMENT, ctx.path) {
        return;
    }
    let safety_lines: Vec<u32> = ctx
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::LineComment(s) | Tok::BlockComment(s) if s.contains("SAFETY") => Some(t.line),
            _ => None,
        })
        .collect();
    for i in 0..ctx.code.len() {
        let t = ctx.ct(i);
        if !t.is_ident("unsafe") {
            continue;
        }
        let covered = safety_lines
            .iter()
            .any(|&l| l <= t.line && t.line - l <= SAFETY_COMMENT_WINDOW);
        if !covered {
            out.push(ctx.finding(
                i,
                rule_id::UNSAFE_WITHOUT_SAFETY_COMMENT,
                Severity::Warn,
                "`unsafe` without a nearby `// SAFETY:` comment".to_string(),
                "state the invariant that makes this sound in a `// SAFETY:` comment \
                 directly above the unsafe block",
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// thread-shared-mut

/// Interior-mutability / shared-ownership types that are not `Sync`: a
/// global of such a type is exactly the state the parallel DES mode must
/// not share across shards.
const NON_SYNC_TYPES: [&str; 4] = ["RefCell", "Cell", "UnsafeCell", "Rc"];

/// Flag `static mut` items and non-`Sync` `static` globals in simulator
/// crates. The parallel engine runs one world per worker thread; any
/// process-global mutable state would couple shards and break both memory
/// safety (for `static mut`) and partition invariance. `thread_local!`
/// statics are exempt — per-thread state is the sanctioned pattern (trace
/// capture, sweep knobs).
fn thread_shared_mut(ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.is_sim_crate(ctx.path) || cfg.rule_allows(rule_id::THREAD_SHARED_MUT, ctx.path) {
        return;
    }
    let tl_spans = thread_local_spans(ctx);
    let n = ctx.code.len();
    for i in 0..n {
        let t = ctx.ct(i);
        if !t.is_ident("static") || ctx.is_test_line(t.line) {
            continue;
        }
        if tl_spans.iter().any(|&(a, b)| t.line >= a && t.line <= b) {
            continue;
        }
        if i + 1 < n && ctx.ct(i + 1).is_ident("mut") {
            let name = ctx
                .code
                .get(i + 2)
                .map(|&k| &ctx.tokens[k])
                .and_then(Token::ident)
                .unwrap_or("_");
            out.push(ctx.finding(
                i,
                rule_id::THREAD_SHARED_MUT,
                Severity::Error,
                format!(
                    "`static mut {name}` in a simulator crate; the parallel DES mode runs                      shards on worker threads, and writable process globals are a data race                      and a determinism leak"
                ),
                "move the state into the Sim world (Rc/RefCell inside one shard), use                  thread_local!, or an atomic with documented ordering",
            ));
            continue;
        }
        // `static NAME : <type> = …;` — non-Sync type mention in the
        // annotation. (Such code is usually rejected by rustc too; the lint
        // exists to catch it in cfg-gated or macro-expanded paths rustc
        // may not see on every build.)
        if let Some(colon) = ctx.code.get(i + 2).map(|&k| &ctx.tokens[k]) {
            if colon.is_punct(':') && ctx.ct(i + 1).ident().is_some() {
                let name = ctx.ct(i + 1).ident().unwrap_or("_").to_string();
                if static_type_mentions_non_sync(ctx, i + 3) {
                    out.push(ctx.finding(
                        i,
                        rule_id::THREAD_SHARED_MUT,
                        Severity::Error,
                        format!(
                            "global `static {name}` has a non-Sync type                              (Cell/RefCell/Rc/UnsafeCell); shards on different worker                              threads must not share interior-mutable state"
                        ),
                        "wrap per-thread state in thread_local!, or keep it inside the                          shard's Sim world",
                    ));
                }
            }
        }
    }
}

/// Line spans of `thread_local! { … }` invocations.
fn thread_local_spans(ctx: &FileContext) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let n = ctx.code.len();
    let mut i = 0;
    while i + 2 < n {
        if ctx.ct(i).is_ident("thread_local")
            && ctx.ct(i + 1).is_punct('!')
            && ctx.ct(i + 2).is_punct('{')
        {
            let open_line = ctx.ct(i + 2).line;
            let mut depth = 1usize;
            let mut j = i + 3;
            while j < n && depth > 0 {
                match ctx.ct(j).tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let close_line = ctx.ct(j.saturating_sub(1)).line;
            spans.push((open_line, close_line));
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// Does the type annotation starting at code index `i` (after the `:`)
/// mention a non-`Sync` wrapper before its `=` or `;` at angle-depth 0?
fn static_type_mentions_non_sync(ctx: &FileContext, mut i: usize) -> bool {
    let mut angle = 0i32;
    while i < ctx.code.len() {
        let t = ctx.ct(i);
        match &t.tok {
            Tok::Ident(s) if NON_SYNC_TYPES.contains(&s.as_str()) => return true,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('=') | Tok::Punct(';') if angle <= 0 => return false,
            _ => {}
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_cfg() -> Config {
        Config::parse(
            r#"
[lint]
sim_crates = ["**"]
hot_paths = ["hot.rs"]
test_paths = ["**/tests/**"]
"#,
        )
        .unwrap()
    }

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let cfg = sim_cfg();
        let ctx = FileContext::new(path, src, &cfg);
        run_rules(&ctx, &cfg)
    }

    #[test]
    fn detects_map_iteration_via_annotation_and_ctor() {
        let src = r#"
use std::collections::HashMap;
struct S { m: HashMap<u32, u32> }
fn f(s: &S) -> u32 { s.m.values().sum() }
fn g() {
    let mut local = HashMap::new();
    local.insert(1, 2);
    for (k, v) in &local { drop((k, v)); }
}
"#;
        let f = run("a.rs", src);
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec![rule_id::NONDET_MAP_ITER; 2], "{f:#?}");
    }

    #[test]
    fn keyed_access_is_not_iteration() {
        let src = r#"
use std::collections::HashMap;
fn f() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _ = m.get(&1);
    m.remove(&1);
    m.entry(3).or_insert(4);
}
"#;
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn map_iter_through_refcell_borrow() {
        let src = r#"
use std::cell::RefCell;
use std::collections::HashMap;
struct S { gates: RefCell<HashMap<u64, u64>> }
fn f(s: &S) -> usize { s.gates.borrow().keys().count() }
"#;
        let f = run("a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule_id::NONDET_MAP_ITER);
        assert!(f[0].message.contains("gates.keys()"), "{}", f[0].message);
    }

    #[test]
    fn btreemap_is_fine() {
        let src = r#"
use std::collections::BTreeMap;
fn f() {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    for (k, v) in &m { drop((k, v)); }
    let _ = m.values().count();
}
"#;
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn vec_iter_named_like_nothing_is_fine() {
        // `iter()` on a non-map receiver must not fire.
        let src = "fn f(v: &Vec<u32>) -> u32 { v.iter().sum() }";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn wallclock_instant_now_and_systemtime() {
        let src = r#"
fn f() -> std::time::Instant { std::time::Instant::now() }
fn g() { let _ = std::time::SystemTime::now(); }
"#;
        let f = run("a.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == rule_id::WALLCLOCK_IN_SIM));
    }

    #[test]
    fn instant_import_alone_is_fine() {
        assert!(run("a.rs", "use std::time::Instant;").is_empty());
    }

    #[test]
    fn reentrant_borrow_same_statement() {
        let src = "fn f(c: &std::cell::RefCell<u32>) { merge(c.borrow_mut(), c.borrow_mut()); }";
        let f = run("a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule_id::REFCELL_REENTRANT_BORROW);
    }

    #[test]
    fn sequential_statements_do_not_flag() {
        let src = r#"
fn f(c: &std::cell::RefCell<u32>) {
    *c.borrow_mut() += 1;
    *c.borrow_mut() += 1;
}
"#;
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn distinct_receivers_do_not_flag() {
        let src =
            "fn f(a: &std::cell::RefCell<u32>, b: &std::cell::RefCell<u32>) { merge(a.borrow_mut(), b.borrow_mut()); }";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn distinct_indices_do_not_flag() {
        let src = "fn f(v: &[std::cell::RefCell<u32>]) { merge(v[0].borrow_mut(), v[1].borrow_mut()); }";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn same_index_does_flag() {
        let src = "fn f(v: &[std::cell::RefCell<u32>]) { merge(v[0].borrow_mut(), v[0].borrow_mut()); }";
        let f = run("a.rs", src);
        assert_eq!(f.len(), 1, "{f:#?}");
    }

    #[test]
    fn hot_path_unwrap_warns_and_index_notes() {
        let src = "fn f(v: &[u32], o: Option<u32>) -> u32 { v[0] + o.unwrap() }";
        let f = run("hot.rs", src);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(f
            .iter()
            .any(|x| x.severity == Severity::Warn && x.message.contains("unwrap")));
        assert!(f
            .iter()
            .any(|x| x.severity == Severity::Note && x.message.contains("indexing")));
        // Same file content, not a hot path: nothing fires.
        assert!(run("cold.rs", src).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f(p: *const u32) -> u32 { unsafe { *p } }";
        let f = run("a.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule_id::UNSAFE_WITHOUT_SAFETY_COMMENT);
        let good = "fn f(p: *const u32) -> u32 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
        assert!(run("a.rs", good).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt_from_determinism_rules() {
        let src = r#"
fn prod() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for x in m.keys() { drop(x); }
        let _ = std::time::Instant::now();
    }
}
"#;
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn test_paths_are_exempt() {
        let src = "fn t() { let _ = std::time::Instant::now(); }";
        assert!(run("crates/x/tests/a.rs", src).is_empty());
        assert_eq!(run("crates/x/src/a.rs", src).len(), 1);
    }

    #[test]
    fn malformed_allow_is_flagged() {
        let src = "// xtsim-lint: allow(nondet-map-iter)\nfn f() {}";
        let f = run("a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule_id::MALFORMED_ALLOW);
    }

    #[test]
    fn strings_and_comments_do_not_fire_rules() {
        let src = r#"
fn f() -> &'static str {
    // Instant::now() in a comment, thread_rng() too
    "Instant::now() SystemTime unsafe thread_rng"
}
"#;
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn static_mut_and_non_sync_globals_flagged() {
        let src = r#"
static mut COUNTER: u64 = 0;
static TABLE: std::cell::RefCell<Vec<u32>> = todo!();
static OK: u64 = 7;
static ATOMIC: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
"#;
        let f = run("a.rs", src);
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec![rule_id::THREAD_SHARED_MUT; 2], "{f:#?}");
        assert!(f[0].message.contains("static mut COUNTER"));
        assert!(f[1].message.contains("TABLE"));
    }

    #[test]
    fn thread_local_statics_are_exempt() {
        let src = r#"
thread_local! {
    static DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    static BUF: std::cell::RefCell<Vec<u8>> = std::cell::RefCell::new(Vec::new());
}
fn f() { DEPTH.with(|d| d.get()); }
"#;
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn static_lifetime_is_not_a_static_item() {
        let src = "fn f(s: &'static str) -> &'static str { s }";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn ambient_rng_flagged_outside_tests() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }";
        let f = run("a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule_id::AMBIENT_RNG);
    }
}
