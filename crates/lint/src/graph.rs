//! Workspace-wide call graph over the [`crate::parser`] item index.
//!
//! Resolution is deliberately approximate — module-path + method-name
//! matching, no type inference — and honest about it: an edge is added only
//! when exactly one candidate survives filtering; everything else is either
//! counted as external (std/closure calls) or recorded in
//! [`CallGraph::unresolved`], never guessed. Method names that collide with
//! ubiquitous std methods (`clone`, `insert`, `lock`, …) are never resolved
//! unqualified; qualified calls (`PoisonBarrier::wait`) still resolve.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::FnDecl;

/// A resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee index into [`CallGraph::fns`].
    pub to: usize,
    /// Call-site position in the caller's file.
    pub line: u32,
    pub col: u32,
    /// Call-site code-token index (orders calls against lock scopes).
    pub tok: usize,
}

/// A call we could not pin to one workspace function.
#[derive(Debug, Clone)]
pub struct Unresolved {
    /// Caller index into [`CallGraph::fns`].
    pub from: usize,
    /// Callee name as written.
    pub name: String,
    pub line: u32,
    /// Why resolution declined to guess.
    pub reason: String,
}

/// The workspace call graph (test functions excluded on both ends).
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnDecl>,
    /// Outgoing resolved edges, indexed like `fns`.
    pub edges: Vec<Vec<Edge>>,
    /// Calls with workspace candidates that stayed ambiguous.
    pub unresolved: Vec<Unresolved>,
    /// Calls with no workspace candidate (std, closures, shim-external).
    pub external_calls: usize,
    /// Unqualified method calls skipped because the name collides with a
    /// common std method (would resolve to the wrong thing more often than
    /// the right one).
    pub denylisted_method_calls: usize,
}

impl CallGraph {
    /// Look up a function index by display name (tests/diagnostics).
    pub fn find(&self, display: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.display() == display)
    }
}

/// Method names so common on std types that an unqualified `.name(…)` call
/// must not resolve to a same-named workspace method. Qualified calls
/// (`Type::name`) are unaffected. Losing these edges under-approximates
/// reachability; EXPERIMENTS.md documents the trade.
const STD_METHOD_COLLISIONS: [&str; 66] = [
    "all", "and_then", "any", "append", "as_bytes", "as_mut", "as_ref", "as_str", "borrow",
    "borrow_mut", "bytes", "chain", "chars", "clear", "clone", "cmp", "collect", "contains",
    "contains_key", "count", "drain", "drop", "ends_with", "entry", "eq", "expect", "extend",
    "filter", "find", "first", "flush", "fmt", "fold", "from", "get", "get_mut", "hash", "insert",
    "into", "into_iter", "is_empty", "iter", "iter_mut", "join", "keys", "last", "len", "lines",
    "lock", "map", "max", "min", "next", "parse", "pop", "position", "push", "read", "recv",
    "remove", "send", "sort", "split", "starts_with", "sum", "take",
];

/// Also never resolved unqualified: std sync/IO verbs whose workspace
/// namesakes (e.g. `PoisonBarrier::wait`) are reachable via qualified paths.
const STD_SYNC_COLLISIONS: [&str; 10] = [
    "notify_all", "notify_one", "replace", "set", "swap", "to_string", "truncate", "unwrap",
    "wait", "write",
];

fn is_std_collision(name: &str) -> bool {
    STD_METHOD_COLLISIONS.binary_search(&name).is_ok() || STD_SYNC_COLLISIONS.contains(&name)
}

/// Build the call graph from every parsed declaration. Test functions are
/// dropped entirely: they are neither callers (tests may do anything) nor
/// candidates (production code cannot call them).
pub fn build(decls: Vec<FnDecl>) -> CallGraph {
    let fns: Vec<FnDecl> = decls.into_iter().filter(|d| !d.is_test).collect();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let known_types: BTreeSet<&str> =
        fns.iter().filter_map(|f| f.self_ty.as_deref()).collect();
    let known_mods: BTreeSet<&str> =
        fns.iter().flat_map(|f| f.module.iter().map(String::as_str)).collect();

    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    let mut unresolved = Vec::new();
    let mut external_calls = 0usize;
    let mut denylisted = 0usize;

    for i in 0..fns.len() {
        for c in &fns[i].calls {
            let cands = match by_name.get(c.name.as_str()) {
                Some(v) => v.as_slice(),
                None => {
                    external_calls += 1;
                    continue;
                }
            };
            let mut push_unresolved = |reason: String| {
                unresolved.push(Unresolved { from: i, name: c.name.clone(), line: c.line, reason });
            };
            if c.is_method {
                if is_std_collision(&c.name) {
                    denylisted += 1;
                    continue;
                }
                let matched: Vec<usize> =
                    cands.iter().copied().filter(|&k| fns[k].has_self).collect();
                // No same-file tie-break here: the receiver's type is
                // unknown, so picking the local impl would be a guess.
                match matched.as_slice() {
                    [] => external_calls += 1,
                    [k] => edges[i].push(Edge { to: *k, line: c.line, col: c.col, tok: c.tok }),
                    many => push_unresolved(format!(
                        "ambiguous method ({} workspace candidates)",
                        many.len()
                    )),
                }
                continue;
            }
            // Path-qualified call: match the last meaningful qualifier
            // against the candidate's impl type or module path.
            let qual: Vec<&str> = c
                .qual
                .iter()
                .map(String::as_str)
                .filter(|q| !matches!(*q, "crate" | "super" | "self" | "std" | "core" | "alloc"))
                .collect();
            let q = match qual.last() {
                Some(&"Self") => match fns[i].self_ty.as_deref() {
                    Some(t) => Some(t.to_string()),
                    None => {
                        push_unresolved("`Self::` outside an impl block".to_string());
                        continue;
                    }
                },
                Some(q) => Some(q.to_string()),
                None => None,
            };
            match q {
                Some(q) => {
                    let matched: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&k| {
                            fns[k].self_ty.as_deref() == Some(q.as_str())
                                || fns[k].module.iter().any(|m| m == &q)
                        })
                        .collect();
                    match narrow(&fns, &matched, &fns[i].file) {
                        Narrowed::One(k) => {
                            edges[i].push(Edge { to: k, line: c.line, col: c.col, tok: c.tok })
                        }
                        Narrowed::Many(n) => push_unresolved(format!(
                            "ambiguous path call `{q}::{}` ({n} candidates)",
                            c.name
                        )),
                        Narrowed::None => {
                            if known_types.contains(q.as_str()) || known_mods.contains(q.as_str())
                            {
                                push_unresolved(format!(
                                    "qualifier `{q}` is known but has no `{}`",
                                    c.name
                                ));
                            } else {
                                // `Vec::new`, `String::from`, … — external type.
                                external_calls += 1;
                            }
                        }
                    }
                }
                None => {
                    // Plain call: free functions only (associated fns need a
                    // `Type::` path; a local closure of the same name wins in
                    // rustc, which is the documented false-edge risk).
                    let matched: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&k| fns[k].self_ty.is_none())
                        .collect();
                    match narrow(&fns, &matched, &fns[i].file) {
                        Narrowed::One(k) => {
                            edges[i].push(Edge { to: k, line: c.line, col: c.col, tok: c.tok })
                        }
                        Narrowed::None => external_calls += 1,
                        Narrowed::Many(n) => push_unresolved(format!(
                            "ambiguous free function ({n} workspace candidates)"
                        )),
                    }
                }
            }
        }
    }
    CallGraph { fns, edges, unresolved, external_calls, denylisted_method_calls: denylisted }
}

enum Narrowed {
    None,
    One(usize),
    Many(usize),
}

/// Collapse a candidate set: unique match wins; otherwise a unique match in
/// the caller's own file wins (local helper shadows same-named items
/// elsewhere); otherwise stay ambiguous.
fn narrow(fns: &[FnDecl], matched: &[usize], caller_file: &str) -> Narrowed {
    match matched {
        [] => Narrowed::None,
        [one] => Narrowed::One(*one),
        many => {
            let local: Vec<usize> =
                many.iter().copied().filter(|&k| fns[k].file == caller_file).collect();
            match local.as_slice() {
                [one] => Narrowed::One(*one),
                _ => Narrowed::Many(many.len()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::parser::parse_file;
    use crate::rules::FileContext;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let cfg = Config::parse("[lint]\ntest_paths = [\"**/tests/**\"]\n").unwrap();
        let mut decls = Vec::new();
        for (path, src) in files {
            let ctx = FileContext::new(path, src, &cfg);
            decls.extend(parse_file(&ctx));
        }
        build(decls)
    }

    fn edge_names(g: &CallGraph, from: &str) -> Vec<String> {
        let i = g.find(from).unwrap();
        g.edges[i].iter().map(|e| g.fns[e.to].display()).collect()
    }

    #[test]
    fn resolves_free_method_and_qualified_calls_across_files() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry(w: Worker) { helper(); w.step(); timing::stamp(); }",
            ),
            ("crates/a/src/util.rs", "pub fn helper() {}"),
            (
                "crates/a/src/worker.rs",
                "pub struct Worker; impl Worker { pub fn step(&self) {} }",
            ),
            ("crates/b/src/timing.rs", "pub fn stamp() {}"),
        ]);
        assert_eq!(edge_names(&g, "entry"), vec!["helper", "Worker::step", "stamp"]);
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn ambiguous_methods_are_recorded_not_guessed() {
        let g = graph_of(&[
            ("a.rs", "struct A; impl A { fn step(&self) {} } fn f(x: A) { x.step(); }"),
            ("b.rs", "struct B; impl B { fn step(&self) {} }"),
        ]);
        // Two `step` candidates in different files: no edge, one unresolved.
        assert!(edge_names(&g, "f").is_empty());
        assert_eq!(g.unresolved.len(), 1);
        assert!(g.unresolved[0].reason.contains("ambiguous"), "{:?}", g.unresolved);
    }

    #[test]
    fn same_file_candidate_narrows_ambiguity() {
        let g = graph_of(&[
            ("a.rs", "struct A; impl A { fn step(&self) {} } fn f(x: A) { x.step(); }"),
            ("tests/b.rs", "struct B; impl B { fn step(&self) {} }"),
        ]);
        // The second `step` is test code, so the first is unique again.
        assert_eq!(edge_names(&g, "f"), vec!["A::step"]);
    }

    #[test]
    fn std_collision_methods_never_resolve_unqualified() {
        let g = graph_of(&[(
            "a.rs",
            "struct M; impl M { fn insert(&self) {} fn wait(&self) {} }\n\
             fn f(m: M, t: std::collections::BTreeMap<u32, u32>) { t.insert(1, 2); m.wait(); }\n\
             fn q(m: &M) { M::wait(m); }",
        )]);
        assert!(edge_names(&g, "f").is_empty());
        assert_eq!(g.denylisted_method_calls, 2);
        // …but the qualified path still resolves.
        assert_eq!(edge_names(&g, "q"), vec!["M::wait"]);
    }

    #[test]
    fn external_and_self_calls() {
        let g = graph_of(&[(
            "a.rs",
            "struct S; impl S { fn go(&self) { Self::assoc(); } fn assoc() {} }\n\
             fn f() { Vec::<u32>::new(); external_thing(); }",
        )]);
        assert_eq!(edge_names(&g, "S::go"), vec!["S::assoc"]);
        // Vec::new (unknown qualifier) and external_thing (no candidate).
        assert_eq!(g.external_calls, 2);
    }

    #[test]
    fn known_qualifier_without_match_is_unresolved() {
        let g = graph_of(&[(
            "a.rs",
            "struct S; impl S { fn real(&self) {} } fn ghost() {} fn f() { S::ghost(); }",
        )]);
        assert_eq!(g.unresolved.len(), 1);
        assert!(g.unresolved[0].reason.contains("known"), "{:?}", g.unresolved);
    }
}
