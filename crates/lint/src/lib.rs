#![forbid(unsafe_code)]
//! # xtsim-lint — determinism & DES-safety static analysis
//!
//! The repo's headline claim — every paper figure regenerates
//! byte-identically across serial/parallel sweeps and across PRs — rests on
//! an invariant the compiler does not enforce: simulator crates must be free
//! of nondeterminism sources. This crate enforces it mechanically with a
//! dependency-free token-pattern pass (hand-rolled lexer, no `syn`; the
//! build container is offline, like the `crates/compat` shims).
//!
//! Rule catalog (see `lint.toml` for path scoping; `--explain RULE` for
//! rationale, examples, and suppression syntax):
//!
//! | rule | severity | what |
//! |------|----------|------|
//! | `nondet-map-iter` | error | iterating `HashMap`/`HashSet` in sim crates |
//! | `wallclock-in-sim` | error | `Instant::now`/`SystemTime` outside allowlisted harness paths |
//! | `ambient-rng` | error | `thread_rng`/entropy seeding outside test code |
//! | `refcell-reentrant-borrow` | error | two borrows of one `RefCell` in a statement |
//! | `panic-in-hot-path` | warn/note | `unwrap`/`expect` (warn) and indexing (note) in DES hot paths |
//! | `unsafe-without-safety-comment` | warn | `unsafe` lacking a `// SAFETY:` comment |
//! | `transitive-taint` | error | sim code reaching wallclock/RNG through any call chain |
//! | `lock-order-cycle` | error | cycle in the lock acquisition-order graph |
//! | `panic-propagation` | warn | hot-path fn calling may-panic code outside the hot set |
//! | `blocking-in-poll` | warn | std lock/Condvar wait reachable from `fn poll` |
//!
//! The last four are interprocedural: a recursive-descent signature parser
//! ([`parser`]) builds a workspace-wide approximate call graph ([`graph`];
//! unresolved edges are recorded, never guessed) and [`interproc`] walks it.
//! Their diagnostics carry the full witness call chain.
//!
//! Suppression is an inline `// xtsim-lint: allow(<rule>, "<why>")` comment
//! or a committed `lint-baseline.json`; unused allows and stale baseline
//! entries are themselves reported, so suppressions stay honest.
//!
//! Run it via the binary:
//!
//! ```text
//! cargo run -p xtsim-lint -- --workspace --deny warnings --json out.json \
//!     --call-graph callgraph.json
//! ```

pub mod config;
pub mod explain;
pub mod graph;
pub mod interproc;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use config::Config;
use parser::FactKind;
use report::{BaselineEntry, Report, Suppressed, SuppressedHow};
use rules::{rule_id, FileContext, Finding, Severity};

/// Scan one file's source text with the *token* rules only and return its
/// findings after inline-allow processing, plus its `unsafe` count. The
/// interprocedural rules need the whole workspace — see [`analyze_sources`].
/// `path` must be workspace-relative with `/` separators.
pub fn scan_source(
    path: &str,
    src: &str,
    cfg: &Config,
) -> (Vec<Finding>, Vec<Suppressed>, usize) {
    let mut ctx = FileContext::new(path, src, cfg);
    let raw = rules::run_rules(&ctx, cfg);
    let (findings, suppressed) = apply_allows(&mut ctx, raw, path);
    (findings, suppressed, ctx.unsafe_count)
}

/// Split `raw` into kept findings and allow-suppressed ones, then report
/// allows that suppressed nothing.
fn apply_allows(
    ctx: &mut FileContext,
    raw: Vec<Finding>,
    path: &str,
) -> (Vec<Finding>, Vec<Suppressed>) {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        let allow = ctx.allows.iter_mut().find(|a| {
            a.rule == f.rule && a.applies_to.contains(&f.line)
        });
        match allow {
            Some(a) => {
                a.used = true;
                let reason = a.reason.clone();
                suppressed.push(Suppressed { finding: f, how: SuppressedHow::Allow { reason } });
            }
            None => findings.push(f),
        }
    }
    // Allows that suppressed nothing are findings themselves.
    for a in &ctx.allows {
        if !a.used {
            findings.push(Finding {
                file: path.to_string(),
                line: a.line,
                col: a.col,
                rule: rule_id::UNUSED_ALLOW,
                severity: Severity::Warn,
                message: format!(
                    "allow({}, …) suppresses nothing — the finding it excused is gone",
                    a.rule
                ),
                suggestion: "delete the stale allow comment".to_string(),
                snippet: String::new(),
                chain: Vec::new(),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (findings, suppressed)
}

/// Per-file outcome of [`analyze_sources`].
pub struct FileAnalysis {
    pub path: String,
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
    pub unsafe_count: usize,
}

/// Analyze a whole set of sources together: token rules per file, plus the
/// call-graph pass and the four interprocedural rules across all of them.
/// `sources` holds `(workspace-relative path, text)` pairs.
pub fn analyze_sources(
    sources: &[(String, String)],
    cfg: &Config,
) -> (Vec<FileAnalysis>, graph::CallGraph) {
    let mut ctxs: Vec<FileContext> = sources
        .iter()
        .map(|(path, src)| FileContext::new(path, src, cfg))
        .collect();
    let mut decls = Vec::new();
    for ctx in &ctxs {
        decls.extend(parser::parse_file(ctx));
    }
    let g = graph::build(decls);
    let inter = interproc::run_interproc(&g, cfg);

    let mut out = Vec::new();
    for ctx in ctxs.iter_mut() {
        let path = ctx.path.to_string();
        // An inline allow on a wallclock/RNG/panic/blocking/lock site stops
        // that fact from seeding the interprocedural analyses (see
        // `parser`), which is real work even when no token finding exists on
        // that line — mark those allows used so they aren't flagged stale.
        for d in g.fns.iter().filter(|d| d.file == path) {
            for fa in &d.facts {
                if !fa.allowed {
                    continue;
                }
                let rules: &[&str] = match fa.kind {
                    FactKind::Wallclock => {
                        &[rule_id::WALLCLOCK_IN_SIM, rule_id::TRANSITIVE_TAINT]
                    }
                    FactKind::Rng => &[rule_id::AMBIENT_RNG, rule_id::TRANSITIVE_TAINT],
                    FactKind::Panic => {
                        &[rule_id::PANIC_IN_HOT_PATH, rule_id::PANIC_PROPAGATION]
                    }
                    FactKind::Blocking => &[rule_id::BLOCKING_IN_POLL],
                };
                mark_used(ctx, rules, fa.line);
            }
            for l in &d.locks {
                if l.allowed {
                    mark_used(ctx, &[rule_id::LOCK_ORDER_CYCLE], l.line);
                }
            }
        }
        let mut raw = rules::run_rules(ctx, cfg);
        raw.extend(inter.iter().filter(|f| f.file == path).cloned());
        let (findings, suppressed) = apply_allows(ctx, raw, &path);
        out.push(FileAnalysis {
            path,
            findings,
            suppressed,
            unsafe_count: ctx.unsafe_count,
        });
    }
    (out, g)
}

fn mark_used(ctx: &mut FileContext, rules: &[&str], line: u32) {
    for a in ctx.allows.iter_mut() {
        if a.applies_to.contains(&line) && rules.contains(&a.rule.as_str()) {
            a.used = true;
        }
    }
}

/// Options for [`run`].
pub struct RunOptions {
    /// Workspace root; findings are reported relative to it.
    pub root: PathBuf,
    /// Baseline entries (already parsed), if a baseline is in use.
    pub baseline: Vec<BaselineEntry>,
}

/// Walk every `.rs` file under `root` (respecting `cfg.exclude`), run the
/// full rule catalog (token + interprocedural), apply inline allows and the
/// baseline, and assemble the [`Report`] (which carries the call graph for
/// `--call-graph`).
pub fn run(cfg: &Config, opts: &RunOptions) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs_files(&opts.root, &opts.root, cfg, &mut files)
        .map_err(|e| format!("walking {}: {e}", opts.root.display()))?;
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let abs = opts.root.join(&rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("reading {}: {e}", abs.display()))?;
        sources.push((rel, src));
    }
    let (analyses, call_graph) = analyze_sources(&sources, cfg);

    // Baseline as a multiset so duplicate snippets on one line-pair each
    // suppress one finding.
    let mut baseline: BTreeMap<BaselineEntry, usize> = BTreeMap::new();
    for e in &opts.baseline {
        *baseline.entry(e.clone()).or_insert(0) += 1;
    }

    let mut report = Report {
        root: opts.root.display().to_string(),
        call_graph,
        ..Report::default()
    };
    for fa in analyses {
        report.files_scanned += 1;
        report.suppressed.extend(fa.suppressed);
        if fa.unsafe_count > 0 {
            *report
                .unsafe_inventory
                .entry(crate_of(&fa.path).to_string())
                .or_insert(0) += fa.unsafe_count;
        }
        for f in fa.findings {
            // Notes never gate CI and are never baselined, so they must not
            // consume entries that a warn on the same line would need (an
            // `expect` call is both an expect-warn and an indexing-note
            // candidate with identical snippets).
            if f.severity < Severity::Warn {
                report.findings.push(f);
                continue;
            }
            let key = BaselineEntry {
                file: f.file.clone(),
                rule: f.rule.to_string(),
                snippet: f.snippet.clone(),
                function: f.chain.first().map(|h| h.function.clone()),
            };
            match baseline.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    report.suppressed.push(Suppressed { finding: f, how: SuppressedHow::Baseline });
                }
                _ => report.findings.push(f),
            }
        }
    }
    report.stale_baseline = baseline
        .into_iter()
        .flat_map(|(e, n)| std::iter::repeat_n(e, n))
        .collect();
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// The crate directory a workspace-relative path belongs to, for the unsafe
/// inventory: `crates/des/src/x.rs` → `crates/des`;
/// `crates/compat/serde/src/lib.rs` → `crates/compat/serde`; anything else →
/// the root package.
pub fn crate_of(rel: &str) -> &str {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", "compat", name, ..] => {
            let end = "crates/compat/".len() + name.len();
            &rel[..end]
        }
        ["crates", name, ..] => {
            let end = "crates/".len() + name.len();
            &rel[..end]
        }
        _ => "xt4-repro",
    }
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .expect("walk stays under root")
            .to_string_lossy()
            .replace('\\', "/");
        if cfg.is_excluded(&rel) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/des/src/fluid.rs"), "crates/des");
        assert_eq!(crate_of("crates/compat/serde/src/lib.rs"), "crates/compat/serde");
        assert_eq!(crate_of("src/lib.rs"), "xt4-repro");
        assert_eq!(crate_of("tests/goldens.rs"), "xt4-repro");
    }

    #[test]
    fn inline_allow_suppresses_and_is_marked_used() {
        let cfg = Config::parse("[lint]\nsim_crates = [\"**\"]\n").unwrap();
        let src = "fn f() {\n    // xtsim-lint: allow(wallclock-in-sim, \"demo\")\n    let _ = std::time::Instant::now();\n}\n";
        let (findings, suppressed, _) = scan_source("a.rs", src, &cfg);
        assert!(findings.is_empty(), "{findings:#?}");
        assert_eq!(suppressed.len(), 1);
        assert!(matches!(&suppressed[0].how, SuppressedHow::Allow { reason } if reason == "demo"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let cfg = Config::parse("[lint]\n").unwrap();
        let src = "// xtsim-lint: allow(ambient-rng, \"nothing here\")\nfn f() {}\n";
        let (findings, _, _) = scan_source("a.rs", src, &cfg);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, rule_id::UNUSED_ALLOW);
    }

    #[test]
    fn same_line_allow_works() {
        let cfg = Config::parse("[lint]\nsim_crates = [\"**\"]\n").unwrap();
        let src = "fn f() { let _ = std::time::Instant::now(); } // xtsim-lint: allow(wallclock-in-sim, \"same line\")\n";
        let (findings, suppressed, _) = scan_source("a.rs", src, &cfg);
        assert!(findings.is_empty(), "{findings:#?}");
        assert_eq!(suppressed.len(), 1);
    }
}
