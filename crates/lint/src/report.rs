//! Reporting: human text, machine JSON, and the committed baseline.
//!
//! The baseline (`lint-baseline.json`) grandfathers findings that predate a
//! rule. Entries are keyed `(file, rule, snippet)` where `snippet` is the
//! trimmed source line, so the match survives line-number drift; each entry
//! suppresses at most one finding, and entries that no longer match any
//! finding are reported as stale so the baseline only ever shrinks.
//!
//! JSON in and out is hand-rolled (this crate is dependency-free); the
//! emitted document is `xtsim-lint-v2` (v1 plus per-finding witness call
//! chains), validated structurally by `scripts/ci.sh`. Baselines are written
//! as `xtsim-lint-baseline-v2` (adds an optional `function` key so
//! interprocedural findings baseline per-function); the v1 baseline format
//! is still accepted on read.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::graph::CallGraph;
use crate::rules::{Finding, Severity};

/// Why a finding is not being acted on.
#[derive(Debug, Clone)]
pub enum SuppressedHow {
    /// Inline `// xtsim-lint: allow(rule, "reason")`.
    Allow { reason: String },
    /// Matched an entry of `lint-baseline.json`.
    Baseline,
}

/// A finding plus its suppression.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub finding: Finding,
    pub how: SuppressedHow,
}

/// One committed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    pub file: String,
    pub rule: String,
    pub snippet: String,
    /// For interprocedural findings: the flagged function (first chain hop),
    /// so one baselined function doesn't excuse its whole file. `None` for
    /// token findings and for every v1-format entry.
    pub function: Option<String>,
}

/// The whole run's outcome.
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace root the paths are relative to.
    pub root: String,
    pub files_scanned: usize,
    /// Actionable findings (not suppressed), sorted.
    pub findings: Vec<Finding>,
    /// Findings suppressed by allow comments or the baseline.
    pub suppressed: Vec<Suppressed>,
    /// `unsafe` token count per crate directory.
    pub unsafe_inventory: BTreeMap<String, usize>,
    /// Baseline entries that matched nothing (candidates for deletion).
    pub stale_baseline: Vec<BaselineEntry>,
    /// The workspace call graph the interprocedural rules ran on
    /// (`--call-graph` serializes it via [`callgraph_json`]).
    pub call_graph: CallGraph,
}

impl Report {
    /// Count of actionable findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// Does the run fail? Errors always do; warnings only under
    /// `--deny warnings`. Notes never fail.
    pub fn is_fatal(&self, deny_warnings: bool) -> bool {
        self.count(Severity::Error) > 0 || (deny_warnings && self.count(Severity::Warn) > 0)
    }

    /// Render the human report. Notes are summarized (full detail lives in
    /// the JSON output) unless `verbose`.
    pub fn human(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.severity == Severity::Note && !verbose {
                continue;
            }
            let _ = writeln!(
                out,
                "{}: [{}] {}:{}:{}: {}",
                f.severity.as_str(),
                f.rule,
                f.file,
                f.line,
                f.col,
                f.message
            );
            let _ = writeln!(out, "    = help: {}", f.suggestion);
            for (i, h) in f.chain.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    = chain[{i}]: {} ({}:{})",
                    h.function, h.file, h.line
                );
            }
        }
        let notes = self.count(Severity::Note);
        if notes > 0 && !verbose {
            let _ = writeln!(out, "note: {notes} informational finding(s) — see --json output");
        }
        if !self.stale_baseline.is_empty() {
            let _ = writeln!(
                out,
                "note: {} stale baseline entr{} (fixed findings still listed in \
                 lint-baseline.json — delete them):",
                self.stale_baseline.len(),
                if self.stale_baseline.len() == 1 { "y" } else { "ies" },
            );
            for e in &self.stale_baseline {
                let _ = writeln!(out, "    {} [{}] `{}`", e.file, e.rule, e.snippet);
            }
        }
        let _ = writeln!(
            out,
            "xtsim-lint: {} file(s), {} error(s), {} warning(s), {} note(s); \
             {} allowed, {} baselined",
            self.files_scanned,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            notes,
            self.suppressed
                .iter()
                .filter(|s| matches!(s.how, SuppressedHow::Allow { .. }))
                .count(),
            self.suppressed
                .iter()
                .filter(|s| matches!(s.how, SuppressedHow::Baseline))
                .count(),
        );
        out
    }

    /// Render the `xtsim-lint-v2` JSON document.
    pub fn json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_obj();
        w.field_str("schema", "xtsim-lint-v2");
        w.field_str("root", &self.root);
        w.field_num("files_scanned", self.files_scanned as f64);
        w.key("findings");
        w.open_arr();
        for f in &self.findings {
            write_finding(&mut w, f);
        }
        w.close_arr();
        w.key("suppressed");
        w.open_arr();
        for s in &self.suppressed {
            w.open_obj();
            finding_fields(&mut w, &s.finding);
            match &s.how {
                SuppressedHow::Allow { reason } => {
                    w.field_str("how", "allow");
                    w.field_str("reason", reason);
                }
                SuppressedHow::Baseline => w.field_str("how", "baseline"),
            }
            w.close_obj();
        }
        w.close_arr();
        w.key("unsafe_inventory");
        w.open_obj();
        for (krate, count) in &self.unsafe_inventory {
            w.field_num(krate, *count as f64);
        }
        w.close_obj();
        w.key("stale_baseline");
        w.open_arr();
        for e in &self.stale_baseline {
            w.open_obj();
            w.field_str("file", &e.file);
            w.field_str("rule", &e.rule);
            w.field_str("snippet", &e.snippet);
            w.close_obj();
        }
        w.close_arr();
        w.key("summary");
        w.open_obj();
        w.field_num("errors", self.count(Severity::Error) as f64);
        w.field_num("warnings", self.count(Severity::Warn) as f64);
        w.field_num("notes", self.count(Severity::Note) as f64);
        w.field_num(
            "allowed",
            self.suppressed
                .iter()
                .filter(|s| matches!(s.how, SuppressedHow::Allow { .. }))
                .count() as f64,
        );
        w.field_num(
            "baselined",
            self.suppressed
                .iter()
                .filter(|s| matches!(s.how, SuppressedHow::Baseline))
                .count() as f64,
        );
        w.field_num("stale_baseline", self.stale_baseline.len() as f64);
        w.close_obj();
        w.close_obj();
        w.finish()
    }

    /// Render a fresh baseline holding every *fatal-grade* finding of this
    /// run (the `--write-baseline` workflow). Notes are informational and
    /// never gate CI, so they stay visible rather than baselined.
    pub fn baseline_json(&self) -> String {
        let mut entries: Vec<BaselineEntry> = self
            .findings
            .iter()
            .filter(|f| f.severity >= Severity::Warn)
            .map(|f| BaselineEntry {
                file: f.file.clone(),
                rule: f.rule.to_string(),
                snippet: f.snippet.clone(),
                function: f.chain.first().map(|h| h.function.clone()),
            })
            .collect();
        entries.sort();
        let mut w = JsonWriter::new();
        w.open_obj();
        w.field_str("schema", "xtsim-lint-baseline-v2");
        w.key("findings");
        w.open_arr();
        for e in &entries {
            w.open_obj();
            w.field_str("file", &e.file);
            w.field_str("rule", &e.rule);
            w.field_str("snippet", &e.snippet);
            if let Some(func) = &e.function {
                w.field_str("function", func);
            }
            w.close_obj();
        }
        w.close_arr();
        w.close_obj();
        w.finish()
    }
}

fn write_finding(w: &mut JsonWriter, f: &Finding) {
    w.open_obj();
    finding_fields(w, f);
    w.close_obj();
}

fn finding_fields(w: &mut JsonWriter, f: &Finding) {
    w.field_str("file", &f.file);
    w.field_num("line", f.line as f64);
    w.field_num("col", f.col as f64);
    w.field_str("rule", f.rule);
    w.field_str("severity", f.severity.as_str());
    w.field_str("message", &f.message);
    w.field_str("suggestion", &f.suggestion);
    w.field_str("snippet", &f.snippet);
    w.key("chain");
    w.open_arr();
    for h in &f.chain {
        w.open_obj();
        w.field_str("function", &h.function);
        w.field_str("file", &h.file);
        w.field_num("line", h.line as f64);
        w.close_obj();
    }
    w.close_arr();
}

/// Render the `--call-graph` artifact (`xtsim-callgraph-v1`): every function
/// the parser indexed, its resolved edges (by function id), the unresolved
/// calls with their reasons, and honesty counters for what resolution
/// skipped.
pub fn callgraph_json(g: &CallGraph) -> String {
    let mut w = JsonWriter::new();
    w.open_obj();
    w.field_str("schema", "xtsim-callgraph-v1");
    w.key("functions");
    w.open_arr();
    for (i, f) in g.fns.iter().enumerate() {
        w.open_obj();
        w.field_num("id", i as f64);
        w.field_str("function", &f.display());
        w.field_str("module", &f.module.join("::"));
        w.field_str("file", &f.file);
        w.field_num("line", f.line as f64);
        w.key("calls");
        w.open_arr();
        for e in &g.edges[i] {
            w.open_obj();
            w.field_num("to", e.to as f64);
            w.field_num("line", e.line as f64);
            w.close_obj();
        }
        w.close_arr();
        w.close_obj();
    }
    w.close_arr();
    w.key("unresolved");
    w.open_arr();
    for u in &g.unresolved {
        w.open_obj();
        w.field_num("from", u.from as f64);
        w.field_str("name", &u.name);
        w.field_num("line", u.line as f64);
        w.field_str("reason", &u.reason);
        w.close_obj();
    }
    w.close_arr();
    w.key("stats");
    w.open_obj();
    w.field_num("functions", g.fns.len() as f64);
    w.field_num(
        "edges",
        g.edges.iter().map(Vec::len).sum::<usize>() as f64,
    );
    w.field_num("unresolved", g.unresolved.len() as f64);
    w.field_num("external_calls", g.external_calls as f64);
    w.field_num(
        "denylisted_method_calls",
        g.denylisted_method_calls as f64,
    );
    w.close_obj();
    w.close_obj();
    w.finish()
}

/// Parse `lint-baseline.json`. Both the current `xtsim-lint-baseline-v2`
/// format and the legacy v1 format are accepted; v1 entries simply carry no
/// `function` key (they predate the interprocedural rules, whose findings
/// are the only ones that set it).
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let value = json_parse(text)?;
    let obj = value.as_obj().ok_or("baseline root must be an object")?;
    match obj.get("schema").and_then(JsonValue::as_str) {
        Some("xtsim-lint-baseline-v1" | "xtsim-lint-baseline-v2") => {}
        other => return Err(format!("unsupported baseline schema {other:?}")),
    }
    let findings = obj
        .get("findings")
        .and_then(JsonValue::as_arr)
        .ok_or("baseline missing `findings` array")?;
    let mut out = Vec::new();
    for f in findings {
        let f = f.as_obj().ok_or("baseline finding must be an object")?;
        let get = |k: &str| -> Result<String, String> {
            f.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline finding missing string `{k}`"))
        };
        out.push(BaselineEntry {
            file: get("file")?,
            rule: get("rule")?,
            snippet: get("snippet")?,
            function: f.get("function").and_then(JsonValue::as_str).map(str::to_string),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Minimal JSON emitter

struct JsonWriter {
    buf: String,
    /// Per open container: has a member been emitted yet?
    stack: Vec<bool>,
    /// A key was just written; the next member is its value (no comma).
    after_key: bool,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter { buf: String::new(), stack: Vec::new(), after_key: false }
    }

    fn pre_member(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(started) = self.stack.last_mut() {
            if *started {
                self.buf.push(',');
            }
            *started = true;
        }
    }

    fn open_obj(&mut self) {
        self.pre_member();
        self.buf.push('{');
        self.stack.push(false);
    }

    fn close_obj(&mut self) {
        self.stack.pop();
        self.buf.push('}');
    }

    fn open_arr(&mut self) {
        self.pre_member();
        self.buf.push('[');
        self.stack.push(false);
    }

    fn close_arr(&mut self) {
        self.stack.pop();
        self.buf.push(']');
    }

    fn key(&mut self, k: &str) {
        self.pre_member();
        self.push_string(k);
        self.buf.push(':');
        self.after_key = true;
    }

    fn field_str(&mut self, k: &str, v: &str) {
        self.pre_member();
        self.push_string(k);
        self.buf.push(':');
        self.push_string(v);
    }

    fn field_num(&mut self, k: &str, v: f64) {
        self.pre_member();
        self.push_string(k);
        self.buf.push(':');
        if v.fract() == 0.0 && v.abs() < 9e15 {
            let _ = write!(self.buf, "{}", v as i64);
        } else {
            let _ = write!(self.buf, "{v}");
        }
    }

    fn push_string(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn finish(mut self) -> String {
        self.buf.push('\n');
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (baseline files only)

enum JsonValue {
    Str(String),
    /// Numbers are parsed for well-formedness; no baseline field reads one.
    Num(#[allow(dead_code)] f64),
    Bool,
    Null,
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn json_parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = json_value(bytes, &mut pos)?;
    json_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn json_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    json_ws(b, pos);
    match b.get(*pos) {
        Some(b'"') => Ok(JsonValue::Str(json_string(b, pos)?)),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            json_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            loop {
                json_ws(b, pos);
                let key = json_string(b, pos)?;
                json_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = json_value(b, pos)?;
                map.insert(key, val);
                json_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            json_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(arr));
            }
            loop {
                arr.push(json_value(b, pos)?);
                json_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool)
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool)
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(JsonValue::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn json_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("short \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Baselines never contain surrogate pairs (snippets
                        // are re-escaped plain text); map lone surrogates to
                        // U+FFFD rather than failing.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => {
                // Collect the remaining bytes of a UTF-8 sequence.
                let start = *pos - 1;
                while *pos < b.len() && b[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?,
                );
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip() {
        let mut report = Report::default();
        report.findings.push(Finding {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 9,
            rule: "panic-in-hot-path",
            severity: Severity::Warn,
            message: "m".into(),
            suggestion: "s".into(),
            snippet: "let x = v.pop().expect(\"non-empty\");".into(),
            chain: Vec::new(),
        });
        let text = report.baseline_json();
        let entries = parse_baseline(&text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].file, "crates/x/src/a.rs");
        assert_eq!(entries[0].rule, "panic-in-hot-path");
        assert_eq!(entries[0].snippet, "let x = v.pop().expect(\"non-empty\");");
        assert_eq!(entries[0].function, None);
    }

    #[test]
    fn baseline_v1_still_parses() {
        let v1 = r#"{"schema": "xtsim-lint-baseline-v1", "findings": [
            {"file": "a.rs", "rule": "panic-in-hot-path", "snippet": "x.unwrap();"}
        ]}"#;
        let entries = parse_baseline(v1).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].function, None);
    }

    #[test]
    fn baseline_v2_function_roundtrips() {
        let mut report = Report::default();
        report.findings.push(Finding {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 9,
            rule: "panic-propagation",
            severity: Severity::Warn,
            message: "m".into(),
            suggestion: "s".into(),
            snippet: "fn dispatch(&mut self) {".into(),
            chain: vec![crate::rules::ChainHop {
                function: "Engine::dispatch".into(),
                file: "crates/x/src/a.rs".into(),
                line: 4,
            }],
        });
        let text = report.baseline_json();
        assert!(text.contains("xtsim-lint-baseline-v2"));
        let entries = parse_baseline(&text).unwrap();
        assert_eq!(entries[0].function.as_deref(), Some("Engine::dispatch"));
    }

    #[test]
    fn json_escapes_are_symmetric() {
        let mut w = JsonWriter::new();
        w.open_obj();
        w.field_str("k", "a\"b\\c\nd\te");
        w.close_obj();
        let text = w.finish();
        let v = json_parse(&text).unwrap();
        assert_eq!(v.as_obj().unwrap()["k"].as_str().unwrap(), "a\"b\\c\nd\te");
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(parse_baseline(r#"{"schema": "nope", "findings": []}"#).is_err());
    }
}
