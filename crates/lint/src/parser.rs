//! A recursive-descent item/signature parser over the token stream: just
//! enough structure to build a workspace-wide function index — module
//! nesting, `impl` blocks (including `impl Trait for Type` inside function
//! bodies), `fn` signatures, and per-body call sites, lock acquisitions, and
//! determinism-relevant "facts" (wall-clock reads, ambient RNG, panic
//! sources, blocking primitives).
//!
//! Like the lexer, the parser never fails: malformed input degrades to
//! fewer recognized items, never to a panic. It is deliberately *not* a
//! type checker — resolution downstream (see [`crate::graph`]) is
//! module-path + method-name matching, and anything ambiguous is recorded
//! as unresolved rather than guessed.

use crate::lexer::{Tok, Token};
use crate::rules::FileContext;

/// One `fn` with a body, as indexed for the call graph.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Bare function name.
    pub name: String,
    /// `impl` type the fn belongs to, if any (last path segment, generics
    /// stripped): `impl fluid::Pool { fn f… }` → `Pool`.
    pub self_ty: Option<String>,
    /// Module path: crate dir, file-stem module, then inline `mod`s.
    pub module: Vec<String>,
    /// Does the signature take `self` (any form)?
    pub has_self: bool,
    /// Workspace-relative `/`-separated file path.
    pub file: String,
    /// Position of the `fn` keyword.
    pub line: u32,
    pub col: u32,
    /// Trimmed source text of the declaration line (baseline key material).
    pub snippet: String,
    /// Inside `#[cfg(test)]` or a configured test path.
    pub is_test: bool,
    /// Calls made in the body, in token order.
    pub calls: Vec<CallSite>,
    /// Determinism/panic/blocking facts found directly in the body.
    pub facts: Vec<Fact>,
    /// Lock acquisitions in the body, in token order.
    pub locks: Vec<LockAcq>,
}

impl FnDecl {
    /// Display name: `Type::name` or `name`.
    pub fn display(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// Path qualifier segments before the name (`a::b::f` → `["a","b"]`);
    /// empty for plain and method calls.
    pub qual: Vec<String>,
    /// `receiver.name(…)` method-call syntax.
    pub is_method: bool,
    pub line: u32,
    pub col: u32,
    /// Code-token index of the callee name (orders calls vs. lock scopes).
    pub tok: usize,
}

/// What kind of fact a body token establishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactKind {
    /// Reads the wall clock (`Instant::now`, `SystemTime`, telemetry timers).
    Wallclock,
    /// Draws ambient/OS entropy.
    Rng,
    /// May panic (`unwrap`/`expect`/`panic!`-family macros).
    Panic,
    /// May block the thread (`.lock()`, Condvar waits, `thread::sleep`).
    Blocking,
}

/// A determinism-relevant token the body contains.
#[derive(Debug, Clone)]
pub struct Fact {
    pub kind: FactKind,
    /// The token that established the fact (for diagnostics).
    pub what: String,
    pub line: u32,
    pub col: u32,
    /// Covered by an inline `xtsim-lint: allow(…)` for the corresponding
    /// rule — allowed facts never seed interprocedural analyses.
    pub allowed: bool,
}

/// One lock acquisition (`recv.lock()` / zero-arg `.read()` / `.write()`).
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Normalized lock identity: `file-stem:receiver-tail` (indices
    /// stripped, so every cache shard maps to one key — see
    /// EXPERIMENTS.md for why that is the *conservative* choice).
    pub key: String,
    /// `lock` | `read` | `write`.
    pub method: String,
    pub line: u32,
    pub col: u32,
    /// Code-token index of the method name.
    pub tok: usize,
    /// Code-token index (exclusive) where the guard is dead: end of the
    /// enclosing block for `let`-bound guards (or an explicit `drop(g)`),
    /// end of statement for temporaries.
    pub scope_end: usize,
    /// Covered by an inline `allow(lock-order-cycle, …)` on its line.
    pub allowed: bool,
}

/// Keywords that look like `name(` but are not calls.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "return", "loop", "break", "continue", "move", "in", "as",
    "let", "else", "unsafe", "fn", "where",
];

/// Macro names that may panic at runtime (`debug_assert*` excluded: they
/// compile out of release sims and inventorying them drowns the signal).
const PANIC_MACROS: [&str; 7] =
    ["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Method names that acquire a std lock when called with no arguments.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Method names that block on a Condvar.
const CONDVAR_WAITS: [&str; 3] = ["wait", "wait_timeout", "wait_while"];

/// Parse every `fn` (with a body) in one file.
pub fn parse_file(ctx: &FileContext) -> Vec<FnDecl> {
    let mut out = Vec::new();
    let module = file_module(ctx.path);
    let mut p = Parser { ctx, module, out: &mut out };
    let n = p.ctx.code.len();
    p.items(0, n, &[], None);
    out
}

/// Module path a file contributes: crate dir name + file stem
/// (`lib`/`main`/`mod` stems contribute the parent dir instead).
fn file_module(path: &str) -> Vec<String> {
    let parts: Vec<&str> = path.split('/').collect();
    let mut module = Vec::new();
    if let ["crates", krate, ..] = parts.as_slice() {
        module.push(krate.to_string());
    }
    if let Some(file) = parts.last() {
        let stem = file.strip_suffix(".rs").unwrap_or(file);
        match stem {
            "lib" | "main" | "mod" => {
                if parts.len() >= 2 {
                    let dir = parts[parts.len() - 2];
                    // `src` is a layout dir, not a module — except for the
                    // root package, where it's the only name we have.
                    if (dir != "src" || module.is_empty())
                        && Some(&dir) != module.first().map(|s| s.as_str()).as_ref()
                    {
                        module.push(dir.to_string());
                    }
                }
            }
            s => module.push(s.to_string()),
        }
    }
    module
}

struct Parser<'a, 'b> {
    ctx: &'a FileContext<'a>,
    module: Vec<String>,
    out: &'b mut Vec<FnDecl>,
}

impl<'a, 'b> Parser<'a, 'b> {
    fn ct(&self, i: usize) -> &Token {
        &self.ctx.tokens[self.ctx.code[i]]
    }

    /// Index just past the `}` matching the `{` at code index `open`.
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            match self.ct(i).tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Walk items in `[start, end)`: modules, impls, fns; everything else is
    /// skipped token-by-token.
    fn items(&mut self, start: usize, end: usize, mods: &[String], self_ty: Option<&str>) {
        let mut i = start;
        while i < end {
            let t = self.ct(i);
            match t.ident() {
                Some("mod")
                    if i + 2 < end
                        && self.ct(i + 1).ident().is_some()
                        && self.ct(i + 2).is_punct('{') =>
                {
                    let name = self.ct(i + 1).ident().unwrap_or_default().to_string();
                    let close = self.match_brace(i + 2, end);
                    let mut inner = mods.to_vec();
                    inner.push(name);
                    self.items(i + 3, close.saturating_sub(1), &inner, self_ty);
                    i = close;
                }
                Some("impl") => {
                    // Scan to the body `{`; a `;` first means type-position
                    // `impl Trait` (type alias), not a block.
                    let (body, ty) = self.impl_header(i + 1, end);
                    match body {
                        Some(open) => {
                            let close = self.match_brace(open, end);
                            self.items(open + 1, close.saturating_sub(1), mods, ty.as_deref());
                            i = close;
                        }
                        None => i += 1,
                    }
                }
                Some("fn") if i + 1 < end && self.ct(i + 1).ident().is_some() => {
                    i = self.function(i, end, mods, self_ty);
                }
                _ => i += 1,
            }
        }
    }

    /// Parse an `impl` header starting after the keyword: returns the body
    /// `{` index (or `None` for type-position `impl Trait`) and the
    /// extracted self-type name.
    fn impl_header(&self, start: usize, end: usize) -> (Option<usize>, Option<String>) {
        let mut i = start;
        // Skip leading generics `<…>`.
        if i < end && self.ct(i).is_punct('<') {
            i = self.skip_angles(i, end);
        }
        let ty_start = i;
        let mut angle = 0i32;
        let mut for_pos = None;
        while i < end {
            let t = self.ct(i);
            match &t.tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if i > 0 && !self.ct(i - 1).is_punct('-') => angle -= 1,
                Tok::Punct('{') if angle <= 0 => {
                    let ty_from = for_pos.map_or(ty_start, |p: usize| p + 1);
                    return (Some(i), self.type_name(ty_from, i));
                }
                Tok::Punct(';') if angle <= 0 => return (None, None),
                Tok::Ident(s) if s == "for" && angle == 0 => for_pos = Some(i),
                Tok::Ident(s) if s == "where" && angle <= 0 => {
                    // Type ends at the `where`; keep scanning for `{`.
                    let ty_from = for_pos.map_or(ty_start, |p: usize| p + 1);
                    let ty = self.type_name(ty_from, i);
                    let mut j = i + 1;
                    let mut a = 0i32;
                    while j < end {
                        match &self.ct(j).tok {
                            Tok::Punct('<') => a += 1,
                            Tok::Punct('>') if !self.ct(j - 1).is_punct('-') => a -= 1,
                            Tok::Punct('{') if a <= 0 => return (Some(j), ty),
                            Tok::Punct(';') if a <= 0 => return (None, ty),
                            _ => {}
                        }
                        j += 1;
                    }
                    return (None, ty);
                }
                _ => {}
            }
            i += 1;
        }
        (None, None)
    }

    /// Last path segment of the leading type path in `[from, to)`:
    /// `fluid::Pool<T>` → `Pool`; `&mut Foo` → `Foo`.
    fn type_name(&self, from: usize, to: usize) -> Option<String> {
        let mut last = None;
        let mut i = from;
        while i < to {
            match &self.ct(i).tok {
                Tok::Ident(s) if s == "dyn" || s == "mut" || s == "const" => {}
                Tok::Ident(s) => {
                    last = Some(s.clone());
                    // Stop unless a `::` continues the path.
                    if !(i + 2 < to && self.ct(i + 1).is_punct(':') && self.ct(i + 2).is_punct(':'))
                    {
                        break;
                    }
                    i += 2;
                }
                Tok::Punct('&') | Tok::Punct('*') => {}
                Tok::Lifetime(_) => {}
                Tok::Punct('<') => break,
                _ => break,
            }
            i += 1;
        }
        last
    }

    /// Index just past a balanced `<…>` starting at `open`.
    fn skip_angles(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            match &self.ct(i).tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') if i > 0 && !self.ct(i - 1).is_punct('-') => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parse one `fn` starting at the keyword; returns the index to resume
    /// from.
    fn function(&mut self, kw: usize, end: usize, mods: &[String], self_ty: Option<&str>) -> usize {
        let name_tok = self.ct(kw + 1);
        let name = name_tok.ident().unwrap_or_default().to_string();
        let (line, col) = (self.ct(kw).line, self.ct(kw).col);
        let mut i = kw + 2;
        if i < end && self.ct(i).is_punct('<') {
            i = self.skip_angles(i, end);
        }
        if i >= end || !self.ct(i).is_punct('(') {
            return kw + 2;
        }
        // Parameter list: find the matching `)` and look for a leading
        // `self` at paren depth 1.
        let params_open = i;
        let mut depth = 0i32;
        let mut has_self = false;
        while i < end {
            match &self.ct(i).tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) if s == "self" && depth == 1 && i <= params_open + 4 => {
                    has_self = true;
                }
                _ => {}
            }
            i += 1;
        }
        i += 1; // past `)`
        // Return type / where clause, up to the body `{` or a `;`.
        let mut angle = 0i32;
        while i < end {
            match &self.ct(i).tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if !self.ct(i - 1).is_punct('-') => angle -= 1,
                Tok::Punct('{') if angle <= 0 => break,
                Tok::Punct(';') if angle <= 0 => return i + 1, // bodiless decl
                Tok::Punct('(') => angle += 1, // tuple types in returns
                Tok::Punct(')') => angle -= 1,
                _ => {}
            }
            i += 1;
        }
        if i >= end {
            return end;
        }
        let body_open = i;
        let body_close = self.match_brace(body_open, end);
        let mut module: Vec<String> = self.module.clone();
        module.extend(mods.iter().cloned());
        let snippet = self
            .ctx
            .lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        let mut decl = FnDecl {
            name,
            self_ty: self_ty.map(str::to_string),
            module,
            has_self,
            file: self.ctx.path.to_string(),
            line,
            col,
            snippet,
            is_test: self.ctx.is_test_line(line),
            calls: Vec::new(),
            facts: Vec::new(),
            locks: Vec::new(),
        };
        self.body(body_open + 1, body_close.saturating_sub(1), mods, self_ty, &mut decl);
        self.out.push(decl);
        body_close
    }

    /// Scan a body for calls/facts/locks; nested items recurse back into
    /// [`Parser::items`] and are excluded from the enclosing body.
    fn body(
        &mut self,
        start: usize,
        end: usize,
        mods: &[String],
        self_ty: Option<&str>,
        decl: &mut FnDecl,
    ) {
        let mut i = start;
        while i < end {
            let t = self.ct(i);
            match t.ident() {
                // Nested items: index them separately, skip their range here.
                Some("fn") if i + 1 < end && self.ct(i + 1).ident().is_some() => {
                    let resume = {
                        let before = self.out.len();
                        let r = self.function(i, end, mods, self_ty);
                        debug_assert!(self.out.len() >= before);
                        r
                    };
                    i = resume;
                    continue;
                }
                Some("impl") => {
                    let (body, ty) = self.impl_header(i + 1, end);
                    if let Some(open) = body {
                        let close = self.match_brace(open, end);
                        self.items(open + 1, close.saturating_sub(1), mods, ty.as_deref());
                        i = close;
                        continue;
                    }
                }
                _ => {}
            }
            self.scan_token(i, end, decl);
            i += 1;
        }
        // Resolve guard scopes now that the whole body is known.
        self.finish_lock_scopes(start, end, decl);
    }

    /// Inspect one body token for call sites, facts, and lock acquisitions.
    fn scan_token(&self, i: usize, end: usize, decl: &mut FnDecl) {
        let t = self.ct(i);
        let Some(name) = t.ident() else { return };
        let (line, col) = (t.line, t.col);

        // Macro invocation `name!(…)` / `name![…]` / `name!{…}`.
        if i + 1 < end && self.ct(i + 1).is_punct('!') {
            if PANIC_MACROS.contains(&name) {
                decl.facts.push(Fact {
                    kind: FactKind::Panic,
                    what: format!("{name}!"),
                    line,
                    col,
                    allowed: self.fact_allowed(crate::rules::rule_id::PANIC_IN_HOT_PATH, line),
                });
            }
            return;
        }

        // Wallclock facts (mirror the token rule's patterns).
        let wallclock = match name {
            "Instant" => {
                i + 3 < end
                    && self.ct(i + 1).is_punct(':')
                    && self.ct(i + 2).is_punct(':')
                    && self.ct(i + 3).is_ident("now")
            }
            "SystemTime" | "UNIX_EPOCH" | "Stopwatch" | "start_timer" | "observe_since" => true,
            _ => false,
        };
        if wallclock {
            decl.facts.push(Fact {
                kind: FactKind::Wallclock,
                what: name.to_string(),
                line,
                col,
                allowed: self.fact_allowed(crate::rules::rule_id::WALLCLOCK_IN_SIM, line),
            });
        }
        if crate::rules::AMBIENT_RNG_IDENTS.contains(&name) {
            decl.facts.push(Fact {
                kind: FactKind::Rng,
                what: name.to_string(),
                line,
                col,
                allowed: self.fact_allowed(crate::rules::rule_id::AMBIENT_RNG, line),
            });
        }

        // Calls: `name(` with optional turbofish, method/path/plain.
        let mut after = i + 1;
        if i + 3 < end
            && self.ct(i + 1).is_punct(':')
            && self.ct(i + 2).is_punct(':')
            && self.ct(i + 3).is_punct('<')
        {
            after = self.skip_angles(i + 3, end); // `name::<T>(`
        }
        if after >= end || !self.ct(after).is_punct('(') || NON_CALL_KEYWORDS.contains(&name) {
            return;
        }
        let is_method = i >= 1 && self.ct(i - 1).is_punct('.');
        let mut qual = Vec::new();
        if !is_method {
            // Walk `a::b::` backwards, stepping over `::<T>` turbofish
            // segments (`Vec::<u32>::new` has qualifier `Vec`).
            let mut j = i;
            loop {
                if j < 3 || !self.ct(j - 1).is_punct(':') || !self.ct(j - 2).is_punct(':') {
                    break;
                }
                let mut p = j - 3;
                if self.ct(p).is_punct('>') {
                    let mut depth = 0i32;
                    loop {
                        match self.ct(p).tok {
                            Tok::Punct('>') => depth += 1,
                            Tok::Punct('<') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if p == 0 {
                            break;
                        }
                        p -= 1;
                    }
                    if depth != 0
                        || p < 3
                        || !self.ct(p - 1).is_punct(':')
                        || !self.ct(p - 2).is_punct(':')
                    {
                        break;
                    }
                    p -= 3;
                }
                match self.ct(p).ident() {
                    Some(seg) => {
                        qual.push(seg.to_string());
                        j = p;
                    }
                    None => break,
                }
            }
            qual.reverse();
        }

        // Panic facts for `.unwrap()` / `.expect(…)`.
        if is_method && matches!(name, "unwrap" | "expect") {
            decl.facts.push(Fact {
                kind: FactKind::Panic,
                what: format!(".{name}()"),
                line,
                col,
                allowed: self.fact_allowed(crate::rules::rule_id::PANIC_IN_HOT_PATH, line),
            });
        }
        // Blocking facts: Condvar waits, `thread::sleep`, zero-arg std locks.
        let zero_args = self.ct(after).is_punct('(') && after + 1 < end && self.ct(after + 1).is_punct(')');
        let blocking = (is_method && CONDVAR_WAITS.contains(&name))
            || (qual.last().is_some_and(|q| q == "thread") && name == "sleep")
            || (is_method && LOCK_METHODS.contains(&name) && zero_args);
        if blocking {
            decl.facts.push(Fact {
                kind: FactKind::Blocking,
                what: if is_method { format!(".{name}()") } else { format!("{}::{name}", qual.join("::")) },
                line,
                col,
                allowed: self.fact_allowed(crate::rules::rule_id::BLOCKING_IN_POLL, line),
            });
        }
        // Lock acquisitions: `.lock()` and zero-arg `.read()`/`.write()`
        // (`read(buf)`-style I/O calls take arguments and are skipped).
        if is_method && LOCK_METHODS.contains(&name) && zero_args {
            if let Some(path) = crate::rules::receiver_path(self.ctx, i - 1) {
                decl.locks.push(LockAcq {
                    key: lock_key(self.ctx.path, &path),
                    method: name.to_string(),
                    line,
                    col,
                    tok: i,
                    scope_end: end, // fixed up in finish_lock_scopes
                    allowed: self.fact_allowed(crate::rules::rule_id::LOCK_ORDER_CYCLE, line),
                });
            }
        }

        decl.calls.push(CallSite { name: name.to_string(), qual, is_method, line, col, tok: i });
    }

    /// Is the fact on `line` covered by an inline allow for `rule` or for
    /// its interprocedural counterpart? Allowed facts never seed the
    /// interprocedural analyses. Path allowlists deliberately do NOT count:
    /// a wallclock-allowlisted harness file is still a taint *source* — what
    /// the allowlist excuses is reading the clock there, not sim code
    /// calling into it.
    fn fact_allowed(&self, rule: &str, line: u32) -> bool {
        use crate::rules::rule_id;
        self.ctx.allows.iter().any(|a| {
            a.applies_to.contains(&line)
                && (a.rule == rule
                    || ((rule == rule_id::WALLCLOCK_IN_SIM || rule == rule_id::AMBIENT_RNG)
                        && a.rule == rule_id::TRANSITIVE_TAINT)
                    || (rule == rule_id::PANIC_IN_HOT_PATH
                        && a.rule == rule_id::PANIC_PROPAGATION))
        })
    }

    /// Compute guard lifetimes for the acquisitions in `decl`: `let`-bound
    /// guards live to the end of their enclosing block (or an explicit
    /// `drop(…)` of the binding), temporaries to the end of the statement.
    fn finish_lock_scopes(&self, start: usize, end: usize, decl: &mut FnDecl) {
        if decl.locks.is_empty() {
            return;
        }
        // Brace pairs within the body.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for i in start..end {
            match self.ct(i).tok {
                Tok::Punct('{') => stack.push(i),
                Tok::Punct('}') => {
                    if let Some(open) = stack.pop() {
                        pairs.push((open, i));
                    }
                }
                _ => {}
            }
        }
        for lk in &mut decl.locks {
            // Statement start: walk back to the nearest `;`/`{`/`}` at
            // depth 0 (closing delimiters of groups the site is inside are
            // skipped).
            let mut j = lk.tok;
            let mut depth = 0i32;
            let stmt_start = loop {
                if j == start {
                    break start;
                }
                j -= 1;
                match self.ct(j).tok {
                    Tok::Punct(')') | Tok::Punct(']') => depth += 1,
                    Tok::Punct('(') | Tok::Punct('[') => depth -= 1,
                    Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if depth <= 0 => {
                        break j + 1;
                    }
                    _ => {}
                }
            };
            let let_bound = self.ct(stmt_start).is_ident("let");
            let guard_name = if let_bound {
                let mut k = stmt_start + 1;
                if k < end && self.ct(k).is_ident("mut") {
                    k += 1;
                }
                self.ct(k).ident().map(str::to_string)
            } else {
                None
            };
            if let_bound {
                // Enclosing block's `}` bounds the guard.
                let mut close = end;
                for &(o, c) in &pairs {
                    if o < lk.tok && lk.tok < c && c < close {
                        close = c;
                    }
                }
                // An explicit `drop(name)` before that ends it earlier.
                if let Some(name) = &guard_name {
                    for k in lk.tok..close.min(end) {
                        if self.ct(k).is_ident("drop")
                            && k + 2 < end
                            && self.ct(k + 1).is_punct('(')
                            && self.ct(k + 2).is_ident(name)
                        {
                            close = k;
                            break;
                        }
                    }
                }
                lk.scope_end = close;
            } else {
                // Temporary guard: dead at the end of the statement.
                let mut k = lk.tok;
                let mut d = 0i32;
                lk.scope_end = loop {
                    if k >= end {
                        break end;
                    }
                    match self.ct(k).tok {
                        Tok::Punct('(') | Tok::Punct('[') => d += 1,
                        Tok::Punct(')') | Tok::Punct(']') => d -= 1,
                        Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if d <= 0 => break k,
                        _ => {}
                    }
                    k += 1;
                };
            }
        }
    }
}

/// Normalized lock identity: file stem plus the receiver path with index
/// expressions collapsed (`self.shards[i]` → `cache:shards`). Collapsing
/// indices is deliberately conservative: two *different* elements of one
/// lock array acquired together is exactly the unordered-shard-pair hazard
/// the cycle rule exists to catch.
pub fn lock_key(path: &str, receiver: &str) -> String {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path);
    // Strip `[…]` index groups, then keep only the final path component:
    // the field that actually holds the lock. Local binding heads
    // (`s.inner` vs `self.inner`) must not split one lock into two keys.
    let mut cleaned = String::new();
    let mut depth = 0i32;
    for c in receiver.chars() {
        match c {
            '[' => depth += 1,
            ']' => depth -= 1,
            c if depth <= 0 => cleaned.push(c),
            _ => {}
        }
    }
    let tail = cleaned
        .split('.')
        .rfind(|p| !p.is_empty())
        .unwrap_or(cleaned.as_str())
        .to_string();
    format!("{stem}:{tail}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn parse(path: &str, src: &str) -> Vec<FnDecl> {
        let cfg = Config::parse("[lint]\n").unwrap();
        let ctx = FileContext::new(path, src, &cfg);
        parse_file(&ctx)
    }

    #[test]
    fn indexes_free_fns_methods_and_modules() {
        let src = r#"
fn top() { helper(); }
mod inner {
    pub fn helper() {}
}
struct S;
impl S {
    fn method(&self) -> u32 { self.other() }
    fn other(&self) -> u32 { 7 }
}
"#;
        let fns = parse("crates/des/src/executor.rs", src);
        let names: Vec<String> = fns.iter().map(FnDecl::display).collect();
        assert_eq!(names, vec!["top", "helper", "S::method", "S::other"]);
        assert_eq!(fns[0].module, vec!["des", "executor"]);
        assert_eq!(fns[1].module, vec!["des", "executor", "inner"]);
        assert!(fns[2].has_self);
        assert_eq!(fns[0].calls.len(), 1);
        assert_eq!(fns[0].calls[0].name, "helper");
        assert!(fns[2].calls[0].is_method);
    }

    #[test]
    fn impl_trait_for_type_and_nested_impls() {
        let src = r#"
impl Future for Sleep<'_> {
    fn poll(&mut self) -> u32 { 1 }
}
fn wrapper() {
    struct Local;
    impl Drop for Local {
        fn drop(&mut self) { cleanup(); }
    }
    body_call();
}
"#;
        let fns = parse("a.rs", src);
        let names: Vec<String> = fns.iter().map(FnDecl::display).collect();
        assert_eq!(names, vec!["Sleep::poll", "Local::drop", "wrapper"]);
        // wrapper's body excludes the nested impl's calls.
        let wrapper = &fns[2];
        assert_eq!(wrapper.calls.len(), 1);
        assert_eq!(wrapper.calls[0].name, "body_call");
    }

    #[test]
    fn qualified_and_turbofish_calls() {
        let src = "fn f() { a::b::g(); Vec::<u32>::new(); h(); }";
        let fns = parse("a.rs", src);
        let calls = &fns[0].calls;
        assert_eq!(calls[0].name, "g");
        assert_eq!(calls[0].qual, vec!["a", "b"]);
        assert_eq!(calls[1].name, "new");
        assert_eq!(calls[1].qual, vec!["Vec"]);
        assert_eq!(calls[2].name, "h");
        assert!(calls[2].qual.is_empty());
    }

    #[test]
    fn facts_wallclock_rng_panic_blocking() {
        let src = r#"
fn f(m: &std::sync::Mutex<u32>, o: Option<u32>) {
    let _ = std::time::Instant::now();
    let _ = rand::thread_rng();
    let _ = o.unwrap();
    panic!("boom");
    let _g = m.lock().unwrap();
}
"#;
        let fns = parse("a.rs", src);
        let kinds: Vec<FactKind> = fns[0].facts.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FactKind::Wallclock));
        assert!(kinds.contains(&FactKind::Rng));
        assert!(kinds.contains(&FactKind::Panic));
        assert!(kinds.contains(&FactKind::Blocking));
        assert_eq!(fns[0].locks.len(), 1);
        assert_eq!(fns[0].locks[0].key, "a:m");
    }

    #[test]
    fn lock_scopes_let_vs_temp() {
        let src = r#"
fn f(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let g = a.lock().unwrap();
    let h = b.lock().unwrap();
    drop(g);
}
fn t(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    *a.lock().unwrap() += 1;
    *b.lock().unwrap() += 1;
}
"#;
        let fns = parse("x.rs", src);
        let f = &fns[0];
        assert_eq!(f.locks.len(), 2);
        // `g` is explicitly dropped, so its scope ends at the drop; `b`'s
        // acquisition still happens inside it (token order).
        assert!(f.locks[0].scope_end > f.locks[1].tok);
        let t = &fns[1];
        // Temp guards die at statement end: the second acquisition is
        // outside the first's scope.
        assert!(t.locks[0].scope_end < t.locks[1].tok);
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let src = "fn f(s: &mut S, buf: &mut [u8]) { s.read(buf); s.inner.read(); }";
        let fns = parse("a.rs", src);
        assert_eq!(fns[0].locks.len(), 1);
        assert_eq!(fns[0].locks[0].key, "a:inner");
    }

    #[test]
    fn bodiless_trait_methods_are_skipped() {
        let src = "trait T { fn decl(&self); fn with_body(&self) { go(); } }";
        let fns = parse("a.rs", src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(file_module("crates/des/src/pdes.rs"), vec!["des", "pdes"]);
        assert_eq!(file_module("crates/des/src/lib.rs"), vec!["des"]);
        assert_eq!(file_module("src/lib.rs"), vec!["src"]);
        assert_eq!(file_module("crates/core/src/cache.rs"), vec!["core", "cache"]);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "fn", "fn (", "impl", "impl {", "mod {", "fn f(", "fn f() {", "impl X for {",
            "fn f<T(>) {}", "}}}}", "fn f() { a.lock() ",
        ] {
            let _ = parse("a.rs", src);
        }
    }
}
