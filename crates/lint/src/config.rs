//! Lint configuration: a hand-rolled parser for the small TOML subset
//! `lint.toml` uses, plus the `*`/`**` glob matcher path scoping is built
//! on. Everything path-shaped in the rule catalog — which crates count as
//! simulator code, which files are DES hot paths, which paths may read the
//! wall clock — is data here, not hardcode, so exemptions are reviewable in
//! one place.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files never scanned (fixtures with intentional findings, build output).
    pub exclude: Vec<Glob>,
    /// Paths holding test/bench/example code: determinism and hot-path rules
    /// don't apply there (tests may use wall clocks and HashMaps freely).
    pub test_paths: Vec<Glob>,
    /// Crates whose results feed simulation output; determinism rules
    /// (`nondet-map-iter`, `wallclock-in-sim`, `ambient-rng`) apply here.
    pub sim_crates: Vec<Glob>,
    /// Event-handler / executor hot paths; `panic-in-hot-path` applies here.
    pub hot_paths: Vec<Glob>,
    /// Files whose `fn poll` bodies must not block; `blocking-in-poll`
    /// applies here.
    pub poll_paths: Vec<Glob>,
    /// Per-rule path allowlists: `[allow.<rule>] paths = [...]`.
    pub rule_allow: BTreeMap<String, Vec<Glob>>,
}

impl Config {
    /// Parse `lint.toml` text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section: Vec<String> = Vec::new();
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let mut line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // Multi-line arrays: keep consuming lines until brackets balance.
            while bracket_balance(&line) > 0 {
                let Some((_, next)) = lines.next() else {
                    return Err(ConfigError::at(lineno, "unterminated [list]"));
                };
                line.push(' ');
                line.push_str(strip_comment(next).trim());
            }
            if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = inner.split('.').map(|s| s.trim().to_string()).collect();
                if section.iter().any(|s| s.is_empty()) {
                    return Err(ConfigError::at(lineno, "empty section name component"));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| ConfigError::at(lineno, "expected `key = value`"))?;
            let key = key.trim();
            let values = parse_string_or_list(value.trim())
                .map_err(|msg| ConfigError::at(lineno, msg))?;
            let globs = values.iter().map(|p| Glob::new(p)).collect::<Vec<_>>();
            match (section.as_slice(), key) {
                ([s], "exclude") if s == "lint" => cfg.exclude = globs,
                ([s], "test_paths") if s == "lint" => cfg.test_paths = globs,
                ([s], "sim_crates") if s == "lint" => cfg.sim_crates = globs,
                ([s], "hot_paths") if s == "lint" => cfg.hot_paths = globs,
                ([s], "poll_paths") if s == "lint" => cfg.poll_paths = globs,
                ([a, rule], "paths") if a == "allow" => {
                    cfg.rule_allow.insert(rule.clone(), globs);
                }
                _ => {
                    return Err(ConfigError::at(
                        lineno,
                        format!("unknown key `{key}` in section [{}]", section.join(".")),
                    ));
                }
            }
        }
        Ok(cfg)
    }

    /// Is `path` (workspace-relative, `/`-separated) excluded from scanning?
    pub fn is_excluded(&self, path: &str) -> bool {
        matches_any(&self.exclude, path)
    }

    /// Is `path` test/bench/example code?
    pub fn is_test_path(&self, path: &str) -> bool {
        matches_any(&self.test_paths, path)
    }

    /// Is `path` inside a simulator crate?
    pub fn is_sim_crate(&self, path: &str) -> bool {
        matches_any(&self.sim_crates, path)
    }

    /// Is `path` a DES hot path?
    pub fn is_hot_path(&self, path: &str) -> bool {
        matches_any(&self.hot_paths, path)
    }

    /// Does `blocking-in-poll` watch `path`'s `fn poll` bodies?
    pub fn is_poll_path(&self, path: &str) -> bool {
        matches_any(&self.poll_paths, path)
    }

    /// Is `path` allowlisted for `rule`?
    pub fn rule_allows(&self, rule: &str, path: &str) -> bool {
        self.rule_allow
            .get(rule)
            .is_some_and(|globs| matches_any(globs, path))
    }
}

fn matches_any(globs: &[Glob], path: &str) -> bool {
    globs.iter().any(|g| g.matches(path))
}

/// Net `[`/`]` nesting of a line, ignoring brackets inside strings (and any
/// line that is a `[section]` header, which balances itself).
fn bracket_balance(line: &str) -> i32 {
    let mut balance = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => balance += 1,
            ']' if !in_str => balance -= 1,
            _ => escaped = false,
        }
    }
    balance
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Parse `"a"` or `["a", "b", ...]` (trailing comma tolerated).
fn parse_string_or_list(v: &str) -> Result<Vec<String>, String> {
    if let Some(s) = parse_quoted(v) {
        return Ok(vec![s]);
    }
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected string or [list], got `{v}`"))?;
    let mut out = Vec::new();
    for part in split_top_commas(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_quoted(part).ok_or_else(|| format!("expected quoted string, got `{part}`"))?);
    }
    Ok(out)
}

fn split_top_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_quoted(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    // lint.toml strings are paths/globs; the only escapes that matter are
    // `\\` and `\"`.
    Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// A config parse error with its line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl ConfigError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ConfigError { line, message: message.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// A `/`-separated path glob: `*` matches within one path segment, `**`
/// matches any number of segments (including zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Glob {
    pattern: String,
    segments: Vec<Seg>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Seg {
    /// `**`
    Any,
    /// A single segment, possibly containing `*` wildcards.
    Lit(String),
}

impl Glob {
    /// Compile a glob pattern.
    pub fn new(pattern: &str) -> Glob {
        let segments = pattern
            .split('/')
            .map(|s| if s == "**" { Seg::Any } else { Seg::Lit(s.to_string()) })
            .collect();
        Glob { pattern: pattern.to_string(), segments }
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Match against a `/`-separated relative path.
    pub fn matches(&self, path: &str) -> bool {
        let parts: Vec<&str> = path.split('/').collect();
        match_segs(&self.segments, &parts)
    }
}

fn match_segs(segs: &[Seg], parts: &[&str]) -> bool {
    match segs.first() {
        None => parts.is_empty(),
        Some(Seg::Any) => {
            // `**` swallows 0..=len leading segments.
            (0..=parts.len()).any(|k| match_segs(&segs[1..], &parts[k..]))
        }
        Some(Seg::Lit(pat)) => match parts.first() {
            Some(first) if match_one(pat, first) => match_segs(&segs[1..], &parts[1..]),
            _ => false,
        },
    }
}

/// Match one segment against a pattern with `*` wildcards.
fn match_one(pat: &str, s: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let t: Vec<char> = s.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_star_is_single_segment() {
        assert!(Glob::new("crates/*/src").matches("crates/des/src"));
        assert!(!Glob::new("crates/*/src").matches("crates/compat/serde/src"));
        assert!(Glob::new("*.rs").matches("lib.rs"));
        assert!(!Glob::new("*.rs").matches("src/lib.rs"));
    }

    #[test]
    fn glob_doublestar_spans_segments() {
        let g = Glob::new("crates/des/**");
        assert!(g.matches("crates/des/src/fluid.rs"));
        assert!(g.matches("crates/des/Cargo.toml"));
        assert!(!g.matches("crates/net/src/lib.rs"));
        assert!(Glob::new("**/tests/**").matches("crates/des/tests/stress.rs"));
        assert!(Glob::new("**/fixtures/**").matches("fixtures/a.rs"));
    }

    #[test]
    fn exact_path_globs() {
        let g = Glob::new("crates/core/src/sweep.rs");
        assert!(g.matches("crates/core/src/sweep.rs"));
        assert!(!g.matches("crates/core/src/sweep.rs.bak"));
    }

    #[test]
    fn parses_sections_lists_and_comments() {
        let cfg = Config::parse(
            r#"
# top comment
[lint]
exclude = ["target/**"] # trailing comment
sim_crates = ["crates/des/**", "crates/net/**"]
test_paths = ["**/tests/**"]
hot_paths = "crates/des/src/fluid.rs"

[allow.wallclock-in-sim]
paths = ["crates/compat/criterion/**"]
"#,
        )
        .unwrap();
        assert!(cfg.is_excluded("target/debug/build.rs"));
        assert!(cfg.is_sim_crate("crates/net/src/platform.rs"));
        assert!(cfg.is_test_path("crates/des/tests/stress.rs"));
        assert!(cfg.is_hot_path("crates/des/src/fluid.rs"));
        assert!(cfg.rule_allows("wallclock-in-sim", "crates/compat/criterion/src/lib.rs"));
        assert!(!cfg.rule_allows("wallclock-in-sim", "crates/core/src/sweep.rs"));
        assert!(!cfg.rule_allows("ambient-rng", "crates/compat/criterion/src/lib.rs"));
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let err = Config::parse("[lint]\nbogus = \"x\"\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }
}
