#![forbid(unsafe_code)]
//! `xtsim-lint` — determinism & DES-safety lints for the xtsim workspace.
//!
//! ```text
//! xtsim-lint [--workspace | PATH...] [--deny warnings] [--json FILE]
//!            [--call-graph FILE] [--config FILE]
//!            [--baseline FILE | --no-baseline] [--write-baseline]
//!            [--explain RULE] [--verbose]
//! ```
//!
//! Exit status: 0 clean, 1 findings (errors, or warnings under
//! `--deny warnings`), 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use xtsim_lint::config::Config;
use xtsim_lint::report::{callgraph_json, parse_baseline};
use xtsim_lint::{explain, find_workspace_root, run, RunOptions};

struct Args {
    root: Option<PathBuf>,
    deny_warnings: bool,
    json: Option<PathBuf>,
    call_graph: Option<PathBuf>,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    use_baseline: bool,
    write_baseline: bool,
    explain: Option<String>,
    verbose: bool,
}

const USAGE: &str = "usage: xtsim-lint [--workspace | PATH] [--deny warnings] [--json FILE]\n\
 \x20                 [--call-graph FILE] [--config FILE]\n\
 \x20                 [--baseline FILE | --no-baseline] [--write-baseline]\n\
 \x20                 [--explain RULE] [--verbose]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        deny_warnings: false,
        json: None,
        call_graph: None,
        config: None,
        baseline: None,
        use_baseline: true,
        write_baseline: false,
        explain: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => {
                let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
                args.root = Some(
                    find_workspace_root(&cwd)
                        .ok_or("--workspace: no [workspace] Cargo.toml above cwd")?,
                );
            }
            "--deny" => match it.next().as_deref() {
                Some("warnings") => args.deny_warnings = true,
                other => return Err(format!("--deny expects `warnings`, got {other:?}")),
            },
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a file path")?));
            }
            "--call-graph" => {
                args.call_graph =
                    Some(PathBuf::from(it.next().ok_or("--call-graph needs a file path")?));
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule name")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file path")?));
            }
            "--baseline" => {
                args.baseline =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a file path")?));
            }
            "--no-baseline" => args.use_baseline = false,
            "--write-baseline" => args.write_baseline = true,
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => {
                if args.root.is_some() {
                    return Err("scan one root: either --workspace or a single PATH".to_string());
                }
                args.root = Some(PathBuf::from(path));
            }
        }
    }
    Ok(args)
}

fn real_main() -> Result<bool, String> {
    let args = parse_args().map_err(|e| format!("{e}\n{USAGE}"))?;

    if let Some(rule) = &args.explain {
        match explain::explain(rule) {
            Some(text) => {
                print!("{text}");
                return Ok(false);
            }
            None => {
                return Err(format!(
                    "unknown rule `{rule}`; rules are: {}",
                    explain::rule_ids().join(", ")
                ));
            }
        }
    }

    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd).unwrap_or(cwd)
        }
    };

    let config_path = args.config.clone().unwrap_or_else(|| root.join("lint.toml"));
    let cfg = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
        Config::parse(&text).map_err(|e| e.to_string())?
    } else if args.config.is_some() {
        return Err(format!("config {} not found", config_path.display()));
    } else {
        Config::default()
    };

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));
    let baseline = if args.use_baseline && !args.write_baseline && baseline_path.exists() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        parse_baseline(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
    } else {
        Vec::new()
    };

    let report = run(&cfg, &RunOptions { root, baseline })?;

    if args.write_baseline {
        std::fs::write(&baseline_path, report.baseline_json())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        let fatal = report
            .findings
            .iter()
            .filter(|f| f.severity >= xtsim_lint::rules::Severity::Warn)
            .count();
        eprintln!("wrote {} finding(s) to {}", fatal, baseline_path.display());
        return Ok(false);
    }

    if let Some(json_path) = &args.json {
        std::fs::write(json_path, report.json())
            .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }
    if let Some(cg_path) = &args.call_graph {
        std::fs::write(cg_path, callgraph_json(&report.call_graph))
            .map_err(|e| format!("writing {}: {e}", cg_path.display()))?;
    }
    print!("{}", report.human(args.verbose));
    Ok(report.is_fatal(args.deny_warnings))
}

fn main() -> ExitCode {
    match real_main() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(e) => {
            eprintln!("xtsim-lint: {e}");
            ExitCode::from(2)
        }
    }
}
