//! The four interprocedural rules over the [`crate::graph`] call graph:
//! transitive wallclock/RNG taint, lock-order cycles, panic propagation into
//! hot paths, and blocking primitives reachable from `fn poll` bodies.
//!
//! Reachability is a reverse BFS from fact-holding functions, so every
//! diagnostic carries a *shortest* witness chain. Reporting is
//! frontier-based: the function blamed is the last in-scope one before the
//! chain leaves the rule's scope — the root-cause site a reader can actually
//! fix — not every caller above it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::graph::CallGraph;
use crate::parser::{FactKind, FnDecl};
use crate::rules::{rule_id, ChainHop, Finding, Severity};

/// Run all four rules; findings are sorted by (file, line, rule).
pub fn run_interproc(g: &CallGraph, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    transitive_taint(g, cfg, &mut out);
    lock_order_cycle(g, cfg, &mut out);
    panic_propagation(g, cfg, &mut out);
    blocking_in_poll(g, cfg, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

// ---------------------------------------------------------------------------
// reachability

/// How a function reaches a fact: it holds one directly, or its call at
/// `line` leads to a function that does.
enum Hop {
    Direct { line: u32, what: String, kind: FactKind },
    Call { line: u32, to: usize },
}

/// Reverse BFS from every function `seed` accepts: `status[f]` is the first
/// hop of a shortest chain from `f` to a seeded fact, or `None` if
/// unreachable.
fn reach(g: &CallGraph, seed: impl Fn(&FnDecl) -> Option<(u32, String, FactKind)>) -> Vec<Option<Hop>> {
    let n = g.fns.len();
    let mut status: Vec<Option<Hop>> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for (i, f) in g.fns.iter().enumerate() {
        match seed(f) {
            Some((line, what, kind)) => {
                status.push(Some(Hop::Direct { line, what, kind }));
                queue.push_back(i);
            }
            None => status.push(None),
        }
    }
    let mut radj: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for (i, es) in g.edges.iter().enumerate() {
        for e in es {
            radj[e.to].push((i, e.line));
        }
    }
    while let Some(gi) = queue.pop_front() {
        for &(f, line) in &radj[gi] {
            if status[f].is_none() {
                status[f] = Some(Hop::Call { line, to: gi });
                queue.push_back(f);
            }
        }
    }
    status
}

/// A materialized witness chain plus its terminal fact.
struct Chain {
    hops: Vec<ChainHop>,
    kind: FactKind,
    what: String,
    src_file: String,
    src_line: u32,
}

/// Follow `status` hops from `start` down to the fact.
fn chain_from(g: &CallGraph, start: usize, status: &[Option<Hop>]) -> Option<Chain> {
    let mut hops = Vec::new();
    let mut cur = start;
    loop {
        match status[cur].as_ref()? {
            Hop::Call { line, to } => {
                hops.push(ChainHop {
                    function: g.fns[cur].display(),
                    file: g.fns[cur].file.clone(),
                    line: *line,
                });
                cur = *to;
                if hops.len() > g.fns.len() {
                    return None; // defensive: BFS parents cannot cycle
                }
            }
            Hop::Direct { line, what, kind } => {
                hops.push(ChainHop {
                    function: g.fns[cur].display(),
                    file: g.fns[cur].file.clone(),
                    line: *line,
                });
                return Some(Chain {
                    hops,
                    kind: *kind,
                    what: what.clone(),
                    src_file: g.fns[cur].file.clone(),
                    src_line: *line,
                });
            }
        }
    }
}

/// Render a chain as `a (file:1) -> b (file:2)` for messages.
fn chain_text(hops: &[ChainHop]) -> String {
    hops.iter()
        .map(|h| format!("{} ({}:{})", h.function, h.file, h.line))
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn interproc_finding(
    f: &FnDecl,
    rule: &'static str,
    severity: Severity,
    message: String,
    suggestion: String,
    chain: Vec<ChainHop>,
) -> Finding {
    Finding {
        file: f.file.clone(),
        line: f.line,
        col: f.col,
        rule,
        severity,
        message,
        suggestion,
        snippet: f.snippet.clone(),
        chain,
    }
}

// ---------------------------------------------------------------------------
// transitive-taint

fn transitive_taint(g: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let is_source = |fa: &crate::parser::Fact| {
        !fa.allowed && matches!(fa.kind, FactKind::Wallclock | FactKind::Rng)
    };
    let status = reach(g, |f| {
        f.facts.iter().find(|fa| is_source(fa)).map(|fa| (fa.line, fa.what.clone(), fa.kind))
    });
    let in_scope =
        |f: &FnDecl| cfg.is_sim_crate(&f.file) && !cfg.rule_allows(rule_id::TRANSITIVE_TAINT, &f.file);
    for (i, f) in g.fns.iter().enumerate() {
        if !in_scope(f) || f.facts.iter().any(is_source) {
            // Out of scope, or the direct-fact token rules already flag it.
            continue;
        }
        // Frontier: a tainted callee that is itself outside this rule's
        // scope (harness/allowlisted/compat code). In-scope tainted callees
        // get their own finding instead — blame lands once, at the boundary.
        let Some(e) = g.edges[i]
            .iter()
            .find(|e| status[e.to].is_some() && !in_scope(&g.fns[e.to]))
        else {
            continue;
        };
        let Some(mut tail) = chain_from(g, e.to, &status) else { continue };
        let mut hops =
            vec![ChainHop { function: f.display(), file: f.file.clone(), line: e.line }];
        hops.append(&mut tail.hops);
        let kind_str = match tail.kind {
            FactKind::Rng => "ambient RNG",
            _ => "the wall clock",
        };
        out.push(interproc_finding(
            f,
            rule_id::TRANSITIVE_TAINT,
            Severity::Error,
            format!(
                "sim function `{}` transitively reaches {kind_str} (`{}` at {}:{}): {}",
                f.display(),
                tail.what,
                tail.src_file,
                tail.src_line,
                chain_text(&hops),
            ),
            "route timing/entropy through the sim harness (SimHandle::now / seeded rng); if \
             the whole chain is measurement-side, allowlist the caller under \
             [allow.transitive-taint] in lint.toml or annotate the source site"
                .to_string(),
            hops,
        ));
    }
}

// ---------------------------------------------------------------------------
// panic-propagation

fn panic_propagation(g: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let status = reach(g, |f| {
        f.facts
            .iter()
            .find(|fa| !fa.allowed && fa.kind == FactKind::Panic)
            .map(|fa| (fa.line, fa.what.clone(), fa.kind))
    });
    for (i, f) in g.fns.iter().enumerate() {
        if !cfg.is_hot_path(&f.file) || cfg.rule_allows(rule_id::PANIC_PROPAGATION, &f.file) {
            continue;
        }
        // Direct panics in hot files are panic-in-hot-path's domain (and the
        // baseline's); this rule adds the cross-file half: calls that leave
        // the hot set and reach a panic there.
        let Some(e) = g.edges[i]
            .iter()
            .find(|e| !cfg.is_hot_path(&g.fns[e.to].file) && status[e.to].is_some())
        else {
            continue;
        };
        let Some(mut tail) = chain_from(g, e.to, &status) else { continue };
        let mut hops =
            vec![ChainHop { function: f.display(), file: f.file.clone(), line: e.line }];
        hops.append(&mut tail.hops);
        out.push(interproc_finding(
            f,
            rule_id::PANIC_PROPAGATION,
            Severity::Warn,
            format!(
                "hot-path function `{}` calls into code that may panic (`{}` at {}:{}): {}",
                f.display(),
                tail.what,
                tail.src_file,
                tail.src_line,
                chain_text(&hops),
            ),
            "make the callee infallible or return a Result; a panic mid-event-dispatch aborts \
             the whole simulation"
                .to_string(),
            hops,
        ));
    }
}

// ---------------------------------------------------------------------------
// blocking-in-poll

fn blocking_in_poll(g: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let status = reach(g, |f| {
        f.facts
            .iter()
            .find(|fa| !fa.allowed && fa.kind == FactKind::Blocking)
            .map(|fa| (fa.line, fa.what.clone(), fa.kind))
    });
    for (i, f) in g.fns.iter().enumerate() {
        if f.name != "poll"
            || !cfg.is_poll_path(&f.file)
            || cfg.rule_allows(rule_id::BLOCKING_IN_POLL, &f.file)
        {
            continue;
        }
        let Some(chain) = chain_from(g, i, &status) else { continue };
        out.push(interproc_finding(
            f,
            rule_id::BLOCKING_IN_POLL,
            Severity::Warn,
            format!(
                "`{}` can block the executor thread (`{}` at {}:{}): {}",
                f.display(),
                chain.what,
                chain.src_file,
                chain.src_line,
                chain_text(&chain.hops),
            ),
            "poll bodies must stay non-blocking: hand the wait to the DES scheduler \
             (events/wakers), or annotate the blocking site with \
             allow(blocking-in-poll, \"<bounded-wait argument>\")"
                .to_string(),
            chain.hops,
        ));
    }
}

// ---------------------------------------------------------------------------
// lock-order-cycle

/// How a function's transitive lock set reaches a key.
#[derive(Clone)]
enum LHop {
    Local { line: u32 },
    Via { line: u32, callee: usize },
}

/// Memoized DFS: every lock key acquired by `i` or anything it calls.
/// On-stack callees contribute nothing (call-graph cycles), which
/// under-approximates — documented in EXPERIMENTS.md.
fn trans_locks(
    g: &CallGraph,
    i: usize,
    memo: &mut Vec<Option<BTreeMap<String, LHop>>>,
    on_stack: &mut Vec<bool>,
) -> BTreeMap<String, LHop> {
    if let Some(m) = &memo[i] {
        return m.clone();
    }
    if on_stack[i] {
        return BTreeMap::new();
    }
    on_stack[i] = true;
    let mut m: BTreeMap<String, LHop> = BTreeMap::new();
    for a in &g.fns[i].locks {
        if !a.allowed {
            m.entry(a.key.clone()).or_insert(LHop::Local { line: a.line });
        }
    }
    for e in &g.edges[i].clone() {
        let sub = trans_locks(g, e.to, memo, on_stack);
        for k in sub.into_keys() {
            m.entry(k).or_insert(LHop::Via { line: e.line, callee: e.to });
        }
    }
    on_stack[i] = false;
    memo[i] = Some(m.clone());
    m
}

/// Chain from `start`'s body to where `key` is finally acquired.
fn lock_chain(
    g: &CallGraph,
    start: usize,
    key: &str,
    memo: &[Option<BTreeMap<String, LHop>>],
) -> Vec<ChainHop> {
    let mut hops = Vec::new();
    let mut cur = start;
    while let Some(Some(m)) = memo.get(cur) {
        match m.get(key) {
            Some(LHop::Local { line }) => {
                hops.push(ChainHop {
                    function: g.fns[cur].display(),
                    file: g.fns[cur].file.clone(),
                    line: *line,
                });
                break;
            }
            Some(LHop::Via { line, callee }) => {
                hops.push(ChainHop {
                    function: g.fns[cur].display(),
                    file: g.fns[cur].file.clone(),
                    line: *line,
                });
                cur = *callee;
                if hops.len() > g.fns.len() {
                    break;
                }
            }
            None => break,
        }
    }
    hops
}

/// One observed "holds A, acquires B" ordering.
struct Witness {
    fn_idx: usize,
    /// Acquisition of the held lock.
    first_line: u32,
    /// The second acquisition (direct) or the call that leads to it.
    second_line: u32,
    /// `Some(callee)` when the second acquisition is behind a call.
    via: Option<usize>,
}

fn lock_order_cycle(g: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let n = g.fns.len();
    let mut memo: Vec<Option<BTreeMap<String, LHop>>> = vec![None; n];
    let mut on_stack = vec![false; n];
    for i in 0..n {
        trans_locks(g, i, &mut memo, &mut on_stack);
    }

    // Acquisition-order edges, first witness kept per ordered key pair.
    let mut ledges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        if cfg.rule_allows(rule_id::LOCK_ORDER_CYCLE, &f.file) {
            continue;
        }
        for a in &f.locks {
            if a.allowed {
                continue;
            }
            for b in &f.locks {
                if b.tok > a.tok && b.tok < a.scope_end && !b.allowed {
                    ledges.entry((a.key.clone(), b.key.clone())).or_insert(Witness {
                        fn_idx: i,
                        first_line: a.line,
                        second_line: b.line,
                        via: None,
                    });
                }
            }
            for e in &g.edges[i] {
                if e.tok > a.tok && e.tok < a.scope_end {
                    if let Some(Some(sub)) = memo.get(e.to) {
                        for k in sub.keys() {
                            ledges.entry((a.key.clone(), k.clone())).or_insert(Witness {
                                fn_idx: i,
                                first_line: a.line,
                                second_line: e.line,
                                via: Some(e.to),
                            });
                        }
                    }
                }
            }
        }
    }

    // Strongly connected components over the key graph; any SCC with more
    // than one node — or a self-loop — is a deadlock-capable cycle.
    let nodes: BTreeSet<&String> = ledges.keys().flat_map(|(a, b)| [a, b]).collect();
    let reaches = |from: &String, to: &String| -> bool {
        let mut seen: BTreeSet<&String> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            for ((a, b), _) in ledges.range((x.clone(), String::new())..) {
                if a != x {
                    break;
                }
                if b == to {
                    return true;
                }
                if seen.insert(b) {
                    stack.push(b);
                }
            }
        }
        false
    };
    let mut in_cycle: Vec<&String> =
        nodes.iter().copied().filter(|k| reaches(k, k)).collect();
    in_cycle.sort();

    // Group cyclic nodes into components (mutual reachability).
    let mut assigned: BTreeSet<&String> = BTreeSet::new();
    for &k in &in_cycle {
        if assigned.contains(k) {
            continue;
        }
        let comp: Vec<&String> = in_cycle
            .iter()
            .copied()
            .filter(|&m| m == k || (reaches(k, m) && reaches(m, k)))
            .collect();
        for &m in &comp {
            assigned.insert(m);
        }
        // Every intra-component edge is part of the cycle; list each with
        // its witness (for a 2-cycle this is exactly both directions).
        let comp_set: BTreeSet<&String> = comp.iter().copied().collect();
        let mut lines = Vec::new();
        let mut chain: Vec<ChainHop> = Vec::new();
        let mut first: Option<&Witness> = None;
        for ((ka, kb), w) in &ledges {
            if !comp_set.contains(ka) || !comp_set.contains(kb) {
                continue;
            }
            let f = &g.fns[w.fn_idx];
            let how = match w.via {
                None => format!("acquires `{kb}` ({}:{})", f.file, w.second_line),
                Some(callee) => {
                    let sub_chain = lock_chain(g, callee, kb, &memo);
                    format!(
                        "acquires `{kb}` via call ({}:{}) -> {}",
                        f.file,
                        w.second_line,
                        chain_text(&sub_chain),
                    )
                }
            };
            lines.push(format!(
                "`{}` holds `{ka}` ({}:{}) then {how}",
                f.display(),
                f.file,
                w.first_line,
            ));
            if first.is_none() {
                first = Some(w);
                chain.push(ChainHop {
                    function: f.display(),
                    file: f.file.clone(),
                    line: w.first_line,
                });
                chain.push(ChainHop {
                    function: f.display(),
                    file: f.file.clone(),
                    line: w.second_line,
                });
                if let Some(callee) = w.via {
                    chain.extend(lock_chain(g, callee, kb, &memo));
                }
            }
        }
        let Some(w) = first else { continue };
        let f = &g.fns[w.fn_idx];
        let keys: Vec<String> = comp.iter().map(|k| format!("`{k}`")).collect();
        out.push(interproc_finding(
            f,
            rule_id::LOCK_ORDER_CYCLE,
            Severity::Error,
            format!(
                "lock acquisition-order cycle among {}: {}",
                keys.join(", "),
                lines.join("; "),
            ),
            "impose a global acquisition order (always take these locks in one fixed \
             sequence) or collapse the critical sections; a cycle means two threads can \
             deadlock holding one lock each"
                .to_string(),
            chain,
        ));
    }
}
