//! `--explain RULE`: rationale, a minimal example, and the suppression
//! syntax for every rule in the catalog. The text here is the authoritative
//! rule documentation; README's table is generated from the same IDs.

use crate::rules::rule_id;

/// One rule's documentation.
pub struct RuleDoc {
    pub rule: &'static str,
    pub severity: &'static str,
    /// One-line summary (also used for the README table).
    pub summary: &'static str,
    /// Why the rule exists, in this workspace specifically.
    pub rationale: &'static str,
    /// A minimal triggering example.
    pub example: &'static str,
    /// How to suppress a true-but-accepted finding.
    pub suppression: &'static str,
}

/// Every rule, in catalog order (token rules first, then interprocedural).
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        rule: rule_id::NONDET_MAP_ITER,
        severity: "error",
        summary: "iterating HashMap/HashSet in sim crates",
        rationale: "HashMap/HashSet iteration order depends on RandomState, so any sim \
result derived from it differs run to run — breaking the byte-identical goldens and the \
serial-vs-PDES differential check. Use BTreeMap/BTreeSet or sort before iterating.",
        example: "for (k, v) in &self.flows { ... }   // flows: HashMap<_, _>",
        suppression: "// xtsim-lint: allow(nondet-map-iter, \"order-insensitive fold\")",
    },
    RuleDoc {
        rule: rule_id::WALLCLOCK_IN_SIM,
        severity: "error",
        summary: "Instant::now/SystemTime in sim code",
        rationale: "Simulated time must come from the DES clock. A wall-clock read in a sim \
crate couples results to host speed and load; measurement belongs in the harness paths \
allowlisted in lint.toml.",
        example: "let t0 = std::time::Instant::now();",
        suppression: "// xtsim-lint: allow(wallclock-in-sim, \"harness-side timing\") or \
[allow.wallclock-in-sim] paths in lint.toml",
    },
    RuleDoc {
        rule: rule_id::AMBIENT_RNG,
        severity: "error",
        summary: "thread_rng/OsRng/entropy seeding outside tests",
        rationale: "All randomness must flow from the run's named seed so figures \
regenerate exactly. Ambient entropy (thread_rng, from_entropy, OsRng) silently reseeds \
per process.",
        example: "let mut rng = rand::thread_rng();",
        suppression: "// xtsim-lint: allow(ambient-rng, \"why\") or [allow.ambient-rng] \
paths in lint.toml",
    },
    RuleDoc {
        rule: rule_id::REFCELL_REENTRANT_BORROW,
        severity: "error",
        summary: "two borrows of one RefCell in a statement",
        rationale: "`x.borrow_mut()` while `x.borrow()` is live in the same statement \
panics at runtime; in an event handler that takes down the whole simulation.",
        example: "f(cell.borrow(), cell.borrow_mut());",
        suppression: "// xtsim-lint: allow(refcell-reentrant-borrow, \"distinct cells\")",
    },
    RuleDoc {
        rule: rule_id::PANIC_IN_HOT_PATH,
        severity: "warn (indexing: note)",
        summary: "unwrap/expect/indexing in DES hot paths",
        rationale: "Hot paths (lint.toml `hot_paths`) run once per simulated event; a panic \
there aborts a multi-hour sweep. Prefer match/if-let or propagate a Result. Indexing is \
note-level: visible in JSON, never gating.",
        example: "let ev = self.queue.pop().expect(\"non-empty\");",
        suppression: "// xtsim-lint: allow(panic-in-hot-path, \"invariant: ...\") or a \
lint-baseline.json entry",
    },
    RuleDoc {
        rule: rule_id::UNSAFE_WITHOUT_SAFETY_COMMENT,
        severity: "warn",
        summary: "unsafe block lacking a // SAFETY: comment",
        rationale: "Every unsafe block must state the invariant that makes it sound; the \
per-crate unsafe inventory in the JSON report is CI-pinned so new unsafe is a conscious \
decision.",
        example: "unsafe { ptr.read() }   // no SAFETY: comment above",
        suppression: "write the // SAFETY: comment (preferred), or \
// xtsim-lint: allow(unsafe-without-safety-comment, \"why\")",
    },
    RuleDoc {
        rule: rule_id::THREAD_SHARED_MUT,
        severity: "warn",
        summary: "static mut or non-Sync shared state in threaded code",
        rationale: "The PDES engine and serve pool are the only sanctioned threading; \
shared mutable statics bypass their synchronization and the differential harness can't \
catch the race deterministically.",
        example: "static mut COUNTER: u64 = 0;",
        suppression: "// xtsim-lint: allow(thread-shared-mut, \"single-threaded init\")",
    },
    RuleDoc {
        rule: rule_id::MALFORMED_ALLOW,
        severity: "warn",
        summary: "allow comment that doesn't parse or names no rule",
        rationale: "A typo'd suppression silently suppresses nothing; better to fail loudly \
than to believe a finding was excused.",
        example: "// xtsim-lint: allow(wallclock)   // missing reason, unknown rule",
        suppression: "fix the comment: // xtsim-lint: allow(<rule>, \"<reason>\")",
    },
    RuleDoc {
        rule: rule_id::UNUSED_ALLOW,
        severity: "warn",
        summary: "allow comment that suppresses nothing",
        rationale: "When the excused finding is fixed, the allow must go too, or dead \
suppressions accumulate and hide future regressions on the same line.",
        example: "// xtsim-lint: allow(ambient-rng, \"...\") above clean code",
        suppression: "delete the stale allow comment",
    },
    RuleDoc {
        rule: rule_id::TRANSITIVE_TAINT,
        severity: "error",
        summary: "sim code reaching wallclock/RNG through any call chain",
        rationale: "The token rules only see direct calls; a sim function that calls a \
helper that calls Instant::now is just as nondeterministic. This rule walks the \
approximate call graph and reports the frontier function — the last sim-scope caller \
before the chain escapes into harness/compat code — with the full chain in the \
diagnostic, so blame lands once at the fixable boundary.",
        example: "fn step(&mut self) { self.metrics.observe(); }   // observe() -> Instant::now()",
        suppression: "// xtsim-lint: allow(transitive-taint, \"why\") on the fn, or \
[allow.transitive-taint] paths in lint.toml for measurement-side callers",
    },
    RuleDoc {
        rule: rule_id::LOCK_ORDER_CYCLE,
        severity: "error",
        summary: "cycle in the Mutex/RwLock acquisition-order graph",
        rationale: "If one code path locks A then B and another locks B then A (directly \
or through calls), two threads can deadlock holding one each. Lock keys approximate \
identity as file-stem:receiver-tail; the diagnostic lists every edge of the cycle with \
its witness path so both orderings are visible.",
        example: "fn a(){ let g = x.lock(); y.lock(); }  fn b(){ let g = y.lock(); x.lock(); }",
        suppression: "// xtsim-lint: allow(lock-order-cycle, \"why\") on an acquisition \
site, or [allow.lock-order-cycle] paths in lint.toml",
    },
    RuleDoc {
        rule: rule_id::PANIC_PROPAGATION,
        severity: "warn",
        summary: "hot-path fn calling may-panic code outside the hot set",
        rationale: "panic-in-hot-path only sees panics written in hot files; this rule \
adds the calls that leave the hot set and reach an unwrap/expect/panic! elsewhere. The \
chain in the diagnostic shows where the panic actually lives.",
        example: "fn dispatch(&mut self) { helper(); }   // helper() in another file unwraps",
        suppression: "// xtsim-lint: allow(panic-propagation, \"why\") on the hot fn, or \
fix/annotate the panic site (its own allow un-seeds the chain)",
    },
    RuleDoc {
        rule: rule_id::BLOCKING_IN_POLL,
        severity: "warn",
        summary: "std sync lock/Condvar wait reachable from fn poll",
        rationale: "The DES executor is single-threaded cooperative: a poll body that \
blocks on a std Mutex/Condvar (directly or transitively) stalls every other task and can \
deadlock against the PDES worker threads. Waits belong in the event scheduler.",
        example: "fn poll(...) -> Poll<()> { let g = self.shared.lock().unwrap(); ... }",
        suppression: "// xtsim-lint: allow(blocking-in-poll, \"bounded: ...\") on the \
blocking site or the poll fn",
    },
];

/// Look up one rule's doc by ID.
pub fn find(rule: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.rule == rule)
}

/// Render `--explain RULE` text.
pub fn explain(rule: &str) -> Option<String> {
    let d = find(rule)?;
    Some(format!(
        "{} ({})\n\n  {}\n\nWhy\n  {}\n\nExample\n  {}\n\nSuppression\n  {}\n",
        d.rule, d.severity, d.summary, d.rationale, d.example, d.suppression
    ))
}

/// All rule IDs, for `--explain` error text.
pub fn rule_ids() -> Vec<&'static str> {
    RULE_DOCS.iter().map(|d| d.rule).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_a_doc() {
        for id in [
            rule_id::NONDET_MAP_ITER,
            rule_id::WALLCLOCK_IN_SIM,
            rule_id::AMBIENT_RNG,
            rule_id::REFCELL_REENTRANT_BORROW,
            rule_id::PANIC_IN_HOT_PATH,
            rule_id::UNSAFE_WITHOUT_SAFETY_COMMENT,
            rule_id::THREAD_SHARED_MUT,
            rule_id::MALFORMED_ALLOW,
            rule_id::UNUSED_ALLOW,
            rule_id::TRANSITIVE_TAINT,
            rule_id::LOCK_ORDER_CYCLE,
            rule_id::PANIC_PROPAGATION,
            rule_id::BLOCKING_IN_POLL,
        ] {
            assert!(find(id).is_some(), "no doc for {id}");
            assert!(explain(id).unwrap().contains(id));
        }
    }

    #[test]
    fn unknown_rule_is_none() {
        assert!(explain("no-such-rule").is_none());
        assert!(rule_ids().len() >= 13);
    }
}
