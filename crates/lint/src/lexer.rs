//! A small hand-rolled Rust lexer: just enough token structure for
//! pattern-based lints, with correct handling of the lexical features that
//! would otherwise cause false positives — line and (nested) block comments,
//! cooked and raw strings, byte strings, char literals vs. lifetimes, and
//! raw identifiers.
//!
//! The lexer never fails: unterminated literals are closed at end of input
//! so a half-edited file still produces a usable token stream.

/// What a token is. Literal *contents* are only kept where a rule needs
/// them (comments carry allow/SAFETY annotations; identifiers drive the
/// pattern engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`r#raw` identifiers are stored without `r#`).
    Ident(String),
    /// Lifetime such as `'a` (name stored without the quote).
    Lifetime(String),
    /// Integer or float literal (verbatim text).
    Num(String),
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` comment (text after `//`, without the newline).
    LineComment(String),
    /// `/* … */` comment (inner text; nested comments flattened).
    BlockComment(String),
    /// Any other single character of punctuation: `. : ; , ( ) [ ] { } …`.
    Punct(char),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True iff this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True iff this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// True for comment tokens.
    pub fn is_comment(&self) -> bool {
        matches!(self.tok, Tok::LineComment(_) | Tok::BlockComment(_))
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenize `src`. Comments are kept in the stream (rules that don't need
/// them filter with [`Token::is_comment`]).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        let push = |out: &mut Vec<Token>, tok: Tok| out.push(Token { tok, line, col });
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek2() == Some(b'/') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                push(&mut out, Tok::LineComment(text));
            }
            b'/' if cur.peek2() == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                while depth > 0 && cur.peek().is_some() {
                    if cur.peek() == Some(b'/') && cur.peek2() == Some(b'*') {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    } else if cur.peek() == Some(b'*') && cur.peek2() == Some(b'/') {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    } else {
                        cur.bump();
                    }
                }
                let end = cur.pos.saturating_sub(2).max(start);
                let text = String::from_utf8_lossy(&cur.src[start..end]).into_owned();
                push(&mut out, Tok::BlockComment(text));
            }
            b'"' => {
                lex_cooked_string(&mut cur);
                push(&mut out, Tok::Str);
            }
            b'\'' => {
                // Char literal or lifetime. A char literal is 'x' (possibly
                // escaped); a lifetime is 'ident with no closing quote.
                if cur.peek2() == Some(b'\\') {
                    lex_char(&mut cur);
                    push(&mut out, Tok::Char);
                } else if cur.peek2().is_some_and(is_ident_start)
                    && cur.peek_at(2).is_some_and(|c| c != b'\'')
                {
                    cur.bump(); // '
                    let start = cur.pos;
                    while cur.peek().is_some_and(is_ident_cont) {
                        cur.bump();
                    }
                    let name = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                    push(&mut out, Tok::Lifetime(name));
                } else {
                    lex_char(&mut cur);
                    push(&mut out, Tok::Char);
                }
            }
            b'r' | b'b' if starts_raw_or_byte_literal(&cur) => {
                lex_raw_or_byte(&mut cur, &mut out, line, col);
            }
            c if is_ident_start(c) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_cont) {
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                push(&mut out, Tok::Ident(text));
            }
            c if c.is_ascii_digit() => {
                let start = cur.pos;
                while cur.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                    cur.bump();
                }
                // Fractional part — but never swallow `..` (range) or a
                // method call like `1.max(2)`.
                if cur.peek() == Some(b'.') && cur.peek2().is_some_and(|c| c.is_ascii_digit()) {
                    cur.bump();
                    while cur.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                        cur.bump();
                    }
                }
                // Signed exponent (`1e-6`): the `e` was consumed above.
                if (cur.src[cur.pos - 1] | 0x20) == b'e'
                    && matches!(cur.peek(), Some(b'+') | Some(b'-'))
                    && cur.peek2().is_some_and(|c| c.is_ascii_digit())
                {
                    cur.bump();
                    while cur.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                        cur.bump();
                    }
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                push(&mut out, Tok::Num(text));
            }
            c => {
                cur.bump();
                push(&mut out, Tok::Punct(c as char));
            }
        }
    }
    out
}

/// Does the cursor sit on `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"` …?
fn starts_raw_or_byte_literal(cur: &Cursor) -> bool {
    let c = cur.peek().unwrap_or(0);
    match c {
        b'r' => matches!(cur.peek2(), Some(b'"') | Some(b'#')),
        b'b' => match cur.peek2() {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(cur.peek_at(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

fn lex_raw_or_byte(cur: &mut Cursor, out: &mut Vec<Token>, line: u32, col: u32) {
    let c = cur.peek().unwrap_or(0);
    if c == b'b' {
        match cur.peek2() {
            Some(b'\'') => {
                cur.bump(); // b
                lex_char(cur);
                out.push(Token { tok: Tok::Char, line, col });
                return;
            }
            Some(b'"') => {
                cur.bump(); // b
                lex_cooked_string(cur);
                out.push(Token { tok: Tok::Str, line, col });
                return;
            }
            Some(b'r') => {
                cur.bump(); // b; fall through to raw handling below
            }
            _ => unreachable!("guarded by starts_raw_or_byte_literal"),
        }
    }
    // Now at `r` followed by `"` or `#…`.
    cur.bump(); // r
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        // `r#ident` raw identifier (or stray `r#`): rewind is impossible in a
        // streaming lexer, so lex the identifier directly.
        let start = cur.pos;
        while cur.peek().is_some_and(is_ident_cont) {
            cur.bump();
        }
        let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
        out.push(Token { tok: Tok::Ident(text), line, col });
        return;
    }
    cur.bump(); // opening quote
    // Scan for `"` followed by `hashes` hash marks.
    loop {
        match cur.bump() {
            None => break,
            Some(b'"') => {
                let mut n = 0;
                while n < hashes && cur.peek() == Some(b'#') {
                    n += 1;
                    cur.bump();
                }
                if n == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
    out.push(Token { tok: Tok::Str, line, col });
}

fn lex_cooked_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None | Some(b'"') => break,
            Some(b'\\') => {
                cur.bump(); // whatever is escaped, including `"` and `\`
            }
            Some(_) => {}
        }
    }
}

fn lex_char(cur: &mut Cursor) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None | Some(b'\'') => break,
            Some(b'\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_numbers_punct() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct('='),
                Tok::Num("42".into()),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn float_and_range_numbers() {
        assert_eq!(
            kinds("1.5e-6 0..10 0xff 1_000"),
            vec![
                Tok::Num("1.5e-6".into()),
                Tok::Num("0".into()),
                Tok::Punct('.'),
                Tok::Punct('.'),
                Tok::Num("10".into()),
                Tok::Num("0xff".into()),
                Tok::Num("1_000".into()),
            ]
        );
    }

    #[test]
    fn code_inside_strings_is_not_tokens() {
        // A lint for `HashMap` must not fire on string contents.
        let toks = kinds(r#"let s = "HashMap::new() // not code"; "#);
        assert!(toks.iter().all(|t| !matches!(t, Tok::Ident(s) if s == "HashMap")));
        assert!(toks.contains(&Tok::Str));
    }

    #[test]
    fn escaped_quotes_stay_inside_string() {
        let toks = kinds(r#" "a\"b\\" after "#);
        assert_eq!(
            toks,
            vec![Tok::Str, Tok::Ident("after".into())]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"r#"contains "quotes" and unwrap()"# tail"##);
        assert_eq!(toks, vec![Tok::Str, Tok::Ident("tail".into())]);
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let toks = kinds(r##"b"bytes" br#"raw bytes"# b'x' x"##);
        assert_eq!(
            toks,
            vec![Tok::Str, Tok::Str, Tok::Char, Tok::Ident("x".into())]
        );
    }

    #[test]
    fn line_comments_capture_text() {
        let toks = lex("code // xtsim-lint: allow(x, \"y\")\nnext");
        assert_eq!(
            toks[1].tok,
            Tok::LineComment(" xtsim-lint: allow(x, \"y\")".into())
        );
        assert_eq!(toks[1].line, 1);
        assert_eq!(toks[2].tok, Tok::Ident("next".into()));
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::BlockComment(" outer /* inner */ still comment ".into()),
                Tok::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn comments_inside_strings_are_not_comments() {
        let toks = kinds(r#""no // comment" x"#);
        assert_eq!(toks, vec![Tok::Str, Tok::Ident("x".into())]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("&'a str 'x' '\\n' b'z' 'static"),
            vec![
                Tok::Punct('&'),
                Tok::Lifetime("a".into()),
                Tok::Ident("str".into()),
                Tok::Char,
                Tok::Char,
                Tok::Char,
                Tok::Lifetime("static".into()),
            ]
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(
            kinds("r#type r#match"),
            vec![Tok::Ident("type".into()), Tok::Ident("match".into())]
        );
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = kinds("\"never closed");
        assert_eq!(toks, vec![Tok::Str]);
    }
}
