//! Criterion wall-clock benches over the real kernels — the host-machine
//! counterpart of the paper's node-local measurements. Each group names the
//! figure whose kernel it exercises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

use xtsim::kernels::{cg, complex::C64, dgemm, fft, lu, md, ptrans, random_access, stencil, stream, zlu};

fn rng() -> rand_chacha::ChaCha8Rng {
    rand_chacha::ChaCha8Rng::seed_from_u64(42)
}

/// Figure 4 kernel: complex FFT.
fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_fft");
    for &n in &[1usize << 12, 1 << 16] {
        let mut r = rng();
        let signal: Vec<C64> = (0..n)
            .map(|_| C64::new(r.gen_range(-1.0..1.0), r.gen_range(-1.0..1.0)))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &signal, |b, s| {
            b.iter(|| {
                let mut data = s.clone();
                fft::fft(&mut data);
                data[0]
            });
        });
    }
    g.finish();
}

/// Figure 5 kernel: DGEMM.
fn bench_dgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_dgemm");
    g.sample_size(10);
    for &n in &[128usize, 384] {
        let mut r = rng();
        let a: Vec<f64> = (0..n * n).map(|_| r.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n * n).map(|_| r.gen_range(-1.0..1.0)).collect();
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut cm = vec![0.0; n * n];
                dgemm::dgemm(n, &a, &b, &mut cm);
                cm[0]
            });
        });
    }
    g.finish();
}

/// Figure 6 kernel: RandomAccess/GUPS.
fn bench_gups(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_randomaccess");
    let size = 1usize << 20;
    let updates = 1u64 << 18;
    g.throughput(Throughput::Elements(updates));
    g.bench_function("gups_1Mi_table", |b| {
        b.iter(|| {
            let mut t = random_access::GupsTable::new(size);
            t.run(12345, updates)
        });
    });
    g.finish();
}

/// Figure 7 kernel: STREAM triad.
fn bench_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_stream");
    let n = 4_000_000usize;
    let bsrc = vec![1.5f64; n];
    let csrc = vec![2.5f64; n];
    let mut a = vec![0.0f64; n];
    g.throughput(Throughput::Bytes((24 * n) as u64));
    g.bench_function("triad_4M", |b| {
        b.iter(|| {
            stream::triad(3.0, &bsrc, &csrc, &mut a);
            a[n - 1]
        });
    });
    g.finish();
}

/// Figure 8 kernel: LU/HPL.
fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_hpl_lu");
    g.sample_size(10);
    for &n in &[96usize, 256] {
        let mut r = rng();
        let a: Vec<f64> = (0..n * n).map(|_| r.gen_range(-1.0..1.0)).collect();
        g.throughput(Throughput::Elements((2 * n * n * n / 3) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| lu::lu_factor(n, &a).expect("nonsingular").lu[0]);
        });
    }
    g.finish();
}

/// Figure 10 kernel: transpose.
fn bench_ptrans(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_ptrans");
    let n = 1024usize;
    let mut r = rng();
    let a: Vec<f64> = (0..n * n).map(|_| r.gen_range(-1.0..1.0)).collect();
    g.throughput(Throughput::Bytes((8 * n * n) as u64));
    g.bench_function("ptrans_1024", |b| {
        b.iter(|| ptrans::ptrans_update(n, &a)[0]);
    });
    g.finish();
}

/// Figures 18–19 kernel: CG vs Chronopoulos–Gear.
fn bench_cg(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig19_barotropic_cg");
    g.sample_size(10);
    let a = cg::laplacian_2d(128, 128);
    let mut r = rng();
    let b: Vec<f64> = (0..a.n).map(|_| r.gen_range(-1.0..1.0)).collect();
    g.bench_function("standard_cg", |bench| {
        bench.iter(|| cg::cg(&a, &b, 1e-8, 2000).iterations);
    });
    g.bench_function("chronopoulos_gear", |bench| {
        bench.iter(|| cg::cg_chronopoulos_gear(&a, &b, 1e-8, 2000).iterations);
    });
    g.finish();
}

/// Figure 22 kernel: eighth-order stencil RK step.
fn bench_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig22_s3d_stencil");
    g.sample_size(10);
    let n = 50usize;
    let mut u = stencil::Grid3::new(n, n, n);
    u.fill(|i, j, k| (i + 2 * j + 3 * k) as f64 * 0.01);
    g.throughput(Throughput::Elements((n * n * n) as u64));
    g.bench_function("rk_advect_50cubed", |b| {
        b.iter(|| stencil::rk_advect_step(&u, 1.0, 0.02, 1e-3).get(0, 0, 0));
    });
    g.finish();
}

/// Figures 20–21 kernel: MD forces.
fn bench_md(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig20_namd_md");
    g.sample_size(10);
    let sys = md::MdSystem::lattice(1000, 14.0, 2.5, 7);
    g.throughput(Throughput::Elements(1000));
    g.bench_function("cell_list_forces_1000", |b| {
        b.iter(|| sys.forces_cell_list().1);
    });
    g.finish();
}

/// Figure 23 kernel: complex LU.
fn bench_zlu(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig23_aorsa_zlu");
    g.sample_size(10);
    let n = 128usize;
    let mut r = rng();
    let a: Vec<C64> = (0..n * n)
        .map(|_| C64::new(r.gen_range(-1.0..1.0), r.gen_range(-1.0..1.0)))
        .collect();
    g.throughput(Throughput::Elements((8 * n * n * n / 3) as u64));
    g.bench_function("zlu_128", |b| {
        b.iter(|| zlu::zlu_factor(n, &a).expect("nonsingular").lu[0]);
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_fft,
    bench_dgemm,
    bench_gups,
    bench_stream,
    bench_lu,
    bench_ptrans,
    bench_cg,
    bench_stencil,
    bench_md,
    bench_zlu
);
criterion_main!(kernels);
