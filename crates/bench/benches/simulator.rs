//! Criterion benches over the simulator itself: event throughput, message
//! rate, collective cost, and end-to-end figure regeneration at quick scale.
//! These guard the harness against performance regressions (a full figure
//! run schedules tens of millions of events).

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use xtsim::des::{FluidPool, LinkId, Sim, SimDuration};
use xtsim::hpcc::util::job;
use xtsim::machine::{fit_dims, presets, ExecMode};
use xtsim::mpi::{simulate, CollectiveMode, Message, ReduceOp, WorldConfig};
use xtsim::net::{ContentionModel, PlatformConfig};

/// `XTSIM_BENCH_QUICK=1` shrinks the stress benches so CI can smoke them in
/// seconds (see `scripts/bench.sh --quick`).
fn quick() -> bool {
    std::env::var_os("XTSIM_BENCH_QUICK").is_some_and(|v| v == "1")
}

/// Raw event throughput of the DES core.
fn bench_event_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_events");
    let events = 100_000u64;
    g.throughput(Throughput::Elements(events));
    g.bench_function("sleep_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            let h = sim.handle();
            sim.spawn(async move {
                for _ in 0..events {
                    h.sleep(SimDuration::from_ns(10)).await;
                }
            });
            sim.run()
        });
    });
    g.finish();
}

/// Simulated message rate (eager path, 2 ranks).
fn bench_message_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi_messages");
    let msgs = 2_000u64;
    g.throughput(Throughput::Elements(msgs));
    g.bench_function("pingpong_2k", |b| {
        b.iter(|| {
            let mut spec = presets::xt4();
            spec.torus_dims = [2, 1, 1];
            let cfg = xtsim::mpi::WorldConfig::new(xtsim::net::PlatformConfig::new(
                spec,
                ExecMode::SN,
                2,
            ));
            simulate(0, cfg, move |mpi| async move {
                for i in 0..msgs {
                    if mpi.rank() == 0 {
                        mpi.send(1, i, Message::of_bytes(64)).await;
                        mpi.recv(Some(1), Some(i)).await;
                    } else {
                        mpi.recv(Some(0), Some(i)).await;
                        mpi.send(0, i, Message::of_bytes(64)).await;
                    }
                }
            })
            .end_time
        });
    });
    g.finish();
}

/// Algorithmic allreduce cost across rank counts.
fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi_allreduce");
    g.sample_size(10);
    for &ranks in &[16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let cfg = job(
                    &presets::xt4(),
                    ExecMode::SN,
                    ranks,
                    CollectiveMode::Algorithmic,
                );
                simulate(0, cfg, |mpi| async move {
                    mpi.comm().allreduce(vec![1.0; 8], ReduceOp::Sum).await;
                })
                .end_time
            });
        });
    }
    g.finish();
}

/// End-to-end: one quick-scale figure regeneration (the S3D weak-scaling
/// figure exercises platform + MPI + compute model together).
fn bench_figure_quick(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_regeneration");
    g.sample_size(10);
    g.bench_function("s3d_64ranks", |b| {
        b.iter(|| {
            xtsim::apps::s3d::s3d(&presets::xt4(), ExecMode::VN, 64).cost_us_per_point
        });
    });
    g.finish();
}

/// Synthetic fluid-pool stress: `flows` concurrent transfers over short
/// overlapping routes on a 512-link pool. Exercises exactly the rebalance
/// hot path (flow add → rate recompute → completion) with high concurrency.
fn fluid_pool_stress(flows: usize) -> f64 {
    let n_links = 512usize;
    let mut sim = Sim::new(7);
    let pool = FluidPool::new(sim.handle());
    let links: Vec<LinkId> = (0..n_links).map(|_| pool.add_link(1.0e9)).collect();
    for i in 0..flows {
        let pool = pool.clone();
        let h = sim.handle();
        // Two links per route; the stride keeps components overlapping but
        // not fully global, like real torus traffic.
        let route = [links[i % n_links], links[(i * 7 + 3) % n_links]];
        let volume = 100_000.0 + (i % 97) as f64 * 1_000.0;
        let delay = SimDuration::from_ns((i % 64) as u64 * 500);
        sim.spawn(async move {
            h.sleep(delay).await;
            pool.transfer(&route, volume, None).await;
        });
    }
    sim.run().as_secs_f64()
}

fn bench_fluid_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_pool");
    g.sample_size(10);
    let sizes: &[(usize, &str)] = if quick() {
        &[(200, "flows_1k"), (500, "flows_10k")]
    } else {
        &[(1_000, "flows_1k"), (10_000, "flows_10k")]
    };
    for &(flows, label) in sizes {
        g.bench_function(label, |b| {
            b.iter(|| fluid_pool_stress(flows));
        });
    }
    g.finish();
}

/// Pairwise-exchange alltoall on a compact torus partition with **exact
/// fluid contention** (the model the paper-scale sweeps want to use): the
/// worst case for the rebalancer — every rank keeps one wire flow in
/// flight for `ranks - 1` consecutive steps.
fn alltoall_fluid(ranks: usize, bytes: u64) -> f64 {
    let mut spec = presets::xt4();
    spec.torus_dims = fit_dims(ranks);
    let mut platform = PlatformConfig::new(spec, ExecMode::SN, ranks);
    platform.contention = ContentionModel::Fluid;
    let mut cfg = WorldConfig::new(platform);
    cfg.collectives = CollectiveMode::Algorithmic;
    simulate(0, cfg, move |mpi| async move {
        let p = mpi.comm().size();
        let msgs = (0..p).map(|_| Message::of_bytes(bytes)).collect();
        mpi.comm().alltoall(msgs).await;
    })
    .end_time
    .as_secs_f64()
}

fn bench_alltoall_fluid(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoall_fluid");
    g.sample_size(10);
    let sizes: &[(usize, &str)] = if quick() {
        &[(32, "ranks_256"), (64, "ranks_1024")]
    } else {
        &[(256, "ranks_256"), (1_024, "ranks_1024")]
    };
    for &(ranks, label) in sizes {
        g.bench_function(label, |b| {
            b.iter(|| alltoall_fluid(ranks, 64 * 1024));
        });
    }
    g.finish();
}

/// Pairwise-exchange alltoall on the conservative parallel-DES engine
/// (`xtsim::apps::pdes`): the wall-clock headline for `--des-threads`.
/// Serial (1 shard / 1 thread) vs partitioned (4 shards / 4 threads) on the
/// same scenario — the results are byte-identical (see
/// `tests/pdes_equivalence.rs`), so this measures speedup only.
fn pdes_alltoall(ranks: usize, shards: usize, threads: usize) -> f64 {
    use xtsim::apps::pdes::{alltoall, PdesScenario};
    let mut sc = PdesScenario::new(presets::xt4(), ExecMode::VN, ranks);
    if shards > 1 || threads > 1 {
        sc = sc.sharded(shards, threads);
    }
    alltoall(&sc, 64 * 1024).time_s
}

fn bench_pdes_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdes_alltoall");
    g.sample_size(10);
    let ranks = if quick() { 128 } else { 1_024 };
    for &(shards, threads, label) in &[
        (1usize, 1usize, "ranks_1024/threads_1"),
        (4, 4, "ranks_1024/threads_4"),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| pdes_alltoall(ranks, shards, threads));
        });
    }
    g.finish();
}

// ------------------------------------------------------------------- cache

/// A synthetic figure spec exercising the cache path: `n_jobs` jobs whose
/// closures are trivially cheap and whose outputs carry a payload of
/// `floats` numbers each, so a run's cost is dominated by cache machinery
/// (lookup, verification, parse/serialize, store) — exactly what this
/// group measures.
fn cache_spec(n_jobs: usize, floats: usize) -> xtsim::sweep::FigureSpec {
    use xtsim::report::{FigureResult, Scale, Series};
    use xtsim::sweep::{num, obj, FigureSpec, JobKey};
    let mut spec = FigureSpec::new("bench-cache", move |outs| {
        let mut s = Series::new("sum");
        for (i, o) in outs.iter().enumerate() {
            s.push(i as f64, num(o, "sum"));
        }
        FigureResult::new("bench-cache", "cache bench").with_series(s)
    });
    for i in 0..n_jobs {
        let key = JobKey::new("bench-cache", None, None, Scale::Quick).with("i", i as i64);
        spec.push_job(key, move || {
            let payload: Vec<serde::Value> = (0..floats)
                .map(|k| serde::Value::Float((i * floats + k) as f64 * 0.5))
                .collect();
            obj(vec![
                ("sum", (((i * floats) as f64) * 0.5).into()),
                ("payload", serde::Value::Array(payload)),
            ])
        });
    }
    spec
}

/// Two-tier cache path costs: cold miss (compute + store), warm disk hit
/// (read + parse + verify, hot tier off), warm memory hit (shard lookup +
/// verify only), and an 8-thread concurrent mixed load/store. The
/// acceptance gate for the hot tier is `warm_memory_hit` at least 2x
/// faster than `warm_disk_hit` — checked by `scripts/ci.sh` against the
/// medians this group prints.
fn bench_cache(c: &mut Criterion) {
    use xtsim::sweep::{run_figure, DiskCache, SweepConfig};
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let (n_jobs, floats) = if quick() { (32, 128) } else { (128, 128) };
    let root = std::env::temp_dir().join(format!("xtsim-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut g = c.benchmark_group("cache");
    g.sample_size(10);

    // Cold: every iteration gets a fresh directory (and, because hot tiers
    // are registered per directory, a fresh empty memory tier): all misses,
    // compute + store both tiers.
    g.bench_function("cold_miss", |b| {
        b.iter(|| {
            let dir = root.join(format!("cold-{}", UNIQ.fetch_add(1, Ordering::Relaxed)));
            let cfg = SweepConfig::serial()
                .with_cache(DiskCache::with_mem_cap(&dir, 64 * 1024 * 1024).unwrap());
            run_figure(cache_spec(n_jobs, floats), &cfg).0
        });
    });

    // Warm disk: entries on disk, hot tier disabled (cap 0) — every lookup
    // reads and parses the entry file. The cache handle is built once
    // outside the timed loop so open-time work (migration scan, tmp sweep)
    // doesn't dilute the lookup cost being measured.
    let disk_dir = root.join("warm-disk");
    {
        let cfg = SweepConfig::serial()
            .with_cache(DiskCache::with_mem_cap(&disk_dir, 0).unwrap());
        run_figure(cache_spec(n_jobs, floats), &cfg); // populate
    }
    let disk_cfg =
        SweepConfig::serial().with_cache(DiskCache::with_mem_cap(&disk_dir, 0).unwrap());
    g.bench_function("warm_disk_hit", |b| {
        b.iter(|| run_figure(cache_spec(n_jobs, floats), &disk_cfg).0);
    });

    // Warm memory: same corpus, hot tier enabled and pre-promoted — every
    // lookup is a shard probe + key comparison, no filesystem or parse.
    let mem_dir = root.join("warm-mem");
    {
        let cfg = SweepConfig::serial()
            .with_cache(DiskCache::with_mem_cap(&mem_dir, 64 * 1024 * 1024).unwrap());
        run_figure(cache_spec(n_jobs, floats), &cfg); // populate + promote
    }
    let mem_cfg = SweepConfig::serial()
        .with_cache(DiskCache::with_mem_cap(&mem_dir, 64 * 1024 * 1024).unwrap());
    g.bench_function("warm_memory_hit", |b| {
        b.iter(|| run_figure(cache_spec(n_jobs, floats), &mem_cfg).0);
    });

    // 8 threads hammering one shared cache with a 3:1 load:store mix across
    // all shards: the shard-contention figure for concurrent serve traffic.
    let mixed_dir = root.join("mixed");
    let mixed = DiskCache::with_mem_cap(&mixed_dir, 64 * 1024 * 1024).unwrap();
    let keys: Vec<xtsim::sweep::PreparedKey> = {
        use xtsim::report::Scale;
        use xtsim::sweep::JobKey;
        (0..n_jobs)
            .map(|i| {
                JobKey::new("bench-cache-mixed", None, None, Scale::Quick)
                    .with("i", i as i64)
                    .prepare()
            })
            .collect()
    };
    let payload = xtsim::sweep::obj(vec![(
        "payload",
        serde::Value::Array((0..floats).map(|k| serde::Value::Float(k as f64)).collect()),
    )]);
    for k in &keys {
        mixed.store(k, &payload).unwrap();
    }
    g.bench_function("concurrent_mixed_8t", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 0..8usize {
                    let mixed = &mixed;
                    let keys = &keys;
                    let payload = &payload;
                    s.spawn(move || {
                        for round in 0..64usize {
                            let i = (t * 31 + round * 7) % keys.len();
                            if round % 4 == 0 {
                                mixed.store(&keys[i], payload).unwrap();
                            } else {
                                std::hint::black_box(mixed.load(&keys[i]));
                            }
                        }
                    });
                }
            });
        });
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(
    simulator,
    bench_event_loop,
    bench_message_rate,
    bench_allreduce,
    bench_figure_quick,
    bench_fluid_pool,
    bench_alltoall_fluid,
    bench_pdes_alltoall,
    bench_cache
);
criterion_main!(simulator);
