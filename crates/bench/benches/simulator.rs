//! Criterion benches over the simulator itself: event throughput, message
//! rate, collective cost, and end-to-end figure regeneration at quick scale.
//! These guard the harness against performance regressions (a full figure
//! run schedules tens of millions of events).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use xtsim::des::{FluidPool, LinkId, Sim, SimDuration};
use xtsim::hpcc::util::job;
use xtsim::machine::{fit_dims, presets, ExecMode};
use xtsim::mpi::{simulate, CollectiveMode, Message, ReduceOp, WorldConfig};
use xtsim::net::{ContentionModel, PlatformConfig};

/// `XTSIM_BENCH_QUICK=1` shrinks the stress benches so CI can smoke them in
/// seconds (see `scripts/bench.sh --quick`).
fn quick() -> bool {
    std::env::var_os("XTSIM_BENCH_QUICK").is_some_and(|v| v == "1")
}

/// Raw event throughput of the DES core.
fn bench_event_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_events");
    let events = 100_000u64;
    g.throughput(Throughput::Elements(events));
    g.bench_function("sleep_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            let h = sim.handle();
            sim.spawn(async move {
                for _ in 0..events {
                    h.sleep(SimDuration::from_ns(10)).await;
                }
            });
            sim.run()
        });
    });
    g.finish();
}

/// Simulated message rate (eager path, 2 ranks).
fn bench_message_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi_messages");
    let msgs = 2_000u64;
    g.throughput(Throughput::Elements(msgs));
    g.bench_function("pingpong_2k", |b| {
        b.iter(|| {
            let mut spec = presets::xt4();
            spec.torus_dims = [2, 1, 1];
            let cfg = xtsim::mpi::WorldConfig::new(xtsim::net::PlatformConfig::new(
                spec,
                ExecMode::SN,
                2,
            ));
            simulate(0, cfg, move |mpi| async move {
                for i in 0..msgs {
                    if mpi.rank() == 0 {
                        mpi.send(1, i, Message::of_bytes(64)).await;
                        mpi.recv(Some(1), Some(i)).await;
                    } else {
                        mpi.recv(Some(0), Some(i)).await;
                        mpi.send(0, i, Message::of_bytes(64)).await;
                    }
                }
            })
            .end_time
        });
    });
    g.finish();
}

/// Algorithmic allreduce cost across rank counts.
fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi_allreduce");
    g.sample_size(10);
    for &ranks in &[16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let cfg = job(
                    &presets::xt4(),
                    ExecMode::SN,
                    ranks,
                    CollectiveMode::Algorithmic,
                );
                simulate(0, cfg, |mpi| async move {
                    mpi.comm().allreduce(vec![1.0; 8], ReduceOp::Sum).await;
                })
                .end_time
            });
        });
    }
    g.finish();
}

/// End-to-end: one quick-scale figure regeneration (the S3D weak-scaling
/// figure exercises platform + MPI + compute model together).
fn bench_figure_quick(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_regeneration");
    g.sample_size(10);
    g.bench_function("s3d_64ranks", |b| {
        b.iter(|| {
            xtsim::apps::s3d::s3d(&presets::xt4(), ExecMode::VN, 64).cost_us_per_point
        });
    });
    g.finish();
}

/// Synthetic fluid-pool stress: `flows` concurrent transfers over short
/// overlapping routes on a 512-link pool. Exercises exactly the rebalance
/// hot path (flow add → rate recompute → completion) with high concurrency.
fn fluid_pool_stress(flows: usize) -> f64 {
    let n_links = 512usize;
    let mut sim = Sim::new(7);
    let pool = FluidPool::new(sim.handle());
    let links: Vec<LinkId> = (0..n_links).map(|_| pool.add_link(1.0e9)).collect();
    for i in 0..flows {
        let pool = pool.clone();
        let h = sim.handle();
        // Two links per route; the stride keeps components overlapping but
        // not fully global, like real torus traffic.
        let route = [links[i % n_links], links[(i * 7 + 3) % n_links]];
        let volume = 100_000.0 + (i % 97) as f64 * 1_000.0;
        let delay = SimDuration::from_ns((i % 64) as u64 * 500);
        sim.spawn(async move {
            h.sleep(delay).await;
            pool.transfer(&route, volume, None).await;
        });
    }
    sim.run().as_secs_f64()
}

fn bench_fluid_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_pool");
    g.sample_size(10);
    let sizes: &[(usize, &str)] = if quick() {
        &[(200, "flows_1k"), (500, "flows_10k")]
    } else {
        &[(1_000, "flows_1k"), (10_000, "flows_10k")]
    };
    for &(flows, label) in sizes {
        g.bench_function(label, |b| {
            b.iter(|| fluid_pool_stress(flows));
        });
    }
    g.finish();
}

/// Pairwise-exchange alltoall on a compact torus partition with **exact
/// fluid contention** (the model the paper-scale sweeps want to use): the
/// worst case for the rebalancer — every rank keeps one wire flow in
/// flight for `ranks - 1` consecutive steps.
fn alltoall_fluid(ranks: usize, bytes: u64) -> f64 {
    let mut spec = presets::xt4();
    spec.torus_dims = fit_dims(ranks);
    let mut platform = PlatformConfig::new(spec, ExecMode::SN, ranks);
    platform.contention = ContentionModel::Fluid;
    let mut cfg = WorldConfig::new(platform);
    cfg.collectives = CollectiveMode::Algorithmic;
    simulate(0, cfg, move |mpi| async move {
        let p = mpi.comm().size();
        let msgs = (0..p).map(|_| Message::of_bytes(bytes)).collect();
        mpi.comm().alltoall(msgs).await;
    })
    .end_time
    .as_secs_f64()
}

fn bench_alltoall_fluid(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoall_fluid");
    g.sample_size(10);
    let sizes: &[(usize, &str)] = if quick() {
        &[(32, "ranks_256"), (64, "ranks_1024")]
    } else {
        &[(256, "ranks_256"), (1_024, "ranks_1024")]
    };
    for &(ranks, label) in sizes {
        g.bench_function(label, |b| {
            b.iter(|| alltoall_fluid(ranks, 64 * 1024));
        });
    }
    g.finish();
}

/// Pairwise-exchange alltoall on the conservative parallel-DES engine
/// (`xtsim::apps::pdes`): the wall-clock headline for `--des-threads`.
/// Serial (1 shard / 1 thread) vs partitioned (4 shards / 4 threads) on the
/// same scenario — the results are byte-identical (see
/// `tests/pdes_equivalence.rs`), so this measures speedup only.
fn pdes_alltoall(ranks: usize, shards: usize, threads: usize) -> f64 {
    use xtsim::apps::pdes::{alltoall, PdesScenario};
    let mut sc = PdesScenario::new(presets::xt4(), ExecMode::VN, ranks);
    if shards > 1 || threads > 1 {
        sc = sc.sharded(shards, threads);
    }
    alltoall(&sc, 64 * 1024).time_s
}

fn bench_pdes_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdes_alltoall");
    g.sample_size(10);
    let ranks = if quick() { 128 } else { 1_024 };
    for &(shards, threads, label) in &[
        (1usize, 1usize, "ranks_1024/threads_1"),
        (4, 4, "ranks_1024/threads_4"),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| pdes_alltoall(ranks, shards, threads));
        });
    }
    g.finish();
}

criterion_group!(
    simulator,
    bench_event_loop,
    bench_message_rate,
    bench_allreduce,
    bench_figure_quick,
    bench_fluid_pool,
    bench_alltoall_fluid,
    bench_pdes_alltoall
);
criterion_main!(simulator);
