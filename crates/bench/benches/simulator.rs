//! Criterion benches over the simulator itself: event throughput, message
//! rate, collective cost, and end-to-end figure regeneration at quick scale.
//! These guard the harness against performance regressions (a full figure
//! run schedules tens of millions of events).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use xtsim::des::{Sim, SimDuration};
use xtsim::hpcc::util::job;
use xtsim::machine::{presets, ExecMode};
use xtsim::mpi::{simulate, CollectiveMode, Message, ReduceOp};

/// Raw event throughput of the DES core.
fn bench_event_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_events");
    let events = 100_000u64;
    g.throughput(Throughput::Elements(events));
    g.bench_function("sleep_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            let h = sim.handle();
            sim.spawn(async move {
                for _ in 0..events {
                    h.sleep(SimDuration::from_ns(10)).await;
                }
            });
            sim.run()
        });
    });
    g.finish();
}

/// Simulated message rate (eager path, 2 ranks).
fn bench_message_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi_messages");
    let msgs = 2_000u64;
    g.throughput(Throughput::Elements(msgs));
    g.bench_function("pingpong_2k", |b| {
        b.iter(|| {
            let mut spec = presets::xt4();
            spec.torus_dims = [2, 1, 1];
            let cfg = xtsim::mpi::WorldConfig::new(xtsim::net::PlatformConfig::new(
                spec,
                ExecMode::SN,
                2,
            ));
            simulate(0, cfg, move |mpi| async move {
                for i in 0..msgs {
                    if mpi.rank() == 0 {
                        mpi.send(1, i, Message::of_bytes(64)).await;
                        mpi.recv(Some(1), Some(i)).await;
                    } else {
                        mpi.recv(Some(0), Some(i)).await;
                        mpi.send(0, i, Message::of_bytes(64)).await;
                    }
                }
            })
            .end_time
        });
    });
    g.finish();
}

/// Algorithmic allreduce cost across rank counts.
fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi_allreduce");
    g.sample_size(10);
    for &ranks in &[16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let cfg = job(
                    &presets::xt4(),
                    ExecMode::SN,
                    ranks,
                    CollectiveMode::Algorithmic,
                );
                simulate(0, cfg, |mpi| async move {
                    mpi.comm().allreduce(vec![1.0; 8], ReduceOp::Sum).await;
                })
                .end_time
            });
        });
    }
    g.finish();
}

/// End-to-end: one quick-scale figure regeneration (the S3D weak-scaling
/// figure exercises platform + MPI + compute model together).
fn bench_figure_quick(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_regeneration");
    g.sample_size(10);
    g.bench_function("s3d_64ranks", |b| {
        b.iter(|| {
            xtsim::apps::s3d::s3d(&presets::xt4(), ExecMode::VN, 64).cost_us_per_point
        });
    });
    g.finish();
}

criterion_group!(
    simulator,
    bench_event_loop,
    bench_message_rate,
    bench_allreduce,
    bench_figure_quick
);
criterion_main!(simulator);
