#![forbid(unsafe_code)]
//! # xtsim-bench — benchmark harness
//!
//! * `cargo run -p xtsim-bench --bin figures --release` regenerates every
//!   table and figure of the paper (add `-- --only fig08`, `-- --full`,
//!   `-- --ablations`, `-- --out DIR`);
//! * `cargo bench -p xtsim-bench` runs Criterion wall-clock benches over the
//!   real kernels (`benches/kernels.rs`) and the simulation engine itself
//!   (`benches/simulator.rs`).

#![warn(missing_docs)]

/// Re-export so the benches and binary share one entry point.
pub use xtsim;
