//! Regenerate the paper's tables and figures on the simulated platform.
//!
//! ```text
//! figures [--full] [--quick] [--only ID[,ID...]] [--ablations] [--out DIR]
//! ```
//!
//! Default scale is `--quick` (reduced sweeps, seconds per figure); `--full`
//! runs the paper's ranges (the large POP/AORSA figures take minutes).
//! Results are printed and also written to `DIR` (default `results/`) as
//! `<id>.csv` and `<id>.json`.

use std::io::Write;
use std::path::PathBuf;

use xtsim::ablations::all_ablations;
use xtsim::figures::{all_figures, Figure};
use xtsim::report::Scale;

struct Args {
    scale: Scale,
    only: Option<Vec<String>>,
    ablations: bool,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Quick,
        only: None,
        ablations: false,
        out: PathBuf::from("results"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => args.scale = Scale::Full,
            "--quick" => args.scale = Scale::Quick,
            "--ablations" => args.ablations = true,
            "--only" => {
                let ids = it.next().expect("--only needs an id list");
                args.only = Some(ids.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a directory")),
            "--help" | "-h" => {
                println!(
                    "usage: figures [--full|--quick] [--only ID[,ID...]] [--ablations] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut figures: Vec<Figure> = all_figures();
    if args.ablations {
        figures.extend(all_ablations());
    }
    if let Some(only) = &args.only {
        figures.retain(|f| only.iter().any(|id| id == f.id));
        if figures.is_empty() {
            eprintln!("no figure matches {only:?}");
            std::process::exit(2);
        }
    }
    std::fs::create_dir_all(&args.out).expect("create output directory");
    let scale_label = match args.scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    println!(
        "# Cray XT4 evaluation reproduction — regenerating {} figure(s) at {scale_label} scale\n",
        figures.len()
    );
    for fig in figures {
        let t0 = std::time::Instant::now();
        let result = (fig.run)(args.scale);
        let elapsed = t0.elapsed();
        println!("{}", result.render());
        println!("({}: regenerated in {:.1?})\n", fig.id, elapsed);
        let csv_path = args.out.join(format!("{}.csv", fig.id));
        std::fs::File::create(&csv_path)
            .and_then(|mut f| f.write_all(result.to_csv().as_bytes()))
            .expect("write csv");
        let json_path = args.out.join(format!("{}.json", fig.id));
        std::fs::File::create(&json_path)
            .and_then(|mut f| {
                f.write_all(
                    serde_json::to_string_pretty(&result)
                        .expect("serialize")
                        .as_bytes(),
                )
            })
            .expect("write json");
    }
    println!("results written to {}", args.out.display());
}
