#![forbid(unsafe_code)]
//! Regenerate the paper's tables and figures on the simulated platform.
//!
//! ```text
//! figures [--full|--quick|--scale quick|full] [--only ID[,ID...]] [--all]
//!         [--ablations] [--jobs N] [--des-threads N] [--no-cache]
//!         [--cache-dir DIR] [--cache-mem-cap BYTES] [--out DIR]
//!         [--trace DIR] [--metrics FILE]
//! ```
//!
//! Default scale is `--quick` (reduced sweeps, seconds per figure); `--full`
//! runs the paper's ranges (the large POP/AORSA figures take minutes).
//!
//! Figures are decomposed into sweep-point jobs and executed by the parallel
//! cached engine (`xtsim::sweep`): `--jobs N` runs N worker threads (default:
//! available parallelism), and results are cached content-addressed under
//! `results/cache/` (override with `--cache-dir`, disable with `--no-cache`)
//! so a rerun only recomputes what changed. The cache is two-tier: a sharded
//! in-memory LRU hot tier (budget `--cache-mem-cap`, sizes like `64m`/`512k`,
//! `0` disables; default 64 MiB) over the on-disk store. Output is
//! byte-identical for any `--jobs` value, warm or cold, whatever the cap.
//!
//! Results are printed and also written to `DIR` (default `results/`) as
//! `<id>.csv` and `<id>.json`.
//!
//! Observability: `--trace DIR` writes one Chrome trace-event JSON file per
//! *computed* job into `DIR` (load in Perfetto / `chrome://tracing`), and
//! `--metrics FILE` writes a machine-readable per-figure metrics record
//! (cache hits/misses, wall-clock, simulated-time breakdown by span
//! category). Either flag enables trace capture inside the simulations.
//!
//! Parallel DES: `--des-threads N` (or the `DES_THREADS` env var; the flag
//! wins) hands each sweep job a worker-thread budget for the conservative
//! parallel engine. PDES-aware figures (fig24) shard their worlds across
//! that many threads; output is byte-identical for every value of N — the
//! differential tests in `tests/pdes_equivalence.rs` enforce it.

use std::io::Write;
use std::path::PathBuf;

use xtsim::ablations::all_ablations;
use xtsim::cli::{des_threads_from_env, parse_byte_size, parse_positive, parse_scale, select_figures};
use xtsim::figures::{all_figures, Figure};
use xtsim::report::Scale;
use xtsim::sweep::{run_figure, DiskCache, FigureMetrics, SweepConfig, DEFAULT_MEM_CAP};

struct Args {
    scale: Scale,
    only: Option<Vec<String>>,
    ablations: bool,
    out: PathBuf,
    jobs: usize,
    cache: bool,
    cache_dir: PathBuf,
    cache_mem_cap: u64,
    trace_dir: Option<PathBuf>,
    metrics: Option<PathBuf>,
    des_threads: usize,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Quick,
        only: None,
        ablations: false,
        out: PathBuf::from("results"),
        jobs: default_jobs(),
        cache: true,
        cache_dir: DiskCache::default_dir(),
        cache_mem_cap: DEFAULT_MEM_CAP,
        trace_dir: None,
        metrics: None,
        des_threads: des_threads_from_env(),
    };
    let mut it = std::env::args().skip(1);
    // Numeric flags share xtsim::cli validation with xtsim-serve: a bad
    // token exits 2 and names itself (never a panic).
    let positive = |flag: &str, v: Option<String>| -> usize {
        let v = v.unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        });
        parse_positive(flag, &v).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => args.scale = Scale::Full,
            "--quick" => args.scale = Scale::Quick,
            "--scale" => {
                let v = it.next();
                args.scale = match v.as_deref().and_then(parse_scale) {
                    Some(scale) => scale,
                    None => {
                        eprintln!("--scale needs quick|full, got {v:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--ablations" => args.ablations = true,
            // Explicit "everything" flag (the default set is also everything;
            // this exists so scripts can say what they mean).
            "--all" => args.only = None,
            "--only" => {
                let ids = it.next().expect("--only needs an id list");
                args.only = Some(ids.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a directory")),
            "--jobs" => args.jobs = positive("--jobs", it.next()),
            "--des-threads" => args.des_threads = positive("--des-threads", it.next()),
            "--no-cache" => args.cache = false,
            "--cache-dir" => {
                args.cache_dir = PathBuf::from(it.next().expect("--cache-dir needs a directory"));
            }
            "--cache-mem-cap" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--cache-mem-cap needs a byte size (like 64m, 512k or 0)");
                    std::process::exit(2);
                });
                args.cache_mem_cap =
                    parse_byte_size("--cache-mem-cap", &v).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
            }
            "--trace" => {
                args.trace_dir = Some(PathBuf::from(it.next().expect("--trace needs a directory")));
            }
            "--metrics" => {
                args.metrics = Some(PathBuf::from(it.next().expect("--metrics needs a file path")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--full|--quick|--scale quick|full] [--only ID[,ID...]] [--all]\n\
                     \x20              [--ablations] [--jobs N] [--des-threads N] [--no-cache]\n\
                     \x20              [--cache-dir DIR] [--cache-mem-cap BYTES] [--out DIR]\n\
                     \x20              [--trace DIR] [--metrics FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn make_config(args: &Args) -> SweepConfig {
    let mut cfg = SweepConfig::threads(args.jobs);
    if args.cache {
        match DiskCache::with_mem_cap(&args.cache_dir, args.cache_mem_cap) {
            Ok(cache) => cfg = cfg.with_cache(cache),
            Err(e) => eprintln!(
                "warning: cannot open cache at {}: {e}; running uncached",
                args.cache_dir.display()
            ),
        }
    }
    if let Some(dir) = &args.trace_dir {
        cfg = cfg.with_trace_dir(dir.clone());
    }
    if args.metrics.is_some() {
        cfg = cfg.with_metrics();
    }
    cfg.with_des_threads(args.des_threads)
}

fn main() {
    let args = parse_args();
    let mut figures: Vec<Figure> = all_figures();
    if args.ablations {
        figures.extend(all_ablations());
    }
    if let Some(only) = &args.only {
        // Every requested id must match; a typo must not silently shrink
        // the run (xtsim-serve 404s on the same validation).
        figures = match select_figures(figures, only) {
            Ok(figures) => figures,
            Err(unknown) => {
                eprintln!(
                    "unknown figure id(s): {}{}",
                    unknown.join(", "),
                    if args.ablations { "" } else { " (ablation ids need --ablations)" }
                );
                std::process::exit(2);
            }
        };
    }
    std::fs::create_dir_all(&args.out).expect("create output directory");
    println!(
        "# Cray XT4 evaluation reproduction — regenerating {} figure(s) at {} scale ({} worker{}, cache {})\n",
        figures.len(),
        args.scale.label(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" },
        if args.cache { "on" } else { "off" },
    );
    let mut total_computed = 0usize;
    let mut total_cached = 0usize;
    let mut all_metrics: Vec<FigureMetrics> = Vec::new();
    let t_all = std::time::Instant::now();
    for fig in figures {
        let cfg = make_config(&args);
        let (result, stats) = run_figure(fig.spec(args.scale), &cfg);
        println!("{}", result.render());
        println!(
            "({}: {} job(s), {} computed, {} cached, {:.1?})\n",
            fig.id, stats.total, stats.computed, stats.cached, stats.wall
        );
        if stats.key_mismatches > 0 {
            eprintln!(
                "warning: {}: {} cache entr{} failed key verification (recomputed)",
                fig.id,
                stats.key_mismatches,
                if stats.key_mismatches == 1 { "y" } else { "ies" }
            );
        }
        total_computed += stats.computed;
        total_cached += stats.cached;
        if let Some(m) = stats.metrics {
            all_metrics.push(m);
        }
        let csv_path = args.out.join(format!("{}.csv", fig.id));
        std::fs::File::create(&csv_path)
            .and_then(|mut f| f.write_all(result.to_csv().as_bytes()))
            .expect("write csv");
        let json_path = args.out.join(format!("{}.json", fig.id));
        std::fs::File::create(&json_path)
            .and_then(|mut f| {
                f.write_all(
                    serde_json::to_string_pretty(&result)
                        .expect("serialize")
                        .as_bytes(),
                )
            })
            .expect("write json");
    }
    if let Some(path) = &args.metrics {
        let record = xtsim::sweep::obj(vec![
            ("scale", args.scale.label().into()),
            ("jobs", (args.jobs as u32).into()),
            ("wall_secs", t_all.elapsed().as_secs_f64().into()),
            ("figures", serde_json::to_value(&all_metrics).expect("metrics serialize")),
        ]);
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).expect("create metrics directory");
        }
        std::fs::write(path, serde_json::to_string_pretty(&record).expect("serialize"))
            .expect("write metrics");
        println!("metrics record written to {}", path.display());
    }
    if let Some(dir) = &args.trace_dir {
        let n: usize = all_metrics.iter().map(|m| m.trace_files.len()).sum();
        println!("{n} trace file(s) written to {} (load in Perfetto)", dir.display());
    }
    println!(
        "results written to {} ({} job(s) computed, {} from cache, total {:.1?})",
        args.out.display(),
        total_computed,
        total_cached,
        t_all.elapsed()
    );
}
