//! Probe the conservative parallel-DES engine: wall time, simulated time,
//! epoch count, and cross-shard traffic for the pairwise alltoall at several
//! shard/thread configurations.
//!
//! ```sh
//! cargo run --release -p xtsim-bench --example pdes_probe -- [RANKS]
//! ```
//!
//! The simulated time is identical in every row (the engine is
//! result-deterministic by construction); only the wall clock and the
//! epoch/traffic accounting change. On a single-core host the threaded rows
//! measure pure engine overhead — run on a multi-core machine to see the
//! speedup.
use std::time::Instant;
use xtsim::apps::pdes::{alltoall, PdesScenario};
use xtsim::machine::{presets, ExecMode};

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    for (shards, threads) in [(1usize, 1usize), (4, 1), (4, 4), (8, 8)] {
        let mut sc = PdesScenario::new(presets::xt4(), ExecMode::VN, ranks);
        if shards > 1 || threads > 1 {
            sc = sc.sharded(shards, threads);
        }
        let t0 = Instant::now();
        let run = alltoall(&sc, 64 * 1024);
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "ranks={ranks} shards={shards} threads={threads}: wall={:.3}s sim={:.6}s epochs={} remote={}",
            wall, run.time_s, run.epochs, run.remote_messages
        );
    }
}
