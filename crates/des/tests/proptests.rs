//! Property-based tests over the discrete-event engine.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

use xtsim_des::{FifoStation, FluidPool, Sim, SimDuration};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Timers fire in nondecreasing time order regardless of spawn order.
    #[test]
    fn timers_fire_in_time_order(delays in prop::collection::vec(0u64..1_000_000, 1..40)) {
        let mut sim = Sim::new(0);
        let fired: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for &d in &delays {
            let h = sim.handle();
            let fired = Rc::clone(&fired);
            sim.spawn(async move {
                h.sleep(SimDuration::from_ns(d)).await;
                fired.borrow_mut().push(h.now().as_ps());
            });
        }
        let end = sim.run();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let max = delays.iter().max().copied().unwrap_or(0);
        prop_assert_eq!(end.as_ps(), max * 1000);
    }

    /// A FIFO station conserves work: makespan >= total service / servers,
    /// and >= the largest single service.
    #[test]
    fn station_conserves_work(
        servers in 1usize..4,
        services in prop::collection::vec(1u64..10_000, 1..30),
    ) {
        let mut sim = Sim::new(0);
        let st = FifoStation::new(sim.handle(), servers);
        for &svc in &services {
            let st = st.clone();
            sim.spawn(async move {
                st.serve(SimDuration::from_ns(svc)).await;
            });
        }
        let end = sim.run().as_ps();
        let total: u64 = services.iter().sum::<u64>() * 1000;
        let max = services.iter().max().copied().unwrap_or(0) * 1000;
        prop_assert!(end >= total / servers as u64);
        prop_assert!(end >= max);
        prop_assert!(end <= total, "FIFO never slower than fully serial");
        prop_assert_eq!(st.busy_time().as_ps(), total);
    }

    /// Fluid transfers on one link: each flow takes at least volume/capacity,
    /// the makespan is at least total/capacity (conservation), and all bytes
    /// are accounted for.
    #[test]
    fn fluid_conserves_bytes(volumes in prop::collection::vec(1.0f64..100_000.0, 1..16)) {
        let capacity = 1.0e6;
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let link = pool.add_link(capacity);
        let ends: Rc<RefCell<Vec<(f64, f64)>>> = Rc::new(RefCell::new(Vec::new()));
        for &v in &volumes {
            let pool = pool.clone();
            let ends = Rc::clone(&ends);
            let h = sim.handle();
            sim.spawn(async move {
                pool.transfer(&[link], v, None).await;
                ends.borrow_mut().push((v, h.now().as_secs_f64()));
            });
        }
        let makespan = sim.run().as_secs_f64();
        let total: f64 = volumes.iter().sum();
        prop_assert!(makespan >= total / capacity * (1.0 - 1e-9),
            "makespan {} < conservation bound {}", makespan, total / capacity);
        for &(v, t) in ends.borrow().iter() {
            prop_assert!(t >= v / capacity * (1.0 - 1e-9));
        }
        prop_assert!((pool.carried(link) - total).abs() < 1e-3 * total.max(1.0));
    }

    /// Max-min fairness: two simultaneous equal flows finish together, and
    /// a capped flow never exceeds its cap.
    #[test]
    fn fluid_fairness_and_caps(volume in 1000.0f64..100_000.0, cap_frac in 0.05f64..0.45) {
        let capacity = 1.0e6;
        let cap = capacity * cap_frac;
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let link = pool.add_link(capacity);
        let times: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; 2]));
        for i in 0..2usize {
            let pool = pool.clone();
            let times = Rc::clone(&times);
            let h = sim.handle();
            let rate_cap = if i == 0 { Some(cap) } else { None };
            sim.spawn(async move {
                pool.transfer(&[link], volume, rate_cap).await;
                times.borrow_mut()[i] = h.now().as_secs_f64();
            });
        }
        sim.run();
        let t = times.borrow();
        // Capped flow can never beat volume/cap.
        prop_assert!(t[0] >= volume / cap * (1.0 - 1e-9));
        // Uncapped flow gets at least the leftover capacity.
        prop_assert!(t[1] <= volume / (capacity - cap) * (1.0 + 1e-6) + 1e-9);
    }
}
