//! Cross-run determinism: identical programs must produce identical
//! schedules, including under fluid-model contention.

use xtsim_des::{FluidPool, Sim, SimDuration};

fn contention_run(seed: u64) -> u64 {
    let mut sim = Sim::new(seed);
    let pool = FluidPool::new(sim.handle());
    let links: Vec<_> = (0..4).map(|_| pool.add_link(1000.0)).collect();
    for i in 0..16u64 {
        let pool = pool.clone();
        let h = sim.handle();
        let route = vec![links[(i % 4) as usize], links[((i + 1) % 4) as usize]];
        sim.spawn(async move {
            h.sleep(SimDuration::from_ns(i * 7)).await;
            pool.transfer(&route, 500.0 + i as f64 * 13.0, None).await;
        });
    }
    sim.run().as_ps()
}

#[test]
fn fluid_contention_is_deterministic_across_runs() {
    let first = contention_run(42);
    for _ in 0..5 {
        assert_eq!(contention_run(42), first);
    }
}
