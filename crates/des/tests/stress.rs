//! Stress tests for the executor: many tasks, deep event storms, fan-in.

use std::cell::RefCell;
use std::rc::Rc;
use xtsim_des::{channel, join_all, Sim, SimDuration};

#[test]
fn fifty_thousand_tasks_complete() {
    let mut sim = Sim::new(0);
    let done = Rc::new(RefCell::new(0u64));
    for i in 0..50_000u64 {
        let h = sim.handle();
        let done = Rc::clone(&done);
        sim.spawn(async move {
            h.sleep(SimDuration::from_ns(i % 977)).await;
            *done.borrow_mut() += 1;
        });
    }
    sim.run();
    assert_eq!(*done.borrow(), 50_000);
}

#[test]
fn deep_sequential_event_chain() {
    let mut sim = Sim::new(0);
    let h = sim.handle();
    sim.spawn(async move {
        for _ in 0..200_000u64 {
            h.sleep(SimDuration::from_ps(5)).await;
        }
        assert_eq!(h.now().as_ps(), 1_000_000);
    });
    sim.run();
}

#[test]
fn channel_fan_in_from_thousand_senders() {
    let mut sim = Sim::new(0);
    let (tx, rx) = channel::<u64>();
    for i in 0..1000u64 {
        let tx = tx.clone();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_ns(1000 - i)).await;
            tx.send(i);
        });
    }
    drop(tx);
    let sum = Rc::new(RefCell::new(0u64));
    let s2 = Rc::clone(&sum);
    sim.spawn(async move {
        while let Ok(v) = rx.recv().await {
            *s2.borrow_mut() += v;
        }
    });
    sim.run();
    assert_eq!(*sum.borrow(), 999 * 1000 / 2);
}

#[test]
fn join_all_over_thousand_futures() {
    let mut sim = Sim::new(0);
    let h = sim.handle();
    sim.spawn(async move {
        let futs: Vec<_> = (0..1000u64)
            .map(|i| {
                let h = h.clone();
                async move {
                    h.sleep(SimDuration::from_ns(i)).await;
                    i
                }
            })
            .collect();
        let out = join_all(futs).await;
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 999);
        assert_eq!(h.now().as_ps(), 999_000);
    });
    sim.run();
}

#[test]
fn nested_spawns_cascade() {
    // Each task spawns the next; depth 5000.
    fn spawn_chain(h: xtsim_des::SimHandle, depth: u32, counter: Rc<RefCell<u32>>) {
        let h2 = h.clone();
        h.spawn(async move {
            *counter.borrow_mut() += 1;
            if depth > 0 {
                h2.sleep(SimDuration::from_ns(1)).await;
                spawn_chain(h2.clone(), depth - 1, counter);
            }
        });
    }
    let mut sim = Sim::new(0);
    let counter = Rc::new(RefCell::new(0u32));
    spawn_chain(sim.handle(), 5000, Rc::clone(&counter));
    sim.run();
    assert_eq!(*counter.borrow(), 5001);
}
