//! Structured event tracing for the simulation stack.
//!
//! Two layers live here:
//!
//! * [`Tracer`] — the original bounded ring buffer of `(time, category,
//!   label)` text records, kept for interactive debugging dumps.
//! * The **typed span stream** — instrumented components ([`xtsim_mpi`]
//!   sends/receives/collectives, the network platform's wire flows, the
//!   Lustre I/O phases) emit [`Span`] records carrying a [`SpanCategory`],
//!   the rank/node involved, precise start/end times, and numeric payload
//!   fields. Spans are collected per thread through the [`capture_begin`] /
//!   [`capture_end`] API, summarized into per-category sim-time totals
//!   ([`TraceData::summary`]), and exported as Chrome trace-event JSON
//!   ([`TraceData::to_chrome_json`]) loadable in Perfetto or
//!   `chrome://tracing`.
//!
//! Capture is thread-local because a sweep worker runs one single-threaded
//! simulation at a time: everything a job's world emits lands in that
//! worker's capture, and nothing crosses threads. Instrumentation sites
//! guard on [`capture_active`] (a thread-local flag read), so a run without
//! capture pays one branch per instrumented operation and allocates nothing.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use serde::Value;

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Category tag (e.g. "nic", "mpi", "flow").
    pub category: &'static str,
    /// Human-readable description.
    pub label: String,
}

// --------------------------------------------------------------- typed spans

/// What kind of activity a [`Span`] measures.
///
/// The first four categories are *rank-exclusive*: at any instant a rank is
/// in at most one of them, so their per-rank durations add up to that rank's
/// busy time (the same accounting `RankProfile` uses — p2p issued inside a
/// collective is charged to the collective). [`SpanCategory::Flow`] spans
/// describe wire-level activity *underneath* those and overlap them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanCategory {
    /// A compute work packet executing on a core.
    Compute,
    /// Application-level point-to-point MPI (send/recv/raw transfer).
    P2p,
    /// A collective operation (everything inside accrues here).
    Collective,
    /// A filesystem I/O phase (open storm, write, read).
    Io,
    /// A wire-level flow: one message's traversal of NIC + route.
    Flow,
    /// Anything else (component-specific milestones).
    Other,
}

impl SpanCategory {
    /// Every category, in a fixed order.
    pub const ALL: [SpanCategory; 6] = [
        SpanCategory::Compute,
        SpanCategory::P2p,
        SpanCategory::Collective,
        SpanCategory::Io,
        SpanCategory::Flow,
        SpanCategory::Other,
    ];

    /// Stable lower-case name (used in trace files and metrics records).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanCategory::Compute => "compute",
            SpanCategory::P2p => "p2p",
            SpanCategory::Collective => "collective",
            SpanCategory::Io => "io",
            SpanCategory::Flow => "flow",
            SpanCategory::Other => "other",
        }
    }

    /// True for the rank-exclusive categories whose durations partition a
    /// rank's busy time (see the type-level docs).
    pub fn is_rank_time(self) -> bool {
        matches!(
            self,
            SpanCategory::Compute | SpanCategory::P2p | SpanCategory::Collective | SpanCategory::Io
        )
    }
}

/// One timed, typed interval of simulated activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Activity class.
    pub category: SpanCategory,
    /// Operation name, e.g. `"send"`, `"allreduce"`, `"flow"`, `"write"`.
    pub name: &'static str,
    /// Rank performing the activity, when rank-attributable.
    pub rank: Option<u32>,
    /// Node involved (source node for flows).
    pub node: Option<u32>,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval (`>= start`).
    pub end: SimTime,
    /// Numeric payload fields, e.g. `[("bytes", 4096.0), ("dst", 3.0)]`.
    pub args: Vec<(&'static str, f64)>,
}

impl Span {
    /// Duration in simulated seconds.
    pub fn secs(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }
}

/// Everything one capture collected.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// The spans, in emission order.
    pub spans: Vec<Span>,
    /// Spans discarded because the capture limit was reached.
    pub dropped: u64,
}

/// Per-category aggregate of a [`TraceData`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total simulated seconds per category (keys from
    /// [`SpanCategory::as_str`]; absent category = 0).
    pub secs_by_category: BTreeMap<String, f64>,
    /// Span count per category.
    pub counts_by_category: BTreeMap<String, u64>,
    /// Sum of the rank-exclusive categories (compute + p2p + collective +
    /// io): the total attributed busy time across all ranks.
    pub rank_busy_secs: f64,
    /// Total spans summarized.
    pub spans: u64,
}

impl TraceData {
    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.dropped == 0
    }

    /// Aggregate into per-category totals.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for span in &self.spans {
            let key = span.category.as_str();
            let secs = span.secs();
            *s.secs_by_category.entry(key.to_string()).or_insert(0.0) += secs;
            *s.counts_by_category.entry(key.to_string()).or_insert(0) += 1;
            if span.category.is_rank_time() {
                s.rank_busy_secs += secs;
            }
            s.spans += 1;
        }
        s
    }

    /// Merge another capture's spans into this one (used when one job runs
    /// several simulations — e.g. a benchmark that simulates both machines).
    pub fn merge(&mut self, other: TraceData) {
        self.spans.extend(other.spans);
        self.dropped += other.dropped;
    }

    /// Render as Chrome trace-event JSON (the `traceEvents` array format),
    /// loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    ///
    /// Complete events (`"ph": "X"`) with microsecond timestamps; `tid` is
    /// the rank (flows without a rank use `1000 + node` so wire activity
    /// gets its own rows). `meta` entries are attached as top-level keys.
    pub fn to_chrome_json(&self, meta: &[(&str, Value)]) -> String {
        let mut events = Vec::with_capacity(self.spans.len());
        for span in &self.spans {
            let mut ev = BTreeMap::new();
            ev.insert("name".to_string(), Value::Str(span.name.to_string()));
            ev.insert(
                "cat".to_string(),
                Value::Str(span.category.as_str().to_string()),
            );
            ev.insert("ph".to_string(), Value::Str("X".to_string()));
            ev.insert(
                "ts".to_string(),
                Value::Float(span.start.as_ps() as f64 / 1e6),
            );
            ev.insert(
                "dur".to_string(),
                Value::Float((span.end - span.start).as_ps() as f64 / 1e6),
            );
            ev.insert("pid".to_string(), Value::Int(0));
            let tid = match (span.rank, span.node) {
                (Some(r), _) => i64::from(r),
                (None, Some(n)) => 1000 + i64::from(n),
                (None, None) => 999,
            };
            ev.insert("tid".to_string(), Value::Int(tid));
            if !span.args.is_empty() || span.node.is_some() {
                let mut args = BTreeMap::new();
                if let Some(n) = span.node {
                    args.insert("node".to_string(), Value::Int(i64::from(n)));
                }
                for (k, v) in &span.args {
                    args.insert((*k).to_string(), Value::Float(*v));
                }
                ev.insert("args".to_string(), Value::Object(args));
            }
            events.push(Value::Object(ev));
        }
        let mut top = BTreeMap::new();
        top.insert("traceEvents".to_string(), Value::Array(events));
        top.insert(
            "displayTimeUnit".to_string(),
            Value::Str("ms".to_string()),
        );
        if self.dropped > 0 {
            top.insert(
                "droppedSpans".to_string(),
                Value::Int(self.dropped as i64),
            );
        }
        for (k, v) in meta {
            top.insert((*k).to_string(), v.clone());
        }
        serde_json::to_string(&Value::Object(top)).expect("trace serializes")
    }
}

serde::impl_serde_struct!(TraceSummary {
    secs_by_category,
    counts_by_category,
    rank_busy_secs,
    spans,
});

struct CaptureState {
    spans: Vec<Span>,
    dropped: u64,
    limit: usize,
}

thread_local! {
    static CAPTURE_ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CAPTURE: RefCell<Option<CaptureState>> = const { RefCell::new(None) };
}

/// Default cap on retained spans per capture (excess increments `dropped`).
pub const DEFAULT_CAPTURE_LIMIT: usize = 1 << 20;

/// Start capturing spans on this thread (replacing any capture in
/// progress), retaining at most [`DEFAULT_CAPTURE_LIMIT`] spans.
pub fn capture_begin() {
    capture_begin_with_limit(DEFAULT_CAPTURE_LIMIT);
}

/// Start capturing with an explicit span retention cap.
pub fn capture_begin_with_limit(limit: usize) {
    CAPTURE.with(|c| {
        *c.borrow_mut() = Some(CaptureState {
            spans: Vec::new(),
            dropped: 0,
            limit: limit.max(1),
        });
    });
    CAPTURE_ACTIVE.with(|a| a.set(true));
}

/// Is a capture active on this thread? Instrumentation sites branch on this
/// before doing any formatting or allocation.
#[inline]
pub fn capture_active() -> bool {
    CAPTURE_ACTIVE.with(|a| a.get())
}

/// Stop capturing and return the collected data (`None` if no capture was
/// active on this thread).
pub fn capture_end() -> Option<TraceData> {
    CAPTURE_ACTIVE.with(|a| a.set(false));
    CAPTURE.with(|c| c.borrow_mut().take()).map(|st| TraceData {
        spans: st.spans,
        dropped: st.dropped,
    })
}

/// A capture lifted off its thread, to be re-installed later (possibly on a
/// different thread) with [`capture_resume`].
///
/// The parallel mode ([`crate::pdes`]) runs several shard simulations
/// interleaved on worker threads; each shard owns one suspended capture and
/// resumes it for exactly its own epoch slices, so shards never mix spans
/// even when they share a thread. `Send` because spans hold only owned data.
pub struct SuspendedCapture(Option<CaptureState>);

impl SuspendedCapture {
    /// Consume the suspension and yield the spans captured so far (`None`
    /// if nothing was ever captured).
    pub fn into_data(self) -> Option<TraceData> {
        self.0.map(|st| TraceData {
            spans: st.spans,
            dropped: st.dropped,
        })
    }
}

/// Lift this thread's active capture (if any) off the thread, leaving
/// capture inactive. Pair with [`capture_resume`].
pub fn capture_suspend() -> SuspendedCapture {
    CAPTURE_ACTIVE.with(|a| a.set(false));
    SuspendedCapture(CAPTURE.with(|c| c.borrow_mut().take()))
}

/// Re-install a suspended capture on this thread (replacing any capture in
/// progress). A `SuspendedCapture` holding nothing leaves capture inactive.
pub fn capture_resume(s: SuspendedCapture) {
    let active = s.0.is_some();
    CAPTURE.with(|c| *c.borrow_mut() = s.0);
    CAPTURE_ACTIVE.with(|a| a.set(active));
}

/// Append already-collected spans into this thread's active capture (no-op
/// when capture is inactive). Used to merge per-shard parallel captures back
/// into the owning job's capture in deterministic shard order.
pub fn capture_absorb(data: TraceData) {
    CAPTURE.with(|c| {
        if let Some(st) = c.borrow_mut().as_mut() {
            for span in data.spans {
                if st.spans.len() >= st.limit {
                    st.dropped += 1;
                } else {
                    st.spans.push(span);
                }
            }
            st.dropped += data.dropped;
        }
    });
}

/// Record a completed span into this thread's active capture (no-op when
/// capture is inactive).
///
/// One thread-local access: the [`capture_active`] fast-path flag is for
/// instrumentation sites to branch on *before* constructing a [`Span`];
/// checking it again here would just be a second TLS hit.
pub fn emit_span(span: Span) {
    CAPTURE.with(|c| {
        if let Some(st) = c.borrow_mut().as_mut() {
            if st.spans.len() >= st.limit {
                st.dropped += 1;
            } else {
                st.spans.push(span);
            }
        }
    });
}

/// Convenience wrapper around [`emit_span`] for instrumentation sites.
#[allow(clippy::too_many_arguments)]
pub fn span(
    category: SpanCategory,
    name: &'static str,
    rank: Option<u32>,
    node: Option<u32>,
    start: SimTime,
    end: SimTime,
    args: Vec<(&'static str, f64)>,
) {
    emit_span(Span {
        category,
        name,
        rank,
        node,
        start,
        end,
        args,
    });
}

// ------------------------------------------------------- legacy ring buffer

struct TracerInner {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

/// A shared, bounded trace buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TracerInner>>,
}

impl Tracer {
    /// A tracer retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            inner: Rc::new(RefCell::new(TracerInner {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                enabled: true,
                dropped: 0,
            })),
        }
    }

    /// A disabled tracer: records are discarded without cost.
    pub fn disabled() -> Tracer {
        let t = Tracer::new(1);
        t.inner.borrow_mut().enabled = false;
        t
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Enable/disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.inner.borrow_mut().enabled = on;
    }

    /// Record an event (lazily formatted: the closure only runs when
    /// recording is active).
    pub fn record(&self, time: SimTime, category: &'static str, label: impl FnOnce() -> String) {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled {
            return;
        }
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let label = label();
        inner.events.push_back(TraceEvent {
            time,
            category,
            label,
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Snapshot of retained events, oldest first, optionally filtered by
    /// category.
    pub fn events(&self, category: Option<&str>) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| category.is_none_or(|c| e.category == c))
            .cloned()
            .collect()
    }

    /// Text dump, one event per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in self.inner.borrow().events.iter() {
            out.push_str(&format!(
                "[{:>14}] {:>6}  {}\n",
                format!("{}", e.time),
                e.category,
                e.label
            ));
        }
        let dropped = self.inner.borrow().dropped;
        if dropped > 0 {
            out.push_str(&format!("({dropped} earlier events dropped)\n"));
        }
        out
    }

    /// Clear all retained events (keeps the drop counter).
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn records_in_order_and_filters() {
        let tr = Tracer::new(16);
        tr.record(t(10), "nic", || "inject".into());
        tr.record(t(20), "mpi", || "send".into());
        tr.record(t(30), "nic", || "deliver".into());
        assert_eq!(tr.len(), 3);
        let nic = tr.events(Some("nic"));
        assert_eq!(nic.len(), 2);
        assert_eq!(nic[0].label, "inject");
        assert_eq!(nic[1].time, t(30));
        assert_eq!(tr.events(None).len(), 3);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let tr = Tracer::new(3);
        for i in 0..5u64 {
            tr.record(t(i), "x", || format!("e{i}"));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let ev = tr.events(None);
        assert_eq!(ev[0].label, "e2");
        assert_eq!(ev[2].label, "e4");
        assert!(tr.dump().contains("2 earlier events dropped"));
    }

    #[test]
    fn disabled_tracer_skips_formatting() {
        let tr = Tracer::disabled();
        let mut formatted = false;
        tr.record(t(1), "x", || {
            formatted = true;
            "never".into()
        });
        assert!(!formatted);
        assert!(tr.is_empty());
        tr.set_enabled(true);
        tr.record(t(2), "x", || "now".into());
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn dump_formats_lines() {
        let tr = Tracer::new(4);
        tr.record(t(1_000_000), "mpi", || "allreduce enter".into());
        let d = tr.dump();
        assert!(d.contains("mpi"));
        assert!(d.contains("allreduce enter"));
    }

    #[test]
    fn clear_retains_drop_count() {
        let tr = Tracer::new(1);
        tr.record(t(1), "x", || "a".into());
        tr.record(t(2), "x", || "b".into());
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 1);
    }

    // ------------------------------------------------------- typed capture

    fn mk_span(cat: SpanCategory, name: &'static str, rank: u32, a: u64, b: u64) -> Span {
        Span {
            category: cat,
            name,
            rank: Some(rank),
            node: None,
            start: t(a),
            end: t(b),
            args: vec![("bytes", 64.0)],
        }
    }

    #[test]
    fn capture_collects_spans_and_stops() {
        assert!(!capture_active());
        capture_begin();
        assert!(capture_active());
        emit_span(mk_span(SpanCategory::Compute, "compute", 0, 0, 1_000_000));
        emit_span(mk_span(SpanCategory::P2p, "send", 1, 500, 2_000_000));
        let data = capture_end().expect("capture was active");
        assert!(!capture_active());
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.spans[0].name, "compute");
        // Emitting after capture ends is a silent no-op.
        emit_span(mk_span(SpanCategory::P2p, "send", 1, 0, 1));
        assert!(capture_end().is_none());
    }

    #[test]
    fn capture_limit_counts_drops() {
        capture_begin_with_limit(2);
        for i in 0..5u64 {
            emit_span(mk_span(SpanCategory::Flow, "flow", 0, i, i + 1));
        }
        let data = capture_end().unwrap();
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.dropped, 3);
    }

    #[test]
    fn summary_partitions_rank_time() {
        let ps = |secs: f64| (secs * 1e12) as u64;
        capture_begin();
        emit_span(mk_span(SpanCategory::Compute, "compute", 0, 0, ps(2.0)));
        emit_span(mk_span(SpanCategory::P2p, "send", 0, ps(2.0), ps(3.0)));
        emit_span(mk_span(SpanCategory::Collective, "allreduce", 0, ps(3.0), ps(3.5)));
        // Flow underneath the send: must not count toward rank busy time.
        emit_span(mk_span(SpanCategory::Flow, "flow", 0, ps(2.0), ps(2.9)));
        let s = capture_end().unwrap().summary();
        assert!((s.rank_busy_secs - 3.5).abs() < 1e-9, "{}", s.rank_busy_secs);
        assert!((s.secs_by_category["compute"] - 2.0).abs() < 1e-9);
        assert!((s.secs_by_category["flow"] - 0.9).abs() < 1e-9);
        assert_eq!(s.counts_by_category["p2p"], 1);
        assert_eq!(s.spans, 4);
    }

    #[test]
    fn chrome_json_parses_and_carries_fields() {
        capture_begin();
        emit_span(Span {
            category: SpanCategory::Flow,
            name: "flow",
            rank: None,
            node: Some(3),
            start: t(1_000_000),
            end: t(2_500_000),
            args: vec![("bytes", 4096.0), ("hops", 2.0)],
        });
        let data = capture_end().unwrap();
        let json = data.to_chrome_json(&[("jobKind", Value::Str("netbench".into()))]);
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let top = v.as_object().unwrap();
        assert_eq!(top["jobKind"].as_str(), Some("netbench"));
        let evs = top["traceEvents"].as_array().unwrap();
        assert_eq!(evs.len(), 1);
        let ev = evs[0].as_object().unwrap();
        assert_eq!(ev["ph"].as_str(), Some("X"));
        assert_eq!(ev["cat"].as_str(), Some("flow"));
        assert_eq!(ev["tid"].as_i64(), Some(1003));
        assert!((ev["ts"].as_f64().unwrap() - 1.0).abs() < 1e-9); // 1 us
        assert!((ev["dur"].as_f64().unwrap() - 1.5).abs() < 1e-9);
        let args = ev["args"].as_object().unwrap();
        assert_eq!(args["bytes"].as_f64(), Some(4096.0));
        assert_eq!(args["node"].as_i64(), Some(3));
    }

    #[test]
    fn suspend_resume_keeps_spans_and_absorb_merges() {
        capture_begin();
        emit_span(mk_span(SpanCategory::Compute, "a", 0, 0, 10));
        let lifted = capture_suspend();
        assert!(!capture_active());
        // Emissions while suspended are dropped.
        emit_span(mk_span(SpanCategory::Compute, "lost", 0, 0, 10));
        capture_resume(lifted);
        assert!(capture_active());
        emit_span(mk_span(SpanCategory::Compute, "b", 0, 10, 20));
        capture_absorb(TraceData {
            spans: vec![mk_span(SpanCategory::P2p, "c", 1, 0, 5)],
            dropped: 2,
        });
        let data = capture_end().unwrap();
        let names: Vec<_> = data.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(data.dropped, 2);
        // A suspended capture converts straight into data too.
        capture_begin();
        emit_span(mk_span(SpanCategory::Io, "d", 0, 0, 1));
        let d = capture_suspend().into_data().unwrap();
        assert_eq!(d.spans.len(), 1);
        assert!(capture_suspend().into_data().is_none());
    }

    #[test]
    fn summary_serializes() {
        capture_begin();
        emit_span(mk_span(SpanCategory::Io, "write", 2, 0, 1_000));
        let s = capture_end().unwrap().summary();
        let j = serde_json::to_string(&s).unwrap();
        assert!(j.contains("\"io\""));
        let back: TraceSummary = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }
}
