//! Lightweight event tracing for simulation debugging.
//!
//! A [`Tracer`] is a bounded ring buffer of `(time, category, label)`
//! records. Components log milestones (message injected, flow completed,
//! rank entered a collective); the buffer can be filtered and dumped as
//! text. Tracing is opt-in and cheap: a disabled tracer drops records
//! without formatting them.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Category tag (e.g. "nic", "mpi", "flow").
    pub category: &'static str,
    /// Human-readable description.
    pub label: String,
}

struct TracerInner {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

/// A shared, bounded trace buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TracerInner>>,
}

impl Tracer {
    /// A tracer retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            inner: Rc::new(RefCell::new(TracerInner {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                enabled: true,
                dropped: 0,
            })),
        }
    }

    /// A disabled tracer: records are discarded without cost.
    pub fn disabled() -> Tracer {
        let t = Tracer::new(1);
        t.inner.borrow_mut().enabled = false;
        t
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Enable/disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.inner.borrow_mut().enabled = on;
    }

    /// Record an event (lazily formatted: the closure only runs when
    /// recording is active).
    pub fn record(&self, time: SimTime, category: &'static str, label: impl FnOnce() -> String) {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled {
            return;
        }
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let label = label();
        inner.events.push_back(TraceEvent {
            time,
            category,
            label,
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Snapshot of retained events, oldest first, optionally filtered by
    /// category.
    pub fn events(&self, category: Option<&str>) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| category.is_none_or(|c| e.category == c))
            .cloned()
            .collect()
    }

    /// Text dump, one event per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in self.inner.borrow().events.iter() {
            out.push_str(&format!(
                "[{:>14}] {:>6}  {}\n",
                format!("{}", e.time),
                e.category,
                e.label
            ));
        }
        let dropped = self.inner.borrow().dropped;
        if dropped > 0 {
            out.push_str(&format!("({dropped} earlier events dropped)\n"));
        }
        out
    }

    /// Clear all retained events (keeps the drop counter).
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn records_in_order_and_filters() {
        let tr = Tracer::new(16);
        tr.record(t(10), "nic", || "inject".into());
        tr.record(t(20), "mpi", || "send".into());
        tr.record(t(30), "nic", || "deliver".into());
        assert_eq!(tr.len(), 3);
        let nic = tr.events(Some("nic"));
        assert_eq!(nic.len(), 2);
        assert_eq!(nic[0].label, "inject");
        assert_eq!(nic[1].time, t(30));
        assert_eq!(tr.events(None).len(), 3);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let tr = Tracer::new(3);
        for i in 0..5u64 {
            tr.record(t(i), "x", || format!("e{i}"));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let ev = tr.events(None);
        assert_eq!(ev[0].label, "e2");
        assert_eq!(ev[2].label, "e4");
        assert!(tr.dump().contains("2 earlier events dropped"));
    }

    #[test]
    fn disabled_tracer_skips_formatting() {
        let tr = Tracer::disabled();
        let mut formatted = false;
        tr.record(t(1), "x", || {
            formatted = true;
            "never".into()
        });
        assert!(!formatted);
        assert!(tr.is_empty());
        tr.set_enabled(true);
        tr.record(t(2), "x", || "now".into());
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn dump_formats_lines() {
        let tr = Tracer::new(4);
        tr.record(t(1_000_000), "mpi", || "allreduce enter".into());
        let d = tr.dump();
        assert!(d.contains("mpi"));
        assert!(d.contains("allreduce enter"));
    }

    #[test]
    fn clear_retains_drop_count() {
        let tr = Tracer::new(1);
        tr.record(t(1), "x", || "a".into());
        tr.record(t(2), "x", || "b".into());
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 1);
    }
}
