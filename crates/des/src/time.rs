//! Virtual time for the discrete-event engine.
//!
//! Simulation time is an integer count of **picoseconds** since the start of
//! the run. Integer time keeps the event ordering exactly deterministic and
//! gives sub-nanosecond resolution, which matters when modelling multi-GB/s
//! links (1 byte at 10 GB/s is 100 ps). `u64` picoseconds covers ~213 days of
//! simulated time, far beyond any experiment in this suite.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An instant in simulated time (picoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (picoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in seconds (lossy; for reporting and fluid-model math).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is later.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Construct from (possibly fractional) seconds. Negative and NaN inputs
    /// clamp to zero; values beyond the representable range clamp to the max.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration(0);
        }
        let ps = secs * PS_PER_SEC as f64;
        if ps >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            // Round up so that a transfer never completes earlier than the
            // fluid model says it should (guards against busy re-scheduling).
            SimDuration(ps.ceil() as u64)
        }
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (lossy; for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Microseconds as `f64` (lossy; for reporting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Saturating integer multiply.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1.0e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", ps as f64 / 1.0e3)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_ns(3).as_ps(), 3_000);
        assert_eq!(SimDuration::from_us(3).as_ps(), 3_000_000);
        assert_eq!(SimDuration::from_ms(3).as_ps(), 3_000_000_000);
        assert_eq!(SimTime::from_ps(42).as_ps(), 42);
    }

    #[test]
    fn from_secs_rounds_up() {
        // 1.5 ps expressed in seconds must round *up* to 2 ps.
        let d = SimDuration::from_secs_f64(1.5e-12);
        assert_eq!(d.as_ps(), 2);
    }

    #[test]
    fn from_secs_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0).as_ps(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).as_ps(), 0);
        assert_eq!(SimDuration::from_secs_f64(1.0e30).as_ps(), u64::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ps(100) + SimDuration::from_ps(50);
        assert_eq!(t.as_ps(), 150);
        assert_eq!((t - SimTime::from_ps(100)).as_ps(), 50);
        assert_eq!(
            SimTime::from_ps(10).duration_since(SimTime::from_ps(50)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(5)), "5ps");
        assert_eq!(format!("{}", SimDuration::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", SimDuration::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(1500)), "1.500000s");
    }
}
