//! Max-min fair fluid bandwidth sharing.
//!
//! A [`FluidPool`] holds a set of capacitated **links** (network links, a
//! socket's memory controller, a NIC injection port, a disk channel) and a
//! set of active **flows**. Each flow moves a volume across a route (a set of
//! links) and may carry its own rate cap (the demand limit of the producing
//! core). Whenever the flow set changes, rates are recomputed by progressive
//! filling (water-filling), the classic max-min fair allocation also used by
//! SimGrid-style platform simulators:
//!
//! 1. all flows start unfrozen with rate 0;
//! 2. find the bottleneck: the smallest of (a) `residual(link) / unfrozen(link)`
//!    over saturated-able links and (b) the smallest unfrozen flow cap;
//! 3. freeze the constrained flows at that level, subtract from residuals;
//! 4. repeat until every flow is frozen.
//!
//! Completion events are scheduled per flow and invalidated by a generation
//! counter when a recomputation changes the flow's finish estimate.

use std::cell::RefCell;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::SimHandle;
use crate::time::{SimDuration, SimTime};

/// Identifies a link within one [`FluidPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) usize);

/// Bytes below which a flow is considered drained (guards float round-off).
const VOLUME_EPS: f64 = 1e-6;

struct Link {
    capacity: f64, // bytes/s
    /// Cumulative bytes carried (for utilization reports).
    carried: f64,
}

struct Flow {
    route: Box<[LinkId]>,
    remaining: f64,
    rate: f64,
    cap: f64,
    last_update: SimTime,
    generation: u64,
    waker: Option<Waker>,
    done: bool,
}

struct PoolInner {
    links: Vec<Link>,
    flows: HashMap<u64, Flow>,
    next_flow: u64,
}

/// A shared pool of capacitated links with max-min fair flows.
#[derive(Clone)]
pub struct FluidPool {
    handle: SimHandle,
    inner: Rc<RefCell<PoolInner>>,
}

impl FluidPool {
    /// Create an empty pool.
    pub fn new(handle: SimHandle) -> Self {
        FluidPool {
            handle,
            inner: Rc::new(RefCell::new(PoolInner {
                links: Vec::new(),
                flows: HashMap::new(),
                next_flow: 0,
            })),
        }
    }

    /// Add a link with `capacity` bytes/s; returns its id.
    pub fn add_link(&self, capacity: f64) -> LinkId {
        assert!(capacity > 0.0, "link capacity must be positive");
        let mut inner = self.inner.borrow_mut();
        inner.links.push(Link {
            capacity,
            carried: 0.0,
        });
        LinkId(inner.links.len() - 1)
    }

    /// Number of links in the pool.
    pub fn link_count(&self) -> usize {
        self.inner.borrow().links.len()
    }

    /// Cumulative bytes carried over `link`.
    pub fn carried(&self, link: LinkId) -> f64 {
        self.inner.borrow().links[link.0].carried
    }

    /// Start a transfer of `volume` bytes across `route`, optionally capped
    /// at `rate_cap` bytes/s; resolves when the last byte arrives.
    ///
    /// A zero/negative volume or an empty route completes immediately.
    pub fn transfer(&self, route: &[LinkId], volume: f64, rate_cap: Option<f64>) -> Transfer {
        if volume <= VOLUME_EPS || route.is_empty() {
            return Transfer {
                pool: self.clone(),
                flow: None,
            };
        }
        let cap = rate_cap.unwrap_or(f64::INFINITY);
        assert!(cap > 0.0, "rate cap must be positive");
        let now = self.handle.now();
        let id = {
            let mut inner = self.inner.borrow_mut();
            for l in route {
                assert!(l.0 < inner.links.len(), "unknown link {l:?}");
            }
            let id = inner.next_flow;
            inner.next_flow += 1;
            inner.flows.insert(
                id,
                Flow {
                    route: route.to_vec().into_boxed_slice(),
                    remaining: volume,
                    rate: 0.0,
                    cap,
                    last_update: now,
                    generation: 0,
                    waker: None,
                    done: false,
                },
            );
            id
        };
        self.rebalance();
        Transfer {
            pool: self.clone(),
            flow: Some(id),
        }
    }

    /// Advance all flow volumes to `now`, then recompute max-min rates and
    /// reschedule completion events.
    fn rebalance(&self) {
        let now = self.handle.now();
        let mut completions: Vec<(u64, u64, SimTime)> = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            // 1. advance
            for flow in inner.flows.values_mut() {
                if flow.done {
                    continue;
                }
                let dt = now.duration_since(flow.last_update).as_secs_f64();
                if dt > 0.0 && flow.rate > 0.0 {
                    let moved = flow.rate * dt;
                    flow.remaining = (flow.remaining - moved).max(0.0);
                    for l in flow.route.iter() {
                        inner.links[l.0].carried += moved;
                    }
                }
                flow.last_update = now;
            }
            // 2. water-fill. Sort by flow id: HashMap iteration order must
            // never leak into event scheduling order (determinism).
            let mut active: Vec<u64> = inner
                .flows
                .iter()
                .filter(|(_, f)| !f.done)
                .map(|(&id, _)| id)
                .collect();
            active.sort_unstable();
            let rates = water_fill(&inner.links, &inner.flows, &active);
            // 3. apply + schedule completions
            for id in active {
                let flow = inner.flows.get_mut(&id).expect("flow exists");
                flow.rate = rates[&id];
                flow.generation += 1;
                if flow.remaining <= VOLUME_EPS {
                    completions.push((id, flow.generation, now));
                } else if flow.rate > 0.0 {
                    let eta = now + SimDuration::from_secs_f64(flow.remaining / flow.rate);
                    completions.push((id, flow.generation, eta));
                }
                // rate == 0 with volume left cannot happen: every flow gets a
                // positive share because link capacities are positive.
            }
        }
        for (id, gen, at) in completions {
            let pool = self.clone();
            self.handle.call_at(at, move || pool.on_completion(id, gen));
        }
    }

    fn on_completion(&self, id: u64, gen: u64) {
        {
            let inner = self.inner.borrow();
            match inner.flows.get(&id) {
                Some(f) if f.generation == gen && !f.done => {}
                _ => return, // stale event
            }
        }
        // Settle volumes as of now; this flow should be (numerically) drained.
        let now = self.handle.now();
        let waker = {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let flow = inner.flows.get_mut(&id).expect("checked above");
            let dt = now.duration_since(flow.last_update).as_secs_f64();
            let moved = (flow.rate * dt).min(flow.remaining);
            flow.remaining -= moved;
            for l in flow.route.iter() {
                inner.links[l.0].carried += moved;
            }
            flow.last_update = now;
            if flow.remaining > VOLUME_EPS {
                // Completion fired fractionally early due to ps rounding;
                // re-arm for the residual.
                None
            } else {
                flow.done = true;
                flow.remaining = 0.0;
                flow.waker.take()
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
        // Either the flow finished (free its bandwidth for others) or the
        // event fired a hair early (re-arm for the residual): both need a
        // fresh allocation pass.
        self.rebalance();
    }

    fn drop_flow(&self, id: u64) {
        let removed = self.inner.borrow_mut().flows.remove(&id).is_some();
        if removed {
            // Note: rates for remaining flows improve; recompute.
            self.rebalance();
        }
    }
}

/// Progressive-filling max-min allocation. Returns rate per active flow id.
///
/// Only links actually used by an active flow participate, so the cost is
/// bounded by the active flow set, not the (possibly huge) link table.
fn water_fill(links: &[Link], flows: &HashMap<u64, Flow>, active: &[u64]) -> HashMap<u64, f64> {
    let mut rates: HashMap<u64, f64> = HashMap::with_capacity(active.len());
    // residual capacity and unfrozen-user count, for used links only.
    let mut used: HashMap<usize, (f64, usize)> = HashMap::new();
    for &id in active {
        for l in flows[&id].route.iter() {
            let e = used.entry(l.0).or_insert((links[l.0].capacity, 0));
            e.1 += 1;
        }
    }
    let mut unfrozen: Vec<u64> = active.to_vec();
    while !unfrozen.is_empty() {
        // Bottleneck level: min over links of residual/users, and min flow cap.
        let mut level = f64::INFINITY;
        for (_, &(residual, users)) in used.iter() {
            if users > 0 {
                level = level.min(residual / users as f64);
            }
        }
        for &id in &unfrozen {
            level = level.min(flows[&id].cap);
        }
        debug_assert!(level.is_finite() && level >= 0.0);
        // Freeze every flow constrained at this level: those whose cap == level
        // or that cross a link whose fair share == level.
        let mut frozen_this_round: Vec<u64> = Vec::new();
        for &id in &unfrozen {
            let f = &flows[&id];
            let capped = f.cap <= level * (1.0 + 1e-12);
            let bottlenecked = f.route.iter().any(|l| {
                let (residual, users) = used[&l.0];
                users > 0 && residual / users as f64 <= level * (1.0 + 1e-12)
            });
            if capped || bottlenecked {
                frozen_this_round.push(id);
            }
        }
        debug_assert!(!frozen_this_round.is_empty(), "water-filling must progress");
        for &id in &frozen_this_round {
            let rate = level.min(flows[&id].cap);
            rates.insert(id, rate);
            for l in flows[&id].route.iter() {
                let e = used.get_mut(&l.0).expect("link registered");
                e.0 = (e.0 - rate).max(0.0);
                e.1 -= 1;
            }
        }
        unfrozen.retain(|id| !rates.contains_key(id));
    }
    rates
}

/// Future returned by [`FluidPool::transfer`].
pub struct Transfer {
    pool: FluidPool,
    flow: Option<u64>,
}

impl Future for Transfer {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let Some(id) = self.flow else {
            return Poll::Ready(());
        };
        let mut inner = self.pool.inner.borrow_mut();
        match inner.flows.get_mut(&id) {
            Some(flow) if flow.done => {
                drop(inner);
                // Fully drained: remove the flow record.
                self.pool.inner.borrow_mut().flows.remove(&id);
                self.get_mut().flow = None;
                Poll::Ready(())
            }
            Some(flow) => {
                flow.waker = Some(cx.waker().clone());
                Poll::Pending
            }
            None => Poll::Ready(()),
        }
    }
}

impl Drop for Transfer {
    fn drop(&mut self) {
        // Cancelling a pending transfer releases its bandwidth.
        if let Some(id) = self.flow.take() {
            let done = self
                .pool
                .inner
                .borrow()
                .flows
                .get(&id)
                .map(|f| f.done)
                .unwrap_or(true);
            if done {
                self.pool.inner.borrow_mut().flows.remove(&id);
            } else {
                self.pool.drop_flow(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_transfers(
        caps: &[f64],
        // (route, volume, cap, start_delay_us)
        jobs: &[(&[usize], f64, Option<f64>, u64)],
    ) -> Vec<f64> {
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let links: Vec<LinkId> = caps.iter().map(|&c| pool.add_link(c)).collect();
        let ends: Rc<RefCell<Vec<(usize, f64)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, (route, vol, cap, delay)) in jobs.iter().enumerate() {
            let pool = pool.clone();
            let route: Vec<LinkId> = route.iter().map(|&r| links[r]).collect();
            let ends = Rc::clone(&ends);
            let h = sim.handle();
            let (vol, cap, delay) = (*vol, *cap, *delay);
            sim.spawn(async move {
                h.sleep(SimDuration::from_us(delay)).await;
                pool.transfer(&route, vol, cap).await;
                ends.borrow_mut().push((i, h.now().as_secs_f64()));
            });
        }
        sim.run();
        let mut out = vec![0.0; jobs.len()];
        for (i, t) in ends.borrow().iter() {
            out[*i] = *t;
        }
        out
    }

    #[test]
    fn single_flow_full_capacity() {
        // 1000 bytes over a 1000 B/s link: exactly 1 second.
        let ends = run_transfers(&[1000.0], &[(&[0], 1000.0, None, 0)]);
        assert!((ends[0] - 1.0).abs() < 1e-9, "{}", ends[0]);
    }

    #[test]
    fn two_flows_share_evenly() {
        // Two identical flows on one link finish together in twice the time.
        let ends = run_transfers(
            &[1000.0],
            &[(&[0], 1000.0, None, 0), (&[0], 1000.0, None, 0)],
        );
        assert!((ends[0] - 2.0).abs() < 1e-6);
        assert!((ends[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn late_joiner_slows_first_flow() {
        // Flow A: 1000 B alone for 0.5 s (500 done), then shares: 500 left at
        // 500 B/s => +1 s => ends at 1.5 s. Flow B: starts at 0.5, runs at 500
        // until A ends (500 done at t=1.5), then 500 left at full speed => 2.0 s.
        let ends = run_transfers(
            &[1000.0],
            &[(&[0], 1000.0, None, 0), (&[0], 1000.0, None, 500_000)],
        );
        assert!((ends[0] - 1.5).abs() < 1e-6, "A={}", ends[0]);
        assert!((ends[1] - 2.0).abs() < 1e-6, "B={}", ends[1]);
    }

    #[test]
    fn rate_cap_binds_below_fair_share() {
        // Capped flow at 100 B/s on a 1000 B/s link leaves 900 for the other.
        let ends = run_transfers(
            &[1000.0],
            &[
                (&[0], 100.0, Some(100.0), 0), // 1 s
                (&[0], 900.0, None, 0),        // 900/900 = 1 s
            ],
        );
        assert!((ends[0] - 1.0).abs() < 1e-6);
        assert!((ends[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multi_link_route_bottleneck() {
        // Route crosses a fast then a slow link; slow one binds.
        let ends = run_transfers(&[10_000.0, 1000.0], &[(&[0, 1], 1000.0, None, 0)]);
        assert!((ends[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cross_traffic_on_one_link_only() {
        // Flow A uses links 0+1; flow B uses link 1 only. Link 1 (1000 B/s) is
        // shared 500/500; link 0 has slack.
        let ends = run_transfers(
            &[10_000.0, 1000.0],
            &[(&[0, 1], 500.0, None, 0), (&[1], 500.0, None, 0)],
        );
        assert!((ends[0] - 1.0).abs() < 1e-6, "{:?}", ends);
        assert!((ends[1] - 1.0).abs() < 1e-6, "{:?}", ends);
    }

    #[test]
    fn water_fill_redistributes_capped_slack() {
        // Link 1000 B/s, flow A capped at 200, flow B uncapped -> B gets 800.
        let ends = run_transfers(
            &[1000.0],
            &[
                (&[0], 200.0, Some(200.0), 0), // 1 s
                (&[0], 800.0, None, 0),        // 1 s at 800 B/s
            ],
        );
        assert!((ends[0] - 1.0).abs() < 1e-6);
        assert!((ends[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn carried_accounting() {
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let l = pool.add_link(1000.0);
        let p2 = pool.clone();
        sim.spawn(async move {
            p2.transfer(&[l], 1234.0, None).await;
        });
        sim.run();
        assert!((pool.carried(l) - 1234.0).abs() < 1e-3);
    }

    #[test]
    fn zero_volume_completes_instantly() {
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let l = pool.add_link(1.0);
        let h = sim.handle();
        sim.spawn(async move {
            pool.transfer(&[l], 0.0, None).await;
            assert_eq!(h.now(), SimTime::ZERO);
        });
        sim.run();
    }

    #[test]
    fn cancelled_transfer_releases_bandwidth() {
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let l = pool.add_link(1000.0);
        let h = sim.handle();
        let p1 = pool.clone();
        // Holder: starts a huge transfer, abandons it at t=1s.
        sim.spawn(async move {
            let tr = p1.transfer(&[l], 1.0e9, None);
            let sleep = h.sleep(SimDuration::from_secs_f64(1.0));
            // Race the transfer against the timer; the timer wins.
            futures_select(tr, sleep).await;
        });
        let h2 = sim.handle();
        let p2 = pool.clone();
        let end = Rc::new(RefCell::new(0.0));
        let e2 = Rc::clone(&end);
        sim.spawn(async move {
            h2.sleep(SimDuration::from_secs_f64(1.0)).await;
            // After the holder is gone we get the full link: 1000 B in 1 s.
            p2.transfer(&[l], 1000.0, None).await;
            *e2.borrow_mut() = h2.now().as_secs_f64();
        });
        sim.run();
        assert!((*end.borrow() - 2.0).abs() < 1e-6, "{}", end.borrow());
    }

    /// Minimal 2-future select used by the cancellation test.
    async fn futures_select<A: Future + Unpin, B: Future + Unpin>(a: A, b: B) {
        struct Select<A, B>(A, B);
        impl<A: Future + Unpin, B: Future + Unpin> Future for Select<A, B> {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if Pin::new(&mut self.0).poll(cx).is_ready() {
                    return Poll::Ready(());
                }
                if Pin::new(&mut self.1).poll(cx).is_ready() {
                    return Poll::Ready(());
                }
                Poll::Pending
            }
        }
        Select(a, b).await
    }
}
