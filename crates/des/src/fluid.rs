//! Max-min fair fluid bandwidth sharing.
//!
//! A [`FluidPool`] holds a set of capacitated **links** (network links, a
//! socket's memory controller, a NIC injection port, a disk channel) and a
//! set of active **flows**. Each flow moves a volume across a route (a set of
//! links) and may carry its own rate cap (the demand limit of the producing
//! core). Whenever the flow set changes, rates are recomputed by progressive
//! filling (water-filling), the classic max-min fair allocation also used by
//! SimGrid-style platform simulators:
//!
//! 1. all flows start unfrozen with rate 0;
//! 2. find the bottleneck: the smallest of (a) `residual(link) / unfrozen(link)`
//!    over saturated-able links and (b) the smallest unfrozen flow cap;
//! 3. freeze the constrained flows at that level, subtract from residuals;
//! 4. repeat until every flow is frozen.
//!
//! ## Scaling design
//!
//! The pool is built so that a flow arrival or departure costs work
//! proportional to the traffic it actually interacts with, not to the whole
//! pool:
//!
//! * **Slab storage.** Flows live in a `Vec<Option<Flow>>` with a free list;
//!   each link keeps an adjacency list of the active flow slots crossing it.
//!   No hash maps anywhere on the hot path.
//! * **Component-local rebalancing.** When a flow starts or ends, only the
//!   connected component of links/flows reachable from its route is
//!   re-water-filled. Disjoint traffic is left completely untouched — its
//!   rates, volumes, and scheduled completion events stay as they are.
//!   (Max-min allocations of disjoint components are independent, so this is
//!   exact, not an approximation.)
//! * **Allocation-free water-fill.** The solver reuses per-pool scratch
//!   buffers (residual capacity, unfrozen-user counters, per-flow rates,
//!   stamp-based visited marks) across calls; a rebalance performs no heap
//!   allocation.
//! * **Completion events survive no-op rebalances.** A completion event is
//!   invalidated (generation bump) and re-queued only when the flow's rate —
//!   and hence its finish estimate — actually moved. Flows whose rate came
//!   out unchanged keep their live event, so the executor's heap does not
//!   fill with dead entries. [`FluidPool::rebalance_stats`] exposes counters
//!   for all of this.
//!
//! Within a component, flows are processed in arrival (`uid`) order, so the
//! floating-point arithmetic and event-scheduling order are deterministic
//! and identical to a global recomputation restricted to that component.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::{EventAction, FlowSourceId, SimHandle};
use crate::time::{SimDuration, SimTime};

/// Identifies a link within one [`FluidPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) usize);

/// Bytes below which a flow is considered drained (guards float round-off).
const VOLUME_EPS: f64 = 1e-6;

struct Link {
    capacity: f64, // bytes/s
    /// Cumulative bytes carried (for utilization reports).
    carried: f64,
    /// Slab slots of the *active* (not yet completed) flows crossing this
    /// link — the adjacency index component discovery walks.
    flows: Vec<usize>,
}

struct Flow {
    /// Monotone arrival id. Orders water-fill arithmetic deterministically
    /// and protects [`Transfer`] handles against slab-slot reuse.
    uid: u64,
    route: Box<[LinkId]>,
    remaining: f64,
    rate: f64,
    cap: f64,
    last_update: SimTime,
    /// Bumped whenever a new completion event is scheduled; a firing event
    /// with a stale generation is ignored.
    generation: u64,
    /// Instant of the currently scheduled completion event. A rebalance that
    /// leaves both the rate and this instant unchanged keeps the event live.
    eta: SimTime,
    waker: Option<Waker>,
    done: bool,
}

/// Counters describing how much work the incremental rebalancer did.
///
/// See EXPERIMENTS.md ("Profiling the simulator") for how to read these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Component-local rebalances run (flow starts, completions, cancels).
    pub rebalances: u64,
    /// Flows whose rate was recomputed, summed over all rebalances.
    pub flows_touched: u64,
    /// Completion events (re)scheduled because a flow's rate moved.
    pub reschedules: u64,
    /// Flows whose recomputed rate was unchanged: their live completion
    /// event was kept instead of being invalidated and re-queued.
    pub reschedules_avoided: u64,
    /// Largest connected component (in flows) rebalanced so far.
    pub max_component: u64,
}

/// Reusable scratch for component discovery and water-filling. All vectors
/// are retained across rebalances so the steady state allocates nothing.
#[derive(Default)]
struct Scratch {
    /// Current visit stamp; bumping it invalidates every mark in O(1).
    stamp: u64,
    /// Per-link visit stamp (indexed by link id).
    link_stamp: Vec<u64>,
    /// Per-flow-slot visit stamp.
    flow_stamp: Vec<u64>,
    /// Per-flow-slot freeze stamp (== `stamp` once the flow's rate is set).
    rate_stamp: Vec<u64>,
    /// Per-flow-slot computed rate (valid where `rate_stamp == stamp`).
    rate_of: Vec<f64>,
    /// Links of the current component (link ids).
    comp_links: Vec<usize>,
    /// Flows of the current component (slab slots), sorted by `uid`.
    comp_flows: Vec<usize>,
    /// Residual capacity per link (valid for `comp_links` only).
    residual: Vec<f64>,
    /// Unfrozen-user count per link (valid for `comp_links` only).
    users: Vec<usize>,
    /// Work list: links whose adjacency is still to be expanded.
    pending_links: Vec<usize>,
    /// Water-fill working set of unfrozen flow slots.
    unfrozen: Vec<usize>,
    /// Flows frozen in the current round.
    frozen_round: Vec<usize>,
}

struct PoolInner {
    links: Vec<Link>,
    /// Flow slab; `None` slots are free (tracked in `free`).
    flows: Vec<Option<Flow>>,
    free: Vec<usize>,
    next_uid: u64,
    /// Active (not done, not cancelled) flow count.
    active: usize,
    scratch: Scratch,
    stats: RebalanceStats,
}

/// A shared pool of capacitated links with max-min fair flows.
#[derive(Clone)]
pub struct FluidPool {
    handle: SimHandle,
    /// Executor flow-source id: orders this pool's same-instant completion
    /// events at the position of its latest rebalance.
    source: FlowSourceId,
    inner: Rc<RefCell<PoolInner>>,
}

impl FluidPool {
    /// Create an empty pool.
    pub fn new(handle: SimHandle) -> Self {
        let source = handle.core.register_flow_source();
        FluidPool {
            handle,
            source,
            inner: Rc::new(RefCell::new(PoolInner {
                links: Vec::new(),
                flows: Vec::new(),
                free: Vec::new(),
                next_uid: 0,
                active: 0,
                scratch: Scratch::default(),
                stats: RebalanceStats::default(),
            })),
        }
    }

    /// Add a link with `capacity` bytes/s; returns its id.
    pub fn add_link(&self, capacity: f64) -> LinkId {
        assert!(capacity > 0.0, "link capacity must be positive");
        let mut inner = self.inner.borrow_mut();
        inner.links.push(Link {
            capacity,
            carried: 0.0,
            flows: Vec::new(),
        });
        let n = inner.links.len();
        inner.scratch.link_stamp.resize(n, 0);
        inner.scratch.residual.resize(n, 0.0);
        inner.scratch.users.resize(n, 0);
        LinkId(n - 1)
    }

    /// Number of links in the pool.
    pub fn link_count(&self) -> usize {
        self.inner.borrow().links.len()
    }

    /// Cumulative bytes carried over `link`.
    pub fn carried(&self, link: LinkId) -> f64 {
        self.inner.borrow().links[link.0].carried
    }

    /// Number of currently active (unfinished) flows.
    pub fn active_flows(&self) -> usize {
        self.inner.borrow().active
    }

    /// Work counters of the incremental rebalancer.
    pub fn rebalance_stats(&self) -> RebalanceStats {
        self.inner.borrow().stats
    }

    /// Start a transfer of `volume` bytes across `route`, optionally capped
    /// at `rate_cap` bytes/s; resolves when the last byte arrives.
    ///
    /// A zero/negative volume or an empty route completes immediately.
    pub fn transfer(&self, route: &[LinkId], volume: f64, rate_cap: Option<f64>) -> Transfer {
        if volume <= VOLUME_EPS || route.is_empty() {
            return Transfer {
                pool: self.clone(),
                flow: None,
            };
        }
        let cap = rate_cap.unwrap_or(f64::INFINITY);
        assert!(cap > 0.0, "rate cap must be positive");
        let now = self.handle.now();
        let (slot, uid) = {
            let mut inner = self.inner.borrow_mut();
            for l in route {
                assert!(l.0 < inner.links.len(), "unknown link {l:?}");
            }
            let uid = inner.next_uid;
            inner.next_uid += 1;
            let flow = Flow {
                uid,
                route: route.to_vec().into_boxed_slice(),
                remaining: volume,
                rate: 0.0,
                cap,
                last_update: now,
                generation: 0,
                eta: now,
                waker: None,
                done: false,
            };
            let slot = match inner.free.pop() {
                Some(s) => {
                    inner.flows[s] = Some(flow);
                    s
                }
                None => {
                    inner.flows.push(Some(flow));
                    inner.flows.len() - 1
                }
            };
            let n = inner.flows.len();
            inner.scratch.flow_stamp.resize(n, 0);
            inner.scratch.rate_stamp.resize(n, 0);
            inner.scratch.rate_of.resize(n, 0.0);
            for l in route {
                inner.links[l.0].flows.push(slot);
            }
            inner.active += 1;
            // One live completion event per active flow: pre-size the event
            // queue so a burst of arrivals does not re-grow it repeatedly.
            self.handle.core.reserve_events(inner.active);
            (slot, uid)
        };
        self.rebalance_around(slot);
        Transfer {
            pool: self.clone(),
            flow: Some((slot, uid)),
        }
    }

    /// Recompute rates for the connected component containing `seed_slot`'s
    /// route, advance that component's volumes to `now`, and (re)schedule
    /// completion events for exactly the flows whose rate moved.
    ///
    /// `seed_slot` must be a valid slab slot; the flow itself participates
    /// only if it is still linked into the adjacency index (i.e. active).
    fn rebalance_around(&self, seed_slot: usize) {
        let now = self.handle.now();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let (links, flows, scratch) = (&mut inner.links, &mut inner.flows, &mut inner.scratch);
        inner.stats.rebalances += 1;
        // Every rebalance moves this pool's pending completion events behind
        // all ordinary events scheduled so far at their instants, matching
        // the historical implementation that re-enqueued each of them. One
        // counter bump replaces O(flows) heap churn.
        self.handle.core.touch_flow_source(self.source);

        // --- 1. discover the connected component (stamp-marked BFS) -------
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        scratch.comp_links.clear();
        scratch.comp_flows.clear();
        scratch.pending_links.clear();
        {
            let seed = flows[seed_slot].as_ref().expect("seed flow exists");
            for l in seed.route.iter() {
                if scratch.link_stamp[l.0] != stamp {
                    scratch.link_stamp[l.0] = stamp;
                    scratch.residual[l.0] = links[l.0].capacity;
                    scratch.users[l.0] = 0;
                    scratch.comp_links.push(l.0);
                    scratch.pending_links.push(l.0);
                }
            }
        }
        while let Some(l) = scratch.pending_links.pop() {
            for idx in 0..links[l].flows.len() {
                let slot = links[l].flows[idx];
                if scratch.flow_stamp[slot] == stamp {
                    continue;
                }
                scratch.flow_stamp[slot] = stamp;
                scratch.comp_flows.push(slot);
                let f = flows[slot].as_ref().expect("linked flow exists");
                for l2 in f.route.iter() {
                    if scratch.link_stamp[l2.0] != stamp {
                        scratch.link_stamp[l2.0] = stamp;
                        scratch.residual[l2.0] = links[l2.0].capacity;
                        scratch.users[l2.0] = 0;
                        scratch.comp_links.push(l2.0);
                        scratch.pending_links.push(l2.0);
                    }
                    scratch.users[l2.0] += 1;
                }
            }
        }
        // Arrival order: keeps the water-fill arithmetic and the event
        // scheduling order independent of slab slot reuse.
        scratch
            .comp_flows
            .sort_unstable_by_key(|&s| flows[s].as_ref().expect("component flow").uid);
        inner.stats.flows_touched += scratch.comp_flows.len() as u64;
        inner.stats.max_component = inner.stats.max_component.max(scratch.comp_flows.len() as u64);

        // --- 2. advance component volumes to `now` ------------------------
        for &slot in &scratch.comp_flows {
            let f = flows[slot].as_mut().expect("component flow");
            let dt = now.duration_since(f.last_update).as_secs_f64();
            if dt > 0.0 && f.rate > 0.0 {
                let moved = f.rate * dt;
                f.remaining = (f.remaining - moved).max(0.0);
                for l in f.route.iter() {
                    links[l.0].carried += moved;
                }
            }
            f.last_update = now;
        }

        // --- 3. progressive filling over the component --------------------
        scratch.unfrozen.clear();
        scratch.unfrozen.extend_from_slice(&scratch.comp_flows);
        while !scratch.unfrozen.is_empty() {
            // Bottleneck level: min over links of residual/users, min cap.
            let mut level = f64::INFINITY;
            for &l in &scratch.comp_links {
                let users = scratch.users[l];
                if users > 0 {
                    level = level.min(scratch.residual[l] / users as f64);
                }
            }
            for &slot in &scratch.unfrozen {
                level = level.min(flows[slot].as_ref().expect("unfrozen flow").cap);
            }
            debug_assert!(level.is_finite() && level >= 0.0);
            // Freeze every flow constrained at this level: those whose cap
            // == level or that cross a link whose fair share == level.
            scratch.frozen_round.clear();
            for &slot in &scratch.unfrozen {
                let f = flows[slot].as_ref().expect("unfrozen flow");
                let capped = f.cap <= level * (1.0 + 1e-12);
                let bottlenecked = f.route.iter().any(|l| {
                    let users = scratch.users[l.0];
                    users > 0 && scratch.residual[l.0] / users as f64 <= level * (1.0 + 1e-12)
                });
                if capped || bottlenecked {
                    scratch.frozen_round.push(slot);
                }
            }
            debug_assert!(
                !scratch.frozen_round.is_empty(),
                "water-filling must progress"
            );
            for &slot in &scratch.frozen_round {
                let f = flows[slot].as_ref().expect("frozen flow");
                let rate = level.min(f.cap);
                scratch.rate_of[slot] = rate;
                scratch.rate_stamp[slot] = stamp;
                for l in f.route.iter() {
                    scratch.residual[l.0] = (scratch.residual[l.0] - rate).max(0.0);
                    scratch.users[l.0] -= 1;
                }
            }
            let rate_stamp = &scratch.rate_stamp;
            scratch.unfrozen.retain(|&s| rate_stamp[s] != stamp);
        }

        // --- 4. apply rates; (re)schedule only what moved ------------------
        for &slot in &scratch.comp_flows {
            let f = flows[slot].as_mut().expect("component flow");
            let new_rate = scratch.rate_of[slot];
            if f.remaining <= VOLUME_EPS {
                // Numerically drained: complete at the current instant.
                f.rate = new_rate;
                f.generation += 1;
                f.eta = now;
                inner.stats.reschedules += 1;
                self.schedule_completion(slot, f.uid, f.generation, now);
            } else {
                // Recomputing the finish estimate from the freshly advanced
                // remaining volume is not always bit-stable: even at an
                // unchanged rate, `(rem - rate*dt)/rate` can ceil to a
                // different picosecond than the original `rem/rate` did.
                // The historical rebalancer always recomputed, so the golden
                // schedules bake those round-offs in; only when both the
                // rate and the rounded instant are unchanged can the live
                // event be kept.
                let eta = now + SimDuration::from_secs_f64(f.remaining / new_rate);
                if new_rate != f.rate || eta != f.eta {
                    f.rate = new_rate;
                    f.generation += 1;
                    f.eta = eta;
                    inner.stats.reschedules += 1;
                    self.schedule_completion(slot, f.uid, f.generation, eta);
                } else {
                    // Unchanged finish instant: the previously scheduled
                    // completion event remains valid.
                    inner.stats.reschedules_avoided += 1;
                }
            }
            // rate == 0 with volume left cannot happen: every flow gets a
            // positive share because link capacities are positive.
        }

        // --- 5. advance bookkeeping for the rest of the pool ---------------
        // Rates outside the touched component cannot change (water-filling
        // restricted to a component is exact — see the oracle proptest), but
        // the historical rebalancer still advanced every flow's remaining
        // volume and recomputed its finish estimate, and that chained
        // arithmetic can ceil to a neighbouring picosecond. Replay exactly
        // that bookkeeping — a few float ops per flow, no water-filling, and
        // no event traffic unless the rounded instant actually moved.
        for (slot, entry) in flows.iter_mut().enumerate() {
            if scratch.flow_stamp[slot] == stamp {
                continue; // component flow: handled above
            }
            let Some(f) = entry.as_mut() else { continue };
            if f.done {
                continue;
            }
            let dt = now.duration_since(f.last_update).as_secs_f64();
            if dt <= 0.0 {
                continue; // nothing moved: the stored estimate is bit-identical
            }
            if f.rate > 0.0 {
                let moved = f.rate * dt;
                f.remaining = (f.remaining - moved).max(0.0);
                for l in f.route.iter() {
                    links[l.0].carried += moved;
                }
            }
            f.last_update = now;
            let eta = now + SimDuration::from_secs_f64(f.remaining / f.rate);
            if eta != f.eta {
                f.generation += 1;
                f.eta = eta;
                inner.stats.reschedules += 1;
                let (uid, gen) = (f.uid, f.generation);
                self.schedule_completion(slot, uid, gen, eta);
            }
        }
    }

    fn schedule_completion(&self, slot: usize, uid: u64, gen: u64, at: SimTime) {
        let pool = self.clone();
        self.handle.core.schedule_flow(
            at,
            self.source,
            uid,
            EventAction::Call(Box::new(move || pool.on_completion(slot, uid, gen))),
        );
    }

    fn on_completion(&self, slot: usize, uid: u64, gen: u64) {
        let now = self.handle.now();
        let waker = {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let Some(f) = inner.flows[slot].as_mut() else {
                return; // flow gone: stale event
            };
            if f.uid != uid || f.generation != gen || f.done {
                return; // superseded by a reschedule, or already finished
            }
            // Settle volume as of now; the flow should be (numerically) drained.
            let dt = now.duration_since(f.last_update).as_secs_f64();
            let moved = (f.rate * dt).min(f.remaining);
            f.remaining -= moved;
            for l in f.route.iter() {
                inner.links[l.0].carried += moved;
            }
            f.last_update = now;
            if f.remaining > VOLUME_EPS {
                // Completion fired fractionally early due to ps rounding;
                // re-arm for the residual. Rates are unaffected (no flow-set
                // change), so only this flow's event is refreshed — but the
                // pool still re-sequences, as a full rebalance would have.
                f.generation += 1;
                let eta = now + SimDuration::from_secs_f64(f.remaining / f.rate);
                f.eta = eta;
                inner.stats.reschedules += 1;
                self.handle.core.touch_flow_source(self.source);
                self.schedule_completion(slot, uid, f.generation, eta);
                return;
            }
            f.done = true;
            f.remaining = 0.0;
            let w = f.waker.take();
            Self::unlink(&mut inner.links, &inner.flows, slot);
            inner.active -= 1;
            w
        };
        if let Some(w) = waker {
            w.wake();
        }
        // The finished flow frees its bandwidth: rebalance its component
        // (the flow itself is unlinked, so it no longer participates).
        self.rebalance_around(slot);
    }

    /// Remove `slot` from the adjacency list of every link on its route.
    fn unlink(links: &mut [Link], flows: &[Option<Flow>], slot: usize) {
        let f = flows[slot].as_ref().expect("flow being unlinked");
        for l in f.route.iter() {
            let lf = &mut links[l.0].flows;
            let pos = lf
                .iter()
                .position(|&s| s == slot)
                .expect("flow registered on its links");
            lf.swap_remove(pos);
        }
    }

    /// Cancel the transfer identified by `(slot, uid)` (dropped before
    /// completion) or release its finished record. Cancelling an
    /// already-completed flow frees the slab slot and does **not** trigger
    /// a rebalance — the bandwidth was already released at completion.
    fn cancel(&self, slot: usize, uid: u64) {
        let live = {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let Some(f) = inner.flows[slot].as_mut() else {
                return;
            };
            if f.uid != uid {
                return;
            }
            if f.done {
                inner.flows[slot] = None;
                inner.free.push(slot);
                false
            } else {
                // Account the bytes moved so far, then withdraw the flow.
                let dt = now_dt(f.last_update, self.handle.now());
                if dt > 0.0 && f.rate > 0.0 {
                    let moved = (f.rate * dt).min(f.remaining);
                    f.remaining -= moved;
                    for l in f.route.iter() {
                        inner.links[l.0].carried += moved;
                    }
                }
                f.last_update = self.handle.now();
                f.done = true;
                Self::unlink(&mut inner.links, &inner.flows, slot);
                inner.active -= 1;
                true
            }
        };
        if live {
            // Remaining flows in the component speed up; recompute them.
            self.rebalance_around(slot);
            let mut inner = self.inner.borrow_mut();
            inner.flows[slot] = None;
            inner.free.push(slot);
        }
    }
}

#[inline]
fn now_dt(last: SimTime, now: SimTime) -> f64 {
    now.duration_since(last).as_secs_f64()
}

/// Future returned by [`FluidPool::transfer`].
pub struct Transfer {
    pool: FluidPool,
    /// `(slab slot, flow uid)`; the uid guards against slot reuse.
    flow: Option<(usize, u64)>,
}

impl Future for Transfer {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let Some((slot, uid)) = self.flow else {
            return Poll::Ready(());
        };
        let finished = {
            let mut inner = self.pool.inner.borrow_mut();
            let inner = &mut *inner;
            match inner.flows[slot].as_mut() {
                Some(flow) if flow.uid == uid && flow.done => {
                    // Fully drained: free the flow record.
                    inner.flows[slot] = None;
                    inner.free.push(slot);
                    true
                }
                Some(flow) if flow.uid == uid => {
                    flow.waker = Some(cx.waker().clone());
                    false
                }
                // Slot reused or already released.
                _ => true,
            }
        };
        if finished {
            self.get_mut().flow = None;
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

impl Drop for Transfer {
    fn drop(&mut self) {
        // Cancelling a pending transfer releases its bandwidth; dropping an
        // already-completed one only frees the record (no rebalance).
        if let Some((slot, uid)) = self.flow.take() {
            self.pool.cancel(slot, uid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use proptest::prelude::*;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::rc::Rc;

    fn run_transfers(
        caps: &[f64],
        // (route, volume, cap, start_delay_us)
        jobs: &[(&[usize], f64, Option<f64>, u64)],
    ) -> Vec<f64> {
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let links: Vec<LinkId> = caps.iter().map(|&c| pool.add_link(c)).collect();
        let ends: Rc<RefCell<Vec<(usize, f64)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, (route, vol, cap, delay)) in jobs.iter().enumerate() {
            let pool = pool.clone();
            let route: Vec<LinkId> = route.iter().map(|&r| links[r]).collect();
            let ends = Rc::clone(&ends);
            let h = sim.handle();
            let (vol, cap, delay) = (*vol, *cap, *delay);
            sim.spawn(async move {
                h.sleep(SimDuration::from_us(delay)).await;
                pool.transfer(&route, vol, cap).await;
                ends.borrow_mut().push((i, h.now().as_secs_f64()));
            });
        }
        sim.run();
        let mut out = vec![0.0; jobs.len()];
        for (i, t) in ends.borrow().iter() {
            out[*i] = *t;
        }
        out
    }

    #[test]
    fn single_flow_full_capacity() {
        // 1000 bytes over a 1000 B/s link: exactly 1 second.
        let ends = run_transfers(&[1000.0], &[(&[0], 1000.0, None, 0)]);
        assert!((ends[0] - 1.0).abs() < 1e-9, "{}", ends[0]);
    }

    #[test]
    fn two_flows_share_evenly() {
        // Two identical flows on one link finish together in twice the time.
        let ends = run_transfers(
            &[1000.0],
            &[(&[0], 1000.0, None, 0), (&[0], 1000.0, None, 0)],
        );
        assert!((ends[0] - 2.0).abs() < 1e-6);
        assert!((ends[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn late_joiner_slows_first_flow() {
        // Flow A: 1000 B alone for 0.5 s (500 done), then shares: 500 left at
        // 500 B/s => +1 s => ends at 1.5 s. Flow B: starts at 0.5, runs at 500
        // until A ends (500 done at t=1.5), then 500 left at full speed => 2.0 s.
        let ends = run_transfers(
            &[1000.0],
            &[(&[0], 1000.0, None, 0), (&[0], 1000.0, None, 500_000)],
        );
        assert!((ends[0] - 1.5).abs() < 1e-6, "A={}", ends[0]);
        assert!((ends[1] - 2.0).abs() < 1e-6, "B={}", ends[1]);
    }

    #[test]
    fn rate_cap_binds_below_fair_share() {
        // Capped flow at 100 B/s on a 1000 B/s link leaves 900 for the other.
        let ends = run_transfers(
            &[1000.0],
            &[
                (&[0], 100.0, Some(100.0), 0), // 1 s
                (&[0], 900.0, None, 0),        // 900/900 = 1 s
            ],
        );
        assert!((ends[0] - 1.0).abs() < 1e-6);
        assert!((ends[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multi_link_route_bottleneck() {
        // Route crosses a fast then a slow link; slow one binds.
        let ends = run_transfers(&[10_000.0, 1000.0], &[(&[0, 1], 1000.0, None, 0)]);
        assert!((ends[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cross_traffic_on_one_link_only() {
        // Flow A uses links 0+1; flow B uses link 1 only. Link 1 (1000 B/s) is
        // shared 500/500; link 0 has slack.
        let ends = run_transfers(
            &[10_000.0, 1000.0],
            &[(&[0, 1], 500.0, None, 0), (&[1], 500.0, None, 0)],
        );
        assert!((ends[0] - 1.0).abs() < 1e-6, "{:?}", ends);
        assert!((ends[1] - 1.0).abs() < 1e-6, "{:?}", ends);
    }

    #[test]
    fn water_fill_redistributes_capped_slack() {
        // Link 1000 B/s, flow A capped at 200, flow B uncapped -> B gets 800.
        let ends = run_transfers(
            &[1000.0],
            &[
                (&[0], 200.0, Some(200.0), 0), // 1 s
                (&[0], 800.0, None, 0),        // 1 s at 800 B/s
            ],
        );
        assert!((ends[0] - 1.0).abs() < 1e-6);
        assert!((ends[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn carried_accounting() {
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let l = pool.add_link(1000.0);
        let p2 = pool.clone();
        sim.spawn(async move {
            p2.transfer(&[l], 1234.0, None).await;
        });
        sim.run();
        assert!((pool.carried(l) - 1234.0).abs() < 1e-3);
    }

    #[test]
    fn zero_volume_completes_instantly() {
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let l = pool.add_link(1.0);
        let h = sim.handle();
        sim.spawn(async move {
            pool.transfer(&[l], 0.0, None).await;
            assert_eq!(h.now(), SimTime::ZERO);
        });
        sim.run();
    }

    #[test]
    fn cancelled_transfer_releases_bandwidth() {
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let l = pool.add_link(1000.0);
        let h = sim.handle();
        let p1 = pool.clone();
        // Holder: starts a huge transfer, abandons it at t=1s.
        sim.spawn(async move {
            let tr = p1.transfer(&[l], 1.0e9, None);
            let sleep = h.sleep(SimDuration::from_secs_f64(1.0));
            // Race the transfer against the timer; the timer wins.
            futures_select(tr, sleep).await;
        });
        let h2 = sim.handle();
        let p2 = pool.clone();
        let end = Rc::new(RefCell::new(0.0));
        let e2 = Rc::clone(&end);
        sim.spawn(async move {
            h2.sleep(SimDuration::from_secs_f64(1.0)).await;
            // After the holder is gone we get the full link: 1000 B in 1 s.
            p2.transfer(&[l], 1000.0, None).await;
            *e2.borrow_mut() = h2.now().as_secs_f64();
        });
        sim.run();
        assert!((*end.borrow() - 2.0).abs() < 1e-6, "{}", end.borrow());
    }

    /// Minimal 2-future select used by the cancellation test.
    async fn futures_select<A: Future + Unpin, B: Future + Unpin>(a: A, b: B) {
        struct Select<A, B>(A, B);
        impl<A: Future + Unpin, B: Future + Unpin> Future for Select<A, B> {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if Pin::new(&mut self.0).poll(cx).is_ready() {
                    return Poll::Ready(());
                }
                if Pin::new(&mut self.1).poll(cx).is_ready() {
                    return Poll::Ready(());
                }
                Poll::Pending
            }
        }
        Select(a, b).await
    }

    // ------------------------------------------------ incremental-specific

    #[test]
    fn disjoint_traffic_is_untouched() {
        // Flows on link 0 and link 1 never share a link: starting/finishing
        // one must not touch (advance, re-rate, or reschedule) the other.
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let a = pool.add_link(1000.0);
        let b = pool.add_link(1000.0);
        let p1 = pool.clone();
        sim.spawn(async move {
            p1.transfer(&[a], 2000.0, None).await;
        });
        let p2 = pool.clone();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_secs_f64(0.5)).await;
            p2.transfer(&[b], 500.0, None).await;
        });
        sim.run();
        let st = pool.rebalance_stats();
        // 4 rebalances (2 starts + 2 completions). Each start touches only
        // its own flow; each completion unlinks the finished flow first and
        // then finds its component empty, so nothing else is ever advanced,
        // re-rated, or rescheduled.
        assert_eq!(st.rebalances, 4, "{st:?}");
        assert_eq!(st.flows_touched, 2, "{st:?}");
        assert_eq!(st.max_component, 1, "{st:?}");
    }

    #[test]
    fn unchanged_rate_keeps_completion_event_live() {
        // Flow A is capped far below fair share. Flow B joining (and leaving)
        // the shared link never changes A's rate, so A's completion event
        // must never be invalidated/re-queued by B's rebalances.
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let l = pool.add_link(1000.0);
        let p1 = pool.clone();
        sim.spawn(async move {
            // 100 B/s for 1000 B: finishes at t = 10 s, long after B.
            p1.transfer(&[l], 1000.0, Some(100.0)).await;
        });
        let p2 = pool.clone();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_secs_f64(1.0)).await;
            p2.transfer(&[l], 900.0, None).await; // 1 s at 900 B/s
        });
        let end = sim.run().as_secs_f64();
        assert!((end - 10.0).abs() < 1e-6, "{end}");
        let st = pool.rebalance_stats();
        // B's start and B's completion both recompute A's rate but leave it
        // at the cap: two avoided reschedules, and A's original completion
        // event (scheduled at t=0) is the one that finally fires at t=10.
        assert_eq!(st.reschedules_avoided, 2, "{st:?}");
        // Exactly two events were ever scheduled: A's initial and B's initial.
        assert_eq!(st.reschedules, 2, "{st:?}");
    }

    #[test]
    fn cancel_after_completion_is_a_noop() {
        // Dropping a Transfer whose flow already completed must not trigger
        // any rebalance (the bandwidth was released at completion time).
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let l = pool.add_link(1000.0);
        let p1 = pool.clone();
        let h = sim.handle();
        sim.spawn(async move {
            let tr = p1.transfer(&[l], 1000.0, None); // finishes at t=1s
            h.sleep(SimDuration::from_secs_f64(2.0)).await;
            let before = p1.rebalance_stats().rebalances;
            drop(tr); // flow long done: must be a pure slot release
            assert_eq!(p1.rebalance_stats().rebalances, before);
        });
        sim.run();
        assert!((pool.carried(l) - 1000.0).abs() < 1e-3);
    }

    #[test]
    fn slab_slots_are_reused_without_confusion() {
        // Many short sequential transfers must recycle slots, and stale
        // completion events must never touch a successor flow.
        let mut sim = Sim::new(0);
        let pool = FluidPool::new(sim.handle());
        let l = pool.add_link(1.0e6);
        let p = pool.clone();
        sim.spawn(async move {
            for i in 0..100u64 {
                p.transfer(&[l], 1000.0 + i as f64, None).await;
            }
        });
        sim.run();
        let inner = pool.inner.borrow();
        assert!(
            inner.flows.len() <= 2,
            "sequential transfers must reuse slots, slab grew to {}",
            inner.flows.len()
        );
        assert_eq!(inner.active, 0);
    }

    // ------------------------------------------------------- oracle checks

    /// The original global progressive-filling algorithm (hash-map based),
    /// kept verbatim as the oracle: incremental component-local rates must
    /// match it on every probe.
    fn oracle_water_fill(
        links: &[(f64, ())],
        flows: &HashMap<u64, (Vec<usize>, f64)>, // uid -> (route, cap)
    ) -> HashMap<u64, f64> {
        let mut active: Vec<u64> = flows.keys().copied().collect();
        active.sort_unstable();
        let mut rates: HashMap<u64, f64> = HashMap::with_capacity(active.len());
        let mut used: HashMap<usize, (f64, usize)> = HashMap::new();
        for &id in &active {
            for &l in &flows[&id].0 {
                let e = used.entry(l).or_insert((links[l].0, 0));
                e.1 += 1;
            }
        }
        let mut unfrozen: Vec<u64> = active.clone();
        while !unfrozen.is_empty() {
            let mut level = f64::INFINITY;
            for (_, &(residual, users)) in used.iter() {
                if users > 0 {
                    level = level.min(residual / users as f64);
                }
            }
            for &id in &unfrozen {
                level = level.min(flows[&id].1);
            }
            let mut frozen_this_round: Vec<u64> = Vec::new();
            for &id in &unfrozen {
                let (route, cap) = &flows[&id];
                let capped = *cap <= level * (1.0 + 1e-12);
                let bottlenecked = route.iter().any(|l| {
                    let (residual, users) = used[l];
                    users > 0 && residual / users as f64 <= level * (1.0 + 1e-12)
                });
                if capped || bottlenecked {
                    frozen_this_round.push(id);
                }
            }
            assert!(!frozen_this_round.is_empty(), "oracle must progress");
            for &id in &frozen_this_round {
                let rate = level.min(flows[&id].1);
                rates.insert(id, rate);
                for &l in &flows[&id].0 {
                    let e = used.get_mut(&l).expect("link registered");
                    e.0 = (e.0 - rate).max(0.0);
                    e.1 -= 1;
                }
            }
            unfrozen.retain(|id| !rates.contains_key(id));
        }
        rates
    }

    /// Snapshot of the pool's active flows: (uid, route, cap, current rate).
    fn snapshot(pool: &FluidPool) -> Vec<(u64, Vec<usize>, f64, f64)> {
        let inner = pool.inner.borrow();
        let mut out: Vec<_> = inner
            .flows
            .iter()
            .flatten()
            .filter(|f| !f.done)
            .map(|f| {
                (
                    f.uid,
                    f.route.iter().map(|l| l.0).collect(),
                    f.cap,
                    f.rate,
                )
            })
            .collect();
        out.sort_unstable_by_key(|&(uid, ..)| uid);
        out
    }

    /// Compare the pool's incremental rates against the global oracle.
    fn assert_matches_oracle(pool: &FluidPool, context: &str) {
        let snap = snapshot(pool);
        let caps: Vec<(f64, ())> = pool
            .inner
            .borrow()
            .links
            .iter()
            .map(|l| (l.capacity, ()))
            .collect();
        let flows: HashMap<u64, (Vec<usize>, f64)> = snap
            .iter()
            .map(|(uid, route, cap, _)| (*uid, (route.clone(), *cap)))
            .collect();
        let want = oracle_water_fill(&caps, &flows);
        for (uid, _, _, rate) in &snap {
            let w = want[uid];
            assert!(
                (rate - w).abs() <= 1e-9 * w.abs().max(1.0),
                "{context}: flow {uid} rate {rate} != oracle {w}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Incremental component-local rates equal a full global water-fill
        /// at every flow arrival and departure, over randomized link
        /// capacities, routes, caps, and arrival orders.
        #[test]
        fn incremental_rates_match_global_oracle(
            caps in prop::collection::vec(1.0e3f64..1.0e6, 2..8),
            jobs in prop::collection::vec(
                (
                    prop::collection::vec(0usize..8, 1..4), // route (link indices, mod #links)
                    1.0e3f64..1.0e5,                        // volume
                    prop::option::of(1.0e2f64..1.0e6),      // rate cap
                    0u64..2_000,                            // start delay (us)
                ),
                1..24,
            ),
        ) {
            let mut sim = Sim::new(0);
            let pool = FluidPool::new(sim.handle());
            let links: Vec<LinkId> = caps.iter().map(|&c| pool.add_link(c)).collect();
            let n = links.len();
            for (route, vol, cap, delay) in jobs {
                let pool = pool.clone();
                let h = sim.handle();
                // Dedup consecutive repeats to keep routes simple but allow
                // arbitrary sharing patterns.
                let route: Vec<LinkId> = route.iter().map(|&r| links[r % n]).collect();
                sim.spawn(async move {
                    h.sleep(SimDuration::from_us(delay)).await;
                    let probe = pool.clone();
                    let tr = pool.transfer(&route, vol, cap);
                    // Rates must match the oracle right after this arrival...
                    assert_matches_oracle(&probe, "after arrival");
                    tr.await;
                    // ...and right after this departure's rebalance.
                    assert_matches_oracle(&probe, "after departure");
                });
            }
            sim.run();
            prop_assert_eq!(pool.active_flows(), 0);
        }

        /// Conservation + fairness invariants survive the incremental
        /// rewrite (mirrors the engine-level proptests, with multi-link
        /// routes and caps).
        #[test]
        fn incremental_conserves_bytes(
            volumes in prop::collection::vec(1.0f64..100_000.0, 1..16),
        ) {
            let capacity = 1.0e6;
            let mut sim = Sim::new(0);
            let pool = FluidPool::new(sim.handle());
            let link = pool.add_link(capacity);
            for &v in &volumes {
                let pool = pool.clone();
                sim.spawn(async move {
                    pool.transfer(&[link], v, None).await;
                });
            }
            let makespan = sim.run().as_secs_f64();
            let total: f64 = volumes.iter().sum();
            prop_assert!(makespan >= total / capacity * (1.0 - 1e-9));
            prop_assert!((pool.carried(link) - total).abs() < 1e-3 * total.max(1.0));
        }
    }
}
