//! Conservative parallel execution of a partitioned simulation world.
//!
//! The serial executor ([`crate::Sim`]) is single-threaded by design: worlds
//! are built from `Rc`/`RefCell` state and every figure's byte-identical
//! golden depends on its deterministic schedule. This module parallelizes
//! *across partitions instead of within one world*: the caller splits the
//! model into `shards` — each an ordinary, fully independent [`Sim`] — and
//! the engine co-schedules them on worker threads under a classic
//! **conservative (Chandy–Misra style) barrier-epoch protocol**:
//!
//! 1. at a barrier, every shard drains its incoming [`crate::mailbox`]es
//!    into a reorder buffer and publishes its earliest pending time;
//! 2. the global minimum `m` of those times defines the epoch horizon
//!    `m + window` (the *window* is at most the configured **lookahead**);
//! 3. every shard delivers buffered cross-partition events with time below
//!    the horizon — in canonical `(time, order key, source, seq)` order —
//!    and runs its own event loop up to the horizon ([`Sim::run_until`]);
//! 4. repeat until every shard is out of events, which is global
//!    quiescence: sends only happen while events execute, and all sends
//!    from epoch *k* are visible to the barrier of epoch *k+1*.
//!
//! Safety argument: a shard processing an event at time `t ≥ m` may send
//! only with delivery time `≥ t + lookahead ≥ m + lookahead ≥ horizon`
//! (enforced by [`Router::send`] at runtime), so no message can arrive into
//! the past of any shard. Determinism argument: the horizon sequence is a
//! pure function of the shard schedules, delivery order within an epoch is
//! canonical, and per-shard execution is the serial executor — so the
//! complete behaviour is a function of `(partition, seed)` only, **not** of
//! the thread count. `threads = 1` runs the identical epoch protocol inline
//! and is the differential-testing reference.
//!
//! The caller supplies the lookahead; for torus machines it is derived from
//! the minimum cross-node message latency of the `MachineSpec` (see
//! `xtsim-net`'s analytic layer).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::executor::{Sim, SimHandle};
use crate::mailbox::{mailbox, MailboxReceiver, MailboxSender};
use crate::time::{SimDuration, SimTime};
use crate::trace;

/// Configuration for one partitioned run.
#[derive(Debug, Clone)]
pub struct PdesConfig {
    /// Number of partitions (independent [`Sim`] worlds). Results are a
    /// function of the partition, so figures pin this to a fixed value.
    pub shards: usize,
    /// Worker threads (clamped to `shards`). Never affects results.
    pub threads: usize,
    /// Conservative lookahead: the minimum latency of any cross-partition
    /// message. [`Router::send`] enforces it per send. Must be positive.
    pub lookahead: SimDuration,
    /// Seed handed to **every** shard's `Sim`, so a rank's RNG streams are
    /// identical no matter which shard hosts it.
    pub seed: u64,
    /// Optional cap on the epoch window (clamped to `lookahead`). Shrinking
    /// it below the lookahead adds barriers without changing results —
    /// that's the point: stress tests perturb it to prove schedule
    /// independence.
    pub window: Option<SimDuration>,
    /// Record one log entry per cross-partition delivery (for differential
    /// event-log diffs).
    pub log_wire: bool,
}

impl PdesConfig {
    /// A config with the given partitioning and lookahead, defaulting to
    /// one thread, seed 0, full window, wire logging off.
    pub fn new(shards: usize, threads: usize, lookahead: SimDuration) -> PdesConfig {
        PdesConfig {
            shards,
            threads,
            lookahead,
            seed: 0,
            window: None,
            log_wire: false,
        }
    }
}

/// A cross-partition event as seen by the destination shard's handler.
pub struct RemoteEnvelope {
    /// Simulated delivery time (the handler runs exactly then).
    pub at: SimTime,
    /// Caller-chosen canonical merge key; same-instant deliveries fire in
    /// ascending `order`. Senders must make `(at, order)` collision-free
    /// per destination for partition-invariant behaviour (e.g.
    /// `(source rank, per-source sequence)`).
    pub order: (u64, u64),
    /// Shard the event came from (== destination for self-sends).
    pub src_shard: usize,
    /// The message itself; the handler downcasts to the scenario's type.
    pub payload: Box<dyn Any + Send>,
}

/// One log line of a partitioned run (scenario entries via [`PdesLogger`],
/// wire entries when [`PdesConfig::log_wire`] is set). Merged logs are
/// sorted by `(at, key)`, so keys must be globally meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Simulated time of the entry.
    pub at: SimTime,
    /// Canonical sort key within an instant.
    pub key: (u64, u64),
    /// True for engine-generated cross-partition delivery records.
    pub wire: bool,
    /// Free-form description.
    pub text: String,
}

/// Shard-local log sink; entries from all shards are merged in `(at, key)`
/// order into [`PdesOutcome::log`].
#[derive(Clone)]
pub struct PdesLogger {
    handle: SimHandle,
    entries: Rc<RefCell<Vec<LogEntry>>>,
}

impl PdesLogger {
    /// Record `text` at the current simulated instant under `key`.
    pub fn log(&self, key: (u64, u64), text: String) {
        self.entries.borrow_mut().push(LogEntry {
            at: self.handle.now(),
            key,
            wire: false,
            text,
        });
    }
}

/// Wire format of one mailbox item (engine-internal).
struct WireItem {
    at: SimTime,
    order: (u64, u64),
    payload: Box<dyn Any + Send>,
}

type Handler = Rc<dyn Fn(RemoteEnvelope)>;
type HandlerSlot = Rc<RefCell<Option<Handler>>>;

struct RouterInner {
    shard: usize,
    handle: SimHandle,
    lookahead: SimDuration,
    /// Sender to every other shard (`None` at our own index).
    senders: Vec<Option<MailboxSender<WireItem>>>,
    handler: HandlerSlot,
    /// Per-destination stamp for self-sends (mirrors the mailbox stamp so
    /// self and remote deliveries share one key space).
    self_seq: Cell<u64>,
    remote_msgs: Arc<AtomicU64>,
}

/// A shard's outgoing edge to every other shard. Cheaply cloneable into
/// tasks; all sends are checked against the lookahead contract.
#[derive(Clone)]
pub struct Router {
    inner: Rc<RouterInner>,
}

impl Router {
    /// Send `payload` for delivery to shard `to` at time `at`.
    ///
    /// Panics if `at < now + lookahead` — a lookahead violation would let a
    /// message arrive in a peer's past and silently corrupt the schedule,
    /// so it is a hard error the differential harness can catch.
    pub fn send(&self, to: usize, at: SimTime, order: (u64, u64), payload: Box<dyn Any + Send>) {
        let r = &*self.inner;
        let now = r.handle.now();
        assert!(
            at >= now + r.lookahead,
            "PDES lookahead violation: shard {} sending to {} at t={at} from now={now} \
             (lookahead {})",
            r.shard,
            to,
            r.lookahead,
        );
        if to == r.shard {
            // Self-sends take the same delivery path (handler invocation at
            // `at`) without touching a mailbox.
            let seq = r.self_seq.get();
            r.self_seq.set(seq + 1);
            let handler = Rc::clone(&r.handler);
            let env = RemoteEnvelope {
                at,
                order,
                src_shard: to,
                payload,
            };
            r.handle.call_at(at, move || {
                let h = handler.borrow().clone().expect("shard has no on_remote handler");
                h(env);
            });
        } else {
            r.remote_msgs.fetch_add(1, Ordering::Relaxed);
            r.senders[to]
                .as_ref()
                .expect("sender for remote shard")
                .send(WireItem { at, order, payload });
        }
    }

    /// The configured lookahead (minimum legal send latency).
    pub fn lookahead(&self) -> SimDuration {
        self.inner.lookahead
    }
}

/// Everything a shard's builder needs: identity, the shard's [`SimHandle`]
/// for spawning tasks, the [`Router`] for cross-partition sends, and the
/// shard's [`PdesLogger`].
pub struct ShardCtx {
    shard: usize,
    shards: usize,
    handle: SimHandle,
    router: Router,
    logger: PdesLogger,
    handler: HandlerSlot,
}

impl ShardCtx {
    /// This shard's index in `0..shards`.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Handle into this shard's private simulation.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Outgoing edge to the other shards.
    pub fn router(&self) -> Router {
        self.router.clone()
    }

    /// This shard's log sink.
    pub fn logger(&self) -> PdesLogger {
        self.logger.clone()
    }

    /// Install the handler invoked (at the delivery instant, inside this
    /// shard's simulation) for every envelope routed to this shard. A shard
    /// that receives anything must install exactly one handler.
    pub fn on_remote(&self, f: impl Fn(RemoteEnvelope) + 'static) {
        *self.handler.borrow_mut() = Some(Rc::new(f));
    }
}

/// Result of [`run_partitioned`].
#[derive(Debug)]
pub struct PdesOutcome<R> {
    /// Per-shard results, in shard order.
    pub results: Vec<R>,
    /// Latest simulated instant reached by any shard.
    pub end_time: SimTime,
    /// Number of barrier epochs executed.
    pub epochs: u64,
    /// Cross-partition (mailbox) messages routed.
    pub remote_messages: u64,
    /// Merged log, sorted by `(at, key)` (stable, so per-key program order
    /// is preserved).
    pub log: Vec<LogEntry>,
}

// ----------------------------------------------------------------- barrier

/// Sense-reversing barrier that can be poisoned: when a worker panics, it
/// poisons the barrier so every peer returns `Err` instead of deadlocking
/// on a participant that will never arrive. (`std::sync::Barrier` offers no
/// such escape.)
struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
    poisoned: bool,
}

struct BarrierPoisoned;

impl PoisonBarrier {
    fn new(n: usize) -> PoisonBarrier {
        PoisonBarrier {
            n,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<(), BarrierPoisoned> {
        let mut st = self.state.lock().expect("barrier mutex");
        if st.poisoned {
            return Err(BarrierPoisoned);
        }
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = self.cv.wait(st).expect("barrier mutex");
        }
        if st.poisoned {
            Err(BarrierPoisoned)
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        self.state.lock().expect("barrier mutex").poisoned = true;
        self.cv.notify_all();
    }
}

// ------------------------------------------------------------------ engine

/// Reorder-buffer key: canonical total order for same-epoch deliveries.
type ReorderKey = (SimTime, (u64, u64), usize, u64);

struct Seat<R> {
    shard: usize,
    sim: Sim,
    handler: HandlerSlot,
    /// `(source shard, receiver)` for every other shard.
    receivers: Vec<(usize, MailboxReceiver<WireItem>)>,
    reorder: BTreeMap<ReorderKey, Box<dyn Any + Send>>,
    finish: Option<Box<dyn FnOnce() -> R>>,
    log: Rc<RefCell<Vec<LogEntry>>>,
    cap: Option<trace::SuspendedCapture>,
    drain_scratch: Vec<(u64, WireItem)>,
}

struct SeatDone<R> {
    shard: usize,
    result: R,
    end: SimTime,
    log: Vec<LogEntry>,
    trace_data: Option<trace::TraceData>,
}

struct Shared {
    barrier: PoisonBarrier,
    /// Per-shard earliest pending time in ps (`u64::MAX` = quiescent).
    next_times: Vec<AtomicU64>,
    remote_msgs: Arc<AtomicU64>,
    epochs: AtomicU64,
}

/// Run `build`-constructed shards to global quiescence under the barrier
/// epoch protocol and collect their results.
///
/// `build` is called once per shard (on that shard's worker thread) to
/// populate the shard's world; it returns a finisher closure the engine
/// invokes after quiescence to extract the shard's result. Shards are
/// distributed round-robin over `min(threads, shards)` workers; with one
/// worker everything runs inline on the calling thread.
///
/// Panics in any shard (including the executor's deadlock check) poison
/// the barrier and propagate.
pub fn run_partitioned<R, B, F>(cfg: &PdesConfig, build: B) -> PdesOutcome<R>
where
    R: Send,
    B: Fn(&ShardCtx) -> F + Send + Sync,
    F: FnOnce() -> R + 'static,
{
    assert!(cfg.shards >= 1, "need at least one shard");
    assert!(cfg.lookahead.as_ps() > 0, "lookahead must be positive");
    let shards = cfg.shards;
    let workers = cfg.threads.max(1).min(shards);
    let window = match cfg.window {
        Some(w) => SimDuration::from_ps(w.as_ps().clamp(1, cfg.lookahead.as_ps())),
        None => cfg.lookahead,
    };

    // Mailbox matrix: one SPSC channel per ordered pair of distinct shards.
    let mut senders: Vec<Vec<Option<MailboxSender<WireItem>>>> = Vec::with_capacity(shards);
    let mut receivers: Vec<Vec<(usize, MailboxReceiver<WireItem>)>> =
        (0..shards).map(|_| Vec::new()).collect();
    for s in 0..shards {
        let mut row = Vec::with_capacity(shards);
        for (d, dst_rx) in receivers.iter_mut().enumerate() {
            if s == d {
                row.push(None);
            } else {
                let (tx, rx) = mailbox();
                row.push(Some(tx));
                dst_rx.push((s, rx));
            }
        }
        senders.push(row);
    }

    let shared = Shared {
        barrier: PoisonBarrier::new(workers),
        next_times: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        remote_msgs: Arc::new(AtomicU64::new(0)),
        epochs: AtomicU64::new(0),
    };

    // Suspend any capture on the calling thread: shards capture their own
    // spans (even when running inline) and we merge them in shard order.
    let capturing = trace::capture_active();
    let parent_cap = if capturing {
        Some(trace::capture_suspend())
    } else {
        None
    };

    // Hand each worker its round-robin set of (shard index, receivers, senders).
    let mut per_worker: Vec<Vec<SeatSpec>> = (0..workers).map(|_| Vec::new()).collect();
    for (s, (rx_row, tx_row)) in receivers.into_iter().zip(senders).enumerate() {
        per_worker[s % workers].push((s, rx_row, tx_row));
    }

    let mut done: Vec<Option<SeatDone<R>>> = (0..shards).map(|_| None).collect();
    if workers == 1 {
        let seats = per_worker.pop().expect("one worker");
        let out = worker_body(cfg, window, capturing, &shared, &build, seats);
        for d in out.expect("single worker cannot be poisoned by a peer") {
            let slot = d.shard;
            done[slot] = Some(d);
        }
    } else {
        let mut panics: Vec<Box<dyn Any + Send>> = Vec::new();
        let mut outs: Vec<Vec<SeatDone<R>>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for seats in per_worker {
                let shared = &shared;
                let build = &build;
                handles.push(scope.spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        worker_body(cfg, window, capturing, shared, build, seats)
                    }));
                    if r.is_err() {
                        shared.barrier.poison();
                    }
                    r
                }));
            }
            for h in handles {
                match h.join().expect("worker wrapper never panics") {
                    Ok(Some(v)) => outs.push(v),
                    Ok(None) => {} // aborted because a peer poisoned the barrier
                    Err(p) => panics.push(p),
                }
            }
        });
        if let Some(p) = panics.into_iter().next() {
            if let Some(p) = parent_cap {
                trace::capture_resume(p);
            }
            resume_unwind(p);
        }
        for d in outs.into_iter().flatten() {
            let slot = d.shard;
            done[slot] = Some(d);
        }
    }

    if let Some(p) = parent_cap {
        trace::capture_resume(p);
    }

    let mut results = Vec::with_capacity(shards);
    let mut log = Vec::new();
    let mut end_time = SimTime::ZERO;
    for d in done.into_iter() {
        let d = d.expect("all shards completed");
        end_time = end_time.max(d.end);
        log.extend(d.log);
        if let Some(t) = d.trace_data {
            trace::capture_absorb(t);
        }
        results.push(d.result);
    }
    log.sort_by_key(|e| (e.at, e.key));
    // Counted once here (every worker observes the same epoch count), not
    // per worker in the loop.
    xtsim_obs::counter(
        "xtsim_pdes_epochs_total",
        "PDES barrier epochs executed across all partitioned runs.",
    )
    .add(shared.epochs.load(Ordering::Relaxed));
    PdesOutcome {
        results,
        end_time,
        epochs: shared.epochs.load(Ordering::Relaxed),
        remote_messages: shared.remote_msgs.load(Ordering::Relaxed),
        log,
    }
}

/// One shard's seat at a worker: `(shard index, per-source receivers,
/// per-destination senders)`.
type SeatSpec = (
    usize,
    Vec<(usize, MailboxReceiver<WireItem>)>,
    Vec<Option<MailboxSender<WireItem>>>,
);

/// Returns `None` iff the barrier was poisoned by a peer's panic.
// xtsim-lint: allow(transitive-taint, "worker epoch stopwatch feeds the PDES latency histogram (host-side telemetry); simulated time comes only from the DES clock")
fn worker_body<R, B, F>(
    cfg: &PdesConfig,
    window: SimDuration,
    capturing: bool,
    shared: &Shared,
    build: &B,
    seat_specs: Vec<SeatSpec>,
) -> Option<Vec<SeatDone<R>>>
where
    B: Fn(&ShardCtx) -> F,
    F: FnOnce() -> R + 'static,
{
    // Build every seat: a private Sim plus the shard's scenario tasks.
    let mut seats: Vec<Seat<R>> = Vec::with_capacity(seat_specs.len());
    for (shard, rx_row, tx_row) in seat_specs {
        let sim = Sim::new(cfg.seed);
        let handler: HandlerSlot = Rc::new(RefCell::new(None));
        let log = Rc::new(RefCell::new(Vec::new()));
        let ctx = ShardCtx {
            shard,
            shards: cfg.shards,
            handle: sim.handle(),
            router: Router {
                inner: Rc::new(RouterInner {
                    shard,
                    handle: sim.handle(),
                    lookahead: cfg.lookahead,
                    senders: tx_row,
                    handler: Rc::clone(&handler),
                    self_seq: Cell::new(0),
                    remote_msgs: Arc::clone(&shared.remote_msgs),
                }),
            },
            logger: PdesLogger {
                handle: sim.handle(),
                entries: Rc::clone(&log),
            },
            handler: Rc::clone(&handler),
        };
        let mut seat = Seat {
            shard,
            sim,
            handler,
            receivers: rx_row,
            reorder: BTreeMap::new(),
            finish: None,
            log,
            cap: None,
            drain_scratch: Vec::new(),
        };
        if capturing {
            trace::capture_begin();
        }
        let fin = build(&ctx);
        // Initial drain: run t=0 ready tasks so timers exist before the
        // first publish (a fresh task has no events queued until it polls).
        seat.sim.run_until(SimTime::ZERO);
        if capturing {
            seat.cap = Some(trace::capture_suspend());
        }
        seat.finish = Some(Box::new(fin));
        seats.push(seat);
    }

    // Telemetry handles, registered once per worker. Observation only:
    // barrier-stall time is harness wall-clock (how long this OS thread sat
    // blocked, nothing to do with simulated time), mailbox depth is a
    // high-water mark across drains. Neither feeds back into event order.
    let barrier_stall = xtsim_obs::histogram(
        "xtsim_pdes_barrier_stall_seconds",
        "Wall-clock time a PDES worker spent blocked at an epoch barrier.",
    );
    let mailbox_highwater = xtsim_obs::gauge(
        "xtsim_pdes_mailbox_depth_highwater",
        "Largest single-drain PDES mailbox depth observed (messages).",
    );

    let mut epochs = 0u64;
    loop {
        // Barrier A: all sends of the previous epoch are now visible.
        // xtsim-lint: allow(wallclock-in-sim, "harness-side barrier-stall telemetry; never enters sim time")
        let sw = xtsim_obs::Stopwatch::start();
        if shared.barrier.wait().is_err() {
            return None;
        }
        // xtsim-lint: allow(wallclock-in-sim, "harness-side barrier-stall telemetry; never enters sim time")
        barrier_stall.observe_since(&sw);
        for seat in &mut seats {
            for (src, rx) in &seat.receivers {
                seat.drain_scratch.clear();
                rx.drain_into(&mut seat.drain_scratch);
                mailbox_highwater.set_max(seat.drain_scratch.len() as u64);
                for (pair_seq, item) in seat.drain_scratch.drain(..) {
                    seat.reorder
                        .insert((item.at, item.order, *src, pair_seq), item.payload);
                }
            }
            let next = [
                seat.sim.next_event_time(),
                seat.reorder.keys().next().map(|k| k.0),
            ]
            .into_iter()
            .flatten()
            .min();
            shared.next_times[seat.shard].store(
                next.map_or(u64::MAX, SimTime::as_ps),
                Ordering::Release,
            );
        }
        // Barrier B: every shard's published time is now visible.
        // xtsim-lint: allow(wallclock-in-sim, "harness-side barrier-stall telemetry; never enters sim time")
        let sw = xtsim_obs::Stopwatch::start();
        if shared.barrier.wait().is_err() {
            return None;
        }
        // xtsim-lint: allow(wallclock-in-sim, "harness-side barrier-stall telemetry; never enters sim time")
        barrier_stall.observe_since(&sw);
        let gmin = (0..cfg.shards)
            .map(|s| shared.next_times[s].load(Ordering::Acquire))
            .min()
            .expect("at least one shard");
        if gmin == u64::MAX {
            break; // Global quiescence: no events, no in-flight messages.
        }
        epochs += 1;
        let horizon = SimTime::from_ps(gmin).saturating_add(window);
        for seat in &mut seats {
            if capturing {
                match seat.cap.take() {
                    Some(c) => trace::capture_resume(c),
                    None => trace::capture_begin(),
                }
            }
            // Deliver buffered remote events inside the horizon, in
            // canonical order, as ordinary scheduled events.
            while let Some(entry) = seat.reorder.first_entry() {
                let &(at, order, src, _) = entry.key();
                if at >= horizon {
                    break;
                }
                let payload = entry.remove();
                let env = RemoteEnvelope {
                    at,
                    order,
                    src_shard: src,
                    payload,
                };
                if cfg.log_wire {
                    seat.log.borrow_mut().push(LogEntry {
                        at,
                        key: order,
                        wire: true,
                        text: format!("wire {}->{} deliver", src, seat.shard),
                    });
                }
                let handler = Rc::clone(&seat.handler);
                seat.sim.handle().call_at(at, move || {
                    let h = handler.borrow().clone().expect("shard has no on_remote handler");
                    h(env);
                });
            }
            seat.sim.run_until(horizon);
            if capturing {
                seat.cap = Some(trace::capture_suspend());
            }
        }
    }
    shared.epochs.store(epochs, Ordering::Relaxed);

    Some(
        seats
            .into_iter()
            .map(|mut seat| {
                seat.sim.assert_quiescent();
                let fin = seat.finish.take().expect("finisher present");
                let result = if capturing {
                    match seat.cap.take() {
                        Some(c) => trace::capture_resume(c),
                        None => trace::capture_begin(),
                    }
                    let r = fin();
                    seat.cap = Some(trace::capture_suspend());
                    r
                } else {
                    fin()
                };
                SeatDone {
                    shard: seat.shard,
                    result,
                    end: seat.sim.now(),
                    log: std::mem::take(&mut *seat.log.borrow_mut()),
                    trace_data: seat.cap.take().and_then(trace::SuspendedCapture::into_data),
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping_pong_config(shards: usize, threads: usize) -> PdesConfig {
        let mut cfg = PdesConfig::new(shards, threads, SimDuration::from_ns(100));
        cfg.log_wire = true;
        cfg
    }

    /// Two shards bounce a counter back and forth `rounds` times; each hop
    /// takes exactly the lookahead. Returns (per-shard hop counts, outcome
    /// metadata) for cross-checking.
    fn run_ping_pong(cfg: &PdesConfig, rounds: u64) -> PdesOutcome<u64> {
        run_partitioned(cfg, move |ctx| {
            let hops = Rc::new(Cell::new(0u64));
            let router = ctx.router();
            let logger = ctx.logger();
            let me = ctx.shard();
            let peer = 1 - me;
            {
                let hops = Rc::clone(&hops);
                let router = router.clone();
                let logger = logger.clone();
                ctx.on_remote(move |env| {
                    let n = *env.payload.downcast::<u64>().expect("u64 payload");
                    hops.set(hops.get() + 1);
                    logger.log((n, 0), format!("hop {n} at shard {me}"));
                    if n < rounds {
                        router.send(
                            peer,
                            env.at + router.lookahead(),
                            (n + 1, 0),
                            Box::new(n + 1),
                        );
                    }
                });
            }
            if me == 0 {
                let h = ctx.handle();
                let router = router.clone();
                h.spawn(async move { /* keep a task alive at t=0 */ });
                let la = router.lookahead();
                ctx.handle().call_at(SimTime::ZERO + la, move || {
                    router.send(1, SimTime::ZERO + la + la, (1, 0), Box::new(1u64));
                });
            }
            move || hops.get()
        })
    }

    #[test]
    fn ping_pong_is_thread_invariant() {
        let rounds = 20;
        let base = run_ping_pong(&ping_pong_config(2, 1), rounds);
        assert_eq!(base.results.iter().sum::<u64>(), rounds);
        assert!(base.epochs > 0);
        assert_eq!(base.remote_messages, rounds);
        for threads in [2, 4] {
            let out = run_ping_pong(&ping_pong_config(2, threads), rounds);
            assert_eq!(out.results, base.results);
            assert_eq!(out.end_time, base.end_time);
            assert_eq!(out.epochs, base.epochs);
            assert_eq!(out.log, base.log);
        }
    }

    #[test]
    fn window_perturbation_changes_epochs_not_results() {
        let rounds = 10;
        let base = run_ping_pong(&ping_pong_config(2, 2), rounds);
        for window_ps in [1_000, 37_000, 99_999] {
            let mut cfg = ping_pong_config(2, 2);
            cfg.window = Some(SimDuration::from_ps(window_ps));
            let out = run_ping_pong(&cfg, rounds);
            assert_eq!(out.results, base.results);
            assert_eq!(out.end_time, base.end_time);
            assert_eq!(out.log, base.log);
            assert!(out.epochs >= base.epochs);
        }
    }

    #[test]
    fn single_shard_runs_inline() {
        let cfg = PdesConfig::new(1, 4, SimDuration::from_ns(1));
        let out = run_partitioned(&cfg, |ctx| {
            let h = ctx.handle();
            let done = Rc::new(Cell::new(0u64));
            let d = Rc::clone(&done);
            h.spawn(async move {
                let h2 = d;
                h2.set(42);
            });
            move || done.get()
        });
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.remote_messages, 0);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn undershooting_lookahead_panics() {
        let cfg = PdesConfig::new(2, 1, SimDuration::from_ns(100));
        run_partitioned(&cfg, |ctx| {
            ctx.on_remote(|_| {});
            if ctx.shard() == 0 {
                let router = ctx.router();
                ctx.handle().call_at(SimTime::from_ps(10000), move || {
                    router.send(1, SimTime::from_ps(15000), (0, 0), Box::new(0u64));
                });
            }
            || ()
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn shard_deadlock_propagates_across_threads() {
        let cfg = PdesConfig::new(2, 2, SimDuration::from_ns(1));
        run_partitioned(&cfg, |ctx| {
            if ctx.shard() == 1 {
                // Blocks forever on a message that never comes.
                ctx.handle().spawn(std::future::pending::<()>());
            }
            || ()
        });
    }
}
