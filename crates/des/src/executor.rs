//! The discrete-event simulation core: event heap + single-threaded async executor.
//!
//! Every simulated entity (an MPI rank, a NIC, an I/O server) is an ordinary
//! Rust `Future` spawned onto the [`Sim`]. Futures block on simulated
//! conditions (timers, channels, resources); the executor interleaves them in
//! a strictly deterministic order:
//!
//! 1. run every ready task (FIFO) at the current instant;
//! 2. pop the earliest pending event, advance the clock, fire it (which
//!    typically wakes a task);
//! 3. repeat until no events and no ready tasks remain.
//!
//! Events at the same instant fire in the order they were scheduled, so two
//! runs of the same program produce identical schedules.
//!
//! The event queue is **time-bucketed**: a min-heap holds each *distinct*
//! pending timestamp once, and a side table maps the timestamp to the FIFO of
//! actions scheduled for it. Draining a burst of same-time events (an alltoall
//! step completing, a barrier releasing) then costs one heap pop for the whole
//! bucket instead of one sift-down per event, and scheduling into an existing
//! instant is O(1).
//!
//! # Tie-breaking at equal timestamps
//!
//! Every event carries a monotone **scheduling sequence number** (`seq`),
//! assigned at push time by [`SimCore::schedule`]. Within one instant, events
//! fire in ascending seq — i.e. *the order they were scheduled*, regardless
//! of which task scheduled them. This is the complete tie-break contract;
//! there is no secondary key. The push sites, audited:
//!
//! * [`SimHandle::sleep`] / [`SimHandle::sleep_until`] — the timer registers
//!   its wake on **first poll**, so two sleeps with the same deadline fire in
//!   the order the sleeping tasks first polled (for freshly spawned tasks:
//!   spawn order).
//! * [`SimHandle::call_at`] — scheduled immediately at call time.
//! * Channel/oneshot/`Notify`/semaphore wakes — not events at all: wakers go
//!   straight onto the ready FIFO and run at the *current* instant, ordered
//!   by wake order.
//! * Fluid-pool completions ([`crate::FluidPool`]) — the one exception: a
//!   pool's pending completions take the seq of the pool's **most recent
//!   rebalance** (see [`Bucket`]) and order among themselves by flow uid.
//!
//! Two runs of the same program therefore produce byte-identical schedules,
//! and the parallel mode ([`crate::pdes`]) reuses the same counter when it
//! merges cross-partition events, so its schedules are reproducible too.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::hash::{BuildHasherDefault, Hasher};
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use crate::time::{SimDuration, SimTime};

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// What happens when an event fires.
pub(crate) enum EventAction {
    /// Wake an async task waker.
    Wake(Waker),
    /// Run an arbitrary callback (used by the fluid model for flow completion).
    Call(Box<dyn FnOnce()>),
}

/// Identifies one registered flow source (a `FluidPool`) for deferred
/// same-instant ordering of its completion events.
pub(crate) type FlowSourceId = usize;

/// One pending instant's events.
///
/// The `fifo` lane holds ordinary events in schedule order (their seq is
/// recorded at push time and is monotone, so the deque is seq-sorted). The
/// `flows` lane holds fluid-model completion events, grouped per source and
/// ordered by flow uid; their effective seq is *dynamic* — the seq of the
/// owning pool's most recent rebalance — because the legacy rebalancer
/// re-enqueued every completion event of the pool on every rebalance, which
/// placed them behind any ordinary event scheduled earlier. Replaying that
/// ordering from a single per-pool counter keeps schedules bit-identical to
/// the historical global-rebalance implementation without ever re-queueing
/// an event whose ETA did not move.
#[derive(Default)]
struct Bucket {
    fifo: VecDeque<(u64, EventAction)>,
    flows: Vec<(FlowSourceId, std::collections::BTreeMap<u64, EventAction>)>,
}

impl Bucket {
    fn is_empty(&self) -> bool {
        self.fifo.is_empty() && self.flows.iter().all(|(_, m)| m.is_empty())
    }
}

/// Multiplicative hasher for the bucket table, whose keys are single `u64`
/// timestamps. The default SipHash showed up as the dominant per-event cost
/// in `des_events/sleep_chain_100k` (every push and pop does a bucket-table
/// probe); one Fibonacci-style multiply mixes the low picosecond bits into
/// the high bits hashbrown uses for control bytes, which is plenty for
/// timestamps and costs ~1ns. Not DoS-resistant — irrelevant for a simulator
/// hashing its own clock values.
#[derive(Default)]
struct TimeHasher(u64);

impl Hasher for TimeHasher {
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Time-bucketed pending-event queue.
///
/// Invariant: a timestamp is in `times` **iff** `buckets` holds a non-empty
/// bucket for it, and it appears in `times` exactly once. Draining a burst of
/// same-time events costs one heap pop for the whole bucket instead of one
/// sift-down per event, and scheduling into an existing instant is O(1).
#[derive(Default)]
struct EventQueue {
    /// Distinct pending timestamps (min-heap).
    times: BinaryHeap<Reverse<SimTime>>,
    buckets: HashMap<SimTime, Bucket, BuildHasherDefault<TimeHasher>>,
    /// Drained buckets kept for reuse, so steady-state scheduling is
    /// allocation-free.
    spare: Vec<Bucket>,
    len: usize,
}

impl EventQueue {
    fn bucket_for(&mut self, time: SimTime) -> &mut Bucket {
        self.len += 1;
        match self.buckets.entry(time) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let bucket = self.spare.pop().unwrap_or_default();
                self.times.push(Reverse(time));
                e.insert(bucket)
            }
        }
    }

    fn push(&mut self, time: SimTime, seq: u64, action: EventAction) {
        self.bucket_for(time).fifo.push_back((seq, action));
    }

    /// Queue a fluid completion event for `(source, uid)`. A stale entry for
    /// the same flow at the same instant (superseded generation) is simply
    /// overwritten — firing it once is equivalent to firing a no-op twice.
    fn push_flow(&mut self, time: SimTime, source: FlowSourceId, uid: u64, action: EventAction) {
        let bucket = self.bucket_for(time);
        if let Some((_, m)) = bucket.flows.iter_mut().find(|(s, _)| *s == source) {
            if m.insert(uid, action).is_some() {
                self.len -= 1;
            }
            return;
        }
        let mut m = std::collections::BTreeMap::new();
        m.insert(uid, action);
        bucket.flows.push((source, m));
    }

    /// Remove and return the earliest event. Within an instant, ordinary
    /// events fire in schedule order and each pool's completions fire in uid
    /// order at the position of the pool's latest rebalance (`flow_seq`).
    fn pop(&mut self, flow_seq: &[u64]) -> Option<(SimTime, EventAction)> {
        let &Reverse(time) = self.times.peek()?;
        let bucket = self.buckets.get_mut(&time).expect("bucket for queued time");
        // Pick the lane holding the smallest effective seq.
        let fifo_seq = bucket.fifo.front().map(|&(s, _)| s);
        let mut best_flow: Option<(u64, usize)> = None; // (pool seq, index in flows)
        for (i, (source, m)) in bucket.flows.iter().enumerate() {
            if !m.is_empty() {
                let s = flow_seq[*source];
                if best_flow.is_none_or(|(bs, _)| s < bs) {
                    best_flow = Some((s, i));
                }
            }
        }
        // The `?`s below are unreachable by construction — `fifo_seq` /
        // `best_flow` only name non-empty lanes — so the happy path is
        // untouched and the hot path stays panic-free.
        let action = match (fifo_seq, best_flow) {
            (Some(fs), Some((ps, i))) if ps < fs => bucket.flows[i].1.pop_first()?.1,
            (Some(_), _) => bucket.fifo.pop_front()?.1,
            (None, Some((_, i))) => bucket.flows[i].1.pop_first()?.1,
            (None, None) => unreachable!("queued time with empty bucket"),
        };
        self.len -= 1;
        if bucket.is_empty() {
            self.times.pop();
            if let Some(mut empty) = self.buckets.remove(&time) {
                if self.spare.len() < 32 {
                    empty.fifo.clear();
                    empty.flows.clear();
                    self.spare.push(empty);
                }
            }
        }
        Some((time, action))
    }

    /// Earliest pending timestamp, if any.
    fn peek_time(&self) -> Option<SimTime> {
        self.times.peek().map(|&Reverse(t)| t)
    }

    /// Pre-size for `additional` more events beyond the current count.
    fn reserve(&mut self, additional: usize) {
        self.times.reserve(additional);
        self.buckets.reserve(additional);
    }

    fn clear(&mut self) {
        self.times.clear();
        self.buckets.clear();
        self.spare.clear();
        self.len = 0;
    }
}

/// Shared FIFO of runnable task ids. `Waker` must be `Send + Sync`, hence the
/// mutex, even though the simulation itself is single-threaded.
type ReadyQueue = Arc<Mutex<VecDeque<usize>>>;

struct TaskWaker {
    id: usize,
    ready: ReadyQueue,
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        // A poisoned ready queue only means another thread panicked mid-push;
        // the VecDeque itself is still consistent, so waking must not turn
        // one panic into an abort-grade double panic.
        // xtsim-lint: allow(blocking-in-poll, "ready-queue mutex is held for one push_back; uncontended in the single-threaded executor (Waker: Sync forces a lock)")
        self.ready.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push_back(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        // xtsim-lint: allow(blocking-in-poll, "ready-queue mutex is held for one push_back; uncontended in the single-threaded executor (Waker: Sync forces a lock)")
        self.ready.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push_back(self.id);
    }
}

pub(crate) struct SimCore {
    now: Cell<SimTime>,
    events: RefCell<EventQueue>,
    /// Monotone scheduling counter; orders same-instant events.
    seq: Cell<u64>,
    /// Per flow source: seq of its most recent rebalance (see `Bucket`).
    flow_seq: RefCell<Vec<u64>>,
    tasks: RefCell<Vec<Option<LocalFuture>>>,
    /// Tasks spawned while the executor is mid-poll; drained before the next step.
    staged: RefCell<Vec<(usize, LocalFuture)>>,
    ready: ReadyQueue,
    live_tasks: Cell<usize>,
    base_seed: u64,
}

impl SimCore {
    pub(crate) fn now(&self) -> SimTime {
        self.now.get()
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Schedule `action` to fire at `time` (clamped to never be in the past).
    pub(crate) fn schedule(&self, time: SimTime, action: EventAction) {
        let time = time.max(self.now.get());
        let seq = self.next_seq();
        self.events.borrow_mut().push(time, seq, action);
    }

    /// Register a fluid pool as a flow source and return its id.
    pub(crate) fn register_flow_source(&self) -> FlowSourceId {
        let mut fs = self.flow_seq.borrow_mut();
        fs.push(0);
        fs.len() - 1
    }

    /// Record that `source` just rebalanced: its pending completion events
    /// now order *after* every event scheduled so far at their instants.
    pub(crate) fn touch_flow_source(&self, source: FlowSourceId) {
        let seq = self.next_seq();
        self.flow_seq.borrow_mut()[source] = seq;
    }

    /// Schedule a fluid completion event for `(source, uid)` at `time`.
    pub(crate) fn schedule_flow(
        &self,
        time: SimTime,
        source: FlowSourceId,
        uid: u64,
        action: EventAction,
    ) {
        let time = time.max(self.now.get());
        self.events.borrow_mut().push_flow(time, source, uid, action);
    }

    /// Pre-size the event queue for `additional` more events (used by the
    /// fluid model, which keeps one live completion event per active flow).
    pub(crate) fn reserve_events(&self, additional: usize) {
        self.events.borrow_mut().reserve(additional);
    }

    fn stage_task(&self, fut: LocalFuture) -> usize {
        let id = {
            let tasks = self.tasks.borrow();
            tasks.len() + self.staged.borrow().len()
        };
        self.staged.borrow_mut().push((id, fut));
        self.live_tasks.set(self.live_tasks.get() + 1);
        self.ready.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push_back(id);
        id
    }

    fn commit_staged(&self) {
        let mut staged = self.staged.borrow_mut();
        if staged.is_empty() {
            return;
        }
        let mut tasks = self.tasks.borrow_mut();
        for (id, fut) in staged.drain(..) {
            debug_assert_eq!(id, tasks.len());
            tasks.push(Some(fut));
        }
    }
}

/// A handle to the simulation, cheaply cloneable into spawned futures.
///
/// The handle is the ambient "operating system" of a simulated entity: it
/// tells the time, sleeps, spawns siblings, and hands out deterministic RNG
/// streams.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) core: Rc<SimCore>,
}

impl SimHandle {
    /// Current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Sleep until `deadline` (completes immediately if already past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            core: Rc::clone(&self.core),
            deadline,
            registered: false,
        }
    }

    /// Sleep for `dur` simulated time.
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        self.sleep_until(self.now() + dur)
    }

    /// Yield to let every other currently-ready task run once at this instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Spawn a new task. The returned [`JoinHandle`] resolves to the task's output.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state: Rc<RefCell<JoinState<T>>> = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        };
        self.core.stage_task(Box::pin(wrapped));
        JoinHandle { state }
    }

    /// A deterministic RNG stream derived from the simulation seed and `stream`.
    ///
    /// Distinct `stream` values give statistically independent sequences, and
    /// the same `(seed, stream)` pair always yields the same sequence.
    pub fn rng(&self, stream: u64) -> rand_chacha::ChaCha8Rng {
        use rand::SeedableRng;
        let mixed = self
            .core
            .base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
        rand_chacha::ChaCha8Rng::seed_from_u64(mixed)
    }

    /// Schedule a callback to run at absolute time `at`.
    pub fn call_at(&self, at: SimTime, f: impl FnOnce() + 'static) {
        self.core.schedule(at, EventAction::Call(Box::new(f)));
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Future resolving to a spawned task's output.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(out) = st.result.take() {
            Poll::Ready(out)
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl<T> JoinHandle<T> {
    /// True once the task has finished (its output is buffered).
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

/// Timer future returned by [`SimHandle::sleep`] / [`SimHandle::sleep_until`].
pub struct Sleep {
    core: Rc<SimCore>,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.core.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.core
                .schedule(self.deadline, EventAction::Wake(cx.waker().clone()));
            self.registered = true;
        }
        Poll::Pending
    }
}

/// Future returned by [`SimHandle::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// A deterministic discrete-event simulation.
pub struct Sim {
    handle: SimHandle,
}

impl Sim {
    /// Create a simulation whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Sim {
        let core = Rc::new(SimCore {
            now: Cell::new(SimTime::ZERO),
            events: RefCell::new(EventQueue::default()),
            seq: Cell::new(0),
            flow_seq: RefCell::new(Vec::new()),
            tasks: RefCell::new(Vec::new()),
            staged: RefCell::new(Vec::new()),
            ready: Arc::new(Mutex::new(VecDeque::new())),
            live_tasks: Cell::new(0),
            base_seed: seed,
        });
        Sim {
            handle: SimHandle { core },
        }
    }

    /// Handle for spawning and time queries.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Spawn a root task.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.handle.spawn(fut)
    }

    /// Run until no ready tasks and no pending events remain.
    ///
    /// Returns the final simulated time. Panics if the run ends with live
    /// tasks still blocked (a deadlock in the simulated program), because a
    /// silently half-finished simulation would corrupt every measurement
    /// derived from it.
    pub fn run(&mut self) -> SimTime {
        self.run_bounded(None);
        self.assert_quiescent();
        self.handle.core.now()
    }

    /// Run until every pending event at times **strictly before** `horizon`
    /// has fired and the ready queue is drained, then stop without advancing
    /// the clock further.
    ///
    /// This is the epoch step of the conservative parallel mode
    /// ([`crate::pdes`]): events at or beyond the horizon stay queued, tasks
    /// blocked on them stay blocked, and a later `run_until` (or [`Sim::run`])
    /// resumes seamlessly. Within the horizon the schedule is identical to
    /// what an unbounded [`Sim::run`] would produce — the bound only decides
    /// *where to pause*, never the order of events.
    ///
    /// Returns the earliest still-pending event time (necessarily
    /// `>= horizon`), or `None` if the queue is empty.
    pub fn run_until(&mut self, horizon: SimTime) -> Option<SimTime> {
        self.run_bounded(Some(horizon))
    }

    fn run_bounded(&mut self, horizon: Option<SimTime>) -> Option<SimTime> {
        let core = &self.handle.core;
        loop {
            core.commit_staged();
            // Phase 1: drain the ready queue at the current instant.
            loop {
                let next = core
                    .ready
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front();
                let Some(id) = next else { break };
                let fut = {
                    let mut tasks = core.tasks.borrow_mut();
                    match tasks.get_mut(id) {
                        Some(slot) => slot.take(),
                        None => None,
                    }
                };
                let Some(mut fut) = fut else { continue }; // finished or spurious wake
                let waker = Waker::from(Arc::new(TaskWaker {
                    id,
                    ready: Arc::clone(&core.ready),
                }));
                let mut cx = Context::from_waker(&waker);
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {
                        core.live_tasks.set(core.live_tasks.get() - 1);
                    }
                    Poll::Pending => {
                        core.tasks.borrow_mut()[id] = Some(fut);
                    }
                }
                core.commit_staged();
            }
            // Phase 2: advance time to the next event (stopping at the
            // horizon, when one is set).
            if let Some(h) = horizon {
                match core.events.borrow().peek_time() {
                    Some(t) if t < h => {}
                    other => return other,
                }
            }
            let entry = {
                let flow_seq = core.flow_seq.borrow();
                core.events.borrow_mut().pop(&flow_seq)
            };
            match entry {
                Some((time, action)) => {
                    debug_assert!(time >= core.now());
                    core.now.set(time);
                    match action {
                        EventAction::Wake(w) => w.wake(),
                        EventAction::Call(f) => f(),
                    }
                }
                None => return None,
            }
        }
    }

    /// Earliest pending event time, or `None` if the event queue is empty.
    /// Tasks parked on channels/notifies without a timer do not count.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.handle.core.events.borrow().peek_time()
    }

    /// Number of spawned tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.handle.core.live_tasks.get()
    }

    /// Panic unless every spawned task has completed — the same deadlock
    /// check [`Sim::run`] performs, exposed so the parallel mode can assert
    /// it per shard after global quiescence.
    pub fn assert_quiescent(&self) {
        let leaked = self.handle.core.live_tasks.get();
        assert!(
            leaked == 0,
            "simulation deadlock: {leaked} task(s) still blocked at t={}",
            self.handle.core.now()
        );
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        // Break potential Rc cycles: tasks own SimHandle which owns the core
        // which owns the tasks. Dropping the futures here frees everything.
        self.handle.core.tasks.borrow_mut().clear();
        self.handle.core.staged.borrow_mut().clear();
        self.handle.core.events.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let mut sim = Sim::new(0);
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_time() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_us(5)).await;
        });
        assert_eq!(sim.run(), SimTime::from_ps(5_000_000));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let order: Rc<RefCell<Vec<(u32, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(0);
        for id in 0..3u32 {
            let h = sim.handle();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                h.sleep(SimDuration::from_ns(10 * (3 - id) as u64)).await;
                order.borrow_mut().push((id, h.now().as_ps()));
                h.sleep(SimDuration::from_ns(100)).await;
                order.borrow_mut().push((id, h.now().as_ps()));
            });
        }
        sim.run();
        let got = order.borrow().clone();
        assert_eq!(
            got,
            vec![
                (2, 10_000),
                (1, 20_000),
                (0, 30_000),
                (2, 110_000),
                (1, 120_000),
                (0, 130_000)
            ]
        );
    }

    #[test]
    fn join_handle_returns_value() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let outer = sim.spawn(async move {
            let inner = h.spawn(async { 21 * 2 });
            inner.await
        });
        sim.run();
        assert!(outer.is_finished());
    }

    #[test]
    fn spawn_from_within_task_runs() {
        let hits = Rc::new(RefCell::new(0));
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let hits2 = Rc::clone(&hits);
        sim.spawn(async move {
            for _ in 0..10 {
                let hits3 = Rc::clone(&hits2);
                let hh = h.clone();
                h.spawn(async move {
                    hh.sleep(SimDuration::from_ns(1)).await;
                    *hits3.borrow_mut() += 1;
                });
            }
        });
        sim.run();
        assert_eq!(*hits.borrow(), 10);
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let l1 = Rc::clone(&log);
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            h.yield_now().await;
            l1.borrow_mut().push("a2");
        });
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
    }

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        use rand::RngCore;
        let sim = Sim::new(42);
        let mut a1 = sim.handle().rng(1);
        let mut a2 = sim.handle().rng(1);
        let mut b = sim.handle().rng(2);
        let xs: Vec<u64> = (0..4).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_panics() {
        let mut sim = Sim::new(0);
        sim.spawn(async {
            std::future::pending::<()>().await;
        });
        sim.run();
    }

    #[test]
    fn call_at_fires_in_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(0);
        let h = sim.handle();
        for (i, t) in [30u64, 10, 20].iter().enumerate() {
            let l = Rc::clone(&log);
            h.call_at(SimTime::from_ps(*t), move || l.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 0]);
    }

    /// Pins the documented seq tie-break: same-instant events fire in the
    /// order they were *scheduled*, across sleeps and call_at alike. Sleeps
    /// register on first poll, so the task spawned first schedules first
    /// even though the call_at below was issued before either task polled.
    #[test]
    fn same_instant_events_fire_in_schedule_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let t = SimTime::from_ps(50000);
        {
            let l = Rc::clone(&log);
            h.call_at(t, move || l.borrow_mut().push("call"));
        }
        for name in ["first", "second"] {
            let h2 = sim.handle();
            let l = Rc::clone(&log);
            sim.spawn(async move {
                h2.sleep_until(t).await;
                l.borrow_mut().push(name);
            });
        }
        sim.run();
        // call_at scheduled before either task first polled its sleep.
        assert_eq!(*log.borrow(), vec!["call", "first", "second"]);
    }

    #[test]
    fn run_until_pauses_and_resumes_identically() {
        // Reference: one unbounded run.
        let run_log = |horizons: &[u64]| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new(7);
            for id in 0..4u64 {
                let h = sim.handle();
                let l = Rc::clone(&log);
                sim.spawn(async move {
                    for step in 0..5u64 {
                        h.sleep(SimDuration::from_ns(10 + id)).await;
                        l.borrow_mut().push((h.now().as_ps(), id, step));
                    }
                });
            }
            for &hz in horizons {
                let next = sim.run_until(SimTime::from_ps(hz));
                if let Some(t) = next {
                    assert!(t >= SimTime::from_ps(hz));
                }
            }
            sim.run();
            Rc::try_unwrap(log).unwrap().into_inner()
        };
        let serial = run_log(&[]);
        let chunked = run_log(&[1, 12_000, 25_000, 25_001, 60_000]);
        assert_eq!(serial, chunked);
    }

    #[test]
    fn run_until_reports_next_pending_event() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_ns(100)).await;
        });
        assert_eq!(sim.run_until(SimTime::from_ps(1000)), Some(SimTime::from_ps(100000)));
        assert_eq!(sim.next_event_time(), Some(SimTime::from_ps(100000)));
        assert_eq!(sim.live_tasks(), 1);
        assert_eq!(sim.run_until(SimTime::from_ps(1000000)), None);
        assert_eq!(sim.live_tasks(), 0);
        sim.assert_quiescent();
    }
}
