//! Cross-partition mailboxes for the parallel execution mode.
//!
//! One mailbox connects one ordered `(source shard, destination shard)`
//! pair: a single producer stamps each item with a per-pair sequence number
//! and pushes; the single consumer drains everything in one batch at an
//! epoch boundary. Producer and consumer never touch the mailbox in the same
//! phase of the epoch protocol (sends happen strictly between barriers,
//! drains strictly at them), so the internal mutex is uncontended in steady
//! state — it exists to make the handoff safe without `unsafe` code, not to
//! arbitrate concurrent access.

use std::cell::Cell;
use std::sync::{Arc, Mutex};

struct Inner<T> {
    queue: Mutex<Vec<(u64, T)>>,
}

/// Producer half of a mailbox. Single-producer by construction: the engine
/// hands each shard exactly one sender per destination, and a shard lives on
/// one thread. (`Cell` for the stamp keeps it `Send` but not `Sync`,
/// enforcing that at the type level.)
pub struct MailboxSender<T> {
    inner: Arc<Inner<T>>,
    next_seq: Cell<u64>,
}

/// Consumer half of a mailbox, owned by the destination shard.
pub struct MailboxReceiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create a connected sender/receiver pair.
pub fn mailbox<T: Send>() -> (MailboxSender<T>, MailboxReceiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(Vec::new()),
    });
    (
        MailboxSender {
            inner: Arc::clone(&inner),
            next_seq: Cell::new(0),
        },
        MailboxReceiver { inner },
    )
}

impl<T> MailboxSender<T> {
    /// Enqueue `item`, returning the per-pair sequence number stamped on it.
    /// Stamps are dense (0, 1, 2, …) in send order, which the receiver uses
    /// as the final tie-break when merging mailboxes deterministically.
    pub fn send(&self, item: T) -> u64 {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        self.inner
            .queue
            .lock()
            .expect("mailbox poisoned")
            .push((seq, item));
        seq
    }
}

impl<T> MailboxReceiver<T> {
    /// Move every queued item into `out` (appended in send order). Returns
    /// the number drained.
    pub fn drain_into(&self, out: &mut Vec<(u64, T)>) -> usize {
        let mut q = self.inner.queue.lock().expect("mailbox poisoned");
        let n = q.len();
        out.append(&mut q);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_dense_and_drain_preserves_order() {
        let (tx, rx) = mailbox::<&'static str>();
        assert_eq!(tx.send("a"), 0);
        assert_eq!(tx.send("b"), 1);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 2);
        assert_eq!(out, vec![(0, "a"), (1, "b")]);
        assert_eq!(rx.drain_into(&mut out), 0);
        assert_eq!(tx.send("c"), 2);
        rx.drain_into(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2], (2, "c"));
    }

    #[test]
    fn crosses_threads() {
        let (tx, rx) = mailbox::<u64>();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i);
            }
        });
        h.join().unwrap();
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 100);
        assert!(out.iter().enumerate().all(|(i, &(s, v))| s == i as u64 && v == i as u64));
    }
}
