//! Intra-simulation message channels.
//!
//! These carry *payloads between simulated entities at the same instant* —
//! they model shared memory inside one simulated component, not the network.
//! Network delays are imposed by whoever sends (sleeping for the modelled
//! transfer time before or after pushing into a channel).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_wakers: Vec<Waker>,
    senders: usize,
}

/// Unbounded sender half created by [`channel`].
pub struct Sender<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Receiver half created by [`channel`].
pub struct Receiver<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Error returned by [`Receiver::recv`] when all senders are gone and the
/// queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed: all senders dropped")
    }
}
impl std::error::Error for RecvError {}

/// Create an unbounded FIFO channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        recv_wakers: Vec::new(),
        senders: 1,
    }));
    (
        Sender {
            state: Rc::clone(&state),
        },
        Receiver { state },
    )
}

impl<T> Sender<T> {
    /// Enqueue a value and wake any pending receiver.
    pub fn send(&self, value: T) {
        let mut st = self.state.borrow_mut();
        st.queue.push_back(value);
        for w in st.recv_wakers.drain(..) {
            w.wake();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.senders -= 1;
        if st.senders == 0 {
            for w in st.recv_wakers.drain(..) {
                w.wake();
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Await the next value.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Pop a value without waiting, if one is queued.
    pub fn try_recv(&self) -> Option<T> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.rx.state.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(Ok(v));
        }
        if st.senders == 0 {
            return Poll::Ready(Err(RecvError));
        }
        st.recv_wakers.push(cx.waker().clone());
        Poll::Pending
    }
}

/// One-shot channel: a single value, sent once.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Rc::new(RefCell::new(OneshotState {
        value: None,
        waker: None,
        closed: false,
    }));
    (
        OneshotSender {
            state: Rc::clone(&state),
        },
        OneshotReceiver { state },
    )
}

struct OneshotState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    closed: bool,
}

/// Sending half of a [`oneshot`] channel.
pub struct OneshotSender<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// Receiving half of a [`oneshot`] channel.
pub struct OneshotReceiver<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver.
    pub fn send(self, value: T) {
        let mut st = self.state.borrow_mut();
        st.value = Some(value);
        if let Some(w) = st.waker.take() {
            w.wake();
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.closed = true;
        if let Some(w) = st.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.value.take() {
            return Poll::Ready(Ok(v));
        }
        if st.closed {
            return Poll::Ready(Err(RecvError));
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn channel_delivers_in_order() {
        let mut sim = Sim::new(0);
        let (tx, rx) = channel::<u32>();
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            for _ in 0..3 {
                let v = rx.recv().await.unwrap();
                got2.borrow_mut().push(v);
            }
        });
        let h = sim.handle();
        sim.spawn(async move {
            for i in 0..3 {
                tx.send(i);
                h.sleep(SimDuration::from_ns(1)).await;
            }
        });
        sim.run();
        assert_eq!(*got.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn recv_after_close_errors() {
        let mut sim = Sim::new(0);
        let (tx, rx) = channel::<u32>();
        let ok = Rc::new(RefCell::new(false));
        let ok2 = Rc::clone(&ok);
        sim.spawn(async move {
            tx.send(7);
            drop(tx);
        });
        sim.spawn(async move {
            assert_eq!(rx.recv().await, Ok(7));
            assert_eq!(rx.recv().await, Err(RecvError));
            *ok2.borrow_mut() = true;
        });
        sim.run();
        assert!(*ok.borrow());
    }

    #[test]
    fn oneshot_roundtrip() {
        let mut sim = Sim::new(0);
        let (tx, rx) = oneshot::<&'static str>();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_us(1)).await;
            tx.send("done");
        });
        let out = sim.spawn(async move { rx.await.unwrap() });
        sim.run();
        assert!(out.is_finished());
    }

    #[test]
    fn oneshot_dropped_sender_errors() {
        let mut sim = Sim::new(0);
        let (tx, rx) = oneshot::<u32>();
        drop(tx);
        let done = Rc::new(RefCell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            assert!(rx.await.is_err());
            *d.borrow_mut() = true;
        });
        sim.run();
        assert!(*done.borrow());
    }

    #[test]
    fn multi_sender_counts() {
        let mut sim = Sim::new(0);
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        sim.spawn(async move {
            tx.send(1);
            drop(tx);
        });
        sim.spawn(async move {
            tx2.send(2);
            drop(tx2);
        });
        let sum = Rc::new(RefCell::new(0));
        let s = Rc::clone(&sum);
        sim.spawn(async move {
            while let Ok(v) = rx.recv().await {
                *s.borrow_mut() += v;
            }
        });
        sim.run();
        assert_eq!(*sum.borrow(), 3);
    }
}
